//! Dynamic Bayes network belief tracking (§4.3): learn the filter's
//! probability tables from random-defender episodes, then follow one node's
//! belief as the attacker compromises it, and compare against ground truth.
//!
//! Run with:
//!
//! ```text
//! cargo run --release --example belief_tracking
//! ```

use dbn::learn::{learn_model, LearnConfig};
use dbn::validate::validate_filter;
use dbn::DbnFilter;
use ics_net::NodeId;
use ics_sim::{DefenderAction, IcsEnvironment, SimConfig};

fn main() {
    let sim = SimConfig::tiny().with_max_time(500);

    println!("Learning DBN probability tables from 10 random-defender episodes...");
    let model = learn_model(&LearnConfig {
        episodes: 10,
        seed: 0,
        sim: sim.clone(),
    });

    println!("Tracking beliefs over one undefended episode...");
    let mut env = IcsEnvironment::new(sim.clone().with_seed(123));
    let _ = env.reset();
    let mut filter = DbnFilter::new(model.clone(), env.topology().node_count());
    let beachhead = env.state().compromised_nodes()[0];

    println!();
    println!("Hour | P(compromised) for {beachhead} | true class");
    println!("-----+--------------------------------+--------------------------");
    for hour in 1..=200u64 {
        let step = env.step(&[DefenderAction::NoAction]);
        filter.update(&step.observation);
        if hour % 20 == 0 {
            println!(
                "{:>4} | {:>30.3} | {}",
                hour,
                filter.compromise_probability(beachhead),
                env.state().compromise(beachhead).class()
            );
        }
        if step.done {
            break;
        }
    }
    // Also show a node the attacker has (probably) not touched.
    let quiet_node = NodeId::from_index(if beachhead.index() == 0 { 1 } else { 0 });
    println!();
    println!(
        "Belief that untouched {quiet_node} is compromised: {:.3}",
        filter.compromise_probability(quiet_node)
    );

    println!();
    println!("Validating the filter against ground truth over 2 episodes (KL divergence)...");
    let report = validate_filter(&model, &sim, 2, 7);
    println!("  samples:              {}", report.samples);
    println!("  mean KL divergence:   {:.4}", report.mean_kl);
    println!("  max KL divergence:    {:.3}", report.max_kl);
    println!(
        "  compromise accuracy:  {:.1}%",
        report.compromise_accuracy * 100.0
    );
}
