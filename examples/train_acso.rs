//! Train the attention-based ACSO defender end to end (DBN fit + augmented
//! DQN) at a small scale, then compare it with the playbook baseline on a
//! matched evaluation.
//!
//! This is the full training pipeline of §4.2 at a CPU-sized budget; expect a
//! few minutes of wall-clock. Increase `EPISODES` for a stronger agent.
//!
//! Run with:
//!
//! ```text
//! cargo run --release --example train_acso
//! ```

use acso_core::baselines::PlaybookPolicy;
use acso_core::eval::{evaluate_policy, EvalConfig};
use acso_core::train::{train_attention_acso, TrainConfig};
use ics_sim::SimConfig;

const EPISODES: usize = 8;

fn main() {
    let train_sim = SimConfig::tiny().with_max_time(600);
    let config = TrainConfig {
        sim: train_sim.clone(),
        episodes: EPISODES,
        dbn_episodes: 5,
        ..TrainConfig::smoke(EPISODES)
    };

    println!("Fitting the DBN filter and training the ACSO for {EPISODES} episodes...");
    let start = std::time::Instant::now();
    let mut trained = train_attention_acso(&config);
    println!(
        "Training finished in {:.1?}: {} env steps, {} gradient updates.",
        start.elapsed(),
        trained.report.env_steps,
        trained.report.updates
    );
    for (i, ret) in trained.report.episode_returns.iter().enumerate() {
        println!("  episode {:>2}: discounted return {:.1}", i + 1, ret);
    }

    let eval = EvalConfig {
        sim: train_sim,
        episodes: 3,
        seed: 1_000,
    };
    println!();
    println!(
        "Evaluating on {} held-out attack episodes...",
        eval.episodes
    );
    let acso = evaluate_policy(&mut trained.agent, &eval);
    let playbook = evaluate_policy(&mut PlaybookPolicy::new(), &eval);

    println!();
    println!("                    {:>14} {:>14}", "ACSO", "Playbook");
    println!(
        "discounted return   {:>14.1} {:>14.1}",
        acso.discounted_return.mean, playbook.discounted_return.mean
    );
    println!(
        "final PLCs offline  {:>14.2} {:>14.2}",
        acso.final_plcs_offline.mean, playbook.final_plcs_offline.mean
    );
    println!(
        "average IT cost     {:>14.3} {:>14.3}",
        acso.average_it_cost.mean, playbook.average_it_cost.mean
    );
    println!(
        "nodes compromised   {:>14.2} {:>14.2}",
        acso.average_nodes_compromised.mean, playbook.average_nodes_compromised.mean
    );
    println!();
    println!("For the paper-scale comparison run: cargo run --release -p acso-bench --bin table2");
}
