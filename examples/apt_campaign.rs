//! Watch an undefended APT campaign unfold: prints the attacker's tactic
//! phase transitions (Fig. 3 of the paper), the alert volume the IDS raises,
//! and the damage done to the PLCs.
//!
//! Run with:
//!
//! ```text
//! cargo run --release --example apt_campaign
//! ```

use ics_sim::apt::{AptProfile, AttackObjective, AttackVector};
use ics_sim::{DefenderAction, IcsEnvironment, SimConfig};

fn main() {
    // Pin the attack configuration so the printed campaign is easy to follow:
    // the attacker pivots through the OPC server to disrupt PLC processes.
    let profile = AptProfile::apt1()
        .with_objective(AttackObjective::Disrupt)
        .with_vector(AttackVector::Opc);
    let config = SimConfig::small()
        .with_apt(profile)
        .with_max_time(4_000)
        .with_seed(3);
    let mut env = IcsEnvironment::new(config);
    let _ = env.reset();

    println!("Hour | APT phase            | compromised | alerts | PLCs offline");
    println!("-----+----------------------+-------------+--------+-------------");

    let mut last_phase = "";
    let mut alerts_in_window = 0usize;
    loop {
        let step = env.step(&[DefenderAction::NoAction]);
        alerts_in_window += step.observation.total_alerts();

        let phase_changed = step.info.apt_phase != last_phase;
        let report_interval = step.observation.time.is_multiple_of(500);
        if phase_changed || report_interval {
            println!(
                "{:>4} | {:<20} | {:>11} | {:>6} | {:>12}",
                step.observation.time,
                step.info.apt_phase,
                step.info.nodes_compromised,
                alerts_in_window,
                step.info.plcs_offline
            );
            alerts_in_window = 0;
            last_phase = step.info.apt_phase;
        }
        if step.done {
            println!("-----+----------------------+-------------+--------+-------------");
            println!(
                "Campaign finished after {} hours with {} PLCs offline (threshold for this \
                 attack: {}).",
                step.observation.time,
                step.info.plcs_offline,
                env.apt_params().plc_threshold
            );
            break;
        }
    }
}
