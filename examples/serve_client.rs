//! Minimal client for the `acso-serve` evaluation daemon.
//!
//! Runs the daemon embedded on a background thread over the in-process
//! channel transport — the exact same service and serve loop the
//! `acso-serve` binary wraps around stdio — then walks the protocol:
//! list the scenario catalog, load a policy behind a versioned handle,
//! run an evaluation, scrape the metrics, and shut down. The wire format
//! is documented in `docs/PROTOCOL.md`.
//!
//! ```sh
//! cargo run --release --example serve_client
//! ```

use acso::serve::{serve, ChannelTransport, ClientEnd, EvalService, JsonValue, ServiceConfig};

/// Sends one request line and blocks for its response, panicking on an
/// error envelope (a real client would match on `"ok"` instead).
fn call(client: &ClientEnd, line: &str) -> JsonValue {
    client.send_line(line).expect("daemon is running");
    let response = client.recv_line().expect("a response per request");
    let envelope = JsonValue::parse(&response).expect("responses are valid JSON");
    assert_eq!(
        envelope.get("ok").and_then(JsonValue::as_bool),
        Some(true),
        "request failed: {response}"
    );
    envelope.get("result").unwrap().clone()
}

fn main() {
    // The daemon side: same service the `acso-serve` binary runs over
    // stdio, here behind the channel transport on a background thread.
    let (mut transport, client) = ChannelTransport::pair();
    let daemon = std::thread::spawn(move || {
        let mut service = EvalService::new(ServiceConfig::from_env());
        serve(&mut service, &mut transport)
    });

    // 1. The scenario catalog (same registry the offline sweep iterates).
    let result = call(&client, r#"{"id":1,"method":"list_scenarios"}"#);
    let scenarios = result.get("scenarios").unwrap().as_arr().unwrap();
    println!("{} scenarios in the registry, e.g.:", scenarios.len());
    for scenario in scenarios.iter().take(3) {
        println!(
            "  {:<12} {}",
            scenario.get("name").unwrap().as_str().unwrap(),
            scenario.get("description").unwrap().as_str().unwrap()
        );
    }

    // 2. Load a policy once; evaluations reuse the warm artefacts.
    let result = call(
        &client,
        r#"{"id":2,"method":"load_policy","params":{"policy":"playbook"}}"#,
    );
    let handle = result.get("handle").unwrap().as_str().unwrap().to_string();
    println!(
        "\nloaded {} as handle {handle}",
        result.get("policy").unwrap().as_str().unwrap()
    );

    // 3. Evaluate it: 4 episodes on the tiny scenario.
    let result = call(
        &client,
        &format!(
            r#"{{"id":3,"method":"evaluate","params":{{"handle":"{handle}","scenario":"tiny","episodes":4,"seed":42,"max_time":150}}}}"#
        ),
    );
    let summary = result.get("summary").unwrap();
    let mean = |field: &str| {
        summary
            .get(field)
            .unwrap()
            .get("mean")
            .unwrap()
            .as_f64()
            .unwrap()
    };
    println!(
        "evaluated {} episodes: discounted return {:.2}, final PLCs offline {:.2}",
        result.get("episodes").unwrap().as_u64().unwrap(),
        mean("discounted_return"),
        mean("final_plcs_offline")
    );
    let batch = result.get("batch").unwrap();
    println!(
        "lockstep batch: {} lanes, fill ratio {:.3}",
        batch.get("lanes").unwrap().as_u64().unwrap(),
        batch.get("fill_ratio").unwrap().as_f64().unwrap()
    );

    // 4. Scrape the metrics (the `prometheus` field is the full text
    //    exposition a scraper would ingest).
    let result = call(&client, r#"{"id":4,"method":"metrics"}"#);
    println!(
        "\ndaemon counters: {} requests, {} episodes, lifetime batch fill {:.3}",
        result.get("requests_total").unwrap().as_u64().unwrap(),
        result.get("episodes_total").unwrap().as_u64().unwrap(),
        result.get("batch_fill_ratio").unwrap().as_f64().unwrap()
    );
    let prometheus = result.get("prometheus").unwrap().as_str().unwrap();
    for line in prometheus
        .lines()
        .filter(|l| l.starts_with("acso_serve_requests_total"))
    {
        println!("  {line}");
    }

    // 5. Shut down and collect the serve loop's request count.
    call(&client, r#"{"id":5,"method":"shutdown"}"#);
    let served = daemon.join().expect("daemon thread");
    println!("\ndaemon exited after serving {served} requests");
}
