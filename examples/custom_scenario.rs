//! Build a custom scenario three ways — generative [`TopologyParams`], a
//! TOML file, and a procedural seed — then run one defended episode on each.
//!
//! Run with:
//!
//! ```text
//! cargo run --release --example custom_scenario
//! ```

use acso_core::baselines::PlaybookPolicy;
use acso_core::rollout;
use acso_core::scenario::ScenarioRegistry;
use ics_net::{DeviceFactors, ServerMix, TopologyParams};
use ics_sim::apt::AptProfile;
use ics_sim::{Scenario, SimConfig};

fn run_one_episode(scenario: &Scenario) {
    let sim = scenario.config.clone().with_max_time(500);
    let metrics = rollout::run_episode(&mut PlaybookPolicy::new(), &sim, scenario.config.seed, 0);
    println!("{}: {}", scenario.name, scenario.description);
    println!(
        "  tags [{}] -> return {:.1}, {} PLCs offline, avg {:.2} nodes compromised",
        scenario.tags.join(", "),
        metrics.discounted_return,
        metrics.final_plcs_offline,
        metrics.average_nodes_compromised(),
    );
}

fn main() {
    // 1. A hand-built scenario: a micro-segmented plant (two ops VLANs per
    //    level), a hardened firewall, and the stealth attacker archetype.
    let params = TopologyParams {
        levels: 2,
        vlans_per_level: [2, 2],
        nodes_per_vlan: [3, 8],
        servers: ServerMix::full(),
        plcs: 40,
        device_factors: DeviceFactors {
            firewall: 8.0,
            ..DeviceFactors::paper()
        },
        host_budget: ics_net::MAX_HOSTS_PER_SEGMENT,
    };
    let spec = params.into_spec().expect("parameters validate");
    let custom = Scenario::new(
        "hardened-segmented",
        "segmented plant, 8x firewall alert factor, stealth attacker",
        SimConfig {
            topology: spec,
            ..SimConfig::small()
        }
        .with_apt(AptProfile::stealth()),
    )
    .with_tags(["custom", "hard"]);
    run_one_episode(&custom);

    // 2. The same scenario through its TOML round-trip — the format users
    //    put in files next to the repository.
    let toml = custom.to_toml();
    println!("\n--- TOML serialization (excerpt) ---");
    for line in toml.lines().take(12) {
        println!("  {line}");
    }
    println!("  ...");
    let reloaded = Scenario::from_toml(&toml).expect("round-trip parses");
    assert_eq!(reloaded, custom);
    println!("TOML round-trip: identical ✓\n");

    // 3. A procedurally generated scenario: everything (topology shape,
    //    attacker archetype, IDS tier, horizon) derives from the seed via
    //    Mersenne-prime hash streams, so `seed-2718` is the same workload on
    //    every machine.
    run_one_episode(&Scenario::from_seed(2718));

    // Registered scenarios can then be swept alongside the built-in catalog:
    let mut registry = ScenarioRegistry::builtin();
    registry.register(custom).expect("unique name");
    registry.register_seeded(2718).expect("unique seed name");
    println!(
        "\nRegistry now holds {} scenarios: {}",
        registry.len(),
        registry.names().join(", ")
    );
    println!("Run them all: cargo run --release -p acso-bench --bin scenario_sweep -- --smoke");
}
