//! Quickstart: simulate an APT campaign against a small ICS network while the
//! playbook defender responds, and print the paper's four evaluation metrics.
//!
//! Run with:
//!
//! ```text
//! cargo run --release --example quickstart
//! ```

use acso_core::baselines::PlaybookPolicy;
use acso_core::policy::DefenderPolicy;
use ics_sim::{IcsEnvironment, SimConfig};
use rand::rngs::StdRng;
use rand::SeedableRng;

fn main() {
    // The §4.2 tuning network (10 workstations, 3 servers, 3 HMIs, 30 PLCs),
    // shortened to 2 000 simulated hours so the example runs in seconds.
    let config = SimConfig::small().with_max_time(2_000).with_seed(42);
    let mut env = IcsEnvironment::new(config);
    println!(
        "Simulating {} nodes / {} PLCs for {} hours against the APT1 attacker...",
        env.topology().node_count(),
        env.topology().plc_count(),
        env.max_time()
    );

    let mut policy = PlaybookPolicy::new();
    policy.reset(env.topology());
    let mut rng = StdRng::seed_from_u64(7);

    let metrics = env.run_episode(|obs, env| policy.decide(obs, env.topology(), &mut rng));

    println!();
    println!("Defender: {}", policy.name());
    println!(
        "  discounted return:        {:.1}",
        metrics.discounted_return
    );
    println!("  final PLCs offline:       {}", metrics.final_plcs_offline);
    println!(
        "  average IT cost per hour: {:.3}",
        metrics.average_it_cost()
    );
    println!(
        "  average nodes compromised: {:.2}",
        metrics.average_nodes_compromised()
    );
    println!();
    println!("Attack configuration this episode: {:?}", env.apt_params());
    println!("Try `cargo run --release --example train_acso` to train the learned defender.");
}
