//! Vendored offline stand-in for the [`rand`](https://crates.io/crates/rand)
//! crate, implementing exactly the subset of the 0.8 API that this workspace
//! uses: [`rngs::StdRng`], [`SeedableRng::seed_from_u64`], the [`Rng`]
//! extension methods `gen_range`/`gen_bool`, and [`seq::SliceRandom::choose`].
//!
//! The build environment has no access to crates.io, so the workspace vendors
//! a minimal implementation instead. `StdRng` here is xoshiro256++ seeded via
//! SplitMix64 — deterministic for a given seed (which the simulator's replay
//! tests rely on) but **not** the same stream as upstream `rand`, and not
//! cryptographically secure. If the real crate ever becomes available, this
//! directory can be deleted and `[workspace.dependencies]` pointed at the
//! registry without touching any call site.

/// A source of random 64-bit words. Mirror of `rand_core::RngCore`, reduced
/// to the one method everything else in this stub derives from.
pub trait RngCore {
    /// Returns the next 64 random bits.
    fn next_u64(&mut self) -> u64;

    /// Returns the next 32 random bits (upper half of [`RngCore::next_u64`]).
    fn next_u32(&mut self) -> u32 {
        (self.next_u64() >> 32) as u32
    }
}

impl<R: RngCore + ?Sized> RngCore for &mut R {
    fn next_u64(&mut self) -> u64 {
        (**self).next_u64()
    }
}

/// Extension methods for random value generation, mirroring `rand::Rng`.
pub trait Rng: RngCore {
    /// Samples a value uniformly from `range`. Panics if the range is empty.
    fn gen_range<T, R>(&mut self, range: R) -> T
    where
        R: distributions::uniform::SampleRange<T>,
    {
        range.sample_single(self)
    }

    /// Returns `true` with probability `p`. Panics unless `0.0 <= p <= 1.0`.
    fn gen_bool(&mut self, p: f64) -> bool {
        assert!((0.0..=1.0).contains(&p), "gen_bool: p out of range: {p}");
        unit_f64(self.next_u64()) < p
    }
}

impl<R: RngCore + ?Sized> Rng for R {}

/// Construction of RNGs from seeds, mirroring the part of `rand::SeedableRng`
/// this workspace uses.
pub trait SeedableRng: Sized {
    /// Creates an RNG deterministically from a `u64` seed.
    fn seed_from_u64(seed: u64) -> Self;
}

/// Maps 64 random bits to a float uniform in `[0, 1)` using the top 53 bits.
fn unit_f64(bits: u64) -> f64 {
    (bits >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
}

/// Maps 64 random bits to a float uniform in `[0, 1)` using the top 24 bits.
fn unit_f32(bits: u64) -> f32 {
    (bits >> 40) as f32 * (1.0 / (1u64 << 24) as f32)
}

/// Concrete RNG types.
pub mod rngs {
    use super::{RngCore, SeedableRng};

    /// The workspace's standard deterministic RNG: xoshiro256++.
    ///
    /// Upstream `rand`'s `StdRng` is a ChaCha block cipher; this stand-in
    /// trades that for a tiny, fast, dependency-free generator with the same
    /// determinism guarantee (same seed ⇒ same stream on every platform).
    #[derive(Clone, Debug, PartialEq, Eq)]
    pub struct StdRng {
        s: [u64; 4],
    }

    impl StdRng {
        /// The raw xoshiro256++ state. For this generator the state *is* the
        /// stream position: feeding the words back through
        /// [`StdRng::from_state`] yields an RNG that continues the exact same
        /// stream (checkpoint/restore relies on this).
        pub fn state(&self) -> [u64; 4] {
            self.s
        }

        /// Rebuilds an RNG from words previously returned by
        /// [`StdRng::state`]. The restored RNG produces the identical
        /// continuation of the saved stream.
        pub fn from_state(s: [u64; 4]) -> Self {
            StdRng { s }
        }
    }

    impl SeedableRng for StdRng {
        fn seed_from_u64(seed: u64) -> Self {
            // SplitMix64 expansion, the standard way to seed xoshiro state.
            let mut x = seed;
            let mut next = move || {
                x = x.wrapping_add(0x9E37_79B9_7F4A_7C15);
                let mut z = x;
                z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
                z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
                z ^ (z >> 31)
            };
            StdRng {
                s: [next(), next(), next(), next()],
            }
        }
    }

    impl RngCore for StdRng {
        fn next_u64(&mut self) -> u64 {
            let result = self.s[0]
                .wrapping_add(self.s[3])
                .rotate_left(23)
                .wrapping_add(self.s[0]);
            let t = self.s[1] << 17;
            self.s[2] ^= self.s[0];
            self.s[3] ^= self.s[1];
            self.s[1] ^= self.s[2];
            self.s[0] ^= self.s[3];
            self.s[2] ^= t;
            self.s[3] = self.s[3].rotate_left(45);
            result
        }
    }
}

/// Uniform sampling over ranges, mirroring `rand::distributions::uniform`.
pub mod distributions {
    /// Uniform range sampling.
    pub mod uniform {
        use crate::{unit_f32, unit_f64, RngCore};
        use std::ops::{Range, RangeInclusive};

        /// A range that can produce uniform samples of `T`, mirroring
        /// `rand::distributions::uniform::SampleRange`.
        pub trait SampleRange<T> {
            /// Draws one uniform sample from the range.
            fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> T;
        }

        /// Unbiased integer sampling in `[0, span)` via Lemire-style
        /// rejection on the widening multiply.
        fn index(rng: &mut (impl RngCore + ?Sized), span: u64) -> u64 {
            debug_assert!(span > 0);
            // `span >= 1` guarantees `zone >= 1`, so the loop terminates.
            let zone = u64::MAX - u64::MAX.wrapping_rem(span);
            loop {
                let v = rng.next_u64();
                if v < zone {
                    return v % span;
                }
            }
        }

        macro_rules! int_range {
            ($($t:ty),*) => {$(
                impl SampleRange<$t> for Range<$t> {
                    fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                        assert!(self.start < self.end, "gen_range: empty range");
                        let span = (self.end as i128 - self.start as i128) as u64;
                        self.start.wrapping_add(index(rng, span) as $t)
                    }
                }
                impl SampleRange<$t> for RangeInclusive<$t> {
                    fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                        let (lo, hi) = (*self.start(), *self.end());
                        assert!(lo <= hi, "gen_range: empty range");
                        let span = (hi as i128 - lo as i128 + 1) as u64;
                        if span == 0 {
                            // Full-width range: every value is valid.
                            return rng.next_u64() as $t;
                        }
                        lo.wrapping_add(index(rng, span) as $t)
                    }
                }
            )*};
        }

        int_range!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

        macro_rules! float_range {
            ($($t:ty => $unit:ident),*) => {$(
                impl SampleRange<$t> for Range<$t> {
                    fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                        assert!(self.start < self.end, "gen_range: empty range");
                        let u = $unit(rng.next_u64());
                        self.start + (self.end - self.start) * u
                    }
                }
                impl SampleRange<$t> for RangeInclusive<$t> {
                    fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                        let (lo, hi) = (*self.start(), *self.end());
                        assert!(lo <= hi, "gen_range: empty range");
                        let u = $unit(rng.next_u64());
                        lo + (hi - lo) * u
                    }
                }
            )*};
        }

        float_range!(f32 => unit_f32, f64 => unit_f64);
    }
}

/// Sequence-related helpers, mirroring `rand::seq`.
pub mod seq {
    use crate::{Rng, RngCore};

    /// Extension trait for slices, mirroring `rand::seq::SliceRandom`.
    pub trait SliceRandom {
        /// The element type of the slice.
        type Item;

        /// Returns one uniformly chosen element, or `None` if empty.
        fn choose<R: RngCore + ?Sized>(&self, rng: &mut R) -> Option<&Self::Item>;

        /// Shuffles the slice in place (Fisher–Yates).
        fn shuffle<R: RngCore + ?Sized>(&mut self, rng: &mut R);
    }

    impl<T> SliceRandom for [T] {
        type Item = T;

        fn choose<R: RngCore + ?Sized>(&self, rng: &mut R) -> Option<&T> {
            if self.is_empty() {
                None
            } else {
                self.get(rng.gen_range(0..self.len()))
            }
        }

        fn shuffle<R: RngCore + ?Sized>(&mut self, rng: &mut R) {
            for i in (1..self.len()).rev() {
                self.swap(i, rng.gen_range(0..=i));
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::rngs::StdRng;
    use super::seq::SliceRandom;
    use super::{Rng, SeedableRng};

    #[test]
    fn same_seed_same_stream() {
        let mut a = StdRng::seed_from_u64(42);
        let mut b = StdRng::seed_from_u64(42);
        for _ in 0..100 {
            assert_eq!(a.gen_range(0u64..1_000_000), b.gen_range(0u64..1_000_000));
        }
        let mut c = StdRng::seed_from_u64(43);
        assert_ne!(
            (0..8).map(|_| a.gen_range(0u32..1000)).collect::<Vec<_>>(),
            (0..8).map(|_| c.gen_range(0u32..1000)).collect::<Vec<_>>()
        );
    }

    #[test]
    fn state_round_trip_continues_the_stream() {
        let mut rng = StdRng::seed_from_u64(1234);
        // Advance past the seed expansion so the saved position is mid-stream.
        for _ in 0..57 {
            rng.gen_range(0u64..u64::MAX);
        }
        let saved = rng.state();
        let tail: Vec<u64> = (0..64).map(|_| rng.gen_range(0u64..u64::MAX)).collect();
        let mut restored = StdRng::from_state(saved);
        let replay: Vec<u64> = (0..64)
            .map(|_| restored.gen_range(0u64..u64::MAX))
            .collect();
        assert_eq!(tail, replay, "restored RNG must continue, not restart");
        assert_eq!(restored, rng, "states must coincide after identical draws");
    }

    #[test]
    fn gen_range_respects_bounds() {
        let mut rng = StdRng::seed_from_u64(7);
        for _ in 0..10_000 {
            let v = rng.gen_range(3usize..17);
            assert!((3..17).contains(&v));
            let f = rng.gen_range(-2.0f32..=2.0);
            assert!((-2.0..=2.0).contains(&f));
            let i = rng.gen_range(-5i64..5);
            assert!((-5..5).contains(&i));
        }
    }

    #[test]
    fn gen_bool_matches_probability_roughly() {
        let mut rng = StdRng::seed_from_u64(11);
        let hits = (0..20_000).filter(|_| rng.gen_bool(0.25)).count();
        let frac = hits as f64 / 20_000.0;
        assert!((frac - 0.25).abs() < 0.02, "gen_bool(0.25) gave {frac}");
        assert!(!rng.gen_bool(0.0));
        assert!(rng.gen_bool(1.0));
    }

    #[test]
    fn choose_only_returns_members_and_covers_all() {
        let mut rng = StdRng::seed_from_u64(3);
        let items = [10, 20, 30];
        let mut seen = [false; 3];
        for _ in 0..200 {
            let v = *items.choose(&mut rng).unwrap();
            seen[items.iter().position(|x| *x == v).unwrap()] = true;
        }
        assert_eq!(seen, [true; 3]);
        let empty: [u8; 0] = [];
        assert!(empty.choose(&mut rng).is_none());
    }
}
