//! Vendored facade standing in for [`serde`](https://serde.rs) in an
//! offline build environment.
//!
//! It re-exports the no-op `Serialize`/`Deserialize` derives from the
//! sibling `serde_derive` stub so that `use serde::{Deserialize, Serialize}`
//! and `#[derive(Serialize, Deserialize)]` compile unchanged across the
//! workspace. No serialisation framework is provided because nothing in the
//! workspace serialises yet; see `vendor/README.md` for the swap-out path.

pub use serde_derive::{Deserialize, Serialize};
