//! Vendored offline stand-in for [`criterion`](https://bheisler.github.io/criterion.rs/),
//! implementing the subset this workspace's benches use: `criterion_group!` /
//! `criterion_main!`, [`Criterion::benchmark_group`], `sample_size`,
//! `bench_function`, `bench_with_input` with [`BenchmarkId`], and
//! [`Bencher::iter`].
//!
//! Instead of criterion's statistical machinery (outlier rejection, HTML
//! reports, regression detection), this harness does one warm-up pass, times
//! `sample_size` samples with `std::time::Instant`, and prints min / mean /
//! max per benchmark. That keeps `cargo bench` honest for coarse paper-scale
//! comparisons while building with zero external dependencies. Call sites
//! are source-compatible with the real crate.

use std::fmt::Display;
use std::hint::black_box as std_black_box;
use std::time::{Duration, Instant};

/// Opaque value barrier; re-export of [`std::hint::black_box`].
pub fn black_box<T>(x: T) -> T {
    std_black_box(x)
}

/// Identifies one benchmark within a group: a function name plus an optional
/// parameter label; mirror of `criterion::BenchmarkId`.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct BenchmarkId {
    id: String,
}

impl BenchmarkId {
    /// An id for `function_name` benchmarked at `parameter`.
    pub fn new<P: Display>(function_name: &str, parameter: P) -> Self {
        BenchmarkId {
            id: format!("{function_name}/{parameter}"),
        }
    }
}

impl From<&str> for BenchmarkId {
    fn from(name: &str) -> Self {
        BenchmarkId {
            id: name.to_string(),
        }
    }
}

/// Times closures; mirror of `criterion::Bencher`.
pub struct Bencher {
    samples: Vec<Duration>,
    sample_size: usize,
}

impl Bencher {
    /// Runs `routine` once as warm-up, then `sample_size` timed times.
    pub fn iter<O, R: FnMut() -> O>(&mut self, mut routine: R) {
        black_box(routine());
        self.samples.clear();
        for _ in 0..self.sample_size {
            let start = Instant::now();
            black_box(routine());
            self.samples.push(start.elapsed());
        }
    }
}

/// A named collection of related benchmarks; mirror of
/// `criterion::BenchmarkGroup`.
pub struct BenchmarkGroup<'a> {
    criterion: &'a mut Criterion,
    name: String,
    sample_size: usize,
}

impl BenchmarkGroup<'_> {
    /// Sets how many timed samples each benchmark collects.
    pub fn sample_size(&mut self, n: usize) -> &mut Self {
        assert!(n > 0, "sample_size must be positive");
        self.sample_size = n;
        self
    }

    /// Benchmarks `routine` under `id`.
    pub fn bench_function<F>(&mut self, id: impl Into<BenchmarkId>, mut routine: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        let id = id.into();
        let mut bencher = Bencher {
            samples: Vec::new(),
            sample_size: self.sample_size,
        };
        routine(&mut bencher);
        self.report(&id, &bencher.samples);
        self
    }

    /// Benchmarks `routine` under `id`, passing it `input`.
    pub fn bench_with_input<I: ?Sized, F>(
        &mut self,
        id: impl Into<BenchmarkId>,
        input: &I,
        mut routine: F,
    ) -> &mut Self
    where
        F: FnMut(&mut Bencher, &I),
    {
        self.bench_function(id, |b| routine(b, input))
    }

    /// Ends the group. (The stand-in reports eagerly, so this only marks the
    /// group's boundary in the output.)
    pub fn finish(self) {
        println!();
    }

    fn report(&mut self, id: &BenchmarkId, samples: &[Duration]) {
        self.criterion.benchmarks_run += 1;
        let full = format!("{}/{}", self.name, id.id);
        if samples.is_empty() {
            println!("{full:60} (no samples: Bencher::iter never called)");
            return;
        }
        let min = samples.iter().min().copied().unwrap_or_default();
        let max = samples.iter().max().copied().unwrap_or_default();
        let mean = samples.iter().sum::<Duration>() / samples.len() as u32;
        println!(
            "{full:60} min {:>12} mean {:>12} max {:>12} ({} samples)",
            fmt_duration(min),
            fmt_duration(mean),
            fmt_duration(max),
            samples.len(),
        );
    }
}

fn fmt_duration(d: Duration) -> String {
    let nanos = d.as_nanos();
    if nanos >= 1_000_000_000 {
        format!("{:.3} s", d.as_secs_f64())
    } else if nanos >= 1_000_000 {
        format!("{:.3} ms", nanos as f64 / 1e6)
    } else if nanos >= 1_000 {
        format!("{:.3} µs", nanos as f64 / 1e3)
    } else {
        format!("{nanos} ns")
    }
}

/// Benchmark driver; mirror of `criterion::Criterion`.
#[derive(Default)]
pub struct Criterion {
    benchmarks_run: usize,
}

impl Criterion {
    /// Opens a named group of benchmarks with the default sample size (10).
    pub fn benchmark_group(&mut self, name: &str) -> BenchmarkGroup<'_> {
        println!("== {name} ==");
        BenchmarkGroup {
            name: name.to_string(),
            sample_size: 10,
            criterion: self,
        }
    }

    /// Benchmarks `routine` outside any group.
    pub fn bench_function<F>(&mut self, id: &str, routine: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        self.benchmark_group(id).bench_function(id, routine);
        self
    }
}

/// Declares a group-runner function from benchmark functions; mirror of
/// `criterion::criterion_group!`.
#[macro_export]
macro_rules! criterion_group {
    ($group_name:ident, $($target:path),+ $(,)?) => {
        fn $group_name() {
            let mut criterion = $crate::Criterion::default();
            $(
                $target(&mut criterion);
            )+
        }
    };
}

/// Declares `main` from group-runner functions; mirror of
/// `criterion::criterion_main!`.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            // `cargo bench -- --test` style filters are not supported; the
            // stand-in always runs every registered benchmark.
            $(
                $group();
            )+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn groups_run_every_benchmark_and_collect_samples() {
        let mut c = Criterion::default();
        let mut group = c.benchmark_group("stub");
        group.sample_size(3);
        let mut runs = 0usize;
        group.bench_function("counting", |b| {
            b.iter(|| {
                runs += 1;
            });
        });
        group.bench_with_input(BenchmarkId::new("with_input", 7), &7u32, |b, input| {
            b.iter(|| *input * 2);
        });
        group.finish();
        // One warm-up plus three samples for the counting benchmark.
        assert_eq!(runs, 4);
        assert_eq!(c.benchmarks_run, 2);
    }

    #[test]
    fn duration_formatting_picks_sensible_units() {
        assert_eq!(fmt_duration(Duration::from_nanos(12)), "12 ns");
        assert_eq!(fmt_duration(Duration::from_micros(12)), "12.000 µs");
        assert_eq!(fmt_duration(Duration::from_millis(12)), "12.000 ms");
        assert_eq!(fmt_duration(Duration::from_secs(2)), "2.000 s");
    }
}
