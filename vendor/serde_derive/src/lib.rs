//! Vendored no-op stand-ins for serde's `Serialize`/`Deserialize` derives.
//!
//! The workspace annotates its config and state types with
//! `#[derive(Serialize, Deserialize)]` so they are ready for on-disk
//! persistence and network transport, but no code path serialises anything
//! yet and the build environment cannot fetch the real `serde`. These derives
//! therefore expand to nothing: the attribute stays valid at every call site,
//! and swapping in the real crates later requires no source changes.

use proc_macro::TokenStream;

/// No-op stand-in for `serde_derive::Serialize`.
#[proc_macro_derive(Serialize)]
pub fn derive_serialize(_input: TokenStream) -> TokenStream {
    TokenStream::new()
}

/// No-op stand-in for `serde_derive::Deserialize`.
#[proc_macro_derive(Deserialize)]
pub fn derive_deserialize(_input: TokenStream) -> TokenStream {
    TokenStream::new()
}
