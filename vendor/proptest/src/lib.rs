//! Vendored offline stand-in for [`proptest`](https://proptest-rs.github.io/),
//! implementing the subset this workspace's property tests use: the
//! [`proptest!`] macro with `#![proptest_config(...)]`, numeric range
//! strategies, `prop::collection::vec`, [`Strategy::prop_map`](strategy::Strategy::prop_map), and the
//! `prop_assert!` / `prop_assert_eq!` macros.
//!
//! Differences from the real crate, by design of a minimal stand-in:
//!
//! - **No shrinking.** A `prop_assert!`-style failure reports its case number
//!   and the deterministic per-test seed; re-running reproduces it exactly.
//!   (A plain `panic!`/`assert!` inside a test body unwinds directly, as in
//!   any `#[test]`, without the case/seed preamble.)
//! - **Fixed derivation of randomness.** Each generated test derives its RNG
//!   seed from the test name, so runs are stable across processes and there
//!   is no `PROPTEST_` environment handling.
//!
//! Call sites are source-compatible with the real crate, so this directory
//! can be deleted once a registry is reachable.

#[doc(hidden)]
pub use rand as __rand;

/// Test-case execution: configuration and failure plumbing.
pub mod test_runner {
    use std::fmt;

    /// Runner configuration; mirror of `proptest::test_runner::Config`.
    #[derive(Clone, Debug)]
    pub struct Config {
        /// Number of random cases each property test runs.
        pub cases: u32,
    }

    impl Config {
        /// A configuration running `cases` random cases per test.
        pub fn with_cases(cases: u32) -> Self {
            Config { cases }
        }
    }

    impl Default for Config {
        fn default() -> Self {
            Config { cases: 64 }
        }
    }

    /// A property-test failure, carrying the failed assertion's message.
    #[derive(Clone, Debug)]
    pub struct TestCaseError {
        message: String,
    }

    impl TestCaseError {
        /// Creates a failure with the given message.
        pub fn fail<S: Into<String>>(message: S) -> Self {
            TestCaseError {
                message: message.into(),
            }
        }
    }

    impl fmt::Display for TestCaseError {
        fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
            f.write_str(&self.message)
        }
    }

    /// Derives a stable per-test RNG seed from the test's fully qualified
    /// name (FNV-1a), so every test draws an independent, reproducible
    /// stream without any global state.
    pub fn seed_for(test_name: &str) -> u64 {
        let mut hash = 0xcbf2_9ce4_8422_2325u64;
        for byte in test_name.bytes() {
            hash ^= u64::from(byte);
            hash = hash.wrapping_mul(0x0000_0100_0000_01B3);
        }
        hash
    }
}

/// Value-generation strategies.
pub mod strategy {
    use rand::rngs::StdRng;
    use rand::Rng;
    use std::ops::Range;

    /// A recipe for generating random values of one type; mirror of
    /// `proptest::strategy::Strategy` minus shrinking.
    pub trait Strategy {
        /// The type of value this strategy generates.
        type Value;

        /// Generates one value from the strategy.
        fn new_value(&self, rng: &mut StdRng) -> Self::Value;

        /// Returns a strategy generating `fun(v)` for `v` drawn from `self`.
        fn prop_map<U, F>(self, fun: F) -> Map<Self, F>
        where
            Self: Sized,
            F: Fn(Self::Value) -> U,
        {
            Map { source: self, fun }
        }
    }

    /// Strategy returned by [`Strategy::prop_map`].
    #[derive(Clone, Debug)]
    pub struct Map<S, F> {
        source: S,
        fun: F,
    }

    impl<S, F, U> Strategy for Map<S, F>
    where
        S: Strategy,
        F: Fn(S::Value) -> U,
    {
        type Value = U;

        fn new_value(&self, rng: &mut StdRng) -> U {
            (self.fun)(self.source.new_value(rng))
        }
    }

    /// Strategy generating a fixed value every time; mirror of `Just`.
    #[derive(Clone, Debug)]
    pub struct Just<T: Clone>(pub T);

    impl<T: Clone> Strategy for Just<T> {
        type Value = T;

        fn new_value(&self, _rng: &mut StdRng) -> T {
            self.0.clone()
        }
    }

    macro_rules! range_strategy {
        ($($t:ty),*) => {$(
            impl Strategy for Range<$t> {
                type Value = $t;

                fn new_value(&self, rng: &mut StdRng) -> $t {
                    rng.gen_range(self.clone())
                }
            }
        )*};
    }

    range_strategy!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize, f32, f64);
}

/// Collection strategies (`prop::collection::vec`).
pub mod collection {
    use crate::strategy::Strategy;
    use rand::rngs::StdRng;
    use rand::Rng;
    use std::ops::Range;

    /// The number of elements a collection strategy may generate; mirror of
    /// `proptest::collection::SizeRange`.
    #[derive(Clone, Debug)]
    pub struct SizeRange {
        lo: usize,
        hi_exclusive: usize,
    }

    impl From<usize> for SizeRange {
        fn from(exact: usize) -> Self {
            SizeRange {
                lo: exact,
                hi_exclusive: exact + 1,
            }
        }
    }

    impl From<Range<usize>> for SizeRange {
        fn from(range: Range<usize>) -> Self {
            SizeRange {
                lo: range.start,
                hi_exclusive: range.end,
            }
        }
    }

    /// Strategy for `Vec<S::Value>` with a length drawn from a [`SizeRange`].
    #[derive(Clone, Debug)]
    pub struct VecStrategy<S> {
        element: S,
        size: SizeRange,
    }

    /// Generates vectors whose elements come from `element` and whose length
    /// is drawn uniformly from `size`.
    pub fn vec<S: Strategy>(element: S, size: impl Into<SizeRange>) -> VecStrategy<S> {
        VecStrategy {
            element,
            size: size.into(),
        }
    }

    impl<S: Strategy> Strategy for VecStrategy<S> {
        type Value = Vec<S::Value>;

        fn new_value(&self, rng: &mut StdRng) -> Vec<S::Value> {
            let len = if self.size.lo + 1 >= self.size.hi_exclusive {
                self.size.lo
            } else {
                rng.gen_range(self.size.lo..self.size.hi_exclusive)
            };
            (0..len).map(|_| self.element.new_value(rng)).collect()
        }
    }
}

/// The glob-importable surface, mirroring `proptest::prelude`.
pub mod prelude {
    pub use crate::strategy::{Just, Strategy};
    pub use crate::test_runner::Config as ProptestConfig;
    pub use crate::test_runner::TestCaseError;
    pub use crate::{prop_assert, prop_assert_eq, proptest};

    /// Namespace mirror of `proptest::prelude::prop`.
    pub mod prop {
        pub use crate::collection;
    }
}

/// Defines property tests; mirror of `proptest::proptest!`.
///
/// Each `fn name(arg in strategy, ...) { body }` item becomes a regular
/// `#[test]` that draws `config.cases` tuples of arguments from the
/// strategies and runs the body on each; `prop_assert!`-style macros abort
/// the case with a message instead of panicking mid-generation.
#[macro_export]
macro_rules! proptest {
    (
        #![proptest_config($config:expr)]
        $($rest:tt)*
    ) => {
        $crate::proptest!(@impl ($config) $($rest)*);
    };
    (
        $(#[$attr:meta])*
        fn $name:ident $args:tt $body:block
        $($rest:tt)*
    ) => {
        $crate::proptest!(@impl ($crate::test_runner::Config::default())
            $(#[$attr])* fn $name $args $body $($rest)*);
    };
    (@impl ($config:expr)
        $(
            $(#[$attr:meta])*
            fn $name:ident ( $($arg:ident in $strategy:expr),+ $(,)? ) $body:block
        )*
    ) => {
        $(
            #[test]
            fn $name() {
                let config: $crate::test_runner::Config = $config;
                let seed =
                    $crate::test_runner::seed_for(concat!(module_path!(), "::", stringify!($name)));
                let mut rng =
                    <$crate::__rand::rngs::StdRng as $crate::__rand::SeedableRng>::seed_from_u64(
                        seed,
                    );
                for case in 0..config.cases {
                    $(
                        let $arg = $crate::strategy::Strategy::new_value(&($strategy), &mut rng);
                    )+
                    let result: ::core::result::Result<(), $crate::test_runner::TestCaseError> =
                        (|| {
                            $body
                            ::core::result::Result::Ok(())
                        })();
                    if let ::core::result::Result::Err(err) = result {
                        panic!(
                            "proptest {} failed at case {}/{} (rng seed {:#x}): {}",
                            stringify!($name),
                            case + 1,
                            config.cases,
                            seed,
                            err
                        );
                    }
                }
            }
        )*
    };
}

/// Fails the current property-test case if the condition is false; mirror of
/// `proptest::prop_assert!`.
#[macro_export]
macro_rules! prop_assert {
    ($cond:expr $(,)?) => {
        if !($cond) {
            return ::core::result::Result::Err($crate::test_runner::TestCaseError::fail(
                format!("assertion failed: {}", stringify!($cond)),
            ));
        }
    };
    ($cond:expr, $($fmt:tt)+) => {
        if !($cond) {
            return ::core::result::Result::Err($crate::test_runner::TestCaseError::fail(
                format!($($fmt)+),
            ));
        }
    };
}

/// Fails the current property-test case if the two values differ; mirror of
/// `proptest::prop_assert_eq!`.
#[macro_export]
macro_rules! prop_assert_eq {
    ($left:expr, $right:expr $(,)?) => {{
        let left = $left;
        let right = $right;
        if !(left == right) {
            return ::core::result::Result::Err($crate::test_runner::TestCaseError::fail(format!(
                "assertion failed: `{} == {}`",
                stringify!($left),
                stringify!($right)
            )));
        }
    }};
}
