//! Training-determinism pin for the batch-first DQN update.
//!
//! The golden fixture (`tests/golden/train_smoke.txt`) was captured **before**
//! the batched-training refactor, while `AcsoAgent::maybe_train` still
//! backpropagated one replay sample at a time. Training the same smoke
//! scenario must keep producing **bit-identical** agent weights and greedy
//! evaluation transcripts — that is the contract that makes the batched
//! update a pure performance change rather than a silent behaviour change.
//!
//! Re-bless (only for an intentional change to the training semantics) with:
//!
//! ```sh
//! UPDATE_GOLDEN=1 cargo test --release --test train_determinism
//! ```

use acso_core::agent::io::save_weights_to;
#[cfg(not(debug_assertions))]
use acso_core::agent::UpdateMode;
use acso_core::train::{train_attention_acso, TrainConfig, TrainedAcso};
use acso_core::DefenderPolicy;
use ics_sim::IcsEnvironment;
use rand::rngs::StdRng;
use rand::SeedableRng;
use std::path::PathBuf;

const GOLDEN_PATH: &str = "tests/golden/train_smoke.txt";
/// Seed of the pinned smoke run (environment, network init and exploration).
const SEED: u64 = 11;
const EPISODES: usize = 2;
/// Fixed seed of the greedy post-training evaluation episode.
const EVAL_SEED: u64 = 71;

fn train_smoke() -> TrainedAcso {
    train_attention_acso(&TrainConfig::smoke(EPISODES).with_seed(SEED))
}

/// Same run, but through the per-sample reference update (the
/// implementation the fixture was captured from). Release-only, like the
/// test that uses it.
#[cfg(not(debug_assertions))]
fn train_smoke_serial() -> TrainedAcso {
    use acso_core::agent::{AcsoAgent, AttentionQNet};
    use acso_core::train::train_agent;
    use acso_core::ActionSpace;
    use dbn::learn::{learn_model, LearnConfig};

    let config = TrainConfig::smoke(EPISODES).with_seed(SEED);
    let dbn_model = learn_model(&LearnConfig {
        episodes: config.dbn_episodes,
        seed: config.seed,
        sim: config.sim.clone(),
    });
    let env = IcsEnvironment::new(config.sim.clone().with_seed(config.seed));
    let network = AttentionQNet::new(ActionSpace::new(env.topology()), config.seed);
    let mut agent = AcsoAgent::new(
        env.topology(),
        dbn_model.clone(),
        network,
        config.agent.clone(),
    );
    agent.set_update_mode(UpdateMode::Serial);
    let report = train_agent(&mut agent, &config.sim, config.episodes, config.seed);
    TrainedAcso {
        agent,
        dbn_model,
        report,
    }
}

/// FNV-1a 64-bit digest — dependency-free and stable across platforms for a
/// byte-exact input, which is all a bit-identity pin needs.
fn fnv1a64(bytes: &[u8]) -> u64 {
    let mut hash = 0xcbf2_9ce4_8422_2325u64;
    for &b in bytes {
        hash ^= u64::from(b);
        hash = hash.wrapping_mul(0x0000_0100_0000_01b3);
    }
    hash
}

/// Renders the trained agent as a golden-comparable document: a digest of
/// every serialized weight byte, the full-precision training history, and a
/// greedy evaluation transcript on a fixed-seed episode.
fn fingerprint(trained: &mut TrainedAcso) -> String {
    let mut weight_bytes = Vec::new();
    save_weights_to(trained.agent.network_mut(), &mut weight_bytes).expect("serialize weights");

    let mut out = String::new();
    out.push_str("schema: acso-train-golden/v1\n");
    out.push_str(&format!(
        "weights_fnv1a64: {:016x}\n",
        fnv1a64(&weight_bytes)
    ));
    out.push_str(&format!("weights_len: {}\n", weight_bytes.len()));
    out.push_str(&format!("env_steps: {}\n", trained.report.env_steps));
    out.push_str(&format!("updates: {}\n", trained.report.updates));
    // `{:?}` on f64 prints the shortest round-trip representation, so any
    // single-ulp drift in the training arithmetic changes this line.
    out.push_str(&format!(
        "episode_returns: {:?}\n",
        trained.report.episode_returns
    ));

    // Greedy evaluation transcript: decisions consume no randomness, so this
    // pins the post-training policy itself.
    let sim = TrainConfig::smoke(EPISODES).sim.with_seed(EVAL_SEED);
    let mut env = IcsEnvironment::new(sim);
    let topology = env.topology().clone();
    let mut rng = StdRng::seed_from_u64(EVAL_SEED);
    let mut obs = env.reset();
    trained.agent.reset(&topology);
    out.push_str("transcript:\n");
    for t in 0..120 {
        let actions = trained.agent.decide(&obs, &topology, &mut rng);
        let step = env.step(&actions);
        out.push_str(&format!(
            "  t={t} actions={actions:?} reward={:?} done={}\n",
            step.reward, step.done
        ));
        obs = step.observation;
        if step.done {
            break;
        }
    }
    out
}

fn golden_path() -> PathBuf {
    PathBuf::from(env!("CARGO_MANIFEST_DIR")).join(GOLDEN_PATH)
}

#[test]
fn training_matches_pre_refactor_golden_fixture() {
    let mut trained = train_smoke();
    let actual = fingerprint(&mut trained);
    let path = golden_path();
    if std::env::var("UPDATE_GOLDEN").is_ok() {
        std::fs::create_dir_all(path.parent().unwrap()).unwrap();
        std::fs::write(&path, &actual).unwrap();
        eprintln!("blessed {}", path.display());
        return;
    }
    let expected = std::fs::read_to_string(&path).unwrap_or_else(|e| {
        panic!(
            "missing golden fixture {} ({e}); run UPDATE_GOLDEN=1 to bless",
            path.display()
        )
    });
    assert_eq!(
        actual, expected,
        "training diverged from the pre-refactor serial-update fixture"
    );
}

/// The serial reference loop (`ACSO_TRAIN_BATCH=0`) must also still match
/// the fixture: the arena-backed replay changed the storage layout, not the
/// sampled experience, and the batched path is pinned against *it*.
/// Release-only: a second full smoke training is too slow for the debug
/// tier-1 run, and the batch-determinism CI job runs this in release.
#[cfg(not(debug_assertions))]
#[test]
fn serial_reference_update_matches_the_same_fixture() {
    if std::env::var("UPDATE_GOLDEN").is_ok() {
        return; // the batched test owns blessing
    }
    let mut trained = train_smoke_serial();
    let actual = fingerprint(&mut trained);
    let expected = std::fs::read_to_string(golden_path()).expect("golden fixture present");
    assert_eq!(
        actual, expected,
        "serial reference update diverged from the pre-refactor fixture"
    );
}

/// Replay-memory smoke assertion: the feature arena must hold at most half
/// the bytes of the pre-refactor layout (two owned feature sets per replay
/// transition), with a small additive slack for the window/terminal states
/// each episode shares.
#[test]
fn arena_replay_memory_is_at_most_half_the_pre_refactor_layout() {
    let config = TrainConfig::smoke(1).with_seed(SEED);
    let trained = train_attention_acso(&config);

    // Per-feature footprint measured from a real encoding of this scenario.
    let mut env = IcsEnvironment::new(config.sim.clone().with_seed(SEED));
    let obs = env.reset();
    let encoder = acso_core::features::NodeFeatureEncoder::new(env.topology());
    let filter = dbn::DbnFilter::new(trained.dbn_model.clone(), env.topology().node_count());
    let features = encoder.encode(&obs, &filter);
    let feature_bytes = (features.nodes.len() + features.plcs.len() + features.plc_summary.len())
        * std::mem::size_of::<f32>()
        + (features.host_rows.len() + features.server_rows.len()) * std::mem::size_of::<usize>();

    let buffered = trained.agent.replay_buffered();
    let live = trained.agent.replay_arena_live();
    assert!(buffered > 100, "smoke run should fill replay ({buffered})");

    let arena_bytes = live * feature_bytes;
    let pre_refactor_bytes = buffered * 2 * feature_bytes;
    // Slack: one extra shared state per episode boundary plus the in-flight
    // decision point.
    let slack_bytes = 4 * feature_bytes;
    assert!(
        arena_bytes <= pre_refactor_bytes / 2 + slack_bytes,
        "arena holds {live} live feature sets ({arena_bytes} B) for {buffered} transitions; \
         pre-refactor layout would be {pre_refactor_bytes} B"
    );
}
