//! Property-based tests of the simulator's invariants under arbitrary
//! defender behaviour, plus cross-crate properties of the action space and
//! the DBN filter.

use acso_core::ActionSpace;
use dbn::learn::{learn_model, LearnConfig};
use dbn::DbnFilter;
use ics_net::{NodeId, Topology, TopologySpec};
use ics_sim::{IcsEnvironment, SimConfig};
use proptest::prelude::*;

/// Strategy: an arbitrary sequence of flat action indices for the tiny
/// topology's action space.
fn action_sequence(space_len: usize) -> impl Strategy<Value = Vec<usize>> {
    prop::collection::vec(0..space_len, 1..60)
}

fn tiny_space() -> (SimConfig, ActionSpace) {
    let sim = SimConfig::tiny().with_max_time(80);
    let topo = Topology::build(&sim.topology).unwrap();
    let space = ActionSpace::new(&topo);
    (sim, space)
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    /// Whatever the defender does, the simulator's counters stay within their
    /// physical bounds and rewards stay finite.
    #[test]
    fn environment_invariants_hold_under_arbitrary_defender_actions(
        seed in 0u64..500,
        actions in action_sequence(tiny_space().1.len()),
    ) {
        let (sim, space) = tiny_space();
        let mut env = IcsEnvironment::new(sim.with_seed(seed));
        let _ = env.reset();
        let node_count = env.topology().node_count();
        let plc_count = env.topology().plc_count();

        for idx in actions {
            let action = space.decode(idx);
            let step = env.step(&[action]);
            prop_assert!(step.reward.is_finite());
            prop_assert!(step.shaping_reward.is_finite());
            prop_assert!(step.it_cost >= 0.0);
            prop_assert!(step.info.nodes_compromised <= node_count);
            prop_assert!(step.info.plcs_offline <= plc_count);
            prop_assert_eq!(step.observation.nodes.len(), node_count);
            prop_assert_eq!(step.observation.plc_status.len(), plc_count);
            // Alert counts in the observation only refer to real nodes.
            for alert in &step.observation.alerts {
                if let ics_sim::AlertSource::Node(node) = alert.source {
                    prop_assert!(node.index() < node_count);
                }
            }
        }
    }

    /// The flat action space is a bijection between indices and actions.
    #[test]
    fn action_space_round_trips(nodes in 1usize..40, plcs in 0usize..60) {
        let space = ActionSpace::from_counts(nodes, plcs);
        for index in 0..space.len() {
            let action = space.decode(index);
            prop_assert_eq!(space.encode(&action), index);
        }
    }

    /// Episode metrics are identical when the same seed and action sequence
    /// are replayed: the simulator is fully deterministic given its RNG seed.
    #[test]
    fn episodes_replay_deterministically(seed in 0u64..200) {
        let (sim, space) = tiny_space();
        let run = |seed: u64| {
            let mut env = IcsEnvironment::new(sim.clone().with_seed(seed));
            let _ = env.reset();
            let mut trace = Vec::new();
            for i in 0..40usize {
                let step = env.step(&[space.decode(i % space.len())]);
                trace.push((
                    step.info.nodes_compromised,
                    step.info.plcs_offline,
                    (step.reward * 1e9).round() as i64,
                ));
            }
            trace
        };
        prop_assert_eq!(run(seed), run(seed));
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(8))]

    /// DBN beliefs remain valid probability distributions no matter what the
    /// observation stream looks like.
    #[test]
    fn dbn_beliefs_stay_normalised(seed in 0u64..100) {
        let sim = SimConfig::tiny().with_max_time(60);
        let model = learn_model(&LearnConfig { episodes: 1, seed: 3, sim: sim.clone() });
        let mut env = IcsEnvironment::new(sim.with_seed(seed));
        let _ = env.reset();
        let mut filter = DbnFilter::new(model, env.topology().node_count());
        for _ in 0..60 {
            let step = env.step(&[ics_sim::DefenderAction::NoAction]);
            filter.update(&step.observation);
            for i in 0..filter.node_count() {
                let belief = filter.belief(NodeId::from_index(i));
                let sum: f64 = belief.iter().sum();
                prop_assert!((sum - 1.0).abs() < 1e-6, "belief not normalised: {sum}");
                prop_assert!(belief.iter().all(|p| *p >= 0.0 && *p <= 1.0 + 1e-9));
            }
            if step.done {
                break;
            }
        }
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(6))]

    /// The tentpole equivalence, over arbitrary topology shapes from tiny up
    /// to ~1200 hosts — beyond the 1003-host registry scenario, across
    /// multi-segment layouts where segment 0 spills into overflow /24
    /// subnets: the sparse activity-indexed world model — dirty-set
    /// observation assembly, active-node feature encoding — is bit-identical
    /// to the dense rebuild-everything reference. Observations, rewards and
    /// encoded features must match exactly at every step while the defender
    /// churns quarantine and investigation actions across the fleet.
    #[test]
    fn sparse_and_dense_world_models_are_bit_identical(
        l2_workstations in 1usize..901,
        l1_hmis in 1usize..251,
        plcs in 1usize..121,
        l2_segments in 1usize..9,
        l1_segments in 1usize..9,
        seed in 0u64..100,
    ) {
        use acso_core::features::{EncodeScratch, NodeFeatureEncoder, StateFeatures};
        use ics_sim::orchestrator::{InvestigationKind, MitigationKind};
        use ics_sim::DefenderAction;

        let spec = TopologySpec {
            l2_workstations,
            l1_hmis,
            plcs,
            l2_segments,
            l1_segments,
            host_budget: 1_200,
            ..TopologySpec::paper_full()
        };
        prop_assert!(spec.validate().is_ok(), "generated spec must validate");
        let sim = SimConfig {
            topology: spec,
            ..SimConfig::small()
        }
        .with_max_time(40);
        let model = learn_model(&LearnConfig {
            episodes: 1,
            seed: 1,
            sim: sim.clone().with_max_time(10),
        });

        let mut sparse_env = IcsEnvironment::new(sim.clone().with_seed(seed));
        let mut dense_env = IcsEnvironment::new(sim.with_seed(seed));
        dense_env.set_dense_observation_reference(true);
        let nodes = sparse_env.topology().node_count();
        let mut sparse_filter = DbnFilter::new(model.clone(), nodes);
        let mut dense_filter = DbnFilter::new(model, nodes);
        let sparse_encoder = NodeFeatureEncoder::new(sparse_env.topology());
        let dense_encoder = NodeFeatureEncoder::new(dense_env.topology());
        let mut scratch = EncodeScratch::new();
        let mut sparse_features = StateFeatures::empty();

        let first_sparse = sparse_env.reset();
        let first_dense = dense_env.reset();
        prop_assert_eq!(&first_sparse, &first_dense);
        sparse_filter.reset();
        dense_filter.reset();

        for t in 0..40u64 {
            // Deterministic action churn touching nodes all over the fleet:
            // quarantines (VLAN moves), their eventual lifts, and scans.
            let mut actions = vec![DefenderAction::NoAction];
            if t % 5 == 0 {
                actions.push(DefenderAction::Mitigate {
                    kind: MitigationKind::Quarantine,
                    node: NodeId::from_index((t as usize * 7) % nodes),
                });
            }
            if t % 3 == 0 {
                actions.push(DefenderAction::Investigate {
                    kind: InvestigationKind::SimpleScan,
                    node: NodeId::from_index((t as usize * 11) % nodes),
                });
            }
            let sparse_step = sparse_env.step(&actions);
            let dense_step = dense_env.step(&actions);
            prop_assert_eq!(&sparse_step.observation, &dense_step.observation);
            prop_assert_eq!(sparse_step.reward.to_bits(), dense_step.reward.to_bits());
            prop_assert_eq!(sparse_step.it_cost.to_bits(), dense_step.it_cost.to_bits());

            sparse_filter.update(&sparse_step.observation);
            dense_filter.update(&dense_step.observation);
            sparse_encoder.encode_active_into(
                &sparse_step.observation,
                &sparse_filter,
                &mut scratch,
                &mut sparse_features,
            );
            let dense_features = dense_encoder.encode(&dense_step.observation, &dense_filter);
            prop_assert_eq!(&sparse_features, &dense_features);
            if sparse_step.done {
                break;
            }
        }
    }
}

#[test]
fn topology_paths_always_include_both_endpoints_switches() {
    // Structural sanity across every pair of VLANs in the full topology.
    let topo = Topology::build(&TopologySpec::paper_full()).unwrap();
    for a in topo.vlans() {
        for b in topo.vlans() {
            let path = topo.devices_between_vlans(a, b);
            assert!(!path.is_empty());
            let factor = topo.device_factor_between_vlans(a, b);
            assert!(factor >= 1.0);
            if a == b {
                assert_eq!(path.len(), 1);
            } else {
                assert!(path.len() >= 3);
            }
        }
    }
}
