//! Property-based tests of the simulator's invariants under arbitrary
//! defender behaviour, plus cross-crate properties of the action space and
//! the DBN filter.

use acso_core::ActionSpace;
use dbn::learn::{learn_model, LearnConfig};
use dbn::DbnFilter;
use ics_net::{NodeId, Topology, TopologySpec};
use ics_sim::{IcsEnvironment, SimConfig};
use proptest::prelude::*;

/// Strategy: an arbitrary sequence of flat action indices for the tiny
/// topology's action space.
fn action_sequence(space_len: usize) -> impl Strategy<Value = Vec<usize>> {
    prop::collection::vec(0..space_len, 1..60)
}

fn tiny_space() -> (SimConfig, ActionSpace) {
    let sim = SimConfig::tiny().with_max_time(80);
    let topo = Topology::build(&sim.topology).unwrap();
    let space = ActionSpace::new(&topo);
    (sim, space)
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    /// Whatever the defender does, the simulator's counters stay within their
    /// physical bounds and rewards stay finite.
    #[test]
    fn environment_invariants_hold_under_arbitrary_defender_actions(
        seed in 0u64..500,
        actions in action_sequence(tiny_space().1.len()),
    ) {
        let (sim, space) = tiny_space();
        let mut env = IcsEnvironment::new(sim.with_seed(seed));
        let _ = env.reset();
        let node_count = env.topology().node_count();
        let plc_count = env.topology().plc_count();

        for idx in actions {
            let action = space.decode(idx);
            let step = env.step(&[action]);
            prop_assert!(step.reward.is_finite());
            prop_assert!(step.shaping_reward.is_finite());
            prop_assert!(step.it_cost >= 0.0);
            prop_assert!(step.info.nodes_compromised <= node_count);
            prop_assert!(step.info.plcs_offline <= plc_count);
            prop_assert_eq!(step.observation.nodes.len(), node_count);
            prop_assert_eq!(step.observation.plc_status.len(), plc_count);
            // Alert counts in the observation only refer to real nodes.
            for alert in &step.observation.alerts {
                if let ics_sim::AlertSource::Node(node) = alert.source {
                    prop_assert!(node.index() < node_count);
                }
            }
        }
    }

    /// The flat action space is a bijection between indices and actions.
    #[test]
    fn action_space_round_trips(nodes in 1usize..40, plcs in 0usize..60) {
        let space = ActionSpace::from_counts(nodes, plcs);
        for index in 0..space.len() {
            let action = space.decode(index);
            prop_assert_eq!(space.encode(&action), index);
        }
    }

    /// Episode metrics are identical when the same seed and action sequence
    /// are replayed: the simulator is fully deterministic given its RNG seed.
    #[test]
    fn episodes_replay_deterministically(seed in 0u64..200) {
        let (sim, space) = tiny_space();
        let run = |seed: u64| {
            let mut env = IcsEnvironment::new(sim.clone().with_seed(seed));
            let _ = env.reset();
            let mut trace = Vec::new();
            for i in 0..40usize {
                let step = env.step(&[space.decode(i % space.len())]);
                trace.push((
                    step.info.nodes_compromised,
                    step.info.plcs_offline,
                    (step.reward * 1e9).round() as i64,
                ));
            }
            trace
        };
        prop_assert_eq!(run(seed), run(seed));
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(8))]

    /// DBN beliefs remain valid probability distributions no matter what the
    /// observation stream looks like.
    #[test]
    fn dbn_beliefs_stay_normalised(seed in 0u64..100) {
        let sim = SimConfig::tiny().with_max_time(60);
        let model = learn_model(&LearnConfig { episodes: 1, seed: 3, sim: sim.clone() });
        let mut env = IcsEnvironment::new(sim.with_seed(seed));
        let _ = env.reset();
        let mut filter = DbnFilter::new(model, env.topology().node_count());
        for _ in 0..60 {
            let step = env.step(&[ics_sim::DefenderAction::NoAction]);
            filter.update(&step.observation);
            for i in 0..filter.node_count() {
                let belief = filter.belief(NodeId::from_index(i));
                let sum: f64 = belief.iter().sum();
                prop_assert!((sum - 1.0).abs() < 1e-6, "belief not normalised: {sum}");
                prop_assert!(belief.iter().all(|p| *p >= 0.0 && *p <= 1.0 + 1e-9));
            }
            if step.done {
                break;
            }
        }
    }
}

#[test]
fn topology_paths_always_include_both_endpoints_switches() {
    // Structural sanity across every pair of VLANs in the full topology.
    let topo = Topology::build(&TopologySpec::paper_full()).unwrap();
    for a in topo.vlans() {
        for b in topo.vlans() {
            let path = topo.devices_between_vlans(a, b);
            assert!(!path.is_empty());
            let factor = topo.device_factor_between_vlans(a, b);
            assert!(factor >= 1.0);
            if a == b {
                assert_eq!(path.len(), 1);
            } else {
                assert!(path.len() >= 3);
            }
        }
    }
}
