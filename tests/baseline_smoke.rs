//! CI smoke test: a short tiny-topology episode under each baseline policy.
//!
//! This is deliberately small (48 simulated hours, one seed per policy) so it
//! finishes in seconds while still exercising the full sim → DBN filter →
//! policy → environment loop end-to-end: the expert baseline carries a DBN
//! filter updated from real observations, and all three policies submit their
//! actions back into the simulator every step.

use acso_core::baselines::{DbnExpertPolicy, PlaybookPolicy, SemiRandomPolicy};
use acso_core::policy::DefenderPolicy;
use dbn::learn::{learn_model, LearnConfig};
use ics_sim::{IcsEnvironment, SimConfig};
use rand::rngs::StdRng;
use rand::SeedableRng;

const EPISODE_HOURS: u64 = 48;

fn run_episode(policy: &mut dyn DefenderPolicy) -> (usize, f64) {
    let sim = SimConfig::tiny().with_max_time(EPISODE_HOURS).with_seed(99);
    let mut env = IcsEnvironment::new(sim);
    let mut obs = env.reset();
    policy.reset(env.topology());
    let mut rng = StdRng::seed_from_u64(7);

    let mut steps = 0usize;
    let mut total_reward = 0.0f64;
    loop {
        let actions = policy.decide(&obs, env.topology(), &mut rng);
        assert!(
            !actions.is_empty(),
            "{}: policies must always submit at least one action (NoAction counts)",
            policy.name()
        );
        let step = env.step(&actions);
        assert!(
            step.reward.is_finite(),
            "{}: non-finite reward at step {steps}",
            policy.name()
        );
        steps += 1;
        total_reward += step.reward;
        obs = step.observation;
        if step.done {
            break;
        }
        assert!(
            steps <= EPISODE_HOURS as usize + 1,
            "{}: episode failed to terminate by max_time",
            policy.name()
        );
    }
    (steps, total_reward)
}

#[test]
fn all_baselines_complete_a_48_step_tiny_episode() {
    let model = learn_model(&LearnConfig {
        episodes: 1,
        seed: 5,
        sim: SimConfig::tiny().with_max_time(EPISODE_HOURS),
    });

    let mut random = SemiRandomPolicy::new();
    let mut playbook = PlaybookPolicy::new();
    let mut expert = DbnExpertPolicy::new(model);
    let policies: [&mut dyn DefenderPolicy; 3] = [&mut random, &mut playbook, &mut expert];

    for policy in policies {
        let (steps, total_reward) = run_episode(policy);
        assert!(
            steps >= EPISODE_HOURS as usize / 2,
            "{}: episode ended suspiciously early after {steps} steps",
            policy.name()
        );
        assert!(
            total_reward.is_finite(),
            "{}: total reward must be finite",
            policy.name()
        );
    }
}
