//! The parallel rollout engine's core guarantee: fanning episodes over
//! worker threads produces **bit-identical** per-episode transcripts
//! (metrics) to running them serially, for stateless baselines, stateful
//! filter-carrying baselines, and the trained neural agent alike.

use acso_core::baselines::{DbnExpertPolicy, PlaybookPolicy, SemiRandomPolicy};
use acso_core::rollout::{rollout, rollout_serial, RolloutPlan};
use acso_core::train::{train_attention_acso, TrainConfig};
use dbn::learn::{learn_model, LearnConfig};
use ics_sim::SimConfig;

fn sixteen_episode_plan(threads: usize) -> RolloutPlan {
    RolloutPlan {
        sim: SimConfig::tiny().with_max_time(100),
        episodes: 16,
        seed: 33,
        threads,
    }
}

#[test]
fn parallel_rollout_matches_serial_for_baseline_policies() {
    let model = learn_model(&LearnConfig {
        episodes: 2,
        seed: 9,
        sim: SimConfig::tiny().with_max_time(100),
    });

    // Playbook: stateful course-of-action tracking across steps.
    let serial = rollout_serial(&mut PlaybookPolicy::new(), &sixteen_episode_plan(1));
    let parallel = rollout(&sixteen_episode_plan(4), || Box::new(PlaybookPolicy::new()));
    assert_eq!(serial, parallel, "playbook transcripts diverged");

    // DBN expert: carries a belief filter that must reset per episode.
    let serial = rollout_serial(
        &mut DbnExpertPolicy::new(model.clone()),
        &sixteen_episode_plan(1),
    );
    let parallel = rollout(&sixteen_episode_plan(3), {
        let model = model.clone();
        move || Box::new(DbnExpertPolicy::new(model.clone()))
    });
    assert_eq!(serial, parallel, "DBN expert transcripts diverged");

    // Semi-random: consumes the per-episode policy RNG stream heavily.
    let serial = rollout_serial(&mut SemiRandomPolicy::new(), &sixteen_episode_plan(1));
    let parallel = rollout(&sixteen_episode_plan(5), {
        || Box::new(SemiRandomPolicy::new())
    });
    assert_eq!(serial, parallel, "semi-random transcripts diverged");
}

#[test]
fn parallel_rollout_matches_serial_for_the_trained_agent() {
    // A short smoke training, then greedy evaluation: the cloned-per-worker
    // agents must decide exactly like one serially-reused agent.
    let trained = train_attention_acso(&TrainConfig::smoke(1).with_seed(8));
    let mut agent = trained.agent;
    agent.set_explore(false);

    let plan = |threads| RolloutPlan {
        sim: SimConfig::tiny().with_max_time(80),
        episodes: 8,
        seed: 5,
        threads,
    };
    let serial = rollout_serial(&mut agent, &plan(1));
    let parallel = rollout(&plan(4), || Box::new(agent.clone()));
    assert_eq!(serial, parallel, "trained-agent transcripts diverged");

    // The experiment pipeline hands workers `eval_clone()` copies (no replay
    // history); they must decide exactly like the fully-cloned agent.
    let eval_parallel = rollout(&plan(4), || Box::new(agent.eval_clone()));
    assert_eq!(serial, eval_parallel, "eval_clone transcripts diverged");
}

#[test]
fn dbn_learning_is_thread_count_independent() {
    // learn_model fans episode collection over ACSO_THREADS workers; the
    // merged model must not depend on that fan-out. Exercise it by learning
    // the same model twice (the pool size may differ between runs on a busy
    // machine only via the env var, so this also guards plain determinism).
    let config = LearnConfig {
        episodes: 6,
        seed: 13,
        sim: SimConfig::tiny().with_max_time(120),
    };
    let a = learn_model(&config);
    let b = learn_model(&config);
    assert_eq!(
        a.transition.total_observations(),
        b.transition.total_observations()
    );
    assert_eq!(a, b);
}
