//! Determinism contract of the scenario subsystem.
//!
//! A scenario identifier is the *complete* description of a workload: the
//! same `u64` must reproduce the same topology, the same attacker
//! parameters, and — through the rollout engine — bit-identical episode
//! transcripts, at any worker-thread count. (The companion
//! `scenario_golden.rs` pins the paper presets against pre-refactor golden
//! fixtures.)

use acso_core::baselines::PlaybookPolicy;
use acso_core::rollout::{self, rollout, rollout_serial, RolloutPlan};
use acso_core::scenario::ScenarioRegistry;
use ics_net::Topology;
use ics_sim::Scenario;

#[test]
fn from_seed_reproduces_topology_and_apt_params_exactly() {
    for seed in [0u64, 7, 0xDEAD_BEEF, u64::MAX] {
        let a = Scenario::from_seed(seed);
        let b = Scenario::from_seed(seed);
        assert_eq!(a, b, "seed {seed}");
        // The built topologies are structurally identical, not just the
        // specs.
        let ta = Topology::build(&a.config.topology).unwrap();
        let tb = Topology::build(&b.config.topology).unwrap();
        assert_eq!(ta.node_count(), tb.node_count());
        for (na, nb) in ta.nodes().zip(tb.nodes()) {
            assert_eq!(na, nb);
            assert_eq!(ta.ip_of(na.id), tb.ip_of(nb.id));
        }
        for (pa, pb) in ta.plc_ids().zip(tb.plc_ids()) {
            assert_eq!(ta.plc_ip(pa), tb.plc_ip(pb));
        }
        assert_eq!(a.config.apt, b.config.apt);
        assert_eq!(a.config.ids, b.config.ids);
    }
}

#[test]
fn from_seed_reproduces_episode_transcripts_exactly() {
    let seed = 41u64;
    let run = || {
        let scenario = Scenario::from_seed(seed);
        let sim = scenario.config.clone().with_max_time(120);
        let mut policy = PlaybookPolicy::new();
        (0..3)
            .map(|episode| rollout::run_episode(&mut policy, &sim, scenario.config.seed, episode))
            .collect::<Vec<_>>()
    };
    assert_eq!(run(), run());
}

#[test]
fn generated_scenarios_are_thread_count_independent() {
    let scenario = Scenario::from_seed(13);
    let sim = scenario.config.clone().with_max_time(100);
    let serial_plan = RolloutPlan::new(sim.clone(), 6, scenario.config.seed).with_threads(1);
    let parallel_plan = RolloutPlan::new(sim, 6, scenario.config.seed).with_threads(4);
    let serial = rollout_serial(&mut PlaybookPolicy::new(), &serial_plan);
    let parallel = rollout(&parallel_plan, || Box::new(PlaybookPolicy::new()));
    assert_eq!(serial, parallel);
}

#[test]
fn toml_round_trip_preserves_transcripts() {
    let scenario = Scenario::from_seed(23);
    let round_tripped = Scenario::from_toml(&scenario.to_toml()).unwrap();
    assert_eq!(round_tripped, scenario);
    let run = |s: &Scenario| {
        let sim = s.config.clone().with_max_time(80);
        rollout::run_episode(&mut PlaybookPolicy::new(), &sim, s.config.seed, 0)
    };
    assert_eq!(run(&scenario), run(&round_tripped));
}

#[test]
fn registry_scenarios_replay_deterministically() {
    // Every built-in scenario (including the multi-segment and insider
    // variants) produces identical metrics when replayed.
    let registry = ScenarioRegistry::builtin();
    for scenario in &registry {
        let sim = scenario.config.clone().with_max_time(60);
        let run = || rollout::run_episode(&mut PlaybookPolicy::new(), &sim, 5, 0);
        assert_eq!(run(), run(), "{}", scenario.name);
    }
}
