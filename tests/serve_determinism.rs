//! The daemon's evaluations are bit-identical to the offline experiment
//! path: a policy loaded and evaluated over the wire reproduces, number for
//! number, what `scenario_sweep` / `evaluate_factory_detailed` compute for
//! the same scenario, seeds and episode counts.
//!
//! The comparison goes through the JSON wire format on purpose: responses
//! render `f64`s with shortest-round-trip formatting, so parsing a reported
//! metric back must recover the exact bits the offline run produced.

use acso::core::eval::{evaluate_factory_detailed, PolicyEvaluation};
use acso::core::experiments::{scenario_sweep, ScenarioSweepScale};
use acso::core::scenario::ScenarioRegistry;
use acso::core::{baselines::PlaybookPolicy, EvalConfig};
use acso::serve::json::JsonValue;
use acso::serve::service::{EvalService, ServiceConfig};
use acso::sim::metrics::EpisodeMetrics;
use acso::sim::SimConfig;

fn parse_result(line: &str) -> JsonValue {
    let value = JsonValue::parse(line).unwrap();
    assert_eq!(
        value.get("ok").and_then(JsonValue::as_bool),
        Some(true),
        "{line}"
    );
    value.get("result").unwrap().clone()
}

/// Asserts a served `evaluate` result matches an offline [`PolicyEvaluation`]
/// exactly — aggregate means/std-errs and every per-episode transcript.
fn assert_matches_offline(result: &JsonValue, offline: &PolicyEvaluation) {
    assert_eq!(
        result.get("policy").and_then(JsonValue::as_str),
        Some(offline.policy.as_str())
    );
    let summary = result.get("summary").unwrap();
    let mean_of = |field: &str| {
        let m = summary.get(field).unwrap();
        (
            m.get("mean").unwrap().as_f64().unwrap(),
            m.get("std_err").unwrap().as_f64().unwrap(),
        )
    };
    let s = &offline.summary;
    assert_eq!(
        mean_of("discounted_return"),
        (s.discounted_return.mean, s.discounted_return.std_err)
    );
    assert_eq!(
        mean_of("final_plcs_offline"),
        (s.final_plcs_offline.mean, s.final_plcs_offline.std_err)
    );
    assert_eq!(
        mean_of("average_it_cost"),
        (s.average_it_cost.mean, s.average_it_cost.std_err)
    );
    assert_eq!(
        mean_of("average_nodes_compromised"),
        (
            s.average_nodes_compromised.mean,
            s.average_nodes_compromised.std_err
        )
    );

    let transcripts = result.get("transcripts").unwrap().as_arr().unwrap();
    assert_eq!(transcripts.len(), offline.episodes.len());
    for (t, e) in transcripts.iter().zip(&offline.episodes) {
        let f = |k: &str| t.get(k).unwrap().as_f64().unwrap();
        let expected: &EpisodeMetrics = e;
        assert_eq!(f("discounted_return"), expected.discounted_return);
        assert_eq!(f("undiscounted_return"), expected.undiscounted_return);
        assert_eq!(
            t.get("final_plcs_offline").unwrap().as_u64(),
            Some(expected.final_plcs_offline as u64)
        );
        assert_eq!(
            t.get("max_plcs_offline").unwrap().as_u64(),
            Some(expected.max_plcs_offline() as u64)
        );
        assert_eq!(t.get("steps").unwrap().as_u64(), Some(expected.steps));
        assert_eq!(f("average_it_cost"), expected.average_it_cost());
        assert_eq!(
            f("average_nodes_compromised"),
            expected.average_nodes_compromised()
        );
    }
}

/// The full offline reference: run the registry sweep on the tiny scenario
/// at smoke scale, then reproduce all four policy rows through the daemon —
/// ACSO trained in-daemon with the same knobs, the three baselines loaded
/// warm — and require every number to match bit-for-bit over the wire.
#[test]
fn served_evaluations_match_the_offline_scenario_sweep() {
    let mut registry = ScenarioRegistry::builtin();
    registry.retain_named(&["tiny".to_string()]);
    let scale = ScenarioSweepScale::smoke();
    let sweep = scenario_sweep(&registry, &scale);
    let row = &sweep.rows[0];
    assert_eq!(row.scenario, "tiny");
    assert_eq!(row.evaluations.len(), 4);

    let mut service = EvalService::new(ServiceConfig::fixed());
    // Load each policy with the sweep's training knobs (smoke scale:
    // train_episodes 1, dbn_episodes 2, seed 0, max_time 150).
    let loads = [
        ("acso", r#""train_episodes":1,"dbn_episodes":2"#),
        ("dbn_expert", r#""dbn_episodes":2"#),
        ("playbook", r#""dbn_episodes":2"#),
        ("semi_random", r#""dbn_episodes":2"#),
    ];
    let mut handles = Vec::new();
    for (i, (kind, extra)) in loads.iter().enumerate() {
        let line = format!(
            r#"{{"id":{i},"method":"load_policy","params":{{"policy":"{kind}","scenario":"tiny","max_time":150,"seed":0,{extra}}}}}"#
        );
        let result = parse_result(&service.handle_line(&line));
        handles.push(result.get("handle").unwrap().as_str().unwrap().to_string());
    }

    for (handle, offline) in handles.iter().zip(&row.evaluations) {
        let line = format!(
            r#"{{"id":9,"method":"evaluate","params":{{"handle":"{handle}","scenario":"tiny","episodes":2,"seed":0,"max_time":150,"transcripts":true}}}}"#
        );
        let result = parse_result(&service.handle_line(&line));
        assert_matches_offline(&result, offline);
    }
}

/// The ~1000-host `registry-1000` scenario served end to end: a warm
/// playbook policy evaluated over the wire at a bounded horizon must match
/// the offline evaluator bit for bit, pinning the sparse world model (and
/// its multi-/24 topology) behind the daemon's `evaluate` path.
#[test]
fn served_evaluation_covers_the_1000_host_scenario() {
    let registry = ScenarioRegistry::builtin();
    let xl = registry
        .get("registry-1000")
        .expect("registry-1000 is built in");

    let mut service = EvalService::new(ServiceConfig::fixed());
    parse_result(&service.handle_line(
        r#"{"id":0,"method":"load_policy","params":{"policy":"playbook","scenario":"registry-1000","max_time":30}}"#,
    ));
    let result = parse_result(&service.handle_line(
        r#"{"id":1,"method":"evaluate","params":{"handle":"playbook@1","scenario":"registry-1000","episodes":1,"seed":3,"max_time":30,"transcripts":true}}"#,
    ));

    let offline = evaluate_factory_detailed(
        || Box::new(PlaybookPolicy::new()),
        &EvalConfig {
            sim: xl.config.clone().with_max_time(30),
            episodes: 1,
            seed: 3,
        },
    );
    assert_matches_offline(&result, &offline);
}

/// Coalescing four pipelined requests into one lockstep batch does not
/// change any of their results relative to the offline evaluator.
#[test]
fn coalesced_served_evaluations_still_match_the_offline_evaluator() {
    let mut service = EvalService::new(ServiceConfig::fixed());
    parse_result(
        &service.handle_line(r#"{"id":0,"method":"load_policy","params":{"policy":"playbook"}}"#),
    );
    let seeds = [5u64, 6, 7, 8];
    let lines: Vec<String> = seeds
        .iter()
        .enumerate()
        .map(|(i, seed)| {
            format!(
                r#"{{"id":{i},"method":"evaluate","params":{{"handle":"playbook@1","scenario":"tiny","episodes":2,"seed":{seed},"max_time":150,"transcripts":true}}}}"#
            )
        })
        .collect();
    let outcome = service.handle_batch(&lines);

    for (line, seed) in outcome.responses.iter().zip(seeds) {
        let result = parse_result(line);
        assert_eq!(
            result
                .get("batch")
                .unwrap()
                .get("coalesced_requests")
                .and_then(JsonValue::as_u64),
            Some(4)
        );
        let offline = evaluate_factory_detailed(
            || Box::new(PlaybookPolicy::new()),
            &EvalConfig {
                sim: SimConfig::tiny().with_max_time(150),
                episodes: 2,
                seed,
            },
        );
        assert_matches_offline(&result, &offline);
    }
    // Four coalesced 2-episode requests fill the 8-lane engine completely.
    assert_eq!(service.metrics().last_batch_fill_ratio, 1.0);
}
