//! The batched engine's core guarantee, pinned across the whole scenario
//! registry: for **every built-in scenario** and **all four policy
//! families** (trained neural agent, DBN expert, playbook, semi-random),
//! the step-synchronized [`SyncBatchEngine`] produces per-episode
//! transcripts bit-identical to the serial engine, for any lane count and
//! any worker-thread count.
//!
//! Thread and lane counts are passed explicitly (no environment variables),
//! so the matrix here composes with whatever `ACSO_THREADS`/`ACSO_BATCH`
//! the surrounding CI job sets; the `batch-determinism` CI step additionally
//! exercises the env-var routing end to end through the `table2` binary.

use acso_core::baselines::{DbnExpertPolicy, PlaybookPolicy, SemiRandomPolicy};
use acso_core::rollout::{rollout_serial, RolloutPlan, SyncBatchEngine};
use acso_core::train::{train_attention_acso, TrainConfig};
use acso_core::{DefenderPolicy, ScenarioRegistry};
use ics_sim::metrics::EpisodeMetrics;
use ics_sim::SimConfig;

const EPISODES: usize = 4;
const MAX_TIME: u64 = 50;

/// (lanes, threads) pairs exercised for every scenario × policy cell:
/// single-lane batches (the engine itself must be transcript-neutral) and
/// multi-lane batches wider than the episode count (one lockstep batch
/// covering everything), across serial and parallel workers. Ragged-tail
/// lane splits are covered by the engine's own unit tests.
const ENGINE_MATRIX: &[(usize, usize)] = &[(1, 1), (16, 4)];

fn plan(sim: &SimConfig, threads: usize) -> RolloutPlan {
    RolloutPlan {
        sim: sim.clone().with_max_time(MAX_TIME),
        episodes: EPISODES,
        seed: 29,
        threads,
    }
}

/// Asserts serial-vs-batched equality for one policy factory on one
/// scenario's simulator.
fn assert_engine_matrix<F>(scenario: &str, policy: &str, sim: &SimConfig, make: F)
where
    F: Fn() -> Box<dyn DefenderPolicy> + Sync,
{
    let mut serial_policy = make();
    let serial: Vec<EpisodeMetrics> = rollout_serial(serial_policy.as_mut(), &plan(sim, 1));
    for &(lanes, threads) in ENGINE_MATRIX {
        let batched = SyncBatchEngine::new(lanes).rollout(&plan(sim, threads), &make);
        assert_eq!(
            serial, batched,
            "{scenario}/{policy}: lanes={lanes} threads={threads} diverged from serial"
        );
    }
}

#[test]
fn batched_transcripts_match_serial_for_every_scenario_and_policy() {
    let mut registry = ScenarioRegistry::builtin();
    // The engine matrix trains a per-scenario agent; extra-large scenarios
    // (tag "xl", ~1000 hosts) are covered by their own bounded tests.
    registry.retain_standard();
    assert!(
        registry.len() >= 11,
        "registry shrank to {} scenarios",
        registry.len()
    );
    for scenario in &registry {
        let sim = scenario.config.clone().with_max_time(MAX_TIME);

        // Train this scenario's own agent and DBN filter (smoke scale): the
        // agent's action space and beliefs must match the scenario topology.
        let trained = train_attention_acso(&TrainConfig {
            sim: sim.clone(),
            agent: acso_core::agent::AgentConfig::smoke(),
            episodes: 1,
            dbn_episodes: 2,
            dbn_threads: None,
            seed: 0,
        });
        let mut agent = trained.agent;
        agent.set_explore(false);
        let model = trained.dbn_model;

        assert_engine_matrix(&scenario.name, "ACSO", &sim, || {
            Box::new(agent.eval_clone()) as Box<dyn DefenderPolicy>
        });
        assert_engine_matrix(&scenario.name, "DBN Expert", &sim, {
            let model = model.clone();
            move || Box::new(DbnExpertPolicy::new(model.clone())) as Box<dyn DefenderPolicy>
        });
        assert_engine_matrix(&scenario.name, "Playbook", &sim, || {
            Box::new(PlaybookPolicy::new()) as Box<dyn DefenderPolicy>
        });
        assert_engine_matrix(&scenario.name, "Semi Random", &sim, || {
            Box::new(SemiRandomPolicy::new()) as Box<dyn DefenderPolicy>
        });
    }
}

#[test]
fn env_routed_evaluation_matches_the_explicit_engines() {
    // The `ACSO_BATCH` routing in the evaluation pipeline must select an
    // engine, never change results: compare the two engines' outputs through
    // the public evaluation entry point's building blocks.
    let sim = SimConfig::tiny().with_max_time(80);
    let serial = rollout_serial(&mut PlaybookPolicy::new(), &plan(&sim, 1));
    let engine = SyncBatchEngine::from_env().unwrap_or(SyncBatchEngine::new(8));
    let batched = engine.rollout(&plan(&sim, 4), &|| {
        Box::new(PlaybookPolicy::new()) as Box<dyn DefenderPolicy>
    });
    assert_eq!(serial, batched);
}
