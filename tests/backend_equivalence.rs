//! Cross-backend equivalence at the network level.
//!
//! The neural crate's own equivalence suite compares individual kernels and
//! single layers; this root suite closes the loop at the level the paper's
//! results are produced: whole Q-networks evaluating realistic episode
//! states. The reference backend must stay the out-of-the-box default, and —
//! when the `backend-simd` feature is compiled in — the SIMD backend's
//! Q-values must agree with the reference within its declared [`Tolerance`],
//! with greedy-action transcripts identical except where the reference
//! decision itself sits inside the tolerance band.

use acso_bench::episode_states;
use acso_core::agent::{AttentionQNet, BaselineConvQNet, QNetwork};
use ics_net::TopologySpec;
use neural::Scratch;

/// A freshly constructed scratch (and therefore every agent built without an
/// explicit override) uses the backend `ACSO_BACKEND` names, falling back to
/// the reference backend when the variable is unset — so golden fixtures
/// keep meaning what they meant before the seam existed, and the CI
/// backend-simd job can flip the whole process with one env var.
#[test]
fn default_backend_honours_environment() {
    let expected =
        std::env::var(neural::backend::BACKEND_ENV).unwrap_or_else(|_| "reference".to_string());
    assert_eq!(Scratch::new().backend().name(), expected);
    assert_eq!(neural::backend::default_backend().name(), expected);
}

#[test]
fn backend_lookup_rejects_unknown_names() {
    let err = neural::backend::backend_by_name("no-such-backend").unwrap_err();
    assert!(
        err.contains("no-such-backend"),
        "error names the culprit: {err}"
    );
}

#[cfg(feature = "backend-simd")]
mod simd {
    use super::*;
    use neural::Tolerance;

    /// States per network in the transcript comparison. Enough decision
    /// points for beliefs/alerts to vary; small enough for a debug-mode run.
    const STATES: usize = 24;

    /// Widening factor applied to the joined kernel tolerance: a full
    /// Q-network chains dozens of kernel calls (embeddings, two attention
    /// layers, four heads), so per-kernel rounding compounds.
    const NET_FACTOR: f32 = 100.0;

    fn widened(factor: f32) -> (f32, f32) {
        let simd = neural::backend::backend_by_name("simd").expect("simd compiled in");
        match Tolerance::Exact.join(simd.tolerance()) {
            Tolerance::Exact => (0.0, 0.0),
            Tolerance::Bounded { rel, abs } => (rel * factor, abs * factor),
        }
    }

    fn close(rel: f32, abs: f32, a: f32, b: f32) -> bool {
        let diff = (a - b).abs();
        diff <= abs || diff <= rel * a.abs().max(b.abs())
    }

    fn argmax(q: &[f32]) -> usize {
        q.iter()
            .enumerate()
            .max_by(|x, y| x.1.partial_cmp(y.1).expect("finite Q-values"))
            .expect("non-empty action space")
            .0
    }

    /// Gap between the best and second-best reference Q-value: when this is
    /// inside the tolerance band, an argmax flip on the other backend is a
    /// legitimate tie-break, not a kernel bug.
    fn top2_gap(q: &[f32]) -> f32 {
        let best = argmax(q);
        let runner_up = q
            .iter()
            .enumerate()
            .filter(|(i, _)| *i != best)
            .map(|(_, v)| *v)
            .fold(f32::NEG_INFINITY, f32::max);
        q[best] - runner_up
    }

    /// Runs `states` through a reference-pinned and a simd-pinned clone of
    /// the same network and checks Q-values plus the greedy transcript.
    fn compare_networks<N, F>(make: F, label: &str)
    where
        N: QNetwork,
        F: Fn() -> N,
        N: BackendPinned,
    {
        let (states, _space) = episode_states(TopologySpec::paper_small(), STATES);
        let mut reference = make();
        reference.pin_backend("reference");
        let mut simd = make();
        simd.pin_backend("simd");

        let (rel, abs) = widened(NET_FACTOR);
        let mut flips = 0usize;
        for (i, state) in states.iter().enumerate() {
            let q_ref = reference.q_values(state);
            let q_simd = simd.q_values(state);
            assert_eq!(q_ref.len(), q_simd.len());
            for (a, (r, s)) in q_ref.iter().zip(&q_simd).enumerate() {
                assert!(
                    close(rel, abs, *r, *s),
                    "{label}: state {i} action {a}: reference {r} vs simd {s} \
                     outside rel={rel} abs={abs}"
                );
            }
            if argmax(&q_ref) != argmax(&q_simd) {
                let gap = top2_gap(&q_ref);
                assert!(
                    close(rel, abs, gap, 0.0),
                    "{label}: state {i}: greedy action flipped with a decisive \
                     reference gap of {gap} (rel={rel} abs={abs})"
                );
                flips += 1;
            }
        }
        // A transcript where *every* decision flips would mean the backends
        // disagree systematically even if each flip is individually a tie.
        assert!(
            flips * 2 <= STATES,
            "{label}: {flips}/{STATES} greedy decisions flipped — backends diverge"
        );

        // The batched path (the fused block-diagonal kernels) must agree with
        // the same tolerance as the solo path.
        let refs: Vec<&acso_core::StateFeatures> = states.iter().collect();
        let batch_ref = reference.q_values_batch(&refs);
        let batch_simd = simd.q_values_batch(&refs);
        for (i, (row_ref, row_simd)) in batch_ref.iter().zip(&batch_simd).enumerate() {
            for (a, (r, s)) in row_ref.iter().zip(row_simd.iter()).enumerate() {
                assert!(
                    close(rel, abs, *r, *s),
                    "{label}: batched state {i} action {a}: reference {r} vs \
                     simd {s} outside rel={rel} abs={abs}"
                );
            }
        }
    }

    /// The one capability this suite needs beyond [`QNetwork`]: pinning a
    /// network's scratch to a named kernel backend.
    trait BackendPinned {
        fn pin_backend(&mut self, name: &str);
    }

    impl BackendPinned for AttentionQNet {
        fn pin_backend(&mut self, name: &str) {
            self.set_kernel_backend(neural::backend::backend_by_name(name).unwrap());
        }
    }

    impl BackendPinned for BaselineConvQNet {
        fn pin_backend(&mut self, name: &str) {
            self.set_kernel_backend(neural::backend::backend_by_name(name).unwrap());
        }
    }

    #[test]
    fn attention_net_q_values_and_transcript_match_across_backends() {
        let (_, space) = episode_states(TopologySpec::paper_small(), 1);
        compare_networks(move || AttentionQNet::new(space.clone(), 7), "attention");
    }

    #[test]
    fn baseline_net_q_values_and_transcript_match_across_backends() {
        let (_, space) = episode_states(TopologySpec::paper_small(), 1);
        compare_networks(move || BaselineConvQNet::new(space.clone(), 7), "baseline");
    }
}
