//! Golden pinning for the paper presets.
//!
//! The scenario subsystem refactor (generative topology builder, scenario
//! registry) must not disturb the paper's three preset networks or their
//! episode transcripts. These tests compare a canonical textual serialization
//! of each preset topology — and the metrics of deterministic playbook
//! episodes run on it — against fixtures captured *before* the refactor.
//!
//! To re-bless the fixtures after an intentional change, run:
//!
//! ```sh
//! UPDATE_GOLDEN=1 cargo test --test scenario_golden
//! ```

use acso_core::baselines::PlaybookPolicy;
use acso_core::rollout;
use ics_net::{Topology, TopologySpec};
use ics_sim::SimConfig;
use std::fmt::Write as _;
use std::path::PathBuf;

/// Canonical, stable textual dump of a topology built from a spec. Uses only
/// display-stable public API so the serialization survives internal
/// refactors that do not change observable structure.
fn describe_topology(topo: &Topology) -> String {
    let mut out = String::new();
    writeln!(
        out,
        "nodes={} plcs={} devices={}",
        topo.node_count(),
        topo.plc_count(),
        topo.device_count()
    )
    .unwrap();
    for node in topo.nodes() {
        writeln!(
            out,
            "node {} kind={} level={} vlan={} ip={}",
            node.id,
            node.kind,
            node.level,
            node.home_vlan,
            topo.ip_of(node.id)
        )
        .unwrap();
    }
    for device in topo.devices() {
        writeln!(
            out,
            "device {} kind={} level={}",
            device.id, device.kind, device.level
        )
        .unwrap();
    }
    for plc in topo.plc_ids() {
        writeln!(out, "plc#{} ip={}", plc.index(), topo.plc_ip(plc)).unwrap();
    }
    let vlans = topo.vlans();
    for from in &vlans {
        for to in &vlans {
            writeln!(
                out,
                "factor {from} -> {to} = {}",
                topo.device_factor_between_vlans(*from, *to)
            )
            .unwrap();
        }
    }
    out
}

/// Deterministic playbook transcripts: per-episode metrics for a short run.
fn describe_transcript(sim: &SimConfig) -> String {
    let mut policy = PlaybookPolicy::new();
    let mut out = String::new();
    for episode in 0..2 {
        let metrics = rollout::run_episode(&mut policy, sim, 97, episode);
        writeln!(out, "episode {episode}: {metrics:?}").unwrap();
    }
    out
}

fn golden_path(name: &str) -> PathBuf {
    PathBuf::from(env!("CARGO_MANIFEST_DIR"))
        .join("tests/golden")
        .join(name)
}

fn assert_matches_golden(name: &str, actual: &str) {
    let path = golden_path(name);
    if std::env::var("UPDATE_GOLDEN").is_ok() {
        std::fs::create_dir_all(path.parent().unwrap()).unwrap();
        std::fs::write(&path, actual).unwrap();
        return;
    }
    let expected = std::fs::read_to_string(&path)
        .unwrap_or_else(|e| panic!("missing golden fixture {}: {e}", path.display()));
    assert_eq!(
        expected, actual,
        "{name} diverged from its pre-refactor golden fixture; \
         if the change is intentional, re-bless with UPDATE_GOLDEN=1"
    );
}

fn build(spec: &TopologySpec) -> Topology {
    Topology::build(spec).expect("paper preset must build")
}

#[test]
fn paper_full_topology_matches_golden() {
    let dump = describe_topology(&build(&TopologySpec::paper_full()));
    assert_matches_golden("topology_paper_full.txt", &dump);
}

#[test]
fn paper_small_topology_matches_golden() {
    let dump = describe_topology(&build(&TopologySpec::paper_small()));
    assert_matches_golden("topology_paper_small.txt", &dump);
}

#[test]
fn tiny_topology_matches_golden() {
    let dump = describe_topology(&build(&TopologySpec::tiny()));
    assert_matches_golden("topology_tiny.txt", &dump);
}

#[test]
fn paper_full_transcript_matches_golden() {
    let sim = SimConfig::full().with_max_time(400);
    assert_matches_golden("transcript_paper_full.txt", &describe_transcript(&sim));
}

#[test]
fn paper_small_transcript_matches_golden() {
    let sim = SimConfig::small().with_max_time(400);
    assert_matches_golden("transcript_paper_small.txt", &describe_transcript(&sim));
}

#[test]
fn tiny_transcript_matches_golden() {
    let sim = SimConfig::tiny().with_max_time(400);
    assert_matches_golden("transcript_tiny.txt", &describe_transcript(&sim));
}
