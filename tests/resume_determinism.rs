//! Resume-determinism pin for `ACSOSNAP` training checkpoints.
//!
//! The contract: *train 2N episodes* and *train N episodes, checkpoint, kill
//! the process, rebuild from scratch, restore, train N more* must produce
//! **bit-identical** agents — same serialized weight bytes, same
//! full-precision training history, same greedy evaluation transcript. That
//! is what makes checkpointing a durability feature rather than a silent
//! fork of the training semantics.
//!
//! The "kill" is simulated faithfully: the resumed half starts from a
//! freshly constructed agent (new DBN fit, new network init, new RNG), the
//! way a restarted process would, and only then applies the snapshot.
//!
//! Both network architectures and both gradient-update implementations are
//! covered; the attention/batched combination runs in every tier-1 pass, the
//! other three are release-only (the batch-determinism CI job runs them).
//!
//! Re-bless (only for an intentional change to the training semantics) with:
//!
//! ```sh
//! UPDATE_GOLDEN=1 cargo test --release --test resume_determinism
//! ```

use acso_core::agent::io::save_weights_to;
#[cfg(not(debug_assertions))]
use acso_core::agent::BaselineConvQNet;
use acso_core::agent::{AcsoAgent, AttentionQNet, QNetwork, UpdateMode};
use acso_core::snapshot::fnv1a64;
use acso_core::train::{train_agent, train_agent_checkpointed, TrainConfig, TrainReport};
use acso_core::{ActionSpace, CheckpointConfig, DefenderPolicy};
use dbn::learn::{learn_model, LearnConfig};
use ics_sim::IcsEnvironment;
use rand::rngs::StdRng;
use rand::SeedableRng;
use std::path::PathBuf;

/// Seed of the pinned runs (environment, network init and exploration).
const SEED: u64 = 23;
/// The uninterrupted run trains this many episodes; the interrupted run
/// checkpoints at the midpoint.
const TOTAL_EPISODES: usize = 2;
const MIDPOINT: usize = TOTAL_EPISODES / 2;
/// Fixed seed of the greedy post-training evaluation episode.
const EVAL_SEED: u64 = 77;

fn config() -> TrainConfig {
    TrainConfig::smoke(TOTAL_EPISODES).with_seed(SEED)
}

/// Builds a cold agent exactly the way `train_attention_acso` does — from
/// nothing but the configuration — so the resumed half genuinely rebuilds
/// the world a restarted process would.
fn cold_agent<N: QNetwork + Clone>(
    make: impl Fn(ActionSpace, u64) -> N,
    mode: UpdateMode,
) -> AcsoAgent<N> {
    let config = config();
    let dbn_model = learn_model(&LearnConfig {
        episodes: config.dbn_episodes,
        seed: config.seed,
        sim: config.sim.clone(),
    });
    let env = IcsEnvironment::new(config.sim.clone().with_seed(config.seed));
    let network = make(ActionSpace::new(env.topology()), config.seed);
    let mut agent = AcsoAgent::new(env.topology(), dbn_model, network, config.agent.clone());
    agent.set_update_mode(mode);
    agent
}

/// Digest of serialized weights, full-precision history, and a greedy
/// fixed-seed evaluation transcript — the same shape as the training golden.
fn fingerprint<N: QNetwork + Clone + 'static>(
    agent: &mut AcsoAgent<N>,
    report: &TrainReport,
) -> String {
    let mut weight_bytes = Vec::new();
    save_weights_to(agent.network_mut(), &mut weight_bytes).expect("serialize weights");

    let mut out = String::new();
    out.push_str("schema: acso-resume-golden/v1\n");
    out.push_str(&format!(
        "weights_fnv1a64: {:016x}\n",
        fnv1a64(&weight_bytes)
    ));
    out.push_str(&format!("weights_len: {}\n", weight_bytes.len()));
    out.push_str(&format!("env_steps: {}\n", report.env_steps));
    out.push_str(&format!("updates: {}\n", report.updates));
    out.push_str(&format!("episode_returns: {:?}\n", report.episode_returns));
    out.push_str(&format!("episode_losses: {:?}\n", report.episode_losses));

    let sim = config().sim.with_seed(EVAL_SEED);
    let mut env = IcsEnvironment::new(sim);
    let topology = env.topology().clone();
    let mut rng = StdRng::seed_from_u64(EVAL_SEED);
    let mut obs = env.reset();
    agent.reset(&topology);
    out.push_str("transcript:\n");
    for t in 0..120 {
        let actions = agent.decide(&obs, &topology, &mut rng);
        let step = env.step(&actions);
        out.push_str(&format!(
            "  t={t} actions={actions:?} reward={:?} done={}\n",
            step.reward, step.done
        ));
        obs = step.observation;
        if step.done {
            break;
        }
    }
    out
}

/// Runs one architecture/update-mode combination through the uninterrupted
/// and interrupted-resumed paths and returns both fingerprints.
fn run_combo<N: QNetwork + Clone + 'static>(
    tag: &str,
    make: impl Fn(ActionSpace, u64) -> N + Copy,
    mode: UpdateMode,
) -> (String, String) {
    let cfg = config();

    // Uninterrupted reference: 2N episodes straight through.
    let mut straight = cold_agent(make, mode);
    let straight_report = train_agent(&mut straight, &cfg.sim, TOTAL_EPISODES, cfg.seed);

    // Interrupted run: N episodes, checkpoint, "kill".
    let path = std::env::temp_dir().join(format!("acso_resume_{tag}.acsosnap"));
    let checkpoint = CheckpointConfig::new(&path, MIDPOINT.max(1));
    let mut first_half = cold_agent(make, mode);
    train_agent_checkpointed(
        &mut first_half,
        &cfg.sim,
        MIDPOINT,
        cfg.seed,
        &checkpoint,
        false,
    )
    .expect("checkpointed first half");
    drop(first_half);

    // Restart: rebuild the world from scratch, restore, finish the run.
    let mut resumed = cold_agent(make, mode);
    let resumed_report = train_agent_checkpointed(
        &mut resumed,
        &cfg.sim,
        TOTAL_EPISODES,
        cfg.seed,
        &checkpoint,
        true,
    )
    .expect("resumed second half");
    let _ = std::fs::remove_file(&path);

    (
        fingerprint(&mut straight, &straight_report),
        fingerprint(&mut resumed, &resumed_report),
    )
}

fn golden_path(name: &str) -> PathBuf {
    PathBuf::from(env!("CARGO_MANIFEST_DIR"))
        .join("tests/golden")
        .join(name)
}

/// Asserts the resumed fingerprint equals the uninterrupted one, and pins
/// both against the golden fixture (blessed from the uninterrupted run).
fn assert_combo(tag: &str, golden: &str, straight: String, resumed: String, bless: bool) {
    assert_eq!(
        straight, resumed,
        "{tag}: resumed training diverged from the uninterrupted run"
    );
    let path = golden_path(golden);
    if bless && std::env::var("UPDATE_GOLDEN").is_ok() {
        std::fs::create_dir_all(path.parent().unwrap()).unwrap();
        std::fs::write(&path, &straight).unwrap();
        eprintln!("blessed {}", path.display());
        return;
    }
    if std::env::var("UPDATE_GOLDEN").is_ok() {
        return; // the blessing combination owns the fixture
    }
    let expected = std::fs::read_to_string(&path).unwrap_or_else(|e| {
        panic!(
            "missing golden fixture {} ({e}); run UPDATE_GOLDEN=1 to bless",
            path.display()
        )
    });
    assert_eq!(
        straight, expected,
        "{tag}: training outcome diverged from the golden fixture"
    );
}

#[test]
fn attention_batched_resume_is_bit_identical() {
    let (straight, resumed) =
        run_combo("attention_batched", AttentionQNet::new, UpdateMode::Batched);
    assert_combo(
        "attention/batched",
        "resume_attention.txt",
        straight,
        resumed,
        true,
    );
}

/// The serial reference update must resume onto the same fixture: the
/// checkpoint stores experience and optimizer state, not an update-mode fork.
/// Release-only — a full extra training run is too slow for the debug tier.
#[cfg(not(debug_assertions))]
#[test]
fn attention_serial_resume_is_bit_identical() {
    let (straight, resumed) = run_combo("attention_serial", AttentionQNet::new, UpdateMode::Serial);
    assert_combo(
        "attention/serial",
        "resume_attention.txt",
        straight,
        resumed,
        false,
    );
}

#[cfg(not(debug_assertions))]
#[test]
fn baseline_batched_resume_is_bit_identical() {
    let (straight, resumed) = run_combo(
        "baseline_batched",
        BaselineConvQNet::new,
        UpdateMode::Batched,
    );
    assert_combo(
        "baseline/batched",
        "resume_baseline.txt",
        straight,
        resumed,
        true,
    );
}

#[cfg(not(debug_assertions))]
#[test]
fn baseline_serial_resume_is_bit_identical() {
    let (straight, resumed) =
        run_combo("baseline_serial", BaselineConvQNet::new, UpdateMode::Serial);
    assert_combo(
        "baseline/serial",
        "resume_baseline.txt",
        straight,
        resumed,
        false,
    );
}

/// A truncated checkpoint must be rejected by the container digest before
/// any agent state is touched: the restart path can then degrade to a cold
/// start instead of training on garbage.
#[test]
fn torn_checkpoint_is_rejected_and_leaves_the_agent_cold() {
    let cfg = config();
    let path = std::env::temp_dir().join("acso_resume_torn.acsosnap");
    let checkpoint = CheckpointConfig::new(&path, 1);
    let mut agent = cold_agent(AttentionQNet::new, UpdateMode::Batched);
    train_agent_checkpointed(&mut agent, &cfg.sim, 1, cfg.seed, &checkpoint, false)
        .expect("checkpointed run");

    // Tear the write: keep a prefix long enough to look structurally alive.
    let bytes = std::fs::read(&path).unwrap();
    std::fs::write(&path, &bytes[..bytes.len() - 7]).unwrap();

    let mut restarted = cold_agent(AttentionQNet::new, UpdateMode::Batched);
    let before = restarted.trainer().counters();
    let err = train_agent_checkpointed(
        &mut restarted,
        &cfg.sim,
        TOTAL_EPISODES,
        cfg.seed,
        &checkpoint,
        true,
    )
    .expect_err("a torn checkpoint must not resume");
    assert!(
        err.to_string().contains("digest mismatch"),
        "torn write should fail the digest check, got: {err}"
    );
    // The failed restore left the cold agent untouched — counters unchanged.
    assert_eq!(restarted.trainer().counters(), before);
    let _ = std::fs::remove_file(&path);
}
