//! Cross-crate integration tests: topology -> simulator -> DBN -> agent ->
//! evaluation, exercised together the way the experiment binaries use them.

use acso_core::baselines::{DbnExpertPolicy, PlaybookPolicy, SemiRandomPolicy};
use acso_core::eval::{evaluate_policy, evaluate_policy_detailed, EvalConfig};
use acso_core::experiments::{prepare, table2, ExperimentScale};
use acso_core::policy::{DefenderPolicy, NullPolicy};
use acso_core::train::{train_attention_acso, TrainConfig};
use dbn::learn::{learn_model, LearnConfig};
use ics_sim::apt::{AptProfile, AttackObjective, AttackVector};
use ics_sim::{DefenderAction, IcsEnvironment, SimConfig};

fn short_eval(episodes: usize, seed: u64) -> EvalConfig {
    EvalConfig {
        sim: SimConfig::tiny().with_max_time(200),
        episodes,
        seed,
    }
}

#[test]
fn trained_acso_agent_evaluates_cleanly_end_to_end() {
    let trained = train_attention_acso(&TrainConfig::smoke(1).with_seed(42));
    let mut agent = trained.agent;
    let summary = evaluate_policy(&mut agent, &short_eval(2, 5));
    assert_eq!(summary.episodes, 2);
    assert!(summary.discounted_return.mean.is_finite());
    assert!(summary.average_it_cost.mean >= 0.0);
}

#[test]
fn every_policy_runs_on_the_full_paper_topology() {
    // One short episode on the full 33-node / 50-PLC network per policy, to
    // catch any assumption that only holds on the small test topologies.
    let config = EvalConfig {
        sim: SimConfig::full().with_max_time(150),
        episodes: 1,
        seed: 9,
    };
    let model = learn_model(&LearnConfig {
        episodes: 1,
        seed: 1,
        sim: SimConfig::tiny().with_max_time(100),
    });
    let mut policies: Vec<Box<dyn DefenderPolicy>> = vec![
        Box::new(NullPolicy::new()),
        Box::new(SemiRandomPolicy::new()),
        Box::new(PlaybookPolicy::new()),
        Box::new(DbnExpertPolicy::new(model)),
    ];
    for policy in &mut policies {
        let eval = evaluate_policy_detailed(policy.as_mut(), &config);
        assert_eq!(eval.episodes.len(), 1);
        assert_eq!(eval.episodes[0].steps, 150);
    }
}

#[test]
fn undefended_attack_damages_more_plcs_than_playbook_defense() {
    // The headline qualitative claim behind Table 2: automated coordinated
    // response protects the PLCs better than no response.
    let sim = SimConfig::small().with_max_time(3_500).with_apt(
        AptProfile::apt2()
            .with_objective(AttackObjective::Disrupt)
            .with_vector(AttackVector::Opc),
    );
    let episodes = 3;

    let mut undefended_damage = 0usize;
    let mut defended_damage = 0usize;
    for i in 0..episodes {
        let mut env = IcsEnvironment::new(sim.clone().with_seed(100 + i));
        let metrics = env.run_episode(|_, _| vec![DefenderAction::NoAction]);
        undefended_damage += metrics.max_plcs_offline();

        let mut env = IcsEnvironment::new(sim.clone().with_seed(100 + i));
        let mut policy = PlaybookPolicy::new();
        policy.reset(env.topology());
        let mut rng = rand::SeedableRng::seed_from_u64(i);
        let metrics = env.run_episode(|obs, env| policy.decide(obs, env.topology(), &mut rng));
        defended_damage += metrics.max_plcs_offline();
    }
    assert!(
        undefended_damage > defended_damage,
        "undefended damage {undefended_damage} should exceed defended damage {defended_damage}"
    );
}

#[test]
fn table2_experiment_reports_all_policies_and_metrics() {
    let mut ctx = prepare(ExperimentScale::smoke());
    let result = table2(&mut ctx);
    assert_eq!(result.evaluations.len(), 4);
    for eval in &result.evaluations {
        assert!(eval.summary.discounted_return.mean.is_finite());
        assert!(eval.summary.average_nodes_compromised.mean >= 0.0);
        assert!(eval.summary.average_it_cost.mean >= 0.0);
    }
    // The semi-random policy takes uncoordinated actions constantly, so its
    // IT cost must exceed the playbook's, as in the paper.
    let cost = |name: &str| {
        result
            .evaluations
            .iter()
            .find(|e| e.policy == name)
            .map(|e| e.summary.average_it_cost.mean)
            .expect("policy present")
    };
    assert!(cost("Semi Random") > cost("Playbook"));
}

#[test]
fn evaluation_is_deterministic_for_identical_policies_and_seeds() {
    let a = evaluate_policy(&mut PlaybookPolicy::new(), &short_eval(2, 77));
    let b = evaluate_policy(&mut PlaybookPolicy::new(), &short_eval(2, 77));
    assert_eq!(a, b);
    let c = evaluate_policy(&mut PlaybookPolicy::new(), &short_eval(2, 78));
    assert!(a != c || a.discounted_return.mean != c.discounted_return.mean);
}
