//! Keeps `docs/PROTOCOL.md` honest: the worked transcript in the document is
//! replayed byte-for-byte against the service, and the protocol's edge
//! behaviour (envelope echoing, error codes, end-of-batch shutdown) is
//! pinned through the real serve loop.

use acso::serve::json::JsonValue;
use acso::serve::server::serve;
use acso::serve::service::{EvalService, ServiceConfig};
use acso::serve::transport::ChannelTransport;

const PROTOCOL_DOC: &str = include_str!("../docs/PROTOCOL.md");

/// Extracts the fenced ```jsonl block that follows `marker` in the document.
fn transcript_block(marker: &str) -> Vec<String> {
    let at = PROTOCOL_DOC
        .find(marker)
        .unwrap_or_else(|| panic!("PROTOCOL.md lost its `{marker}` marker"));
    let rest = &PROTOCOL_DOC[at..];
    let open = "```jsonl\n";
    let start = rest
        .find(open)
        .unwrap_or_else(|| panic!("no ```jsonl fence after `{marker}`"))
        + open.len();
    let body = &rest[start..];
    let end = body
        .find("\n```")
        .unwrap_or_else(|| panic!("unterminated fence after `{marker}`"));
    body[..end].lines().map(str::to_string).collect()
}

/// The documented transcript replays byte-for-byte: same requests, same
/// daemon configuration (`--fixed-time --lanes 8 --threads 1`), same bytes
/// out. If the protocol or any number it reports changes, this fails until
/// the document is re-recorded.
#[test]
fn protocol_doc_transcript_replays_byte_for_byte() {
    let inputs = transcript_block("<!-- transcript:input -->");
    let outputs = transcript_block("<!-- transcript:output -->");
    assert_eq!(
        inputs.len(),
        outputs.len(),
        "transcript blocks must pair one request with one response"
    );
    assert!(inputs.len() >= 5, "transcript should exercise the protocol");

    // The transcript was recorded one request at a time, so replay feeds
    // lines individually (each is its own batch).
    let mut service = EvalService::new(ServiceConfig::fixed());
    for (i, (input, expected)) in inputs.iter().zip(&outputs).enumerate() {
        let actual = service.handle_line(input);
        assert_eq!(
            &actual, expected,
            "response {i} diverged from PROTOCOL.md for request: {input}"
        );
    }
}

/// The documented transcript covers the envelope's interesting shapes: a
/// catalog query, a policy load, a successful evaluate with transcripts, an
/// error, a metrics scrape and the shutdown.
#[test]
fn protocol_doc_transcript_covers_the_method_surface() {
    let inputs = transcript_block("<!-- transcript:input -->");
    let methods: Vec<String> = inputs
        .iter()
        .map(|line| {
            JsonValue::parse(line)
                .unwrap()
                .get("method")
                .unwrap()
                .as_str()
                .unwrap()
                .to_string()
        })
        .collect();
    for method in [
        "list_scenarios",
        "load_policy",
        "evaluate",
        "metrics",
        "snapshot",
        "shutdown",
    ] {
        assert!(
            methods.iter().any(|m| m == method),
            "transcript never calls `{method}`"
        );
    }
    let outputs = transcript_block("<!-- transcript:output -->");
    assert!(
        outputs
            .iter()
            .any(|line| line.contains("\"ok\":false") && line.contains("unknown_scenario")),
        "transcript should demonstrate the error envelope"
    );
}

/// Request ids are echoed verbatim whatever their JSON type, including for
/// errors, and a missing id echoes as null.
#[test]
fn request_ids_echo_verbatim() {
    let mut service = EvalService::new(ServiceConfig::fixed());
    for (line, expected_id) in [
        (r#"{"id":"abc","method":"metrics"}"#, r#""abc""#),
        (r#"{"id":{"seq":7},"method":"metrics"}"#, r#"{"seq":7}"#),
        (r#"{"id":3.5,"method":"nope"}"#, "3.5"),
        (r#"{"method":"metrics"}"#, "null"),
    ] {
        let response = service.handle_line(line);
        assert!(
            response.starts_with(&format!(r#"{{"id":{expected_id},"#)),
            "{line} -> {response}"
        );
    }
}

/// Every documented error code is reachable over the wire, and parse errors
/// never take the daemon down.
#[test]
fn documented_error_codes_are_produced_on_the_wire() {
    let mut service = EvalService::new(ServiceConfig::fixed());
    let code_of = |service: &mut EvalService, line: &str| {
        let response = service.handle_line(line);
        let value = JsonValue::parse(&response).unwrap();
        assert_eq!(value.get("ok").and_then(JsonValue::as_bool), Some(false));
        value
            .get("error")
            .and_then(|e| e.get("code"))
            .and_then(JsonValue::as_str)
            .unwrap()
            .to_string()
    };
    assert_eq!(code_of(&mut service, "{oops"), "parse_error");
    assert_eq!(code_of(&mut service, "[1,2]"), "invalid_request");
    assert_eq!(
        code_of(&mut service, r#"{"id":1,"method":"sing"}"#),
        "unknown_method"
    );
    assert_eq!(
        code_of(
            &mut service,
            r#"{"id":1,"method":"evaluate","params":{"scenario":"tiny","episodes":1}}"#
        ),
        "invalid_params"
    );
    assert_eq!(
        code_of(
            &mut service,
            r#"{"id":1,"method":"evaluate","params":{"handle":"ghost@9","scenario":"tiny","episodes":1}}"#
        ),
        "unknown_handle"
    );
    assert_eq!(
        code_of(
            &mut service,
            r#"{"id":1,"method":"load_policy","params":{"policy":"qlearn"}}"#
        ),
        "unknown_policy_kind"
    );
    assert_eq!(
        code_of(
            &mut service,
            r#"{"id":1,"method":"load_policy","params":{"policy":"playbook","scenario":"nowhere"}}"#
        ),
        "unknown_scenario"
    );
    assert_eq!(
        code_of(
            &mut service,
            r#"{"id":1,"method":"load_policy","params":{"policy":"acso","weights":"/no/such/file"}}"#
        ),
        "weights_error"
    );
    assert_eq!(
        code_of(&mut service, r#"{"id":1,"method":"snapshot"}"#),
        "state_error"
    );
    assert_eq!(
        code_of(&mut service, r#"{"id":1,"method":"restore"}"#),
        "state_error"
    );

    // The daemon still answers normal requests after all that abuse.
    let response = service.handle_line(r#"{"id":9,"method":"list_scenarios"}"#);
    assert!(response.starts_with(r#"{"id":9,"ok":true,"#));
}

/// End-to-end through the serve loop and a transport: pipelined requests are
/// answered in order and shutdown ends the session after the batch.
#[test]
fn serve_loop_round_trips_the_documented_session_shape() {
    let (mut transport, client) = ChannelTransport::pair();
    client
        .send_line(r#"{"id":1,"method":"load_policy","params":{"policy":"null"}}"#)
        .unwrap();
    client
        .send_line(
            r#"{"id":2,"method":"evaluate","params":{"handle":"null@1","scenario":"tiny","episodes":1,"max_time":120}}"#,
        )
        .unwrap();
    client.send_line(r#"{"id":3,"method":"shutdown"}"#).unwrap();

    let mut service = EvalService::new(ServiceConfig::fixed());
    let served = serve(&mut service, &mut transport);
    assert_eq!(served, 3);
    for expected_id in 1..=3 {
        let line = client.recv_line().expect("a response per request");
        let value = JsonValue::parse(&line).unwrap();
        assert_eq!(
            value.get("id").and_then(JsonValue::as_u64),
            Some(expected_id)
        );
        assert_eq!(value.get("ok").and_then(JsonValue::as_bool), Some(true));
    }
}
