//! Deterministic fan-out of independent, indexed tasks over scoped threads.
//!
//! Every hot loop in the workspace that iterates over *independent episodes*
//! (evaluation rollouts, DBN training-data collection, grid-search training
//! runs) funnels through [`run_indexed`] / [`run_indexed_with`]: workers pull
//! task indices from a shared atomic counter, results land in the slot of
//! their index, and the caller gets a `Vec` in task order. Because each task
//! derives all of its randomness from its *index* (see [`episode_seed`] and
//! [`stream_seed`]), the output is bit-identical for any thread count —
//! including 1, where the tasks run inline on the calling thread with no
//! thread machinery at all.
//!
//! The thread count defaults to the machine's available parallelism and can
//! be pinned with the `ACSO_THREADS` environment variable (see
//! [`available_threads`]). No external dependencies: the pool is
//! `std::thread::scope` plus an `AtomicUsize`.

#![warn(missing_docs)]

mod autoscale;

pub use autoscale::{
    detected_cores, plan, plan_with, AutoscalePlan, EngineChoice, WorkloadShape,
    LOCKSTEP_ACTION_THRESHOLD, LOCKSTEP_NODE_THRESHOLD, MAX_AUTO_LANES,
};

use std::sync::atomic::{AtomicUsize, Ordering};
use std::thread;

/// Environment variable that pins the worker-thread count (`0`, empty or
/// unparsable values fall back to the detected parallelism).
pub const THREADS_ENV_VAR: &str = "ACSO_THREADS";

/// Number of worker threads to use: `ACSO_THREADS` if set to a positive
/// integer, otherwise [`std::thread::available_parallelism`] (1 if unknown).
pub fn available_threads() -> usize {
    threads_from(std::env::var(THREADS_ENV_VAR).ok().as_deref())
}

/// Parses a thread-count override, falling back to detected parallelism.
/// Split out from [`available_threads`] so the parsing is testable without
/// touching process-global environment state.
pub fn threads_from(var: Option<&str>) -> usize {
    match var.and_then(|v| v.trim().parse::<usize>().ok()) {
        Some(n) if n > 0 => n,
        _ => thread::available_parallelism().map_or(1, |n| n.get()),
    }
}

/// The `ACSO_THREADS` override alone: `Some(n)` only when the variable is
/// set to a positive integer, `None` otherwise. [`available_threads`] folds
/// this with the detected parallelism; the autoscaler ([`plan`]) needs the
/// two separated to report whether the operator pinned the count.
pub fn threads_override() -> Option<usize> {
    std::env::var(THREADS_ENV_VAR)
        .ok()
        .and_then(|v| v.trim().parse::<usize>().ok())
        .filter(|n| *n > 0)
}

/// Environment variable that turns on the lockstep batched rollout engine
/// and sets its lane count (`0`, empty or unparsable values leave the
/// engine off). `ACSO_BATCH=1` runs the batched engine with a single lane —
/// useful for pinning down that the engine itself, not the batch width, is
/// transcript-neutral.
pub const BATCH_ENV_VAR: &str = "ACSO_BATCH";

/// Lockstep-batch lane count: `Some(n)` if `ACSO_BATCH` is set to a positive
/// integer, `None` (engine off) otherwise.
pub fn batch_lanes() -> Option<usize> {
    batch_lanes_from(std::env::var(BATCH_ENV_VAR).ok().as_deref())
}

/// Parses a batch-lane override. Split out from [`batch_lanes`] so the
/// parsing is testable without touching process-global environment state.
pub fn batch_lanes_from(var: Option<&str>) -> Option<usize> {
    var.and_then(|v| v.trim().parse::<usize>().ok())
        .filter(|n| *n > 0)
}

/// Deterministic per-episode base seed: `base ^ episode_index`.
///
/// Episode `i` of a run seeded with `base` always sees the same RNG stream,
/// no matter which worker executes it or how many workers there are — the
/// property that makes parallel rollouts bit-identical to serial ones.
pub fn episode_seed(base: u64, index: usize) -> u64 {
    base ^ index as u64
}

/// A statistically independent stream for auxiliary randomness (e.g. a
/// policy's action RNG) alongside [`episode_seed`]: the episode seed is
/// offset by `salt` and diffused through a SplitMix64 round so that streams
/// with nearby bases and indices do not correlate.
pub fn stream_seed(base: u64, index: usize, salt: u64) -> u64 {
    let mut z = episode_seed(base, index)
        .wrapping_add(salt)
        .wrapping_add(0x9E37_79B9_7F4A_7C15);
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

/// The Mersenne prime 2^61 - 1 used by [`mersenne_stream`].
pub const MERSENNE_61: u64 = (1 << 61) - 1;

/// Deterministic scenario seed streams via multiply-mod-Mersenne hashing
/// (Ahle–Knudsen–Thorup): `h = (a * x + b) mod (2^61 - 1)`, with the salt
/// folded into `x`. A scenario identifier (any `u64`) plus a stream salt
/// yields an independent, platform-stable seed for each of the scenario's
/// randomized components (topology shape, attacker parameters, IDS tier,
/// base episode seed), so a procedurally generated scenario is exactly
/// reproducible from its identifier alone. Composes with [`episode_seed`]:
/// the scenario-level stream becomes the rollout base seed, episodes XOR
/// their index on top.
pub fn mersenne_stream(scenario_seed: u64, salt: u64) -> u64 {
    // Fixed odd multipliers below 2^61, chosen once; the exact values only
    // need to be stable, not secret.
    const A: u128 = 0x0D96_57B2_5A18_93E5;
    const B: u128 = 0x1234_5672_89AB_CDE3;
    let x = (scenario_seed ^ salt.wrapping_mul(0x9E37_79B9_7F4A_7C15)) as u128;
    let h = (A * x + B) % (MERSENNE_61 as u128);
    // One SplitMix-style diffusion round so consecutive salts do not produce
    // arithmetically related outputs.
    let mut z = (h as u64).wrapping_add(0x9E37_79B9_7F4A_7C15);
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z ^ (z >> 31)
}

/// How one [`run_indexed_with_stats`] fan-out distributed its tasks over the
/// worker pool — the engine-utilization hook consumed by serving-layer
/// observability (`acso-serve` renders it as a Prometheus gauge).
///
/// The per-worker counts depend on OS scheduling, so two runs of the same
/// job may report different distributions; only the task total and worker
/// count are deterministic. Treat the utilization number as telemetry, never
/// as part of a result transcript.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct PoolStats {
    /// Total tasks executed.
    pub tasks: usize,
    /// Workers the pool ran with (1 means the inline serial path).
    pub workers: usize,
    /// Tasks executed by each worker, in spawn order.
    pub tasks_per_worker: Vec<usize>,
}

impl PoolStats {
    /// Mean worker load divided by the busiest worker's load, in `0.0..=1.0`:
    /// `1.0` means every worker executed the same number of tasks, values
    /// near `1/workers` mean one worker did nearly everything. Empty pools
    /// and zero-task runs report `1.0` (nothing was wasted).
    pub fn utilization(&self) -> f64 {
        let max = self.tasks_per_worker.iter().copied().max().unwrap_or(0);
        if max == 0 {
            return 1.0;
        }
        let mean = self.tasks as f64 / self.tasks_per_worker.len().max(1) as f64;
        mean / max as f64
    }
}

/// Runs `tasks` independent jobs, fanning out over at most `threads` scoped
/// workers, and returns the results in task order.
///
/// `f(i)` must depend only on `i` (and immutable captures) for the output to
/// be thread-count-independent; all callers in this workspace derive episode
/// RNG seeds from `i` via [`episode_seed`]. A worker panic propagates to the
/// caller.
pub fn run_indexed<T, F>(tasks: usize, threads: usize, f: F) -> Vec<T>
where
    T: Send,
    F: Fn(usize) -> T + Sync,
{
    run_indexed_with(tasks, threads, || (), move |(), i| f(i))
}

/// Like [`run_indexed`], but gives every worker a private mutable state
/// built by `init` (a policy instance, a scratch buffer, ...) that is reused
/// across all tasks the worker executes.
///
/// `init` runs once per worker *on that worker's thread*, so the state does
/// not need to be `Send`. With `threads <= 1` (or a single task) everything
/// runs inline on the calling thread in index order.
pub fn run_indexed_with<W, T, I, F>(tasks: usize, threads: usize, init: I, f: F) -> Vec<T>
where
    T: Send,
    I: Fn() -> W + Sync,
    F: Fn(&mut W, usize) -> T + Sync,
{
    run_indexed_with_stats(tasks, threads, init, f).0
}

/// Like [`run_indexed_with`], but also reports how the tasks were spread
/// over the workers ([`PoolStats`]). The result vector is bit-identical to
/// [`run_indexed_with`]; only the stats side channel is new, so hot paths
/// that ignore it pay nothing.
pub fn run_indexed_with_stats<W, T, I, F>(
    tasks: usize,
    threads: usize,
    init: I,
    f: F,
) -> (Vec<T>, PoolStats)
where
    T: Send,
    I: Fn() -> W + Sync,
    F: Fn(&mut W, usize) -> T + Sync,
{
    let threads = threads.max(1).min(tasks.max(1));
    if threads <= 1 {
        let mut worker = init();
        let results = (0..tasks).map(|i| f(&mut worker, i)).collect();
        let stats = PoolStats {
            tasks,
            workers: 1,
            tasks_per_worker: vec![tasks],
        };
        return (results, stats);
    }

    let next = AtomicUsize::new(0);
    let mut slots: Vec<Option<T>> = (0..tasks).map(|_| None).collect();
    let mut tasks_per_worker = Vec::with_capacity(threads);
    thread::scope(|scope| {
        let handles: Vec<_> = (0..threads)
            .map(|_| {
                scope.spawn(|| {
                    let mut worker = init();
                    let mut produced = Vec::new();
                    loop {
                        let i = next.fetch_add(1, Ordering::Relaxed);
                        if i >= tasks {
                            break;
                        }
                        produced.push((i, f(&mut worker, i)));
                    }
                    produced
                })
            })
            .collect();
        for handle in handles {
            let produced = handle.join().expect("rollout worker panicked");
            tasks_per_worker.push(produced.len());
            for (i, value) in produced {
                slots[i] = Some(value);
            }
        }
    });
    let results = slots
        .into_iter()
        .map(|slot| slot.expect("every task index produced a result"))
        .collect();
    let stats = PoolStats {
        tasks,
        workers: threads,
        tasks_per_worker,
    };
    (results, stats)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parallel_results_match_serial_in_order() {
        let serial = run_indexed(97, 1, |i| i * i);
        let parallel = run_indexed(97, 8, |i| i * i);
        assert_eq!(serial, parallel);
        assert_eq!(serial[10], 100);
    }

    #[test]
    fn worker_state_is_reused_within_a_worker() {
        // Each worker counts how many tasks it ran; the per-task results must
        // still land in index order regardless of which worker ran them.
        let out = run_indexed_with(
            50,
            4,
            || 0usize,
            |count, i| {
                *count += 1;
                (i, *count >= 1)
            },
        );
        assert_eq!(out.len(), 50);
        for (idx, (i, counted)) in out.iter().enumerate() {
            assert_eq!(*i, idx);
            assert!(counted);
        }
    }

    #[test]
    fn zero_tasks_yield_empty_output() {
        let out: Vec<u32> = run_indexed(0, 4, |_| unreachable!("no tasks to run"));
        assert!(out.is_empty());
    }

    #[test]
    fn seeds_are_per_index_deterministic() {
        assert_eq!(episode_seed(7, 0), 7);
        assert_eq!(episode_seed(7, 3), 7 ^ 3);
        assert_eq!(episode_seed(0, 5), 5);
        // Distinct indices give distinct auxiliary streams.
        assert_ne!(stream_seed(0, 0, 1), stream_seed(0, 1, 1));
        assert_ne!(stream_seed(0, 0, 1), stream_seed(0, 0, 2));
        assert_eq!(stream_seed(9, 4, 3), stream_seed(9, 4, 3));
    }

    #[test]
    fn mersenne_streams_are_stable_and_independent() {
        // Stability: pinned values guard the hash against accidental change
        // (every procedurally generated scenario depends on them).
        assert_eq!(mersenne_stream(0, 0), mersenne_stream(0, 0));
        assert_ne!(mersenne_stream(0, 0), mersenne_stream(0, 1));
        assert_ne!(mersenne_stream(0, 0), mersenne_stream(1, 0));
        // Nearby seeds and salts diffuse into unrelated outputs.
        let a = mersenne_stream(42, 1);
        let b = mersenne_stream(42, 2);
        let c = mersenne_stream(43, 1);
        assert_ne!(a ^ b, a ^ c);
    }

    #[test]
    fn thread_count_parsing_prefers_valid_overrides() {
        assert_eq!(threads_from(Some("3")), 3);
        assert_eq!(threads_from(Some(" 12 ")), 12);
        let detected = threads_from(None);
        assert!(detected >= 1);
        assert_eq!(threads_from(Some("0")), detected);
        assert_eq!(threads_from(Some("lots")), detected);
    }

    #[test]
    fn batch_lane_parsing_requires_a_positive_integer() {
        assert_eq!(batch_lanes_from(Some("16")), Some(16));
        assert_eq!(batch_lanes_from(Some(" 1 ")), Some(1));
        assert_eq!(batch_lanes_from(Some("0")), None);
        assert_eq!(batch_lanes_from(Some("many")), None);
        assert_eq!(batch_lanes_from(Some("")), None);
        assert_eq!(batch_lanes_from(None), None);
    }

    #[test]
    fn stats_account_for_every_task() {
        let (out, stats) = run_indexed_with_stats(40, 4, || (), |(), i| i);
        assert_eq!(out.len(), 40);
        assert_eq!(stats.tasks, 40);
        assert_eq!(stats.workers, 4);
        assert_eq!(stats.tasks_per_worker.len(), 4);
        assert_eq!(stats.tasks_per_worker.iter().sum::<usize>(), 40);
        let u = stats.utilization();
        assert!(u > 0.0 && u <= 1.0, "utilization {u} out of range");

        // The inline serial path reports a single fully-utilized worker.
        let (_, serial) = run_indexed_with_stats(5, 1, || (), |(), i| i);
        assert_eq!(serial.workers, 1);
        assert_eq!(serial.tasks_per_worker, vec![5]);
        assert_eq!(serial.utilization(), 1.0);
    }

    #[test]
    fn utilization_of_degenerate_pools_is_one() {
        let empty = PoolStats {
            tasks: 0,
            workers: 2,
            tasks_per_worker: vec![0, 0],
        };
        assert_eq!(empty.utilization(), 1.0);
        let lopsided = PoolStats {
            tasks: 10,
            workers: 2,
            tasks_per_worker: vec![10, 0],
        };
        assert!((lopsided.utilization() - 0.5).abs() < 1e-12);
    }

    #[test]
    fn panics_in_workers_propagate() {
        let result = std::panic::catch_unwind(|| {
            run_indexed(8, 4, |i| {
                assert!(i < 4, "boom");
                i
            })
        });
        assert!(result.is_err());
    }
}
