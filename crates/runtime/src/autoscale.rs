//! Deterministic engine autoscaling.
//!
//! Callers that fan out rollout episodes have two engines to choose from —
//! the episode-parallel pool and the lockstep batched engine — plus a worker
//! thread count and a lane width. Historically each caller read `ACSO_BATCH`
//! / `ACSO_THREADS` directly and fell back to fixed defaults, which meant a
//! 1000-host evaluation ran un-batched unless the operator remembered the
//! right incantation. [`plan`] turns that around: the *workload's shape*
//! (topology size, action-space size, episode count) and the machine's
//! detected cores pick the engine, and the environment variables are demoted
//! to explicit overrides.
//!
//! The plan is a pure function of its inputs ([`plan_with`]), so the same
//! shape on the same machine with the same overrides always produces the
//! same plan. And because every engine is pinned bit-identical to the serial
//! evaluator for any thread count and lane width (`rollout_determinism.rs`,
//! `batch_determinism.rs`), autoscaling can never change a transcript — only
//! how fast it is produced.

use std::thread;

/// Shape of a rollout workload, as known before any episode runs.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct WorkloadShape {
    /// Computing nodes in the topology (drives per-decision inference cost).
    pub nodes: usize,
    /// Flat action-space size (drives the Q-head width).
    pub actions: usize,
    /// Episodes the run will execute.
    pub episodes: usize,
}

/// Which rollout engine a plan selected.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum EngineChoice {
    /// Fan whole episodes out over worker threads (one policy per worker).
    EpisodeParallel,
    /// Step `lanes` episodes in lockstep, batching every inference call.
    Lockstep {
        /// Lane width of each lockstep batch.
        lanes: usize,
    },
}

/// A resolved autoscaling decision.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct AutoscalePlan {
    /// The engine to run.
    pub engine: EngineChoice,
    /// Worker threads for the episode fan-out.
    pub threads: usize,
    /// Whether `ACSO_THREADS` (or an explicit caller override) pinned the
    /// thread count instead of the detected parallelism.
    pub threads_overridden: bool,
    /// Whether `ACSO_BATCH` (or an explicit caller override) pinned the
    /// engine choice instead of the shape heuristic.
    pub engine_overridden: bool,
}

impl AutoscalePlan {
    /// Lane width when the plan selected the lockstep engine.
    pub fn lanes(&self) -> Option<usize> {
        match self.engine {
            EngineChoice::EpisodeParallel => None,
            EngineChoice::Lockstep { lanes } => Some(lanes),
        }
    }

    /// One-line human/JSON-friendly summary, e.g.
    /// `"lockstep lanes=16 threads=8 (auto)"`.
    pub fn describe(&self) -> String {
        let engine = match self.engine {
            EngineChoice::EpisodeParallel => "episode-parallel".to_string(),
            EngineChoice::Lockstep { lanes } => format!("lockstep lanes={lanes}"),
        };
        let provenance = match (self.engine_overridden, self.threads_overridden) {
            (false, false) => "auto",
            (true, false) => "engine pinned",
            (false, true) => "threads pinned",
            (true, true) => "engine+threads pinned",
        };
        format!("{engine} threads={} ({provenance})", self.threads)
    }
}

/// Node count at which batched inference starts to pay: at this size the
/// per-decision network forward dominates the step, and amortising it across
/// lockstep lanes beats episode-level parallelism alone.
pub const LOCKSTEP_NODE_THRESHOLD: usize = 192;

/// Action-space size with the same effect (wide Q-heads batch well even on
/// mid-sized topologies).
pub const LOCKSTEP_ACTION_THRESHOLD: usize = 1_536;

/// Widest lane count the heuristic will pick on its own (overrides may go
/// higher). Past this width the inference batch stops gaining and lane
/// divergence — episodes ending at different times — starts wasting slots.
pub const MAX_AUTO_LANES: usize = 16;

/// The machine's detected parallelism (1 if unknown), ignoring every
/// override.
pub fn detected_cores() -> usize {
    thread::available_parallelism().map_or(1, |n| n.get())
}

/// Plans the engine for a workload using detected cores and the
/// `ACSO_THREADS` / `ACSO_BATCH` environment overrides. Deterministic given
/// the same shape, machine and environment — see [`plan_with`] for the pure
/// core.
pub fn plan(shape: &WorkloadShape) -> AutoscalePlan {
    plan_with(
        shape,
        detected_cores(),
        crate::threads_override(),
        crate::batch_lanes(),
    )
}

/// The pure planning function: no environment reads, no machine probes.
///
/// * `threads_override` / `lanes_override` pin the respective decision when
///   `Some` (the environment variables, or an explicit caller choice).
/// * Otherwise threads default to `cores` and the engine follows the shape:
///   topologies at or above [`LOCKSTEP_NODE_THRESHOLD`] nodes (or action
///   spaces at or above [`LOCKSTEP_ACTION_THRESHOLD`]) run lockstep with
///   `episodes.clamp(1, MAX_AUTO_LANES)` lanes; everything smaller runs
///   episode-parallel, where per-decision cost is too small for batching to
///   beat the scatter/gather overhead.
pub fn plan_with(
    shape: &WorkloadShape,
    cores: usize,
    threads_override: Option<usize>,
    lanes_override: Option<usize>,
) -> AutoscalePlan {
    let threads_overridden = threads_override.is_some();
    let threads = threads_override.unwrap_or_else(|| cores.max(1)).max(1);
    let (engine, engine_overridden) = match lanes_override {
        Some(lanes) => (
            EngineChoice::Lockstep {
                lanes: lanes.max(1),
            },
            true,
        ),
        None => {
            let batch_pays = shape.nodes >= LOCKSTEP_NODE_THRESHOLD
                || shape.actions >= LOCKSTEP_ACTION_THRESHOLD;
            let engine = if batch_pays {
                EngineChoice::Lockstep {
                    lanes: shape.episodes.clamp(1, MAX_AUTO_LANES),
                }
            } else {
                EngineChoice::EpisodeParallel
            };
            (engine, false)
        }
    };
    AutoscalePlan {
        engine,
        threads,
        threads_overridden,
        engine_overridden,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn shape(nodes: usize, actions: usize, episodes: usize) -> WorkloadShape {
        WorkloadShape {
            nodes,
            actions,
            episodes,
        }
    }

    #[test]
    fn small_topologies_stay_episode_parallel() {
        let p = plan_with(&shape(33, 250, 100), 8, None, None);
        assert_eq!(p.engine, EngineChoice::EpisodeParallel);
        assert_eq!(p.threads, 8);
        assert!(!p.engine_overridden && !p.threads_overridden);
        assert_eq!(p.lanes(), None);
    }

    #[test]
    fn large_topologies_go_lockstep_with_bounded_lanes() {
        let p = plan_with(&shape(1_000, 7_101, 100), 8, None, None);
        assert_eq!(
            p.engine,
            EngineChoice::Lockstep {
                lanes: MAX_AUTO_LANES
            }
        );
        // Fewer episodes than the cap: every lane is an episode.
        let few = plan_with(&shape(1_000, 7_101, 5), 8, None, None);
        assert_eq!(few.engine, EngineChoice::Lockstep { lanes: 5 });
        // Wide action spaces trigger the same path on mid-sized topologies.
        let wide = plan_with(&shape(120, 2_000, 50), 8, None, None);
        assert!(matches!(wide.engine, EngineChoice::Lockstep { .. }));
    }

    #[test]
    fn overrides_pin_the_decision() {
        let p = plan_with(&shape(1_000, 7_101, 100), 8, Some(2), Some(4));
        assert_eq!(p.engine, EngineChoice::Lockstep { lanes: 4 });
        assert_eq!(p.threads, 2);
        assert!(p.engine_overridden && p.threads_overridden);

        // A lanes override forces lockstep even on a tiny topology.
        let forced = plan_with(&shape(10, 80, 4), 8, None, Some(3));
        assert_eq!(forced.engine, EngineChoice::Lockstep { lanes: 3 });
        assert_eq!(forced.lanes(), Some(3));
    }

    #[test]
    fn degenerate_inputs_are_clamped() {
        let p = plan_with(&shape(1_000, 7_101, 0), 0, Some(0), Some(0));
        assert!(p.threads >= 1);
        assert_eq!(p.engine, EngineChoice::Lockstep { lanes: 1 });
        let auto = plan_with(&shape(1_000, 7_101, 0), 0, None, None);
        assert_eq!(auto.engine, EngineChoice::Lockstep { lanes: 1 });
        assert_eq!(auto.threads, 1);
    }

    #[test]
    fn plans_are_deterministic_and_described() {
        let a = plan_with(&shape(500, 3_600, 20), 4, None, None);
        let b = plan_with(&shape(500, 3_600, 20), 4, None, None);
        assert_eq!(a, b);
        assert_eq!(a.describe(), "lockstep lanes=16 threads=4 (auto)");
        let serial = plan_with(&shape(20, 150, 20), 4, Some(1), None);
        assert_eq!(
            serial.describe(),
            "episode-parallel threads=1 (threads pinned)"
        );
    }
}
