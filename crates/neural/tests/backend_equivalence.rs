//! Cross-backend equivalence: every registered kernel backend must match
//! [`ReferenceBackend`] at its declared [`Tolerance`] on every kernel, and
//! the runtime-dispatch scalar fallback of the SIMD backend must be
//! bit-identical to the reference.
//!
//! The reference backend itself is covered by construction (its kernels
//! *are* the pre-seam code; the golden fixtures pin it), so the tests here
//! focus on the seam mechanics plus — behind `backend-simd` — the AVX2/FMA
//! kernels across ragged shapes (37-column tails, the stacked `[b*n, n]`
//! block-diagonal attention case) driven by proptest.

use neural::backend::{all_backends, backend_by_name, BackendRef, ReferenceBackend, Tolerance};
use neural::layers::SelfAttention;
use neural::{Batch, KernelBackend, Layer, Matrix, Scratch};
use proptest::prelude::*;

/// Asserts two matrices agree element-wise under `tol`.
fn assert_close(tol: Tolerance, got: &Matrix, want: &Matrix, what: &str) {
    assert_eq!(got.shape(), want.shape(), "{what}: shape");
    for (i, (g, w)) in got.data().iter().zip(want.data()).enumerate() {
        assert!(
            tol.allows(*g, *w),
            "{what}: element {i}: {g} vs {w} outside {tol:?}"
        );
    }
}

#[test]
fn scratch_carries_its_backend() {
    let reference: BackendRef = backend_by_name("reference").unwrap();
    let scratch = Scratch::with_backend(reference);
    assert_eq!(scratch.backend().name(), "reference");
    // The process-wide default is the reference backend unless overridden.
    if std::env::var("ACSO_BACKEND").unwrap_or_default().is_empty() {
        assert_eq!(Scratch::new().backend().name(), "reference");
    }
}

#[test]
fn every_registered_backend_matches_reference_at_declared_tolerance() {
    // A deterministic spot-check over every compiled-in backend (the
    // feature-gated proptests below hammer the SIMD kernels much harder).
    let reference = ReferenceBackend;
    let a = deterministic(7, 37, 3);
    let b = deterministic(37, 23, 4);
    for be in all_backends() {
        let tol = be.tolerance();
        let mut got = Matrix::zeros(7, 23);
        let mut want = Matrix::zeros(7, 23);
        be.matmul_into(&a, &b, &mut got);
        reference.matmul_into(&a, &b, &mut want);
        assert_close(tol, &got, &want, be.name());
    }
}

/// Deterministic pseudo-random matrix in `[-2, 2)` (no shared RNG state, so
/// tests stay order-independent).
fn deterministic(rows: usize, cols: usize, seed: u64) -> Matrix {
    let mut state = seed.wrapping_mul(0x9e37_79b9_7f4a_7c15) | 1;
    let mut m = Matrix::zeros(rows, cols);
    for v in m.data_mut() {
        state = state
            .wrapping_mul(6364136223846793005)
            .wrapping_add(1442695040888963407);
        *v = ((state >> 33) % 4000) as f32 / 1000.0 - 2.0;
    }
    m
}

#[cfg(feature = "backend-simd")]
mod simd {
    use super::*;
    use neural::backend::SimdBackend;

    /// The scalar-fallback singleton: what the runtime dispatcher degrades
    /// to on hardware without AVX2+FMA.
    static SCALAR_FALLBACK: SimdBackend = SimdBackend::scalar_fallback();

    fn simd() -> BackendRef {
        backend_by_name("simd").expect("backend-simd build registers 'simd'")
    }

    #[test]
    fn simd_backend_is_registered_with_a_bounded_tolerance() {
        let be = simd();
        assert_eq!(be.name(), "simd");
        assert!(
            matches!(be.tolerance(), Tolerance::Bounded { .. }),
            "SIMD reorders reductions; it must not claim exactness"
        );
        // The registry default is still the reference backend.
        assert_eq!(all_backends()[0].name(), "reference");
    }

    #[test]
    fn scalar_fallback_dispatch_is_bit_identical_to_reference() {
        // With AVX2 masked off, every kernel must take the reference code
        // path — equality here is exact, not toleranced. This is the
        // behavior non-AVX2 hardware gets from runtime dispatch.
        let fallback: BackendRef = &SCALAR_FALLBACK;
        assert!(!SCALAR_FALLBACK.avx2_active());
        let reference = ReferenceBackend;
        let exact = Tolerance::Exact;

        let a = deterministic(5, 37, 11);
        let b = deterministic(37, 19, 12);
        let mut got = Matrix::zeros(5, 19);
        let mut want = Matrix::zeros(5, 19);
        fallback.matmul_into(&a, &b, &mut got);
        reference.matmul_into(&a, &b, &mut want);
        assert_close(exact, &got, &want, "fallback matmul");

        let mut got = deterministic(6, 30, 13);
        let mut want = got.clone();
        fallback.softmax_rows_inplace(&mut got);
        reference.softmax_rows_inplace(&mut want);
        assert_close(exact, &got, &want, "fallback softmax");

        // Whole-layer check through a Scratch pinned to the fallback.
        let mut attn_f = SelfAttention::new(8, 16, 4, 99);
        let mut attn_r = SelfAttention::new(8, 16, 4, 99);
        let mut scratch_f = Scratch::with_backend(fallback);
        let mut scratch_r = Scratch::with_backend(&ReferenceBackend);
        let x = deterministic(12, 8, 14);
        let batch = Batch::new(x, 3);
        let out_f = attn_f.forward_batch(&batch, &mut scratch_f);
        let out_r = attn_r.forward_batch(&batch, &mut scratch_r);
        assert_close(exact, out_f.matrix(), out_r.matrix(), "fallback attention");
    }

    /// Shapes covering register-tile boundaries: 16/8-wide column tiles,
    /// scalar tails (37 = 2·16 + 5), 4-row blocks with 1–3 row tails, and
    /// degenerate single-row/column cases.
    const GEMM_SHAPES: &[(usize, usize, usize)] = &[
        (1, 1, 1),
        (4, 8, 16),
        (5, 37, 23),
        (3, 64, 37),
        (13, 7, 8),
        (2, 5, 40),
        (7, 19, 1),
    ];

    fn mat_from(data: &[f32], rows: usize, cols: usize) -> Matrix {
        Matrix::from_vec(rows, cols, data[..rows * cols].to_vec())
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(16))]

        #[test]
        fn gemm_matches_reference_across_ragged_shapes(
            a_data in prop::collection::vec(-2.0f32..2.0, 13 * 64),
            b_data in prop::collection::vec(-2.0f32..2.0, 64 * 40),
        ) {
            let be = simd();
            let tol = be.tolerance();
            let reference = ReferenceBackend;
            for &(m, k, n) in GEMM_SHAPES {
                prop_assert!(a_data.len() >= m * k, "a buffer too small for {m}x{k}");
                prop_assert!(b_data.len() >= k * n && b_data.len() >= m * n,
                    "b buffer too small for {k}x{n}");
                let a = mat_from(&a_data, m, k);
                let b = mat_from(&b_data, k, n);
                let mut got = Matrix::zeros(m, n);
                let mut want = Matrix::zeros(m, n);

                be.matmul_into(&a, &b, &mut got);
                reference.matmul_into(&a, &b, &mut want);
                assert_close(tol, &got, &want, &format!("matmul {m}x{k}x{n}"));

                // Accumulating form on non-zero output.
                let mut got = mat_from(&b_data, m, n);
                let mut want = got.clone();
                be.add_matmul(&mut got, &a, &b);
                reference.add_matmul(&mut want, &a, &b);
                assert_close(tol, &got, &want, &format!("add_matmul {m}x{k}x{n}"));

                // a · bᵀ with b as [n, k].
                let bt = mat_from(&b_data, n, k);
                let mut got = Matrix::zeros(m, n);
                let mut want = Matrix::zeros(m, n);
                be.matmul_transb_into(&a, &bt, &mut got);
                reference.matmul_transb_into(&a, &bt, &mut want);
                assert_close(tol, &got, &want, &format!("matmul_transb {m}x{k}x{n}"));
            }
        }

        #[test]
        fn transa_block_flushes_match_reference(
            a_data in prop::collection::vec(-2.0f32..2.0, 12 * 9),
            b_data in prop::collection::vec(-2.0f32..2.0, 12 * 37),
        ) {
            // The per-item parameter-gradient flush: [12, 9]ᵀ · [12, 37] in
            // three 4-row blocks, accumulated into a non-zero out — the
            // exact pattern backward_batch uses.
            let be = simd();
            let tol = be.tolerance();
            let reference = ReferenceBackend;
            let a = mat_from(&a_data, 12, 9);
            let b = mat_from(&b_data, 12, 37);
            let mut got = Matrix::full(9, 37, 0.25);
            let mut want = got.clone();
            for item in 0..3 {
                be.add_matmul_transa_blocks(&mut got, &a, &b, item * 4, 4);
                reference.add_matmul_transa_blocks(&mut want, &a, &b, item * 4, 4);
            }
            assert_close(tol, &got, &want, "add_matmul_transa_blocks");

            let mut got = Matrix::zeros(9, 37);
            let mut want = Matrix::zeros(9, 37);
            be.matmul_transa_into(&a, &b, &mut got);
            reference.matmul_transa_into(&a, &b, &mut want);
            assert_close(tol, &got, &want, "matmul_transa_into");
        }

        #[test]
        fn softmax_rows_match_reference(
            data in prop::collection::vec(-8.0f32..8.0, 5 * 37),
        ) {
            let be = simd();
            let tol = be.tolerance();
            for cols in [1usize, 7, 8, 9, 30, 37] {
                let mut got = mat_from(&data, 5, cols);
                let mut want = got.clone();
                be.softmax_rows_inplace(&mut got);
                ReferenceBackend.softmax_rows_inplace(&mut want);
                assert_close(tol, &got, &want, &format!("softmax cols={cols}"));
            }
        }

        #[test]
        fn fused_block_diagonal_attention_matches_reference(
            q_data in prop::collection::vec(-1.5f32..1.5, 4 * 9 * 16),
            k_data in prop::collection::vec(-1.5f32..1.5, 4 * 9 * 16),
            v_data in prop::collection::vec(-1.5f32..1.5, 4 * 9 * 16),
            g_data in prop::collection::vec(-1.0f32..1.0, 4 * 9 * 16),
        ) {
            // The stacked [b*n, ·] case the seam exists for: b=4 items of
            // n=9 rows (odd, exercises every tail) at d=16.
            let (b, n, d) = (4usize, 9usize, 16usize);
            let be = simd();
            let reference = ReferenceBackend;
            // Forward/backward chain several kernels, so the compounded
            // error bound is the declared kernel tolerance joined and
            // widened one order of magnitude — still far below anything a
            // greedy policy could notice.
            let tol = match be.tolerance().join(reference.tolerance()) {
                Tolerance::Bounded { rel, abs } => Tolerance::Bounded { rel: rel * 10.0, abs: abs * 10.0 },
                Tolerance::Exact => Tolerance::Exact,
            };
            let scale = 1.0 / (d as f32).sqrt();
            let q = Matrix::from_vec(b * n, d, q_data);
            let k = Matrix::from_vec(b * n, d, k_data);
            let v = Matrix::from_vec(b * n, d, v_data);
            let gm = Matrix::from_vec(b * n, d, g_data);

            let mut scratch_s = Scratch::with_backend(be);
            let mut scratch_r = Scratch::with_backend(&ReferenceBackend);

            let mut attn_s = Matrix::zeros(b * n, n);
            let mut attn_r = Matrix::zeros(b * n, n);
            let mut mixed_s = Matrix::zeros(b * n, d);
            let mut mixed_r = Matrix::zeros(b * n, d);
            be.attention_forward_fused(&q, &k, &v, b, scale, Some(&mut attn_s), &mut mixed_s, &mut scratch_s);
            reference.attention_forward_fused(&q, &k, &v, b, scale, Some(&mut attn_r), &mut mixed_r, &mut scratch_r);
            assert_close(tol, &attn_s, &attn_r, "fused attention scores");
            assert_close(tol, &mixed_s, &mixed_r, "fused attention mixed");

            // Inference form (no stacked-A materialisation) must agree with
            // the training form bit-for-bit within one backend.
            let mut mixed_inf = Matrix::zeros(b * n, d);
            be.attention_forward_fused(&q, &k, &v, b, scale, None, &mut mixed_inf, &mut scratch_s);
            assert_close(Tolerance::Exact, &mixed_inf, &mixed_s, "inference vs training mixed");

            // Backward off each backend's own cached scores.
            let mut gq_s = Matrix::zeros(b * n, d);
            let mut gk_s = Matrix::zeros(b * n, d);
            let mut gv_s = Matrix::zeros(b * n, d);
            let mut gq_r = Matrix::zeros(b * n, d);
            let mut gk_r = Matrix::zeros(b * n, d);
            let mut gv_r = Matrix::zeros(b * n, d);
            be.attention_backward_fused(&gm, &q, &k, &v, &attn_s, b, scale, &mut gq_s, &mut gk_s, &mut gv_s, &mut scratch_s);
            reference.attention_backward_fused(&gm, &q, &k, &v, &attn_r, b, scale, &mut gq_r, &mut gk_r, &mut gv_r, &mut scratch_r);
            assert_close(tol, &gq_s, &gq_r, "fused attention dQ");
            assert_close(tol, &gk_s, &gk_r, "fused attention dK");
            assert_close(tol, &gv_s, &gv_r, "fused attention dV");
        }

        #[test]
        fn full_attention_layer_passes_match_across_backends(
            x_data in prop::collection::vec(-1.0f32..1.0, 3 * 7 * 10),
        ) {
            // End-to-end through SelfAttention: stacked projections, fused
            // attention, output projection, then the batched backward with
            // parameter-gradient flushes. Error compounds through ~6 chained
            // kernels, so the bound is the joined kernel tolerance widened
            // by 100× — tight enough that a real kernel bug (wrong tail,
            // missed row) still fails by orders of magnitude.
            let (b, n, d_in) = (3usize, 7usize, 10usize);
            let be = simd();
            let tol = match be.tolerance() {
                Tolerance::Bounded { rel, abs } => Tolerance::Bounded { rel: rel * 100.0, abs: abs * 100.0 },
                Tolerance::Exact => Tolerance::Exact,
            };
            let x = Matrix::from_vec(b * n, d_in, x_data);

            let mut layer_s = SelfAttention::new(d_in, 16, 6, 42);
            let mut layer_r = SelfAttention::new(d_in, 16, 6, 42);
            let mut scratch_s = Scratch::with_backend(be);
            let mut scratch_r = Scratch::with_backend(&ReferenceBackend);

            let batch = Batch::new(x, b);
            let out_s = layer_s.forward_batch_train(&batch, &mut scratch_s);
            let out_r = layer_r.forward_batch_train(&batch, &mut scratch_r);
            assert_close(tol, out_s.matrix(), out_r.matrix(), "layer forward");

            let ones = Batch::new(Matrix::full(b * n, 6, 1.0), b);
            layer_s.zero_grad();
            layer_r.zero_grad();
            let gin_s = layer_s.backward_batch(&ones, &mut scratch_s);
            let gin_r = layer_r.backward_batch(&ones, &mut scratch_r);
            assert_close(tol, gin_s.matrix(), gin_r.matrix(), "layer grad_input");
            for (ps, pr) in layer_s.params_mut().iter().zip(layer_r.params_mut().iter()) {
                assert_close(tol, &ps.grad, &pr.grad, "layer param grad");
            }
        }
    }
}
