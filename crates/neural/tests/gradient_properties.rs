//! Property-based gradient checks: for randomly sized layers and random
//! inputs, the analytic backward pass must agree with central finite
//! differences, and optimizer updates must decrease simple convex losses.

use neural::layers::{Activation, Conv1d, Dense, SelfAttention, Sequential};
use neural::loss::{huber, mse};
use neural::optim::{Adam, Sgd};
use neural::{Layer, Matrix, Param, Scratch};
use proptest::prelude::*;

/// Strategy for a small random matrix with values in [-1, 1].
fn matrix(rows: usize, cols: usize) -> impl Strategy<Value = Matrix> {
    prop::collection::vec(-1.0f32..1.0, rows * cols)
        .prop_map(move |data| Matrix::from_vec(rows, cols, data))
}

fn finite_diff_input<L: Layer>(
    layer: &mut L,
    x: &Matrix,
    row: usize,
    col: usize,
    scratch: &mut Scratch,
) -> f32 {
    let eps = 1e-2f32;
    let mut plus = x.clone();
    plus.set(row, col, x.get(row, col) + eps);
    let mut minus = x.clone();
    minus.set(row, col, x.get(row, col) - eps);
    let f_plus = layer.forward(&plus, scratch).sum();
    let f_minus = layer.forward(&minus, scratch).sum();
    (f_plus - f_minus) / (2.0 * eps)
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(16))]

    #[test]
    fn dense_input_gradient_matches_finite_differences(
        x in matrix(3, 4),
        seed in 0u64..1_000,
    ) {
        let mut scratch = Scratch::new();
        let mut layer = Dense::new(4, 5, seed);
        let out = layer.forward(&x, &mut scratch);
        let ones = Matrix::full(out.rows(), out.cols(), 1.0);
        layer.zero_grad();
        let grad_in = layer.backward(&ones, &mut scratch);
        let numeric = finite_diff_input(&mut layer, &x, 1, 2, &mut scratch);
        prop_assert!((grad_in.get(1, 2) - numeric).abs() < 5e-2,
            "analytic {} vs numeric {}", grad_in.get(1, 2), numeric);
    }

    #[test]
    fn attention_input_gradient_matches_finite_differences(
        x in matrix(3, 4),
        seed in 0u64..1_000,
    ) {
        let mut scratch = Scratch::new();
        let mut layer = SelfAttention::new(4, 6, 3, seed);
        let out = layer.forward(&x, &mut scratch);
        let ones = Matrix::full(out.rows(), out.cols(), 1.0);
        layer.zero_grad();
        let grad_in = layer.backward(&ones, &mut scratch);
        let numeric = finite_diff_input(&mut layer, &x, 2, 1, &mut scratch);
        prop_assert!((grad_in.get(2, 1) - numeric).abs() < 8e-2,
            "analytic {} vs numeric {}", grad_in.get(2, 1), numeric);
    }

    #[test]
    fn conv1d_input_gradient_matches_finite_differences(
        x in matrix(6, 3),
        seed in 0u64..1_000,
    ) {
        let mut scratch = Scratch::new();
        let mut layer = Conv1d::new(3, 4, 2, 2, seed);
        let out = layer.forward(&x, &mut scratch);
        let ones = Matrix::full(out.rows(), out.cols(), 1.0);
        layer.zero_grad();
        let grad_in = layer.backward(&ones, &mut scratch);
        let numeric = finite_diff_input(&mut layer, &x, 2, 1, &mut scratch);
        prop_assert!((grad_in.get(2, 1) - numeric).abs() < 5e-2,
            "analytic {} vs numeric {}", grad_in.get(2, 1), numeric);
    }

    #[test]
    fn activations_never_amplify_gradients_beyond_unity(
        x in matrix(2, 6),
        grad in matrix(2, 6),
    ) {
        let mut scratch = Scratch::new();
        for mut act in [Activation::relu(), Activation::leaky_relu(), Activation::tanh()] {
            let _ = act.forward(&x, &mut scratch);
            let g = act.backward(&grad, &mut scratch);
            for i in 0..g.rows() {
                for j in 0..g.cols() {
                    prop_assert!(g.get(i, j).abs() <= grad.get(i, j).abs() + 1e-6);
                }
            }
        }
    }

    #[test]
    fn losses_are_non_negative_and_zero_only_at_target(
        pred in matrix(2, 3),
        target in matrix(2, 3),
    ) {
        let (h, hg) = huber(&pred, &target, 1.0);
        let (m, mg) = mse(&pred, &target);
        prop_assert!(h >= 0.0 && m >= 0.0);
        prop_assert_eq!(hg.shape(), pred.shape());
        prop_assert_eq!(mg.shape(), pred.shape());
        let (h_self, _) = huber(&pred, &pred, 1.0);
        prop_assert_eq!(h_self, 0.0);
    }

    #[test]
    fn sgd_and_adam_reduce_a_quadratic_loss(start in -3.0f32..3.0) {
        for use_adam in [false, true] {
            let mut p = Param::new(Matrix::row_vector(&[start]));
            let mut adam = Adam::new(0.05);
            let mut sgd = Sgd::new(0.1);
            let initial = (start - 1.5).abs();
            for _ in 0..300 {
                p.zero_grad();
                let g = p.value.map(|x| 2.0 * (x - 1.5));
                p.accumulate_grad(&g);
                if use_adam {
                    adam.step(&mut [&mut p]);
                } else {
                    sgd.step(&mut [&mut p]);
                }
            }
            let finald = (p.value.get(0, 0) - 1.5).abs();
            prop_assert!(finald <= initial + 1e-3);
            prop_assert!(finald < 0.2, "optimizer did not converge: {finald}");
        }
    }
}

#[test]
fn deep_network_gradients_remain_finite() {
    // A deeper stack than any used by the agent: check numerical stability.
    let mut net = Sequential::new(vec![
        Box::new(Dense::new(8, 32, 1)),
        Box::new(Activation::relu()),
        Box::new(Dense::new(32, 32, 2)),
        Box::new(Activation::tanh()),
        Box::new(Dense::new(32, 32, 3)),
        Box::new(Activation::leaky_relu()),
        Box::new(Dense::new(32, 4, 4)),
    ]);
    let mut scratch = Scratch::new();
    let x = Matrix::full(5, 8, 0.3);
    let out = net.forward(&x, &mut scratch);
    let (_, grad) = mse(&out, &Matrix::zeros(5, 4));
    net.zero_grad();
    let grad_in = net.backward(&grad, &mut scratch);
    assert!(grad_in.data().iter().all(|v| v.is_finite()));
    for p in net.params_mut() {
        assert!(p.grad.data().iter().all(|v| v.is_finite()));
    }
}
