//! The batch-first inference contract: for every layer type,
//! `forward_batch` over a strided [`Batch`] produces, for each item, output
//! **bit-identical** to a solo `forward` on that item — and leaves the
//! backward caches untouched.

use neural::batch::Batch;
use neural::layers::{Activation, Conv1d, Dense, SelfAttention, Sequential};
use neural::{Layer, Matrix, Scratch};

/// A deterministic pseudo-random input: values vary across items so leakage
/// between items (the bug the per-item boundary prevents) would change bits.
fn stacked_input(items: usize, rows_per_item: usize, cols: usize, seed: u64) -> Batch {
    let mut state = seed.wrapping_mul(0x9E37_79B9_7F4A_7C15).wrapping_add(1);
    let mut next = move || {
        state ^= state << 13;
        state ^= state >> 7;
        state ^= state << 17;
        (state % 2_000) as f32 / 1_000.0 - 1.0
    };
    let mut m = Matrix::zeros(items * rows_per_item, cols);
    for v in m.data_mut() {
        *v = next();
    }
    Batch::new(m, items)
}

/// Asserts every item of `layer.forward_batch(input)` equals the solo
/// forward on that item, bit for bit.
fn assert_batch_matches_solo(layer: &mut dyn Layer, input: &Batch) {
    let mut scratch = Scratch::new();
    let batched = layer.forward_batch(input, &mut scratch);
    assert_eq!(batched.items(), input.items());
    let mut item_in = Matrix::zeros(input.rows_per_item(), input.cols());
    for i in 0..input.items() {
        input.copy_item_into(i, &mut item_in);
        let solo = layer.forward(&item_in, &mut scratch);
        assert_eq!(
            batched.item(i),
            solo.data(),
            "item {i} of the batched output diverged from the solo forward"
        );
        scratch.recycle(solo);
    }
}

#[test]
fn dense_batch_is_bit_identical_per_item() {
    let mut layer = Dense::new(6, 4, 3);
    assert_batch_matches_solo(&mut layer, &stacked_input(5, 3, 6, 1));
    // Flat items (rows_per_item = 1), the baseline-net shape.
    assert_batch_matches_solo(&mut layer, &stacked_input(32, 1, 6, 2));
}

#[test]
fn activation_batch_is_bit_identical_per_item() {
    for mut layer in [
        Activation::relu(),
        Activation::leaky_relu(),
        Activation::tanh(),
    ] {
        assert_batch_matches_solo(&mut layer, &stacked_input(4, 2, 5, 7));
    }
}

#[test]
fn conv1d_batch_is_bit_identical_per_item() {
    // Stride 2 with kernel 3 over 8-step items: windows must restart at each
    // item boundary, never straddle it.
    let mut layer = Conv1d::new(3, 4, 3, 2, 11);
    assert_batch_matches_solo(&mut layer, &stacked_input(6, 8, 3, 13));
}

#[test]
fn attention_batch_is_bit_identical_per_item() {
    // The attention matrix must be block-diagonal over items: every item's
    // rows attend only to that item's rows.
    let mut layer = SelfAttention::new(5, 8, 4, 17);
    assert_batch_matches_solo(&mut layer, &stacked_input(7, 6, 5, 19));
    assert_batch_matches_solo(&mut layer, &stacked_input(1, 6, 5, 23));
}

#[test]
fn sequential_batch_is_bit_identical_per_item() {
    let mut layer = Sequential::new(vec![
        Box::new(Dense::new(5, 8, 1)) as Box<dyn Layer>,
        Box::new(Activation::relu()),
        Box::new(SelfAttention::new(8, 8, 6, 2)),
        Box::new(Dense::new(6, 3, 3)),
        Box::new(Activation::tanh()),
    ]);
    assert_batch_matches_solo(&mut layer, &stacked_input(4, 5, 5, 29));
}

#[test]
fn forward_batch_does_not_clobber_backward_caches() {
    // A forward/backward training pair may bracket any number of batched
    // inference calls: the gradients must be what they would have been with
    // no batched call in between.
    let mut scratch = Scratch::new();
    let make = || SelfAttention::new(4, 6, 3, 5);
    let x = stacked_input(1, 4, 4, 31).into_matrix();
    let grad = Matrix::full(4, 3, 1.0);

    let mut reference = make();
    let ref_out = reference.forward(&x, &mut scratch);
    reference.zero_grad();
    let ref_grad_in = reference.backward(&grad, &mut scratch);

    let mut interleaved = make();
    let out = interleaved.forward(&x, &mut scratch);
    let batch = stacked_input(8, 4, 4, 37);
    let batched = interleaved.forward_batch(&batch, &mut scratch);
    scratch.recycle(batched.into_matrix());
    interleaved.zero_grad();
    let grad_in = interleaved.backward(&grad, &mut scratch);

    assert_eq!(out.data(), ref_out.data());
    assert_eq!(grad_in.data(), ref_grad_in.data());
    for (a, b) in reference
        .params_mut()
        .iter()
        .zip(interleaved.params_mut().iter())
    {
        assert_eq!(a.grad.data(), b.grad.data(), "parameter gradients diverged");
    }
}

#[test]
fn batched_attention_blocks_do_not_leak_between_items() {
    // Same item data placed next to different neighbours must produce the
    // same output — the direct statement of the no-leak property.
    let mut scratch = Scratch::new();
    let mut layer = SelfAttention::new(4, 6, 3, 41);
    let block = stacked_input(1, 5, 4, 43).into_matrix();
    let noise_a = stacked_input(1, 5, 4, 47).into_matrix();
    let noise_b = stacked_input(1, 5, 4, 53).into_matrix();

    let mut with_a = Matrix::zeros(10, 4);
    with_a.write_row_block(0, &block);
    with_a.write_row_block(5, &noise_a);
    let mut with_b = Matrix::zeros(10, 4);
    with_b.write_row_block(0, &block);
    with_b.write_row_block(5, &noise_b);

    let out_a = layer.forward_batch(&Batch::new(with_a, 2), &mut scratch);
    let out_b = layer.forward_batch(&Batch::new(with_b, 2), &mut scratch);
    assert_eq!(out_a.item(0), out_b.item(0));
    assert_ne!(out_a.item(1), out_b.item(1));
}
