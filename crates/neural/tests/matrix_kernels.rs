//! Property tests for the blocked/in-place matrix kernels against naive
//! reference implementations.
//!
//! The tiled `matmul_into` kernel accumulates every output element in
//! ascending-`k` order — the naive dot-product order — so its output must
//! match the reference *exactly* on block-aligned sizes, and to at most
//! 1 ulp otherwise (in practice it is exact at every size; the tolerance
//! only documents the contract). The lane-parallel `matmul_transb_into`
//! reduction reorders sums by design and is held to a small ulp bound
//! instead.

use neural::Matrix;
use proptest::prelude::*;

/// Naive reference `a · b`: dot products accumulated in ascending `k`.
fn reference_matmul(a: &Matrix, b: &Matrix) -> Matrix {
    let mut out = Matrix::zeros(a.rows(), b.cols());
    for i in 0..a.rows() {
        for j in 0..b.cols() {
            let mut acc = 0.0f32;
            for k in 0..a.cols() {
                acc += a.get(i, k) * b.get(k, j);
            }
            out.set(i, j, acc);
        }
    }
    out
}

/// Distance in units-in-the-last-place between two finite `f32` values.
fn ulp_distance(a: f32, b: f32) -> u32 {
    let to_ordered = |x: f32| {
        let bits = x.to_bits() as i32;
        if bits < 0 {
            i32::MIN.wrapping_sub(bits)
        } else {
            bits
        }
    };
    to_ordered(a).abs_diff(to_ordered(b))
}

fn matrix(rows: usize, cols: usize) -> impl Strategy<Value = Matrix> {
    prop::collection::vec(-2.0f32..2.0, rows * cols)
        .prop_map(move |data| Matrix::from_vec(rows, cols, data))
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    // An inner dimension spanning several 32-column output tiles: the
    // "aligned" case where exact equality is required (and delivered —
    // the per-element ascending-k order matches the naive reference).
    #[test]
    fn blocked_matmul_is_exact_on_block_aligned_inner_dims(
        a in matrix(3, 64),
        b in matrix(64, 5),
    ) {
        let mut out = Matrix::zeros(3, 5);
        a.matmul_into(&b, &mut out);
        let reference = reference_matmul(&a, &b);
        prop_assert_eq!(out, reference);
    }

    #[test]
    fn blocked_matmul_matches_reference_within_one_ulp_on_odd_sizes(
        a in matrix(5, 67),
        b in matrix(67, 3),
    ) {
        let mut out = Matrix::zeros(5, 3);
        a.matmul_into(&b, &mut out);
        let reference = reference_matmul(&a, &b);
        for i in 0..out.rows() {
            for j in 0..out.cols() {
                let (x, y) = (out.get(i, j), reference.get(i, j));
                prop_assert!(
                    ulp_distance(x, y) <= 1,
                    "({}, {}): {} vs {} differ by more than 1 ulp", i, j, x, y
                );
            }
        }
    }

    #[test]
    fn transposed_variants_match_the_plain_kernel(
        a in matrix(4, 6),
        b in matrix(6, 3),
    ) {
        let reference = reference_matmul(&a, &b);

        // aᵀ presented transposed: (aᵀ)ᵀ·b via matmul_transa_into.
        let at = a.transpose();
        let mut out = Matrix::zeros(4, 3);
        at.matmul_transa_into(&b, &mut out);
        prop_assert_eq!(&out, &reference);

        // b presented transposed: a·(bᵀ)ᵀ via matmul_transb_into. Inner
        // dimension 6 stays below the 8-lane threshold, so this path is
        // sequential and exact.
        let bt = b.transpose();
        let mut out = Matrix::zeros(4, 3);
        a.matmul_transb_into(&bt, &mut out);
        prop_assert_eq!(&out, &reference);
    }

    // Inner dimension 37 exercises the lane-parallel reduction of
    // matmul_transb_into (4 full 8-lane chunks + a 5-element tail), whose
    // summation order differs from the naive reference by design: hold it
    // to a small ulp bound rather than exact equality.
    #[test]
    fn lane_parallel_transb_matches_reference_within_ulps(
        a in matrix(3, 37),
        b in matrix(37, 4),
    ) {
        let reference = reference_matmul(&a, &b);
        let bt = b.transpose();
        let mut out = Matrix::zeros(3, 4);
        a.matmul_transb_into(&bt, &mut out);
        for i in 0..out.rows() {
            for j in 0..out.cols() {
                let (x, y) = (out.get(i, j), reference.get(i, j));
                prop_assert!(
                    ulp_distance(x, y) <= 64 || (x - y).abs() <= 1e-5,
                    "({}, {}): {} vs {} reassociation error too large", i, j, x, y
                );
            }
        }
    }

    #[test]
    fn accumulating_kernels_add_onto_existing_contents(
        a in matrix(3, 4),
        b in matrix(4, 2),
        base in matrix(3, 2),
    ) {
        let mut out = base.clone();
        out.add_matmul(&a, &b);
        // Reference: the ascending-k dot product is accumulated in registers
        // and added onto the existing contents once — the kernel's
        // documented semantics.
        for i in 0..out.rows() {
            for j in 0..out.cols() {
                let mut acc = 0.0f32;
                for k in 0..a.cols() {
                    acc += a.get(i, k) * b.get(k, j);
                }
                prop_assert_eq!(out.get(i, j), base.get(i, j) + acc);
            }
        }
    }

    #[test]
    fn in_place_map_and_add_match_allocating_forms(
        a in matrix(4, 4),
        b in matrix(4, 4),
    ) {
        let mut m = a.clone();
        m.add_assign(&b);
        prop_assert_eq!(&m, &a.add(&b));

        let mut m = a.clone();
        m.map_inplace(|x| 0.5 * x + 1.0);
        prop_assert_eq!(&m, &a.map(|x| 0.5 * x + 1.0));

        let mut t = Matrix::zeros(4, 4);
        a.transpose_into(&mut t);
        prop_assert_eq!(&t, &a.transpose());
    }
}
