//! The batch-first training contract, mirroring `batch_forward.rs`: for
//! every layer type, `forward_batch_train` + `backward_batch` over a strided
//! [`Batch`] produce, for each item, an input gradient **bit-identical** to a
//! solo `forward`/`backward` pair on that item — and parameter gradients
//! bit-identical to the serial per-sample accumulation in item order. This
//! is the layer-level property that lets the batched DQN update reproduce
//! serial-update training transcripts exactly.

use neural::batch::Batch;
use neural::layers::{Activation, Conv1d, Dense, SelfAttention, Sequential};
use neural::{Layer, Matrix, Scratch};

/// A deterministic pseudo-random stacked input (values vary across items so
/// any leakage between items would change bits).
fn stacked(items: usize, rows_per_item: usize, cols: usize, seed: u64) -> Batch {
    let mut state = seed.wrapping_mul(0x9E37_79B9_7F4A_7C15).wrapping_add(1);
    let mut next = move || {
        state ^= state << 13;
        state ^= state >> 7;
        state ^= state << 17;
        (state % 2_000) as f32 / 1_000.0 - 1.0
    };
    let mut m = Matrix::zeros(items * rows_per_item, cols);
    for v in m.data_mut() {
        *v = next();
    }
    Batch::new(m, items)
}

/// Runs the batched training pass on `batched` and the serial per-sample
/// loop on `solo` (two identically-initialised instances of one layer) and
/// asserts: per-item outputs, per-item input gradients, and the summed
/// parameter gradients are all bit-identical.
fn assert_training_matches_serial(
    batched: &mut dyn Layer,
    solo: &mut dyn Layer,
    input: &Batch,
    grad_seed: u64,
) {
    let mut scratch = Scratch::new();

    // Batched pass: one stacked forward, one stacked backward.
    let out = batched.forward_batch_train(input, &mut scratch);
    let grad = stacked(out.items(), out.rows_per_item(), out.cols(), grad_seed);
    batched.zero_grad();
    let grad_in = batched.backward_batch(&grad, &mut scratch);
    assert_eq!(grad_in.items(), input.items());
    assert_eq!(grad_in.rows_per_item(), input.rows_per_item());

    // Serial reference: forward/backward per item, gradients accumulating
    // across the loop exactly as the pre-refactor per-sample update did.
    solo.zero_grad();
    let mut item_in = Matrix::zeros(input.rows_per_item(), input.cols());
    let mut item_grad = Matrix::zeros(out.rows_per_item(), out.cols());
    for i in 0..input.items() {
        input.copy_item_into(i, &mut item_in);
        let solo_out = solo.forward(&item_in, &mut scratch);
        assert_eq!(
            out.item(i),
            solo_out.data(),
            "item {i}: batched training forward diverged from solo forward"
        );
        scratch.recycle(solo_out);
        grad.copy_item_into(i, &mut item_grad);
        let solo_grad_in = solo.backward(&item_grad, &mut scratch);
        assert_eq!(
            grad_in.item(i),
            solo_grad_in.data(),
            "item {i}: batched input gradient diverged from solo backward"
        );
        scratch.recycle(solo_grad_in);
    }

    for (j, (a, b)) in batched
        .params_mut()
        .iter()
        .zip(solo.params_mut().iter())
        .enumerate()
    {
        assert_eq!(
            a.grad.data(),
            b.grad.data(),
            "parameter {j}: batched gradient diverged from serial accumulation"
        );
    }
}

#[test]
fn dense_batched_training_is_bit_identical_to_serial() {
    // Multi-row items (the attention net's per-node shape) take the
    // per-item-flush path; flat items (the baseline-net shape) take the
    // single stacked kernel call.
    for (items, rows, seed) in [(5usize, 3usize, 1u64), (32, 1, 2), (1, 4, 3)] {
        let mut batched = Dense::new(6, 4, 9);
        let mut solo = Dense::new(6, 4, 9);
        assert_training_matches_serial(
            &mut batched,
            &mut solo,
            &stacked(items, rows, 6, seed),
            seed.wrapping_add(100),
        );
    }
}

#[test]
fn dense_wide_output_exercises_the_ragged_gradient_tail() {
    // 37 output columns: the per-item gradient kernel's 32-lane tile plus a
    // ragged tail, both of which must flush per item.
    let mut batched = Dense::new(5, 37, 4);
    let mut solo = Dense::new(5, 37, 4);
    assert_training_matches_serial(&mut batched, &mut solo, &stacked(4, 3, 5, 5), 6);
}

#[test]
fn activation_batched_training_is_bit_identical_to_serial() {
    for make in [Activation::relu, Activation::leaky_relu, Activation::tanh] {
        let mut batched = make();
        let mut solo = make();
        assert_training_matches_serial(&mut batched, &mut solo, &stacked(4, 2, 5, 7), 8);
    }
}

#[test]
fn attention_batched_training_is_bit_identical_to_serial() {
    // The attention gradients must stay block-diagonal over items: each
    // item's rows receive gradient only from that item's rows.
    let mut batched = SelfAttention::new(5, 8, 4, 17);
    let mut solo = SelfAttention::new(5, 8, 4, 17);
    assert_training_matches_serial(&mut batched, &mut solo, &stacked(7, 6, 5, 19), 20);
    // A batch of one degenerates to the solo pass.
    let mut batched = SelfAttention::new(5, 8, 4, 23);
    let mut solo = SelfAttention::new(5, 8, 4, 23);
    assert_training_matches_serial(&mut batched, &mut solo, &stacked(1, 6, 5, 29), 30);
}

#[test]
fn conv1d_batched_training_is_bit_identical_to_serial() {
    // Stride 2, kernel 3 over 8-step items: backward windows must restart at
    // each item boundary, never straddle it.
    let mut batched = Conv1d::new(3, 4, 3, 2, 11);
    let mut solo = Conv1d::new(3, 4, 3, 2, 11);
    assert_training_matches_serial(&mut batched, &mut solo, &stacked(6, 8, 3, 13), 14);
}

#[test]
fn sequential_batched_training_is_bit_identical_to_serial() {
    let make = || {
        Sequential::new(vec![
            Box::new(Dense::new(5, 8, 1)) as Box<dyn Layer>,
            Box::new(Activation::relu()),
            Box::new(SelfAttention::new(8, 8, 6, 2)),
            Box::new(Dense::new(6, 3, 3)),
            Box::new(Activation::tanh()),
        ])
    };
    let mut batched = make();
    let mut solo = make();
    assert_training_matches_serial(&mut batched, &mut solo, &stacked(4, 5, 5, 31), 32);
}

#[test]
fn batched_training_pass_survives_interleaved_batched_inference() {
    // The inference-only `forward_batch` may run between a training
    // `forward_batch_train` and its `backward_batch` without changing any
    // gradient — the training caches and the inference path are disjoint.
    let mut scratch = Scratch::new();
    let make = || SelfAttention::new(4, 6, 3, 5);
    let input = stacked(3, 4, 4, 41);
    let grad = stacked(3, 4, 3, 43);

    let mut reference = make();
    let _ = reference.forward_batch_train(&input, &mut scratch);
    reference.zero_grad();
    let ref_grad_in = reference.backward_batch(&grad, &mut scratch);

    let mut interleaved = make();
    let _ = interleaved.forward_batch_train(&input, &mut scratch);
    let noise = stacked(5, 4, 4, 47);
    let out = interleaved.forward_batch(&noise, &mut scratch);
    scratch.recycle(out.into_matrix());
    interleaved.zero_grad();
    let grad_in = interleaved.backward_batch(&grad, &mut scratch);

    assert_eq!(grad_in.matrix().data(), ref_grad_in.matrix().data());
    for (a, b) in reference
        .params_mut()
        .iter()
        .zip(interleaved.params_mut().iter())
    {
        assert_eq!(a.grad.data(), b.grad.data(), "parameter gradients diverged");
    }
}

#[test]
fn steady_state_batched_training_reuses_scratch_buffers() {
    // After warm-up, repeated train-mode passes must cycle pooled buffers
    // (the batch-sized caches included) rather than growing new ones.
    let mut scratch = Scratch::new();
    let mut layer = SelfAttention::new(5, 8, 4, 3);
    let input = stacked(6, 4, 5, 51);
    let grad = stacked(6, 4, 4, 53);
    for _ in 0..3 {
        let out = layer.forward_batch_train(&input, &mut scratch);
        scratch.recycle(out.into_matrix());
        layer.zero_grad();
        let g = layer.backward_batch(&grad, &mut scratch);
        scratch.recycle(g.into_matrix());
    }
    let pooled = scratch.pooled();
    for _ in 0..5 {
        let out = layer.forward_batch_train(&input, &mut scratch);
        scratch.recycle(out.into_matrix());
        layer.zero_grad();
        let g = layer.backward_batch(&grad, &mut scratch);
        scratch.recycle(g.into_matrix());
    }
    assert_eq!(
        scratch.pooled(),
        pooled,
        "steady-state batched training grew the scratch pool"
    );
}
