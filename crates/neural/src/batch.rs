//! A strided batch view: many independent items stacked along the row axis.
//!
//! The batch-first inference path amortises per-call overhead across
//! concurrent episodes: instead of one forward pass per observation, the
//! layers accept a [`Batch`] of `items` independent inputs packed into a
//! single row-major [`Matrix`], item `i` occupying the contiguous row block
//! `i * rows_per_item .. (i + 1) * rows_per_item` (a constant stride of
//! `rows_per_item` rows between item starts).
//!
//! Row-wise layers (dense, activation) process the whole stacked matrix with
//! one tiled kernel call; layers that mix information *across* rows
//! (self-attention over the nodes of one state, 1-D convolution over one
//! history) use the item boundary so no information leaks between items and
//! every item's output is **bit-identical** to a solo [`crate::Layer::forward`]
//! pass — the contract `tests/batch_forward.rs` pins down, and the property
//! that lets the batched rollout engine promise bit-identical transcripts.

use crate::matrix::Matrix;
use crate::scratch::Scratch;

/// `items` equally-sized inputs stacked along the row axis of one matrix.
///
/// The wrapped matrix has `items * rows_per_item` rows; item `i` is the row
/// block starting at `i * rows_per_item`. A batch of flat (single-row) inputs
/// has `rows_per_item == 1`.
#[derive(Debug, Clone)]
pub struct Batch {
    matrix: Matrix,
    items: usize,
}

impl Batch {
    /// Wraps a stacked matrix as a batch of `items` row blocks.
    ///
    /// # Panics
    ///
    /// Panics if `items` is zero or does not divide the row count.
    pub fn new(matrix: Matrix, items: usize) -> Self {
        assert!(items > 0, "a batch needs at least one item");
        assert_eq!(
            matrix.rows() % items,
            0,
            "{} rows do not split into {} equal items",
            matrix.rows(),
            items
        );
        Self { matrix, items }
    }

    /// Takes a zeroed `items x rows_per_item x cols` batch from a scratch
    /// pool.
    pub fn take(scratch: &mut Scratch, items: usize, rows_per_item: usize, cols: usize) -> Self {
        Self::new(scratch.take(items * rows_per_item, cols), items)
    }

    /// Number of items in the batch.
    pub fn items(&self) -> usize {
        self.items
    }

    /// Rows occupied by each item (the stride between item starts).
    pub fn rows_per_item(&self) -> usize {
        self.matrix.rows() / self.items
    }

    /// Column count shared by every item.
    pub fn cols(&self) -> usize {
        self.matrix.cols()
    }

    /// The stacked backing matrix.
    pub fn matrix(&self) -> &Matrix {
        &self.matrix
    }

    /// Mutable access to the stacked backing matrix.
    pub fn matrix_mut(&mut self) -> &mut Matrix {
        &mut self.matrix
    }

    /// Consumes the batch, returning the stacked matrix (e.g. to recycle it
    /// back into a [`Scratch`] pool).
    pub fn into_matrix(self) -> Matrix {
        self.matrix
    }

    /// First row of item `i`.
    pub fn item_start(&self, item: usize) -> usize {
        assert!(item < self.items, "item {item} out of {}", self.items);
        item * self.rows_per_item()
    }

    /// Copies item `i`'s row block into `out` (a `rows_per_item x cols`
    /// matrix).
    pub fn copy_item_into(&self, item: usize, out: &mut Matrix) {
        self.matrix.copy_row_block_into(self.item_start(item), out);
    }

    /// Overwrites item `i`'s row block with `src` (a `rows_per_item x cols`
    /// matrix).
    pub fn write_item(&mut self, item: usize, src: &Matrix) {
        let start = self.item_start(item);
        self.matrix.write_row_block(start, src);
    }

    /// Item `i`'s rows as one contiguous row-major slice.
    pub fn item(&self, item: usize) -> &[f32] {
        let start = self.item_start(item) * self.cols();
        let len = self.rows_per_item() * self.cols();
        &self.matrix.data()[start..start + len]
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn batches_split_rows_into_item_blocks() {
        let m = Matrix::from_rows(&[&[1.0, 2.0], &[3.0, 4.0], &[5.0, 6.0], &[7.0, 8.0]]);
        let batch = Batch::new(m, 2);
        assert_eq!(batch.items(), 2);
        assert_eq!(batch.rows_per_item(), 2);
        assert_eq!(batch.cols(), 2);
        assert_eq!(batch.item_start(1), 2);
        assert_eq!(batch.item(1), &[5.0, 6.0, 7.0, 8.0]);
    }

    #[test]
    fn item_blocks_copy_in_and_out() {
        let mut scratch = Scratch::new();
        let mut batch = Batch::take(&mut scratch, 3, 2, 2);
        let block = Matrix::from_rows(&[&[1.0, 2.0], &[3.0, 4.0]]);
        batch.write_item(1, &block);
        let mut out = Matrix::zeros(2, 2);
        batch.copy_item_into(1, &mut out);
        assert_eq!(out, block);
        // Neighbouring items stay zero.
        assert_eq!(batch.item(0), &[0.0; 4]);
        assert_eq!(batch.item(2), &[0.0; 4]);
        scratch.recycle(batch.into_matrix());
        assert_eq!(scratch.pooled(), 1);
    }

    #[test]
    #[should_panic(expected = "do not split")]
    fn uneven_batches_are_rejected() {
        let _ = Batch::new(Matrix::zeros(5, 2), 2);
    }
}
