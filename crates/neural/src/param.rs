//! Trainable parameters: a value matrix paired with its gradient accumulator.

use crate::matrix::Matrix;
use serde::{Deserialize, Serialize};

/// A trainable parameter.
///
/// Layers expose their parameters as `&mut Param` so optimizers can update
/// values in place; gradients accumulate across backward passes until
/// [`Param::zero_grad`] is called.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Param {
    /// Current value of the parameter.
    pub value: Matrix,
    /// Accumulated gradient of the loss with respect to the value.
    pub grad: Matrix,
}

impl Param {
    /// Creates a parameter from an initial value with a zeroed gradient.
    pub fn new(value: Matrix) -> Self {
        let grad = Matrix::zeros(value.rows(), value.cols());
        Self { value, grad }
    }

    /// Clears the accumulated gradient in place (no allocation).
    pub fn zero_grad(&mut self) {
        self.grad.fill(0.0);
    }

    /// Adds a gradient contribution.
    ///
    /// # Panics
    ///
    /// Panics if the gradient's shape differs from the parameter's.
    pub fn accumulate_grad(&mut self, grad: &Matrix) {
        self.grad.accumulate(grad);
    }

    /// Number of scalar values in the parameter.
    pub fn len(&self) -> usize {
        self.value.len()
    }

    /// Whether the parameter is empty.
    pub fn is_empty(&self) -> bool {
        self.value.is_empty()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn gradients_accumulate_and_reset() {
        let mut p = Param::new(Matrix::zeros(2, 2));
        assert_eq!(p.len(), 4);
        assert!(!p.is_empty());
        let g = Matrix::full(2, 2, 1.0);
        p.accumulate_grad(&g);
        p.accumulate_grad(&g);
        assert_eq!(p.grad.sum(), 8.0);
        p.zero_grad();
        assert_eq!(p.grad.sum(), 0.0);
    }
}
