//! Optimizers.

use crate::matrix::Matrix;
use crate::param::Param;

/// Plain stochastic gradient descent.
#[derive(Debug, Clone)]
pub struct Sgd {
    learning_rate: f32,
}

impl Sgd {
    /// Creates an SGD optimizer with the given learning rate.
    pub fn new(learning_rate: f32) -> Self {
        Self { learning_rate }
    }

    /// Applies one update to every parameter using its accumulated gradient
    /// (in place, no allocation).
    pub fn step(&mut self, params: &mut [&mut Param]) {
        for p in params.iter_mut() {
            let lr = self.learning_rate;
            p.value.add_scaled(&p.grad, -lr);
        }
    }
}

/// The Adam optimizer (Kingma & Ba, 2015), used for all training in the paper
/// with an initial learning rate of 1e-4.
#[derive(Debug, Clone)]
pub struct Adam {
    learning_rate: f32,
    beta1: f32,
    beta2: f32,
    epsilon: f32,
    step_count: u64,
    first_moments: Vec<Matrix>,
    second_moments: Vec<Matrix>,
}

impl Adam {
    /// Creates an Adam optimizer with the given learning rate and standard
    /// moment decay rates (0.9, 0.999).
    pub fn new(learning_rate: f32) -> Self {
        Self {
            learning_rate,
            beta1: 0.9,
            beta2: 0.999,
            epsilon: 1e-8,
            step_count: 0,
            first_moments: Vec::new(),
            second_moments: Vec::new(),
        }
    }

    /// The optimizer's learning rate.
    pub fn learning_rate(&self) -> f32 {
        self.learning_rate
    }

    /// Sets a new learning rate (e.g. for decay schedules).
    pub fn set_learning_rate(&mut self, learning_rate: f32) {
        self.learning_rate = learning_rate;
    }

    /// Number of updates applied so far.
    pub fn steps(&self) -> u64 {
        self.step_count
    }

    /// Applies one Adam update to every parameter using its accumulated
    /// gradient. Parameters must be passed in the same order on every call:
    /// moment estimates are matched positionally.
    ///
    /// # Panics
    ///
    /// Panics if the number of parameters changes between calls.
    pub fn step(&mut self, params: &mut [&mut Param]) {
        if self.first_moments.is_empty() {
            self.first_moments = params
                .iter()
                .map(|p| Matrix::zeros(p.value.rows(), p.value.cols()))
                .collect();
            self.second_moments = self.first_moments.clone();
        }
        assert_eq!(
            params.len(),
            self.first_moments.len(),
            "parameter count changed between Adam steps"
        );
        self.step_count += 1;
        let t = self.step_count as f32;
        let bias1 = 1.0 - self.beta1.powf(t);
        let bias2 = 1.0 - self.beta2.powf(t);
        let inv_bias1 = 1.0 / bias1;
        let inv_bias2 = 1.0 / bias2;
        // Everything below runs element-wise over pre-allocated moment
        // buffers: the steady-state optimizer step performs no allocation.
        for (i, p) in params.iter_mut().enumerate() {
            let m = &mut self.first_moments[i];
            let v = &mut self.second_moments[i];
            for (((mv, vv), value), &g) in m
                .data_mut()
                .iter_mut()
                .zip(v.data_mut())
                .zip(p.value.data_mut())
                .zip(p.grad.data())
            {
                *mv = self.beta1 * *mv + (1.0 - self.beta1) * g;
                *vv = self.beta2 * *vv + (1.0 - self.beta2) * (g * g);
                let m_hat = *mv * inv_bias1;
                let v_hat = *vv * inv_bias2;
                *value -= self.learning_rate * m_hat / (v_hat.sqrt() + self.epsilon);
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn quadratic_grad(p: &Param) -> Matrix {
        // d/dx (x - 3)^2 = 2(x - 3)
        p.value.map(|x| 2.0 * (x - 3.0))
    }

    #[test]
    fn sgd_minimises_quadratic() {
        let mut p = Param::new(Matrix::row_vector(&[0.0]));
        let mut opt = Sgd::new(0.1);
        for _ in 0..200 {
            p.zero_grad();
            let g = quadratic_grad(&p);
            p.accumulate_grad(&g);
            opt.step(&mut [&mut p]);
        }
        assert!((p.value.get(0, 0) - 3.0).abs() < 1e-3);
    }

    #[test]
    fn adam_minimises_quadratic_faster_than_sgd_with_tiny_lr() {
        let mut p = Param::new(Matrix::row_vector(&[-5.0]));
        let mut opt = Adam::new(0.05);
        for _ in 0..2_000 {
            p.zero_grad();
            let g = quadratic_grad(&p);
            p.accumulate_grad(&g);
            opt.step(&mut [&mut p]);
        }
        assert!((p.value.get(0, 0) - 3.0).abs() < 1e-2);
        assert_eq!(opt.steps(), 2_000);
    }

    #[test]
    fn adam_learning_rate_accessors() {
        let mut opt = Adam::new(1e-4);
        assert_eq!(opt.learning_rate(), 1e-4);
        opt.set_learning_rate(1e-3);
        assert_eq!(opt.learning_rate(), 1e-3);
    }

    #[test]
    #[should_panic(expected = "parameter count changed")]
    fn adam_rejects_changing_parameter_sets() {
        let mut p1 = Param::new(Matrix::row_vector(&[0.0]));
        let mut p2 = Param::new(Matrix::row_vector(&[0.0]));
        let mut opt = Adam::new(0.01);
        opt.step(&mut [&mut p1, &mut p2]);
        opt.step(&mut [&mut p1]);
    }
}
