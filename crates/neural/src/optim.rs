//! Optimizers.

use crate::matrix::Matrix;
use crate::param::Param;

/// A malformed optimizer-state blob handed to `restore_state`.
///
/// The message names what was found and what was expected so a corrupt
/// checkpoint is diagnosable from the error alone.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct OptimStateError(String);

impl std::fmt::Display for OptimStateError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "optimizer state: {}", self.0)
    }
}

impl std::error::Error for OptimStateError {}

/// Byte-cursor over an optimizer-state blob; every read is bounds-checked so
/// truncated input surfaces as an error, never a panic.
struct StateReader<'a> {
    bytes: &'a [u8],
    at: usize,
}

impl<'a> StateReader<'a> {
    fn new(bytes: &'a [u8]) -> Self {
        Self { bytes, at: 0 }
    }

    fn take(&mut self, n: usize) -> Result<&'a [u8], OptimStateError> {
        if self.bytes.len() - self.at < n {
            return Err(OptimStateError(format!(
                "truncated: wanted {n} bytes at offset {}, have {}",
                self.at,
                self.bytes.len() - self.at
            )));
        }
        let out = &self.bytes[self.at..self.at + n];
        self.at += n;
        Ok(out)
    }

    fn u32(&mut self) -> Result<u32, OptimStateError> {
        Ok(u32::from_le_bytes(self.take(4)?.try_into().unwrap()))
    }

    fn u64(&mut self) -> Result<u64, OptimStateError> {
        Ok(u64::from_le_bytes(self.take(8)?.try_into().unwrap()))
    }

    fn f32(&mut self) -> Result<f32, OptimStateError> {
        Ok(f32::from_bits(self.u32()?))
    }

    fn finish(self) -> Result<(), OptimStateError> {
        if self.at != self.bytes.len() {
            return Err(OptimStateError(format!(
                "{} trailing bytes after state",
                self.bytes.len() - self.at
            )));
        }
        Ok(())
    }
}

fn push_matrix(out: &mut Vec<u8>, m: &Matrix) {
    out.extend_from_slice(&(m.rows() as u32).to_le_bytes());
    out.extend_from_slice(&(m.cols() as u32).to_le_bytes());
    for &x in m.data() {
        out.extend_from_slice(&x.to_bits().to_le_bytes());
    }
}

fn read_matrix(r: &mut StateReader<'_>) -> Result<Matrix, OptimStateError> {
    let rows = r.u32()? as usize;
    let cols = r.u32()? as usize;
    let mut m = Matrix::zeros(rows, cols);
    for x in m.data_mut() {
        *x = r.f32()?;
    }
    Ok(m)
}

/// Plain stochastic gradient descent.
#[derive(Debug, Clone)]
pub struct Sgd {
    learning_rate: f32,
}

impl Sgd {
    /// Creates an SGD optimizer with the given learning rate.
    pub fn new(learning_rate: f32) -> Self {
        Self { learning_rate }
    }

    /// Applies one update to every parameter using its accumulated gradient
    /// (in place, no allocation).
    pub fn step(&mut self, params: &mut [&mut Param]) {
        for p in params.iter_mut() {
            let lr = self.learning_rate;
            p.value.add_scaled(&p.grad, -lr);
        }
    }

    /// Serializes the optimizer's state (just the learning rate — SGD is
    /// stateless across steps) for inclusion in a checkpoint.
    pub fn state_bytes(&self) -> Vec<u8> {
        self.learning_rate.to_bits().to_le_bytes().to_vec()
    }

    /// Restores state previously produced by [`Sgd::state_bytes`].
    pub fn restore_state(&mut self, bytes: &[u8]) -> Result<(), OptimStateError> {
        let mut r = StateReader::new(bytes);
        self.learning_rate = r.f32()?;
        r.finish()
    }
}

/// The Adam optimizer (Kingma & Ba, 2015), used for all training in the paper
/// with an initial learning rate of 1e-4.
#[derive(Debug, Clone)]
pub struct Adam {
    learning_rate: f32,
    beta1: f32,
    beta2: f32,
    epsilon: f32,
    step_count: u64,
    first_moments: Vec<Matrix>,
    second_moments: Vec<Matrix>,
}

impl Adam {
    /// Creates an Adam optimizer with the given learning rate and standard
    /// moment decay rates (0.9, 0.999).
    pub fn new(learning_rate: f32) -> Self {
        Self {
            learning_rate,
            beta1: 0.9,
            beta2: 0.999,
            epsilon: 1e-8,
            step_count: 0,
            first_moments: Vec::new(),
            second_moments: Vec::new(),
        }
    }

    /// The optimizer's learning rate.
    pub fn learning_rate(&self) -> f32 {
        self.learning_rate
    }

    /// Sets a new learning rate (e.g. for decay schedules).
    pub fn set_learning_rate(&mut self, learning_rate: f32) {
        self.learning_rate = learning_rate;
    }

    /// Number of updates applied so far.
    pub fn steps(&self) -> u64 {
        self.step_count
    }

    /// Applies one Adam update to every parameter using its accumulated
    /// gradient. Parameters must be passed in the same order on every call:
    /// moment estimates are matched positionally.
    ///
    /// # Panics
    ///
    /// Panics if the number of parameters changes between calls.
    pub fn step(&mut self, params: &mut [&mut Param]) {
        if self.first_moments.is_empty() {
            self.first_moments = params
                .iter()
                .map(|p| Matrix::zeros(p.value.rows(), p.value.cols()))
                .collect();
            self.second_moments = self.first_moments.clone();
        }
        assert_eq!(
            params.len(),
            self.first_moments.len(),
            "parameter count changed between Adam steps"
        );
        self.step_count += 1;
        let t = self.step_count as f32;
        let bias1 = 1.0 - self.beta1.powf(t);
        let bias2 = 1.0 - self.beta2.powf(t);
        let inv_bias1 = 1.0 / bias1;
        let inv_bias2 = 1.0 / bias2;
        // Everything below runs element-wise over pre-allocated moment
        // buffers: the steady-state optimizer step performs no allocation.
        for (i, p) in params.iter_mut().enumerate() {
            let m = &mut self.first_moments[i];
            let v = &mut self.second_moments[i];
            for (((mv, vv), value), &g) in m
                .data_mut()
                .iter_mut()
                .zip(v.data_mut())
                .zip(p.value.data_mut())
                .zip(p.grad.data())
            {
                *mv = self.beta1 * *mv + (1.0 - self.beta1) * g;
                *vv = self.beta2 * *vv + (1.0 - self.beta2) * (g * g);
                let m_hat = *mv * inv_bias1;
                let v_hat = *vv * inv_bias2;
                *value -= self.learning_rate * m_hat / (v_hat.sqrt() + self.epsilon);
            }
        }
    }

    /// Serializes the full optimizer state — hyperparameters, step count and
    /// both moment vectors — so a restored run continues bias correction and
    /// moment decay exactly where the saved run stopped.
    pub fn state_bytes(&self) -> Vec<u8> {
        let mut out = Vec::new();
        out.extend_from_slice(&self.step_count.to_le_bytes());
        for h in [self.learning_rate, self.beta1, self.beta2, self.epsilon] {
            out.extend_from_slice(&h.to_bits().to_le_bytes());
        }
        out.extend_from_slice(&(self.first_moments.len() as u32).to_le_bytes());
        for m in self.first_moments.iter().chain(&self.second_moments) {
            push_matrix(&mut out, m);
        }
        out
    }

    /// Restores state previously produced by [`Adam::state_bytes`]. A
    /// truncated or malformed blob leaves the optimizer untouched and returns
    /// an error describing the first defect.
    pub fn restore_state(&mut self, bytes: &[u8]) -> Result<(), OptimStateError> {
        let mut r = StateReader::new(bytes);
        let step_count = r.u64()?;
        let learning_rate = r.f32()?;
        let beta1 = r.f32()?;
        let beta2 = r.f32()?;
        let epsilon = r.f32()?;
        let count = r.u32()? as usize;
        let mut moments = Vec::with_capacity(2 * count);
        for _ in 0..2 * count {
            moments.push(read_matrix(&mut r)?);
        }
        r.finish()?;
        let second_moments = moments.split_off(count);
        self.step_count = step_count;
        self.learning_rate = learning_rate;
        self.beta1 = beta1;
        self.beta2 = beta2;
        self.epsilon = epsilon;
        self.first_moments = moments;
        self.second_moments = second_moments;
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn quadratic_grad(p: &Param) -> Matrix {
        // d/dx (x - 3)^2 = 2(x - 3)
        p.value.map(|x| 2.0 * (x - 3.0))
    }

    #[test]
    fn sgd_minimises_quadratic() {
        let mut p = Param::new(Matrix::row_vector(&[0.0]));
        let mut opt = Sgd::new(0.1);
        for _ in 0..200 {
            p.zero_grad();
            let g = quadratic_grad(&p);
            p.accumulate_grad(&g);
            opt.step(&mut [&mut p]);
        }
        assert!((p.value.get(0, 0) - 3.0).abs() < 1e-3);
    }

    #[test]
    fn adam_minimises_quadratic_faster_than_sgd_with_tiny_lr() {
        let mut p = Param::new(Matrix::row_vector(&[-5.0]));
        let mut opt = Adam::new(0.05);
        for _ in 0..2_000 {
            p.zero_grad();
            let g = quadratic_grad(&p);
            p.accumulate_grad(&g);
            opt.step(&mut [&mut p]);
        }
        assert!((p.value.get(0, 0) - 3.0).abs() < 1e-2);
        assert_eq!(opt.steps(), 2_000);
    }

    #[test]
    fn adam_learning_rate_accessors() {
        let mut opt = Adam::new(1e-4);
        assert_eq!(opt.learning_rate(), 1e-4);
        opt.set_learning_rate(1e-3);
        assert_eq!(opt.learning_rate(), 1e-3);
    }

    #[test]
    fn adam_state_round_trip_is_bit_identical() {
        // Train one optimizer partway, snapshot, keep training; a fresh
        // optimizer restored from the snapshot must produce bit-identical
        // parameters over the same remaining steps.
        let run = |snapshot_at: Option<u64>| -> (Vec<u8>, Vec<f32>) {
            let mut p = Param::new(Matrix::row_vector(&[-5.0, 4.0, 0.5]));
            let mut opt = Adam::new(0.05);
            let mut saved = Vec::new();
            for step in 0..50u64 {
                if snapshot_at == Some(step) {
                    saved = opt.state_bytes();
                    let mut restored = Adam::new(999.0);
                    restored.restore_state(&saved).unwrap();
                    opt = restored;
                }
                p.zero_grad();
                let g = quadratic_grad(&p);
                p.accumulate_grad(&g);
                opt.step(&mut [&mut p]);
            }
            (saved, p.value.data().to_vec())
        };
        let (_, uninterrupted) = run(None);
        let (saved, resumed) = run(Some(23));
        assert!(!saved.is_empty());
        assert_eq!(
            uninterrupted
                .iter()
                .map(|x| x.to_bits())
                .collect::<Vec<_>>(),
            resumed.iter().map(|x| x.to_bits()).collect::<Vec<_>>(),
        );
    }

    #[test]
    fn adam_restore_rejects_truncated_state_and_leaves_optimizer_intact() {
        let mut p = Param::new(Matrix::row_vector(&[1.0, 2.0]));
        let mut opt = Adam::new(0.01);
        p.accumulate_grad(&quadratic_grad(&p));
        opt.step(&mut [&mut p]);
        let good = opt.state_bytes();
        let before = opt.state_bytes();
        let err = opt.restore_state(&good[..good.len() - 3]).unwrap_err();
        assert!(err.to_string().contains("truncated"), "{err}");
        assert_eq!(opt.state_bytes(), before, "failed restore must not mutate");
        let mut extended = good.clone();
        extended.push(0);
        let err = opt.restore_state(&extended).unwrap_err();
        assert!(err.to_string().contains("trailing"), "{err}");
    }

    #[test]
    fn sgd_state_round_trip() {
        let mut opt = Sgd::new(0.125);
        let bytes = opt.state_bytes();
        let mut restored = Sgd::new(0.5);
        restored.restore_state(&bytes).unwrap();
        assert_eq!(restored.learning_rate.to_bits(), 0.125f32.to_bits());
        assert!(opt.restore_state(&[1, 2]).is_err());
    }

    #[test]
    #[should_panic(expected = "parameter count changed")]
    fn adam_rejects_changing_parameter_sets() {
        let mut p1 = Param::new(Matrix::row_vector(&[0.0]));
        let mut p2 = Param::new(Matrix::row_vector(&[0.0]));
        let mut opt = Adam::new(0.01);
        opt.step(&mut [&mut p1, &mut p2]);
        opt.step(&mut [&mut p1]);
    }
}
