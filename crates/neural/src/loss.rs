//! Loss functions.

use crate::matrix::Matrix;

/// Huber loss between predictions and targets, element-wise averaged.
///
/// Returns `(loss, gradient)` where the gradient has the same shape as the
/// predictions and is already divided by the number of elements, so it can be
/// fed straight into a backward pass.
///
/// # Panics
///
/// Panics if the shapes differ.
pub fn huber(pred: &Matrix, target: &Matrix, delta: f32) -> (f32, Matrix) {
    assert_eq!(pred.shape(), target.shape(), "huber shape mismatch");
    let n = pred.len().max(1) as f32;
    let mut loss = 0.0;
    let mut grad = Matrix::zeros(pred.rows(), pred.cols());
    for i in 0..pred.rows() {
        for j in 0..pred.cols() {
            let diff = pred.get(i, j) - target.get(i, j);
            if diff.abs() <= delta {
                loss += 0.5 * diff * diff;
                grad.set(i, j, diff / n);
            } else {
                loss += delta * (diff.abs() - 0.5 * delta);
                grad.set(i, j, delta * diff.signum() / n);
            }
        }
    }
    (loss / n, grad)
}

/// Mean-squared-error loss; returns `(loss, gradient)` like [`huber`].
///
/// # Panics
///
/// Panics if the shapes differ.
pub fn mse(pred: &Matrix, target: &Matrix) -> (f32, Matrix) {
    assert_eq!(pred.shape(), target.shape(), "mse shape mismatch");
    let n = pred.len().max(1) as f32;
    let diff = pred.sub(target);
    let loss = diff.data().iter().map(|d| d * d).sum::<f32>() / (2.0 * n);
    let grad = diff.scale(1.0 / n);
    (loss, grad)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn huber_is_quadratic_inside_delta() {
        let pred = Matrix::row_vector(&[0.5]);
        let target = Matrix::row_vector(&[0.0]);
        let (loss, grad) = huber(&pred, &target, 1.0);
        assert!((loss - 0.125).abs() < 1e-6);
        assert!((grad.get(0, 0) - 0.5).abs() < 1e-6);
    }

    #[test]
    fn huber_is_linear_outside_delta() {
        let pred = Matrix::row_vector(&[3.0]);
        let target = Matrix::row_vector(&[0.0]);
        let (loss, grad) = huber(&pred, &target, 1.0);
        assert!((loss - 2.5).abs() < 1e-6);
        assert!((grad.get(0, 0) - 1.0).abs() < 1e-6);
        let (_, neg_grad) = huber(&target, &pred, 1.0);
        assert!((neg_grad.get(0, 0) + 1.0).abs() < 1e-6);
    }

    #[test]
    fn huber_zero_when_equal() {
        let x = Matrix::row_vector(&[1.0, -2.0, 3.0]);
        let (loss, grad) = huber(&x, &x, 1.0);
        assert_eq!(loss, 0.0);
        assert_eq!(grad.sum(), 0.0);
    }

    #[test]
    fn mse_matches_hand_computation() {
        let pred = Matrix::row_vector(&[1.0, 2.0]);
        let target = Matrix::row_vector(&[0.0, 0.0]);
        let (loss, grad) = mse(&pred, &target);
        assert!((loss - 1.25).abs() < 1e-6);
        assert!((grad.get(0, 0) - 0.5).abs() < 1e-6);
        assert!((grad.get(0, 1) - 1.0).abs() < 1e-6);
    }

    #[test]
    fn gradient_descent_on_huber_converges() {
        // Minimise huber(x, 2.0) by gradient descent on x.
        let target = Matrix::row_vector(&[2.0]);
        let mut x = Matrix::row_vector(&[-3.0]);
        for _ in 0..500 {
            let (_, grad) = huber(&x, &target, 1.0);
            x = x.sub(&grad.scale(0.1));
        }
        assert!((x.get(0, 0) - 2.0).abs() < 1e-2);
    }
}
