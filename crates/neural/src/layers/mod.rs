//! Neural-network layers with explicit forward and backward passes.

mod activation;
mod attention;
mod conv1d;
mod dense;
mod sequential;

pub use activation::{Activation, ActivationKind};
pub use attention::SelfAttention;
pub use conv1d::Conv1d;
pub use dense::Dense;
pub use sequential::Sequential;

use crate::batch::Batch;
use crate::matrix::Matrix;
use crate::param::Param;
use crate::scratch::Scratch;

/// A differentiable layer.
///
/// Layers cache whatever they need from the most recent [`Layer::forward`]
/// call; [`Layer::backward`] consumes that cache, accumulates parameter
/// gradients, and returns the gradient with respect to the layer's input.
/// The intended calling pattern is strictly `forward` then `backward` for one
/// sample (or one stacked matrix of rows) at a time, with parameter gradients
/// accumulating across samples until the optimizer steps and
/// [`Layer::zero_grad`] is called.
///
/// [`Layer::forward_batch`] is the inference-only batch-first path: it
/// processes many independent items in one pass, leaves every backward cache
/// untouched, and guarantees each item's output is bit-identical to a solo
/// [`Layer::forward`] call on that item.
///
/// All passes draw their output and temporary matrices from the caller's
/// [`Scratch`] pool; returned matrices should eventually be
/// [`Scratch::recycle`]d so the steady-state pass allocates nothing. Layers
/// reuse their internal caches across calls for the same reason.
pub trait Layer: Send {
    /// Computes the layer output for an input, caching intermediate values
    /// needed by [`Layer::backward`]. The returned matrix comes from
    /// `scratch`.
    fn forward(&mut self, input: &Matrix, scratch: &mut Scratch) -> Matrix;

    /// Computes the layer output for a [`Batch`] of independent items.
    ///
    /// Two contracts distinguish this from [`Layer::forward`] on the stacked
    /// matrix:
    ///
    /// * **per-item bit-exactness** — item `i` of the output is bit-identical
    ///   to `forward` on item `i` alone. Row-wise layers get this for free
    ///   (the tiled kernels reduce each output element over ascending `k`
    ///   regardless of how many rows are stacked); layers that mix rows
    ///   (self-attention, 1-D convolution) respect the batch's item boundary
    ///   explicitly, so no information leaks between items.
    /// * **inference-only** — no backward cache is written or clobbered; a
    ///   `forward`/`backward` pair may bracket any number of
    ///   `forward_batch` calls.
    ///
    /// The returned batch's buffers come from `scratch`.
    fn forward_batch(&mut self, input: &Batch, scratch: &mut Scratch) -> Batch;

    /// Propagates the gradient of the loss with respect to the layer output
    /// back to the layer input, accumulating parameter gradients. The
    /// returned matrix comes from `scratch`.
    ///
    /// # Panics
    ///
    /// Implementations may panic if called before [`Layer::forward`] or with a
    /// gradient whose shape does not match the cached forward output.
    fn backward(&mut self, grad_output: &Matrix, scratch: &mut Scratch) -> Matrix;

    /// The training-mode batched forward: like [`Layer::forward_batch`] it
    /// processes many independent items in one pass with per-item
    /// bit-exactness, but it **does** write a batch-shaped forward cache for
    /// a subsequent [`Layer::backward_batch`].
    ///
    /// The default suits row-wise layers (dense, activation): the solo
    /// forward on the stacked matrix is already bit-identical per item (the
    /// tiled kernels reduce each output element over ascending `k`
    /// regardless of row count) and its cache *is* the stacked batch cache.
    /// Layers that mix rows (self-attention, 1-D convolution) override this
    /// with an explicit per-item boundary and a dedicated batch cache.
    ///
    /// A `forward_batch_train`/`backward_batch` pair may share cache storage
    /// with the solo `forward`/`backward` pair; the two pairs must not be
    /// interleaved. (The inference-only [`Layer::forward_batch`] remains safe
    /// to call between any pair.)
    fn forward_batch_train(&mut self, input: &Batch, scratch: &mut Scratch) -> Batch {
        let out = self.forward(input.matrix(), scratch);
        Batch::new(out, input.items())
    }

    /// Batched backward over the strided [`Batch`] view: consumes the cache
    /// written by [`Layer::forward_batch_train`], accumulates parameter
    /// gradients **summed over all items**, and returns the gradient with
    /// respect to the stacked input.
    ///
    /// The bit-exactness contract mirrors the forward one, extended to
    /// training: item `i`'s input gradient, and every parameter-gradient
    /// accumulation, is bit-identical to running solo
    /// `forward`/`backward` on each item in order — which is what lets the
    /// batched DQN update reproduce serial-update training transcripts
    /// exactly. The default serves row-wise layers whose per-item gradient
    /// contribution is a single row (dense with flat items, element-wise
    /// activations at any shape); layers with multi-row items flush their
    /// parameter-gradient accumulator once per item to preserve the serial
    /// summation order (see [`Matrix::add_matmul_transa_blocks`]).
    ///
    /// # Panics
    ///
    /// Implementations may panic if called before
    /// [`Layer::forward_batch_train`] or with a gradient whose shape does not
    /// match the cached forward output.
    fn backward_batch(&mut self, grad_output: &Batch, scratch: &mut Scratch) -> Batch {
        let grad_in = self.backward(grad_output.matrix(), scratch);
        Batch::new(grad_in, grad_output.items())
    }

    /// Mutable access to the layer's trainable parameters.
    fn params_mut(&mut self) -> Vec<&mut Param>;

    /// Clears the accumulated gradients of all parameters.
    fn zero_grad(&mut self) {
        for p in self.params_mut() {
            p.zero_grad();
        }
    }

    /// Total number of trainable scalar values in the layer.
    fn parameter_count(&mut self) -> usize {
        self.params_mut().iter().map(|p| p.len()).sum()
    }
}

/// Refreshes a layer's cached copy of its forward input, reusing the cache
/// allocation after the first call.
pub(crate) fn cache_input(cache: &mut Option<Matrix>, input: &Matrix) {
    match cache {
        Some(held) => held.copy_from(input),
        None => *cache = Some(input.clone()),
    }
}
