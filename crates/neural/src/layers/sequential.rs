//! A container that chains layers.

use crate::batch::Batch;
use crate::layers::Layer;
use crate::matrix::Matrix;
use crate::param::Param;
use crate::scratch::Scratch;

/// A stack of layers applied in order.
pub struct Sequential {
    layers: Vec<Box<dyn Layer>>,
}

impl Sequential {
    /// Creates a sequential model from a list of layers.
    pub fn new(layers: Vec<Box<dyn Layer>>) -> Self {
        Self { layers }
    }

    /// Number of layers.
    pub fn len(&self) -> usize {
        self.layers.len()
    }

    /// Whether the model has no layers.
    pub fn is_empty(&self) -> bool {
        self.layers.is_empty()
    }
}

impl std::fmt::Debug for Sequential {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "Sequential({} layers)", self.layers.len())
    }
}

impl Layer for Sequential {
    fn forward(&mut self, input: &Matrix, scratch: &mut Scratch) -> Matrix {
        let mut x = scratch.take_copy(input);
        for layer in &mut self.layers {
            let y = layer.forward(&x, scratch);
            scratch.recycle(x);
            x = y;
        }
        x
    }

    fn forward_batch(&mut self, input: &Batch, scratch: &mut Scratch) -> Batch {
        let mut x = Batch::new(scratch.take_copy(input.matrix()), input.items());
        for layer in &mut self.layers {
            let y = layer.forward_batch(&x, scratch);
            scratch.recycle(x.into_matrix());
            x = y;
        }
        x
    }

    fn backward(&mut self, grad_output: &Matrix, scratch: &mut Scratch) -> Matrix {
        let mut grad = scratch.take_copy(grad_output);
        for layer in self.layers.iter_mut().rev() {
            let g = layer.backward(&grad, scratch);
            scratch.recycle(grad);
            grad = g;
        }
        grad
    }

    fn forward_batch_train(&mut self, input: &Batch, scratch: &mut Scratch) -> Batch {
        let mut x = Batch::new(scratch.take_copy(input.matrix()), input.items());
        for layer in &mut self.layers {
            let y = layer.forward_batch_train(&x, scratch);
            scratch.recycle(x.into_matrix());
            x = y;
        }
        x
    }

    fn backward_batch(&mut self, grad_output: &Batch, scratch: &mut Scratch) -> Batch {
        let mut grad = Batch::new(scratch.take_copy(grad_output.matrix()), grad_output.items());
        for layer in self.layers.iter_mut().rev() {
            let g = layer.backward_batch(&grad, scratch);
            scratch.recycle(grad.into_matrix());
            grad = g;
        }
        grad
    }

    fn params_mut(&mut self) -> Vec<&mut Param> {
        self.layers
            .iter_mut()
            .flat_map(|l| l.params_mut())
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::layers::{Activation, Dense};
    use crate::loss::huber;
    use crate::optim::Adam;

    #[test]
    fn empty_and_len() {
        let s = Sequential::new(vec![]);
        assert!(s.is_empty());
        let s = Sequential::new(vec![Box::new(Dense::new(2, 2, 0)) as Box<dyn Layer>]);
        assert_eq!(s.len(), 1);
        assert!(!s.is_empty());
        assert!(format!("{s:?}").contains('1'));
    }

    #[test]
    fn mlp_learns_xor_like_separation() {
        // Train a small MLP to map two clusters to distinct outputs; this
        // exercises forward, backward and the optimizer end to end.
        let mut net = Sequential::new(vec![
            Box::new(Dense::new(2, 16, 1)),
            Box::new(Activation::relu()),
            Box::new(Dense::new(16, 1, 2)),
        ]);
        let mut opt = Adam::new(5e-3);
        let mut scratch = Scratch::new();
        let x = Matrix::from_rows(&[&[0.0, 0.0], &[0.0, 1.0], &[1.0, 0.0], &[1.0, 1.0]]);
        let y = Matrix::from_rows(&[&[0.0], &[1.0], &[1.0], &[0.0]]);
        let mut last_loss = f32::MAX;
        for _ in 0..2_000 {
            let pred = net.forward(&x, &mut scratch);
            let (loss, grad) = huber(&pred, &y, 1.0);
            last_loss = loss;
            net.zero_grad();
            let grad_in = net.backward(&grad, &mut scratch);
            scratch.recycle(pred);
            scratch.recycle(grad_in);
            opt.step(&mut net.params_mut());
        }
        assert!(last_loss < 0.03, "XOR loss did not converge: {last_loss}");
    }
}
