//! Element-wise activation layers.

use crate::batch::Batch;
use crate::layers::{cache_input, Layer};
use crate::matrix::Matrix;
use crate::param::Param;
use crate::scratch::Scratch;
use serde::{Deserialize, Serialize};

/// Supported activation functions.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum ActivationKind {
    /// Rectified linear unit.
    Relu,
    /// Leaky rectified linear unit with slope 0.01 for negative inputs
    /// (the paper's baseline network uses LeakyReLU).
    LeakyRelu,
    /// Hyperbolic tangent (the paper's output heads use tanh).
    Tanh,
}

impl ActivationKind {
    /// Applies the activation to one element. Kernel backends use this as
    /// the scalar reference each vectorized map must match (to tolerance).
    pub(crate) fn apply(&self, x: f32) -> f32 {
        match self {
            ActivationKind::Relu => x.max(0.0),
            ActivationKind::LeakyRelu => {
                if x > 0.0 {
                    x
                } else {
                    0.01 * x
                }
            }
            ActivationKind::Tanh => x.tanh(),
        }
    }

    /// The derivative expressed in terms of the activation *output*
    /// `y = f(x)` — cheap for every supported kind (`1 − y²` for tanh; the
    /// ReLUs' input sign is recoverable from the output sign since both are
    /// strictly increasing with `f(x) > 0 ⇔ x > 0`). Bit-identical to the
    /// textbook input-based derivative at the corresponding input.
    pub(crate) fn derivative_from_output(&self, y: f32) -> f32 {
        match self {
            ActivationKind::Relu => {
                if y > 0.0 {
                    1.0
                } else {
                    0.0
                }
            }
            ActivationKind::LeakyRelu => {
                if y > 0.0 {
                    1.0
                } else {
                    0.01
                }
            }
            ActivationKind::Tanh => 1.0 - y * y,
        }
    }
}

/// An element-wise activation layer.
#[derive(Debug, Clone)]
pub struct Activation {
    kind: ActivationKind,
    /// The *output* of the most recent forward pass: every supported kind's
    /// derivative is recoverable from it (see
    /// [`ActivationKind::derivative_from_output`]), which keeps tanh out of
    /// the backward pass entirely.
    cached_output: Option<Matrix>,
}

impl Activation {
    /// Creates an activation layer of the given kind.
    pub fn new(kind: ActivationKind) -> Self {
        Self {
            kind,
            cached_output: None,
        }
    }

    /// ReLU activation.
    pub fn relu() -> Self {
        Self::new(ActivationKind::Relu)
    }

    /// Leaky ReLU activation.
    pub fn leaky_relu() -> Self {
        Self::new(ActivationKind::LeakyRelu)
    }

    /// Tanh activation.
    pub fn tanh() -> Self {
        Self::new(ActivationKind::Tanh)
    }

    /// The activation kind.
    pub fn kind(&self) -> ActivationKind {
        self.kind
    }
}

impl Layer for Activation {
    fn forward(&mut self, input: &Matrix, scratch: &mut Scratch) -> Matrix {
        let be = scratch.backend();
        let mut out = scratch.take_copy(input);
        be.apply_activation(self.kind, &mut out);
        cache_input(&mut self.cached_output, &out);
        out
    }

    fn forward_batch(&mut self, input: &Batch, scratch: &mut Scratch) -> Batch {
        // Element-wise, so the stacked pass is trivially bit-identical per
        // item; the backward cache (the last solo forward's output) is left
        // untouched.
        let be = scratch.backend();
        let mut out = scratch.take_copy(input.matrix());
        be.apply_activation(self.kind, &mut out);
        Batch::new(out, input.items())
    }

    fn backward(&mut self, grad_output: &Matrix, scratch: &mut Scratch) -> Matrix {
        let output = self
            .cached_output
            .as_ref()
            .expect("backward called before forward");
        assert_eq!(
            grad_output.shape(),
            output.shape(),
            "activation gradient shape mismatch"
        );
        let be = scratch.backend();
        let mut grad_input = scratch.take(output.rows(), output.cols());
        be.activation_grad_from_output(self.kind, output, grad_output, &mut grad_input);
        grad_input
    }

    fn params_mut(&mut self) -> Vec<&mut Param> {
        Vec::new()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn relu_forward_backward() {
        let mut scratch = Scratch::new();
        let mut act = Activation::relu();
        let x = Matrix::row_vector(&[-1.0, 0.5, 2.0]);
        let y = act.forward(&x, &mut scratch);
        assert_eq!(y.data(), &[0.0, 0.5, 2.0]);
        let g = act.backward(&Matrix::row_vector(&[1.0, 1.0, 1.0]), &mut scratch);
        assert_eq!(g.data(), &[0.0, 1.0, 1.0]);
        assert_eq!(act.parameter_count(), 0);
        assert_eq!(act.kind(), ActivationKind::Relu);
    }

    #[test]
    fn leaky_relu_keeps_small_negative_slope() {
        let mut scratch = Scratch::new();
        let mut act = Activation::leaky_relu();
        let x = Matrix::row_vector(&[-2.0, 3.0]);
        let y = act.forward(&x, &mut scratch);
        assert!((y.get(0, 0) + 0.02).abs() < 1e-6);
        let g = act.backward(&Matrix::row_vector(&[1.0, 1.0]), &mut scratch);
        assert!((g.get(0, 0) - 0.01).abs() < 1e-6);
        assert!((g.get(0, 1) - 1.0).abs() < 1e-6);
    }

    #[test]
    fn tanh_gradient_matches_finite_difference() {
        let mut scratch = Scratch::new();
        let mut act = Activation::tanh();
        let x = Matrix::row_vector(&[0.3]);
        let _ = act.forward(&x, &mut scratch);
        let g = act.backward(&Matrix::row_vector(&[1.0]), &mut scratch);
        let eps = 1e-3f32;
        let numeric = ((0.3f32 + eps).tanh() - (0.3f32 - eps).tanh()) / (2.0 * eps);
        assert!((g.get(0, 0) - numeric).abs() < 1e-4);
    }

    #[test]
    fn output_based_derivative_matches_input_based_derivative() {
        // The backward pass computes derivatives from the cached *output*;
        // it must agree with the textbook input-based definition.
        let input_based = |kind: ActivationKind, x: f32| match kind {
            ActivationKind::Relu => {
                if x > 0.0 {
                    1.0
                } else {
                    0.0
                }
            }
            ActivationKind::LeakyRelu => {
                if x > 0.0 {
                    1.0
                } else {
                    0.01
                }
            }
            ActivationKind::Tanh => 1.0 - x.tanh().powi(2),
        };
        for kind in [
            ActivationKind::Relu,
            ActivationKind::LeakyRelu,
            ActivationKind::Tanh,
        ] {
            for x in [-3.0f32, -0.5, -0.0, 0.0, 0.25, 2.0] {
                assert_eq!(
                    input_based(kind, x),
                    kind.derivative_from_output(kind.apply(x)),
                    "{kind:?} at {x}"
                );
            }
        }
    }

    #[test]
    fn tanh_output_is_bounded() {
        let mut act = Activation::tanh();
        let x = Matrix::row_vector(&[-100.0, 0.0, 100.0]);
        let y = act.forward(&x, &mut Scratch::new());
        assert!(y.data().iter().all(|v| v.abs() <= 1.0));
    }
}
