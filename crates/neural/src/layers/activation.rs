//! Element-wise activation layers.

use crate::layers::Layer;
use crate::matrix::Matrix;
use crate::param::Param;
use serde::{Deserialize, Serialize};

/// Supported activation functions.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum ActivationKind {
    /// Rectified linear unit.
    Relu,
    /// Leaky rectified linear unit with slope 0.01 for negative inputs
    /// (the paper's baseline network uses LeakyReLU).
    LeakyRelu,
    /// Hyperbolic tangent (the paper's output heads use tanh).
    Tanh,
}

impl ActivationKind {
    fn apply(&self, x: f32) -> f32 {
        match self {
            ActivationKind::Relu => x.max(0.0),
            ActivationKind::LeakyRelu => {
                if x > 0.0 {
                    x
                } else {
                    0.01 * x
                }
            }
            ActivationKind::Tanh => x.tanh(),
        }
    }

    fn derivative(&self, x: f32) -> f32 {
        match self {
            ActivationKind::Relu => {
                if x > 0.0 {
                    1.0
                } else {
                    0.0
                }
            }
            ActivationKind::LeakyRelu => {
                if x > 0.0 {
                    1.0
                } else {
                    0.01
                }
            }
            ActivationKind::Tanh => 1.0 - x.tanh().powi(2),
        }
    }
}

/// An element-wise activation layer.
#[derive(Debug, Clone)]
pub struct Activation {
    kind: ActivationKind,
    cached_input: Option<Matrix>,
}

impl Activation {
    /// Creates an activation layer of the given kind.
    pub fn new(kind: ActivationKind) -> Self {
        Self {
            kind,
            cached_input: None,
        }
    }

    /// ReLU activation.
    pub fn relu() -> Self {
        Self::new(ActivationKind::Relu)
    }

    /// Leaky ReLU activation.
    pub fn leaky_relu() -> Self {
        Self::new(ActivationKind::LeakyRelu)
    }

    /// Tanh activation.
    pub fn tanh() -> Self {
        Self::new(ActivationKind::Tanh)
    }

    /// The activation kind.
    pub fn kind(&self) -> ActivationKind {
        self.kind
    }
}

impl Layer for Activation {
    fn forward(&mut self, input: &Matrix) -> Matrix {
        self.cached_input = Some(input.clone());
        input.map(|x| self.kind.apply(x))
    }

    fn backward(&mut self, grad_output: &Matrix) -> Matrix {
        let input = self
            .cached_input
            .as_ref()
            .expect("backward called before forward");
        let deriv = input.map(|x| self.kind.derivative(x));
        grad_output.hadamard(&deriv)
    }

    fn params_mut(&mut self) -> Vec<&mut Param> {
        Vec::new()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn relu_forward_backward() {
        let mut act = Activation::relu();
        let x = Matrix::row_vector(&[-1.0, 0.5, 2.0]);
        let y = act.forward(&x);
        assert_eq!(y.data(), &[0.0, 0.5, 2.0]);
        let g = act.backward(&Matrix::row_vector(&[1.0, 1.0, 1.0]));
        assert_eq!(g.data(), &[0.0, 1.0, 1.0]);
        assert_eq!(act.parameter_count(), 0);
        assert_eq!(act.kind(), ActivationKind::Relu);
    }

    #[test]
    fn leaky_relu_keeps_small_negative_slope() {
        let mut act = Activation::leaky_relu();
        let x = Matrix::row_vector(&[-2.0, 3.0]);
        let y = act.forward(&x);
        assert!((y.get(0, 0) + 0.02).abs() < 1e-6);
        let g = act.backward(&Matrix::row_vector(&[1.0, 1.0]));
        assert!((g.get(0, 0) - 0.01).abs() < 1e-6);
        assert!((g.get(0, 1) - 1.0).abs() < 1e-6);
    }

    #[test]
    fn tanh_gradient_matches_finite_difference() {
        let mut act = Activation::tanh();
        let x = Matrix::row_vector(&[0.3]);
        let _ = act.forward(&x);
        let g = act.backward(&Matrix::row_vector(&[1.0]));
        let eps = 1e-3f32;
        let numeric = ((0.3f32 + eps).tanh() - (0.3f32 - eps).tanh()) / (2.0 * eps);
        assert!((g.get(0, 0) - numeric).abs() < 1e-4);
    }

    #[test]
    fn tanh_output_is_bounded() {
        let mut act = Activation::tanh();
        let x = Matrix::row_vector(&[-100.0, 0.0, 100.0]);
        let y = act.forward(&x);
        assert!(y.data().iter().all(|v| v.abs() <= 1.0));
    }
}
