//! Scaled dot-product self-attention over a set of input rows.
//!
//! This is the mechanism the ACSO network uses to give every node a view of
//! the rest of the network without growing the parameter count with the
//! number of nodes: the same query/key/value projections apply to every node
//! embedding, and the attention matrix mixes information across nodes.

use crate::init::xavier_uniform;
use crate::layers::Layer;
use crate::matrix::Matrix;
use crate::param::Param;

/// Single-head scaled dot-product self-attention with an output projection.
///
/// For an input `X` of shape `[n, d_in]`:
///
/// ```text
/// Q = X·Wq, K = X·Wk, V = X·Wv          (each [n, d_attn])
/// A = softmax(Q·Kᵀ / sqrt(d_attn))       ([n, n])
/// Y = A·V·Wo                             ([n, d_out])
/// ```
///
/// The number of parameters is independent of `n`, the number of nodes.
#[derive(Debug, Clone)]
pub struct SelfAttention {
    wq: Param,
    wk: Param,
    wv: Param,
    wo: Param,
    attn_dim: usize,
    cache: Option<Cache>,
}

#[derive(Debug, Clone)]
struct Cache {
    input: Matrix,
    q: Matrix,
    k: Matrix,
    v: Matrix,
    attn: Matrix,
    mixed: Matrix,
}

impl SelfAttention {
    /// Creates a self-attention layer.
    ///
    /// `input_dim` is the per-row input feature size, `attn_dim` the
    /// query/key/value size, and `output_dim` the per-row output size.
    pub fn new(input_dim: usize, attn_dim: usize, output_dim: usize, seed: u64) -> Self {
        Self {
            wq: Param::new(xavier_uniform(input_dim, attn_dim, seed.wrapping_add(1))),
            wk: Param::new(xavier_uniform(input_dim, attn_dim, seed.wrapping_add(2))),
            wv: Param::new(xavier_uniform(input_dim, attn_dim, seed.wrapping_add(3))),
            wo: Param::new(xavier_uniform(attn_dim, output_dim, seed.wrapping_add(4))),
            attn_dim,
            cache: None,
        }
    }

    /// Per-row output dimension.
    pub fn output_dim(&self) -> usize {
        self.wo.value.cols()
    }

    /// The attention weights from the most recent forward pass, if any.
    /// Useful for diagnostics (which nodes the network attends to).
    pub fn last_attention(&self) -> Option<&Matrix> {
        self.cache.as_ref().map(|c| &c.attn)
    }
}

impl Layer for SelfAttention {
    fn forward(&mut self, input: &Matrix) -> Matrix {
        let q = input.matmul(&self.wq.value);
        let k = input.matmul(&self.wk.value);
        let v = input.matmul(&self.wv.value);
        let scale = 1.0 / (self.attn_dim as f32).sqrt();
        let scores = q.matmul(&k.transpose()).scale(scale);
        let attn = scores.softmax_rows();
        let mixed = attn.matmul(&v);
        let output = mixed.matmul(&self.wo.value);
        self.cache = Some(Cache {
            input: input.clone(),
            q,
            k,
            v,
            attn,
            mixed,
        });
        output
    }

    fn backward(&mut self, grad_output: &Matrix) -> Matrix {
        let cache = self.cache.as_ref().expect("backward called before forward");
        let scale = 1.0 / (self.attn_dim as f32).sqrt();

        // Output projection.
        self.wo
            .accumulate_grad(&cache.mixed.transpose().matmul(grad_output));
        let grad_mixed = grad_output.matmul(&self.wo.value.transpose());

        // Y = A·V
        let grad_attn = grad_mixed.matmul(&cache.v.transpose());
        let grad_v = cache.attn.transpose().matmul(&grad_mixed);

        // Softmax backward, row by row: dS_i = A_i ⊙ (dA_i − (dA_i·A_i))
        let n = cache.attn.rows();
        let mut grad_scores = Matrix::zeros(n, n);
        for i in 0..n {
            let a_row = cache.attn.row(i);
            let da_row = grad_attn.row(i);
            let dot: f32 = a_row.iter().zip(da_row).map(|(a, d)| a * d).sum();
            for j in 0..n {
                grad_scores.set(i, j, a_row[j] * (da_row[j] - dot));
            }
        }
        let grad_scores = grad_scores.scale(scale);

        // scores = Q·Kᵀ
        let grad_q = grad_scores.matmul(&cache.k);
        let grad_k = grad_scores.transpose().matmul(&cache.q);

        // Projections.
        self.wq
            .accumulate_grad(&cache.input.transpose().matmul(&grad_q));
        self.wk
            .accumulate_grad(&cache.input.transpose().matmul(&grad_k));
        self.wv
            .accumulate_grad(&cache.input.transpose().matmul(&grad_v));

        let mut grad_input = grad_q.matmul(&self.wq.value.transpose());
        grad_input.accumulate(&grad_k.matmul(&self.wk.value.transpose()));
        grad_input.accumulate(&grad_v.matmul(&self.wv.value.transpose()));
        grad_input
    }

    fn params_mut(&mut self) -> Vec<&mut Param> {
        vec![&mut self.wq, &mut self.wk, &mut self.wv, &mut self.wo]
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn forward_shapes_are_independent_of_row_count() {
        let mut attn = SelfAttention::new(8, 16, 4, 0);
        for n in [1usize, 3, 10, 33] {
            let x = Matrix::full(n, 8, 0.1);
            let y = attn.forward(&x);
            assert_eq!(y.shape(), (n, 4));
        }
        assert_eq!(attn.output_dim(), 4);
        // Parameter count does not depend on the number of rows.
        assert_eq!(attn.parameter_count(), 8 * 16 * 3 + 16 * 4);
        assert!(attn.last_attention().is_some());
    }

    #[test]
    fn attention_rows_sum_to_one() {
        let mut attn = SelfAttention::new(4, 8, 2, 1);
        let x = Matrix::from_rows(&[
            &[1.0, 0.0, 0.0, 0.0],
            &[0.0, 1.0, 0.0, 0.0],
            &[0.0, 0.0, 1.0, 0.0],
        ]);
        let _ = attn.forward(&x);
        let a = attn.last_attention().unwrap();
        for i in 0..a.rows() {
            let sum: f32 = a.row(i).iter().sum();
            assert!((sum - 1.0).abs() < 1e-5);
        }
    }

    #[test]
    fn gradient_check_with_finite_differences() {
        let mut attn = SelfAttention::new(3, 4, 2, 7);
        let x = Matrix::from_rows(&[&[0.5, -0.2, 0.1], &[0.3, 0.8, -0.5]]);

        // Loss = sum of outputs.
        let out = attn.forward(&x);
        let ones = Matrix::full(out.rows(), out.cols(), 1.0);
        attn.zero_grad();
        let grad_input = attn.backward(&ones);

        // Numerically check the gradient wrt one input element.
        let eps = 1e-3f32;
        let mut x_plus = x.clone();
        x_plus.set(0, 1, x.get(0, 1) + eps);
        let mut x_minus = x.clone();
        x_minus.set(0, 1, x.get(0, 1) - eps);
        let f_plus = attn.forward(&x_plus).sum();
        let f_minus = attn.forward(&x_minus).sum();
        let numeric = (f_plus - f_minus) / (2.0 * eps);
        assert!(
            (grad_input.get(0, 1) - numeric).abs() < 2e-2,
            "analytic {} vs numeric {}",
            grad_input.get(0, 1),
            numeric
        );
    }

    #[test]
    fn parameter_gradient_check() {
        let mut attn = SelfAttention::new(3, 4, 2, 11);
        let x = Matrix::from_rows(&[&[0.2, 0.4, -0.3], &[-0.6, 0.1, 0.9]]);
        let out = attn.forward(&x);
        let ones = Matrix::full(out.rows(), out.cols(), 1.0);
        attn.zero_grad();
        let _ = attn.backward(&ones);
        let analytic = attn.params_mut()[0].grad.get(1, 2); // wq[1][2]

        let eps = 1e-3f32;
        let orig = attn.params_mut()[0].value.get(1, 2);
        attn.params_mut()[0].value.set(1, 2, orig + eps);
        let f_plus = attn.forward(&x).sum();
        attn.params_mut()[0].value.set(1, 2, orig - eps);
        let f_minus = attn.forward(&x).sum();
        attn.params_mut()[0].value.set(1, 2, orig);
        let numeric = (f_plus - f_minus) / (2.0 * eps);
        assert!(
            (analytic - numeric).abs() < 2e-2,
            "analytic {analytic} vs numeric {numeric}"
        );
    }
}
