//! Scaled dot-product self-attention over a set of input rows.
//!
//! This is the mechanism the ACSO network uses to give every node a view of
//! the rest of the network without growing the parameter count with the
//! number of nodes: the same query/key/value projections apply to every node
//! embedding, and the attention matrix mixes information across nodes.

use crate::batch::Batch;
use crate::init::xavier_uniform;
use crate::layers::Layer;
use crate::matrix::Matrix;
use crate::param::Param;
use crate::scratch::Scratch;

/// Single-head scaled dot-product self-attention with an output projection.
///
/// For an input `X` of shape `[n, d_in]`:
///
/// ```text
/// Q = X·Wq, K = X·Wk, V = X·Wv          (each [n, d_attn])
/// A = softmax(Q·Kᵀ / sqrt(d_attn))       ([n, n])
/// Y = A·V·Wo                             ([n, d_out])
/// ```
///
/// The number of parameters is independent of `n`, the number of nodes.
#[derive(Debug, Clone)]
pub struct SelfAttention {
    wq: Param,
    wk: Param,
    wv: Param,
    wo: Param,
    attn_dim: usize,
    cache: Option<Cache>,
    batch_cache: Option<BatchCache>,
    /// Persistent buffers holding `Wqᵀ/Wkᵀ/Wvᵀ/Woᵀ` for the backward pass
    /// (fast tiled matmuls instead of strided ones); refreshed lazily and
    /// invalidated by [`SelfAttention::params_mut`], the only path that can
    /// mutate the weights.
    weights_t: [Matrix; 4],
    weights_t_valid: bool,
}

#[derive(Debug, Clone)]
struct Cache {
    input: Matrix,
    q: Matrix,
    k: Matrix,
    v: Matrix,
    attn: Matrix,
    mixed: Matrix,
}

/// Batch-shaped training cache: the projections and the mixed values are
/// stacked along the item axis exactly like the batch itself, and the
/// per-item `n x n` attention blocks are stacked into one `[items * n, n]`
/// matrix (block `i` at rows `i * n .. (i + 1) * n`).
#[derive(Debug, Clone)]
struct BatchCache {
    items: usize,
    input: Matrix,
    q: Matrix,
    k: Matrix,
    v: Matrix,
    attn: Matrix,
    mixed: Matrix,
}

impl SelfAttention {
    /// Creates a self-attention layer.
    ///
    /// `input_dim` is the per-row input feature size, `attn_dim` the
    /// query/key/value size, and `output_dim` the per-row output size.
    pub fn new(input_dim: usize, attn_dim: usize, output_dim: usize, seed: u64) -> Self {
        Self {
            wq: Param::new(xavier_uniform(input_dim, attn_dim, seed.wrapping_add(1))),
            wk: Param::new(xavier_uniform(input_dim, attn_dim, seed.wrapping_add(2))),
            wv: Param::new(xavier_uniform(input_dim, attn_dim, seed.wrapping_add(3))),
            wo: Param::new(xavier_uniform(attn_dim, output_dim, seed.wrapping_add(4))),
            attn_dim,
            cache: None,
            batch_cache: None,
            weights_t: [
                Matrix::zeros(attn_dim, input_dim),
                Matrix::zeros(attn_dim, input_dim),
                Matrix::zeros(attn_dim, input_dim),
                Matrix::zeros(output_dim, attn_dim),
            ],
            weights_t_valid: false,
        }
    }

    /// Per-row output dimension.
    pub fn output_dim(&self) -> usize {
        self.wo.value.cols()
    }

    /// The attention weights from the most recent forward pass, if any.
    /// Useful for diagnostics (which nodes the network attends to).
    pub fn last_attention(&self) -> Option<&Matrix> {
        self.cache.as_ref().map(|c| &c.attn)
    }

    /// Shared core of [`Layer::forward_batch`] (`cache_for_backward =
    /// false`: every intermediate is recycled, no cache touched) and
    /// [`Layer::forward_batch_train`] (`true`: the projections, per-item
    /// attention blocks and mixed values become the batch-shaped training
    /// cache). One implementation keeps the two paths bit-identical by
    /// construction — the equivalence the batched DQN update's TD errors
    /// rely on.
    fn forward_batch_impl(
        &mut self,
        input: &Batch,
        scratch: &mut Scratch,
        cache_for_backward: bool,
    ) -> Batch {
        // A new training pass returns the previous training cache's buffers
        // to the pool (steady state cycles allocations); an inference pass
        // must leave the cache alone — it may be bracketed by a
        // `forward_batch_train`/`backward_batch` pair.
        if cache_for_backward {
            if let Some(old) = self.batch_cache.take() {
                scratch.recycle(old.input);
                scratch.recycle(old.q);
                scratch.recycle(old.k);
                scratch.recycle(old.v);
                scratch.recycle(old.attn);
                scratch.recycle(old.mixed);
            }
        }
        let be = scratch.backend();
        let b = input.items();
        let n = input.rows_per_item();
        let rows = b * n;
        let mut q = scratch.take(rows, self.attn_dim);
        be.matmul_into(input.matrix(), &self.wq.value, &mut q);
        let mut k = scratch.take(rows, self.attn_dim);
        be.matmul_into(input.matrix(), &self.wk.value, &mut k);
        let mut v = scratch.take(rows, self.attn_dim);
        be.matmul_into(input.matrix(), &self.wv.value, &mut v);

        let scale = 1.0 / (self.attn_dim as f32).sqrt();
        // The stacked attention blocks are only materialised when they will
        // be cached, so the inference path pays nothing for the seam. The
        // block-diagonal score/softmax/mix stage is one fused backend call
        // over the stacked `[b*n, ·]` projections.
        let mut attn = if cache_for_backward {
            Some(scratch.take(rows, n))
        } else {
            None
        };
        let mut mixed = scratch.take(rows, self.attn_dim);
        be.attention_forward_fused(&q, &k, &v, b, scale, attn.as_mut(), &mut mixed, scratch);
        let mut out = Batch::take(scratch, b, n, self.wo.value.cols());
        be.matmul_into(&mixed, &self.wo.value, out.matrix_mut());

        match attn {
            Some(attn) => {
                self.batch_cache = Some(BatchCache {
                    items: b,
                    input: scratch.take_copy(input.matrix()),
                    q,
                    k,
                    v,
                    attn,
                    mixed,
                });
            }
            None => {
                scratch.recycle(q);
                scratch.recycle(k);
                scratch.recycle(v);
                scratch.recycle(mixed);
            }
        }
        out
    }
}

impl Layer for SelfAttention {
    fn forward(&mut self, input: &Matrix, scratch: &mut Scratch) -> Matrix {
        // Return last call's cache buffers to the pool so the steady state
        // cycles the same allocations instead of growing new ones.
        if let Some(old) = self.cache.take() {
            scratch.recycle(old.input);
            scratch.recycle(old.q);
            scratch.recycle(old.k);
            scratch.recycle(old.v);
            scratch.recycle(old.attn);
            scratch.recycle(old.mixed);
        }
        let be = scratch.backend();
        let n = input.rows();
        let mut q = scratch.take(n, self.attn_dim);
        be.matmul_into(input, &self.wq.value, &mut q);
        let mut k = scratch.take(n, self.attn_dim);
        be.matmul_into(input, &self.wk.value, &mut k);
        let mut v = scratch.take(n, self.attn_dim);
        be.matmul_into(input, &self.wv.value, &mut v);

        let scale = 1.0 / (self.attn_dim as f32).sqrt();
        // The solo pass is the fused kernel with a single item: the scores
        // (`softmax(Q·Kᵀ·scale)`, computed without materialising Kᵀ) land in
        // the cached attention matrix and the mixed values fall out in one
        // call.
        let mut attn = scratch.take(n, n);
        let mut mixed = scratch.take(n, self.attn_dim);
        be.attention_forward_fused(&q, &k, &v, 1, scale, Some(&mut attn), &mut mixed, scratch);
        let mut output = scratch.take(n, self.wo.value.cols());
        be.matmul_into(&mixed, &self.wo.value, &mut output);

        self.cache = Some(Cache {
            input: scratch.take_copy(input),
            q,
            k,
            v,
            attn,
            mixed,
        });
        output
    }

    fn forward_batch(&mut self, input: &Batch, scratch: &mut Scratch) -> Batch {
        // Attention mixes information across rows, so the batch's item
        // boundary is load-bearing: the attention matrix is block-diagonal
        // over items (each item's rows attend only to that item's rows).
        // The projections are row-wise and run as single stacked matmuls;
        // the score/softmax/mix stage runs per item on gathered blocks with
        // exactly the kernel calls of the solo forward, so every item's
        // output is bit-identical to [`SelfAttention::forward`] on that item
        // alone — not approximately equal. The backward cache (including
        // `last_attention`) is left untouched.
        self.forward_batch_impl(input, scratch, false)
    }

    fn forward_batch_train(&mut self, input: &Batch, scratch: &mut Scratch) -> Batch {
        // The shared core guarantees this is bit-for-bit the `forward_batch`
        // computation; the only difference is that the intermediates are
        // kept as the batch-shaped training cache instead of being recycled.
        self.forward_batch_impl(input, scratch, true)
    }

    fn backward_batch(&mut self, grad_output: &Batch, scratch: &mut Scratch) -> Batch {
        let be = scratch.backend();
        if !self.weights_t_valid {
            be.transpose_into(&self.wq.value, &mut self.weights_t[0]);
            be.transpose_into(&self.wk.value, &mut self.weights_t[1]);
            be.transpose_into(&self.wv.value, &mut self.weights_t[2]);
            be.transpose_into(&self.wo.value, &mut self.weights_t[3]);
            self.weights_t_valid = true;
        }
        let cache = self
            .batch_cache
            .take()
            .expect("backward_batch called before forward_batch_train");
        let b = cache.items;
        assert_eq!(
            grad_output.items(),
            b,
            "attention batch gradient item mismatch"
        );
        let n = grad_output.rows_per_item();
        let rows = b * n;
        let scale = 1.0 / (self.attn_dim as f32).sqrt();

        // Output projection. The parameter gradient flushes once per item
        // (multi-row contributions), matching the serial per-sample
        // accumulation order bit for bit; the input-side gradient is a
        // stacked row-wise matmul (rows are independent).
        for item in 0..b {
            be.add_matmul_transa_blocks(
                &mut self.wo.grad,
                &cache.mixed,
                grad_output.matrix(),
                item * n,
                n,
            );
        }
        let mut grad_mixed = scratch.take(rows, self.attn_dim);
        be.matmul_into(grad_output.matrix(), &self.weights_t[3], &mut grad_mixed);

        // The block-diagonal attention backward is one fused backend call:
        // each item's gradients are computed from that item's blocks alone,
        // so per-sample gradients cannot leak between items.
        let mut grad_q = scratch.take(rows, self.attn_dim);
        let mut grad_k = scratch.take(rows, self.attn_dim);
        let mut grad_v = scratch.take(rows, self.attn_dim);
        be.attention_backward_fused(
            &grad_mixed,
            &cache.q,
            &cache.k,
            &cache.v,
            &cache.attn,
            b,
            scale,
            &mut grad_q,
            &mut grad_k,
            &mut grad_v,
            scratch,
        );

        // Projection parameter gradients: one flush per item, serial order.
        for item in 0..b {
            let start = item * n;
            be.add_matmul_transa_blocks(&mut self.wq.grad, &cache.input, &grad_q, start, n);
            be.add_matmul_transa_blocks(&mut self.wk.grad, &cache.input, &grad_k, start, n);
            be.add_matmul_transa_blocks(&mut self.wv.grad, &cache.input, &grad_v, start, n);
        }

        let mut grad_input = scratch.take(rows, self.wq.value.rows());
        be.matmul_into(&grad_q, &self.weights_t[0], &mut grad_input);
        be.add_matmul(&mut grad_input, &grad_k, &self.weights_t[1]);
        be.add_matmul(&mut grad_input, &grad_v, &self.weights_t[2]);

        scratch.recycle(grad_mixed);
        scratch.recycle(grad_q);
        scratch.recycle(grad_k);
        scratch.recycle(grad_v);
        self.batch_cache = Some(cache);
        Batch::new(grad_input, grad_output.items())
    }

    fn backward(&mut self, grad_output: &Matrix, scratch: &mut Scratch) -> Matrix {
        let be = scratch.backend();
        if !self.weights_t_valid {
            be.transpose_into(&self.wq.value, &mut self.weights_t[0]);
            be.transpose_into(&self.wk.value, &mut self.weights_t[1]);
            be.transpose_into(&self.wv.value, &mut self.weights_t[2]);
            be.transpose_into(&self.wo.value, &mut self.weights_t[3]);
            self.weights_t_valid = true;
        }
        let cache = self.cache.as_ref().expect("backward called before forward");
        let n = cache.attn.rows();
        let scale = 1.0 / (self.attn_dim as f32).sqrt();

        // Output projection: Wo.grad += mixedᵀ·G, grad_mixed = G·Woᵀ.
        be.add_matmul_transa(&mut self.wo.grad, &cache.mixed, grad_output);
        let mut grad_mixed = scratch.take(n, self.attn_dim);
        be.matmul_into(grad_output, &self.weights_t[3], &mut grad_mixed);

        // The attention stage (`dA = dM·Vᵀ`, `dV = Aᵀ·dM`, softmax backward
        // `dS = A ⊙ (dA − (dA·A)) · scale`, `dQ = dS·K`, `dK = dSᵀ·Q`) is the
        // fused backend kernel with a single item.
        let mut grad_q = scratch.take(n, self.attn_dim);
        let mut grad_k = scratch.take(n, self.attn_dim);
        let mut grad_v = scratch.take(n, self.attn_dim);
        be.attention_backward_fused(
            &grad_mixed,
            &cache.q,
            &cache.k,
            &cache.v,
            &cache.attn,
            1,
            scale,
            &mut grad_q,
            &mut grad_k,
            &mut grad_v,
            scratch,
        );

        // Projections.
        be.add_matmul_transa(&mut self.wq.grad, &cache.input, &grad_q);
        be.add_matmul_transa(&mut self.wk.grad, &cache.input, &grad_k);
        be.add_matmul_transa(&mut self.wv.grad, &cache.input, &grad_v);

        let mut grad_input = scratch.take(n, self.wq.value.rows());
        be.matmul_into(&grad_q, &self.weights_t[0], &mut grad_input);
        be.add_matmul(&mut grad_input, &grad_k, &self.weights_t[1]);
        be.add_matmul(&mut grad_input, &grad_v, &self.weights_t[2]);

        scratch.recycle(grad_mixed);
        scratch.recycle(grad_q);
        scratch.recycle(grad_k);
        scratch.recycle(grad_v);
        grad_input
    }

    fn params_mut(&mut self) -> Vec<&mut Param> {
        // Handing out `&mut Param` is the only way the weights can change,
        // so the cached transposes must be considered stale from here on.
        self.weights_t_valid = false;
        vec![&mut self.wq, &mut self.wk, &mut self.wv, &mut self.wo]
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn forward_shapes_are_independent_of_row_count() {
        let mut scratch = Scratch::new();
        let mut attn = SelfAttention::new(8, 16, 4, 0);
        for n in [1usize, 3, 10, 33] {
            let x = Matrix::full(n, 8, 0.1);
            let y = attn.forward(&x, &mut scratch);
            assert_eq!(y.shape(), (n, 4));
        }
        assert_eq!(attn.output_dim(), 4);
        // Parameter count does not depend on the number of rows.
        assert_eq!(attn.parameter_count(), 8 * 16 * 3 + 16 * 4);
        assert!(attn.last_attention().is_some());
    }

    #[test]
    fn attention_rows_sum_to_one() {
        let mut attn = SelfAttention::new(4, 8, 2, 1);
        let x = Matrix::from_rows(&[
            &[1.0, 0.0, 0.0, 0.0],
            &[0.0, 1.0, 0.0, 0.0],
            &[0.0, 0.0, 1.0, 0.0],
        ]);
        let _ = attn.forward(&x, &mut Scratch::new());
        let a = attn.last_attention().unwrap();
        for i in 0..a.rows() {
            let sum: f32 = a.row(i).iter().sum();
            assert!((sum - 1.0).abs() < 1e-5);
        }
    }

    #[test]
    fn gradient_check_with_finite_differences() {
        let mut scratch = Scratch::new();
        let mut attn = SelfAttention::new(3, 4, 2, 7);
        let x = Matrix::from_rows(&[&[0.5, -0.2, 0.1], &[0.3, 0.8, -0.5]]);

        // Loss = sum of outputs.
        let out = attn.forward(&x, &mut scratch);
        let ones = Matrix::full(out.rows(), out.cols(), 1.0);
        attn.zero_grad();
        let grad_input = attn.backward(&ones, &mut scratch);

        // Numerically check the gradient wrt one input element.
        let eps = 1e-3f32;
        let mut x_plus = x.clone();
        x_plus.set(0, 1, x.get(0, 1) + eps);
        let mut x_minus = x.clone();
        x_minus.set(0, 1, x.get(0, 1) - eps);
        let f_plus = attn.forward(&x_plus, &mut scratch).sum();
        let f_minus = attn.forward(&x_minus, &mut scratch).sum();
        let numeric = (f_plus - f_minus) / (2.0 * eps);
        assert!(
            (grad_input.get(0, 1) - numeric).abs() < 2e-2,
            "analytic {} vs numeric {}",
            grad_input.get(0, 1),
            numeric
        );
    }

    #[test]
    fn parameter_gradient_check() {
        let mut scratch = Scratch::new();
        let mut attn = SelfAttention::new(3, 4, 2, 11);
        let x = Matrix::from_rows(&[&[0.2, 0.4, -0.3], &[-0.6, 0.1, 0.9]]);
        let out = attn.forward(&x, &mut scratch);
        let ones = Matrix::full(out.rows(), out.cols(), 1.0);
        attn.zero_grad();
        let _ = attn.backward(&ones, &mut scratch);
        let analytic = attn.params_mut()[0].grad.get(1, 2); // wq[1][2]

        let eps = 1e-3f32;
        let orig = attn.params_mut()[0].value.get(1, 2);
        attn.params_mut()[0].value.set(1, 2, orig + eps);
        let f_plus = attn.forward(&x, &mut scratch).sum();
        attn.params_mut()[0].value.set(1, 2, orig - eps);
        let f_minus = attn.forward(&x, &mut scratch).sum();
        attn.params_mut()[0].value.set(1, 2, orig);
        let numeric = (f_plus - f_minus) / (2.0 * eps);
        assert!(
            (analytic - numeric).abs() < 2e-2,
            "analytic {analytic} vs numeric {numeric}"
        );
    }
}
