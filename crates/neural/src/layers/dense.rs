//! Fully-connected layer.

use crate::batch::Batch;
use crate::init::xavier_uniform;
use crate::layers::{cache_input, Layer};
use crate::matrix::Matrix;
use crate::param::Param;
use crate::scratch::Scratch;

/// A fully-connected (affine) layer: `output = input · W + b`.
///
/// The same weights apply to every row of the input, so a `[n, in]` matrix of
/// per-node features maps to `[n, out]` without growing the parameter count —
/// the property the paper's attention architecture relies on.
#[derive(Debug, Clone)]
pub struct Dense {
    weight: Param,
    bias: Param,
    cached_input: Option<Matrix>,
    /// Persistent buffer holding `Wᵀ` for the backward pass, so `G·Wᵀ` runs
    /// through the fast tiled `matmul` kernel instead of a strided one. The
    /// transpose is refreshed lazily; [`Dense::params_mut`] — the only path
    /// that can mutate the weights — invalidates it.
    weight_t: Matrix,
    weight_t_valid: bool,
}

impl Dense {
    /// Creates a dense layer with Xavier-initialised weights.
    ///
    /// The `seed` keeps initialisation deterministic across runs.
    pub fn new(input_dim: usize, output_dim: usize, seed: u64) -> Self {
        Self {
            weight: Param::new(xavier_uniform(input_dim, output_dim, seed)),
            bias: Param::new(Matrix::zeros(1, output_dim)),
            cached_input: None,
            weight_t: Matrix::zeros(output_dim, input_dim),
            weight_t_valid: false,
        }
    }

    /// Input feature dimension.
    pub fn input_dim(&self) -> usize {
        self.weight.value.rows()
    }

    /// Output feature dimension.
    pub fn output_dim(&self) -> usize {
        self.weight.value.cols()
    }
}

impl Layer for Dense {
    fn forward(&mut self, input: &Matrix, scratch: &mut Scratch) -> Matrix {
        cache_input(&mut self.cached_input, input);
        let mut out = scratch.take(input.rows(), self.weight.value.cols());
        scratch
            .backend()
            .matmul_into(input, &self.weight.value, &mut out);
        out.add_row_inplace(&self.bias.value);
        out
    }

    fn forward_batch(&mut self, input: &Batch, scratch: &mut Scratch) -> Batch {
        // The affine map is row-wise and the tiled kernel reduces each output
        // element over ascending `k` independently of the row count, so one
        // stacked matmul is bit-identical per item to a solo forward — no
        // item boundary needed. The backward cache is deliberately left
        // alone: this is the inference path.
        let be = scratch.backend();
        let mut out = Batch::take(
            scratch,
            input.items(),
            input.rows_per_item(),
            self.weight.value.cols(),
        );
        be.matmul_into(input.matrix(), &self.weight.value, out.matrix_mut());
        out.matrix_mut().add_row_inplace(&self.bias.value);
        out
    }

    fn backward(&mut self, grad_output: &Matrix, scratch: &mut Scratch) -> Matrix {
        let be = scratch.backend();
        let input = self
            .cached_input
            .as_ref()
            .expect("backward called before forward");
        be.add_matmul_transa(&mut self.weight.grad, input, grad_output);
        self.bias.grad.add_sum_rows(grad_output);
        if !self.weight_t_valid {
            be.transpose_into(&self.weight.value, &mut self.weight_t);
            self.weight_t_valid = true;
        }
        let mut grad_input = scratch.take(grad_output.rows(), self.weight.value.rows());
        be.matmul_into(grad_output, &self.weight_t, &mut grad_input);
        grad_input
    }

    // `forward_batch_train` keeps the trait default: the affine map is
    // row-wise, so the solo forward on the stacked matrix is bit-identical
    // per item and its cached input is exactly the stacked batch cache.

    fn backward_batch(&mut self, grad_output: &Batch, scratch: &mut Scratch) -> Batch {
        let be = scratch.backend();
        let input = self
            .cached_input
            .as_ref()
            .expect("backward_batch called before forward_batch_train");
        assert_eq!(
            input.rows(),
            grad_output.matrix().rows(),
            "dense batch gradient row mismatch"
        );
        let rows_per_item = grad_output.rows_per_item();
        if rows_per_item == 1 {
            // Each item contributes a single rank-1 term, so the stacked
            // kernel's ascending-k accumulation is literally the serial
            // per-sample sequence of additions — one fast tiled call.
            be.add_matmul_transa(&mut self.weight.grad, input, grad_output.matrix());
        } else {
            // Multi-row items: flush the local tile accumulator once per
            // item so the summation order matches a serial per-sample
            // backward bit for bit.
            for item in 0..grad_output.items() {
                be.add_matmul_transa_blocks(
                    &mut self.weight.grad,
                    input,
                    grad_output.matrix(),
                    item * rows_per_item,
                    rows_per_item,
                );
            }
        }
        // Bias gradients accumulate row by row directly into the parameter
        // (no local accumulator), so one stacked call is already the serial
        // addition sequence.
        self.bias.grad.add_sum_rows(grad_output.matrix());
        if !self.weight_t_valid {
            be.transpose_into(&self.weight.value, &mut self.weight_t);
            self.weight_t_valid = true;
        }
        let mut grad_input = scratch.take(grad_output.matrix().rows(), self.weight.value.rows());
        be.matmul_into(grad_output.matrix(), &self.weight_t, &mut grad_input);
        Batch::new(grad_input, grad_output.items())
    }

    fn params_mut(&mut self) -> Vec<&mut Param> {
        // Handing out `&mut Param` is the only way the weights can change
        // (optimizer steps, target-network copies), so the cached transpose
        // must be considered stale from here on.
        self.weight_t_valid = false;
        vec![&mut self.weight, &mut self.bias]
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn forward_shape_and_bias() {
        let mut scratch = Scratch::new();
        let mut layer = Dense::new(3, 2, 1);
        assert_eq!(layer.input_dim(), 3);
        assert_eq!(layer.output_dim(), 2);
        let x = Matrix::zeros(4, 3);
        let y = layer.forward(&x, &mut scratch);
        assert_eq!(y.shape(), (4, 2));
        // Zero input -> output equals (zero) bias.
        assert_eq!(y.sum(), 0.0);
        assert_eq!(layer.parameter_count(), 3 * 2 + 2);
    }

    #[test]
    fn gradient_check_against_finite_differences() {
        let mut scratch = Scratch::new();
        let mut layer = Dense::new(2, 2, 3);
        let x = Matrix::from_rows(&[&[0.3, -0.7], &[1.2, 0.4]]);
        // Loss = sum of outputs; dL/dout = ones.
        let out = layer.forward(&x, &mut scratch);
        let ones = Matrix::full(out.rows(), out.cols(), 1.0);
        layer.zero_grad();
        let grad_in = layer.backward(&ones, &mut scratch);

        // Finite-difference check on one weight entry and one input entry.
        let eps = 1e-3f32;
        let analytic_w = layer.params_mut()[0].grad.get(0, 1);
        {
            let w = &mut layer.params_mut()[0].value;
            let orig = w.get(0, 1);
            w.set(0, 1, orig + eps);
        }
        let plus = layer.forward(&x, &mut scratch).sum();
        {
            let w = &mut layer.params_mut()[0].value;
            let orig = w.get(0, 1);
            w.set(0, 1, orig - 2.0 * eps);
        }
        let minus = layer.forward(&x, &mut scratch).sum();
        let numeric_w = (plus - minus) / (2.0 * eps);
        assert!(
            (analytic_w - numeric_w).abs() < 1e-2,
            "weight grad {analytic_w} vs numeric {numeric_w}"
        );

        // Input gradient: column sums of W.
        {
            let w = &mut layer.params_mut()[0].value;
            w.set(0, 1, w.get(0, 1) + eps); // restore original value
        }
        let w = layer.params_mut()[0].value.clone();
        let expected = w.get(0, 0) + w.get(0, 1);
        assert!((grad_in.get(0, 0) - expected).abs() < 1e-4);
    }

    #[test]
    #[should_panic(expected = "backward called before forward")]
    fn backward_requires_forward() {
        let mut layer = Dense::new(2, 2, 0);
        let _ = layer.backward(&Matrix::zeros(1, 2), &mut Scratch::new());
    }
}
