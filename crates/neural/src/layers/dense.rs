//! Fully-connected layer.

use crate::init::xavier_uniform;
use crate::layers::Layer;
use crate::matrix::Matrix;
use crate::param::Param;

/// A fully-connected (affine) layer: `output = input · W + b`.
///
/// The same weights apply to every row of the input, so a `[n, in]` matrix of
/// per-node features maps to `[n, out]` without growing the parameter count —
/// the property the paper's attention architecture relies on.
#[derive(Debug, Clone)]
pub struct Dense {
    weight: Param,
    bias: Param,
    cached_input: Option<Matrix>,
}

impl Dense {
    /// Creates a dense layer with Xavier-initialised weights.
    ///
    /// The `seed` keeps initialisation deterministic across runs.
    pub fn new(input_dim: usize, output_dim: usize, seed: u64) -> Self {
        Self {
            weight: Param::new(xavier_uniform(input_dim, output_dim, seed)),
            bias: Param::new(Matrix::zeros(1, output_dim)),
            cached_input: None,
        }
    }

    /// Input feature dimension.
    pub fn input_dim(&self) -> usize {
        self.weight.value.rows()
    }

    /// Output feature dimension.
    pub fn output_dim(&self) -> usize {
        self.weight.value.cols()
    }
}

impl Layer for Dense {
    fn forward(&mut self, input: &Matrix) -> Matrix {
        self.cached_input = Some(input.clone());
        input
            .matmul(&self.weight.value)
            .add_row_broadcast(&self.bias.value)
    }

    fn backward(&mut self, grad_output: &Matrix) -> Matrix {
        let input = self
            .cached_input
            .as_ref()
            .expect("backward called before forward");
        self.weight
            .accumulate_grad(&input.transpose().matmul(grad_output));
        self.bias.accumulate_grad(&grad_output.sum_rows());
        grad_output.matmul(&self.weight.value.transpose())
    }

    fn params_mut(&mut self) -> Vec<&mut Param> {
        vec![&mut self.weight, &mut self.bias]
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn forward_shape_and_bias() {
        let mut layer = Dense::new(3, 2, 1);
        assert_eq!(layer.input_dim(), 3);
        assert_eq!(layer.output_dim(), 2);
        let x = Matrix::zeros(4, 3);
        let y = layer.forward(&x);
        assert_eq!(y.shape(), (4, 2));
        // Zero input -> output equals (zero) bias.
        assert_eq!(y.sum(), 0.0);
        assert_eq!(layer.parameter_count(), 3 * 2 + 2);
    }

    #[test]
    fn gradient_check_against_finite_differences() {
        let mut layer = Dense::new(2, 2, 3);
        let x = Matrix::from_rows(&[&[0.3, -0.7], &[1.2, 0.4]]);
        // Loss = sum of outputs; dL/dout = ones.
        let out = layer.forward(&x);
        let ones = Matrix::full(out.rows(), out.cols(), 1.0);
        layer.zero_grad();
        let grad_in = layer.backward(&ones);

        // Finite-difference check on one weight entry and one input entry.
        let eps = 1e-3f32;
        let analytic_w = layer.params_mut()[0].grad.get(0, 1);
        {
            let w = &mut layer.params_mut()[0].value;
            let orig = w.get(0, 1);
            w.set(0, 1, orig + eps);
        }
        let plus = layer.forward(&x).sum();
        {
            let w = &mut layer.params_mut()[0].value;
            let orig = w.get(0, 1);
            w.set(0, 1, orig - 2.0 * eps);
        }
        let minus = layer.forward(&x).sum();
        let numeric_w = (plus - minus) / (2.0 * eps);
        assert!(
            (analytic_w - numeric_w).abs() < 1e-2,
            "weight grad {analytic_w} vs numeric {numeric_w}"
        );

        // Input gradient: column sums of W.
        {
            let w = &mut layer.params_mut()[0].value;
            w.set(0, 1, w.get(0, 1) + eps); // restore original value
        }
        let w = layer.params_mut()[0].value.clone();
        let expected = w.get(0, 0) + w.get(0, 1);
        assert!((grad_in.get(0, 0) - expected).abs() < 1e-4);
    }

    #[test]
    #[should_panic(expected = "backward called before forward")]
    fn backward_requires_forward() {
        let mut layer = Dense::new(2, 2, 0);
        let _ = layer.backward(&Matrix::zeros(1, 2));
    }
}
