//! One-dimensional convolution over a temporal axis.
//!
//! The paper's baseline architecture (Table 7) applies 1-D convolutions that
//! stride over the observation-history axis, treating each time step's
//! feature vector as the channel dimension.

use crate::batch::Batch;
use crate::init::xavier_uniform;
use crate::layers::{cache_input, Layer};
use crate::matrix::Matrix;
use crate::param::Param;
use crate::scratch::Scratch;

/// A 1-D convolution: input `[time, channels_in]`, output
/// `[time_out, channels_out]` with `time_out = (time - kernel) / stride + 1`.
#[derive(Debug, Clone)]
pub struct Conv1d {
    weight: Param, // [kernel * channels_in, channels_out]
    bias: Param,   // [1, channels_out]
    kernel: usize,
    stride: usize,
    channels_in: usize,
    cached_input: Option<Matrix>,
    /// Training cache of the batched path: the stacked input and its item
    /// count, kept separate from the solo cache so the two training modes
    /// cannot corrupt each other.
    cached_batch: Option<(Matrix, usize)>,
}

impl Conv1d {
    /// Creates a 1-D convolution layer.
    ///
    /// # Panics
    ///
    /// Panics if `kernel` or `stride` is zero.
    pub fn new(
        channels_in: usize,
        channels_out: usize,
        kernel: usize,
        stride: usize,
        seed: u64,
    ) -> Self {
        assert!(
            kernel > 0 && stride > 0,
            "kernel and stride must be positive"
        );
        Self {
            weight: Param::new(xavier_uniform(kernel * channels_in, channels_out, seed)),
            bias: Param::new(Matrix::zeros(1, channels_out)),
            kernel,
            stride,
            channels_in,
            cached_input: None,
            cached_batch: None,
        }
    }

    /// Number of output time steps for a given number of input time steps
    /// (zero if the input is shorter than the kernel).
    pub fn output_len(&self, input_len: usize) -> usize {
        if input_len < self.kernel {
            0
        } else {
            (input_len - self.kernel) / self.stride + 1
        }
    }

    /// Output channel count.
    pub fn channels_out(&self) -> usize {
        self.weight.value.cols()
    }

    /// Copies the input window starting at row `start` into `win` (a
    /// `1 x kernel*channels_in` buffer), without allocating.
    fn window_into(&self, input: &Matrix, start: usize, win: &mut Matrix) {
        for k in 0..self.kernel {
            win.row_mut(0)[k * self.channels_in..(k + 1) * self.channels_in]
                .copy_from_slice(input.row(start + k));
        }
    }
}

impl Layer for Conv1d {
    fn forward(&mut self, input: &Matrix, scratch: &mut Scratch) -> Matrix {
        assert_eq!(
            input.cols(),
            self.channels_in,
            "conv1d channel mismatch: expected {}, got {}",
            self.channels_in,
            input.cols()
        );
        cache_input(&mut self.cached_input, input);
        let be = scratch.backend();
        let t_out = self.output_len(input.rows());
        let c_out = self.channels_out();
        let mut out = scratch.take(t_out, c_out);
        let mut win = scratch.take(1, self.kernel * self.channels_in);
        let mut y = scratch.take(1, c_out);
        for t in 0..t_out {
            self.window_into(input, t * self.stride, &mut win);
            be.matmul_into(&win, &self.weight.value, &mut y);
            y.add_row_inplace(&self.bias.value);
            out.row_mut(t).copy_from_slice(y.row(0));
        }
        scratch.recycle(win);
        scratch.recycle(y);
        out
    }

    fn forward_batch(&mut self, input: &Batch, scratch: &mut Scratch) -> Batch {
        assert_eq!(
            input.cols(),
            self.channels_in,
            "conv1d channel mismatch: expected {}, got {}",
            self.channels_in,
            input.cols()
        );
        // The convolution strides over each item's own time axis: windows
        // start at the item boundary, so no window ever straddles two items
        // and every item's output matches a solo forward bit for bit. The
        // backward cache is left untouched (inference path).
        let be = scratch.backend();
        let t_in = input.rows_per_item();
        let t_out = self.output_len(t_in);
        let c_out = self.channels_out();
        let mut out = Batch::take(scratch, input.items(), t_out, c_out);
        let mut win = scratch.take(1, self.kernel * self.channels_in);
        let mut y = scratch.take(1, c_out);
        for item in 0..input.items() {
            let in_base = item * t_in;
            let out_base = item * t_out;
            for t in 0..t_out {
                self.window_into(input.matrix(), in_base + t * self.stride, &mut win);
                be.matmul_into(&win, &self.weight.value, &mut y);
                y.add_row_inplace(&self.bias.value);
                out.matrix_mut()
                    .row_mut(out_base + t)
                    .copy_from_slice(y.row(0));
            }
        }
        scratch.recycle(win);
        scratch.recycle(y);
        out
    }

    fn forward_batch_train(&mut self, input: &Batch, scratch: &mut Scratch) -> Batch {
        // Identical computation to the inference `forward_batch` (per-item
        // windows, bit-identical per item), plus the batch-shaped cache.
        let out = self.forward_batch(input, scratch);
        match &mut self.cached_batch {
            Some((held, items)) => {
                held.copy_from(input.matrix());
                *items = input.items();
            }
            None => self.cached_batch = Some((input.matrix().clone(), input.items())),
        }
        out
    }

    fn backward_batch(&mut self, grad_output: &Batch, scratch: &mut Scratch) -> Batch {
        let (input, items) = self
            .cached_batch
            .take()
            .expect("backward_batch called before forward_batch_train");
        assert_eq!(
            grad_output.items(),
            items,
            "conv1d batch gradient item mismatch"
        );
        let t_in = input.rows() / items;
        let t_out = self.output_len(t_in);
        assert_eq!(
            grad_output.rows_per_item(),
            t_out,
            "conv1d batch grad shape mismatch"
        );
        let mut grad_input = scratch.take(input.rows(), input.cols());
        let mut win = scratch.take(1, self.kernel * self.channels_in);
        // Items in order, windows in time order within each item — the
        // serial per-sample backward's exact operation sequence, so the
        // rank-1 parameter updates accumulate bit-identically.
        for item in 0..items {
            let in_base = item * t_in;
            let out_base = item * t_out;
            for t in 0..t_out {
                let grad_row = grad_output.matrix().row(out_base + t);
                self.window_into(&input, in_base + t * self.stride, &mut win);
                self.weight.grad.add_outer(win.row(0), grad_row);
                for (b, &g) in self.bias.grad.row_mut(0).iter_mut().zip(grad_row) {
                    *b += g;
                }
                let start = in_base + t * self.stride;
                for k in 0..self.kernel {
                    for c in 0..self.channels_in {
                        let w_row = self.weight.value.row(k * self.channels_in + c);
                        let mut acc = 0.0f32;
                        for (&g, &w) in grad_row.iter().zip(w_row) {
                            acc += g * w;
                        }
                        grad_input.row_mut(start + k)[c] += acc;
                    }
                }
            }
        }
        scratch.recycle(win);
        self.cached_batch = Some((input, items));
        Batch::new(grad_input, items)
    }

    fn backward(&mut self, grad_output: &Matrix, scratch: &mut Scratch) -> Matrix {
        let input = self
            .cached_input
            .take()
            .expect("backward called before forward");
        let t_out = self.output_len(input.rows());
        assert_eq!(grad_output.rows(), t_out, "conv1d grad shape mismatch");
        let mut grad_input = scratch.take(input.rows(), input.cols());
        let mut win = scratch.take(1, self.kernel * self.channels_in);
        for t in 0..t_out {
            let grad_row = grad_output.row(t);
            self.window_into(&input, t * self.stride, &mut win);
            // W.grad += windowᵀ · grad_row (rank-1), b.grad += grad_row.
            self.weight.grad.add_outer(win.row(0), grad_row);
            for (b, &g) in self.bias.grad.row_mut(0).iter_mut().zip(grad_row) {
                *b += g;
            }
            // grad_window = grad_row · Wᵀ, scattered back onto the input.
            let start = t * self.stride;
            for k in 0..self.kernel {
                for c in 0..self.channels_in {
                    let w_row = self.weight.value.row(k * self.channels_in + c);
                    let mut acc = 0.0f32;
                    for (&g, &w) in grad_row.iter().zip(w_row) {
                        acc += g * w;
                    }
                    grad_input.row_mut(start + k)[c] += acc;
                }
            }
        }
        scratch.recycle(win);
        self.cached_input = Some(input);
        grad_input
    }

    fn params_mut(&mut self) -> Vec<&mut Param> {
        vec![&mut self.weight, &mut self.bias]
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn output_length_follows_stride() {
        let conv = Conv1d::new(4, 8, 4, 4, 0);
        assert_eq!(conv.output_len(16), 4);
        assert_eq!(conv.output_len(4), 1);
        assert_eq!(conv.output_len(3), 0);
        assert_eq!(conv.channels_out(), 8);
    }

    #[test]
    fn forward_shapes() {
        let mut conv = Conv1d::new(3, 5, 2, 2, 1);
        let x = Matrix::full(8, 3, 0.5);
        let y = conv.forward(&x, &mut Scratch::new());
        assert_eq!(y.shape(), (4, 5));
    }

    #[test]
    fn gradient_check_on_input() {
        let mut scratch = Scratch::new();
        let mut conv = Conv1d::new(2, 3, 2, 1, 5);
        let x = Matrix::from_rows(&[&[0.1, -0.2], &[0.4, 0.3], &[-0.5, 0.6]]);
        let out = conv.forward(&x, &mut scratch);
        let ones = Matrix::full(out.rows(), out.cols(), 1.0);
        conv.zero_grad();
        let grad_in = conv.backward(&ones, &mut scratch);

        let eps = 1e-3f32;
        let mut x_plus = x.clone();
        x_plus.set(1, 0, x.get(1, 0) + eps);
        let mut x_minus = x.clone();
        x_minus.set(1, 0, x.get(1, 0) - eps);
        let numeric = (conv.forward(&x_plus, &mut scratch).sum()
            - conv.forward(&x_minus, &mut scratch).sum())
            / (2.0 * eps);
        assert!(
            (grad_in.get(1, 0) - numeric).abs() < 2e-2,
            "analytic {} vs numeric {}",
            grad_in.get(1, 0),
            numeric
        );
    }

    #[test]
    fn gradient_check_on_weights() {
        let mut scratch = Scratch::new();
        let mut conv = Conv1d::new(2, 2, 2, 2, 9);
        let x = Matrix::from_rows(&[&[0.3, 0.1], &[-0.4, 0.7], &[0.2, -0.6], &[0.9, 0.05]]);
        let out = conv.forward(&x, &mut scratch);
        let ones = Matrix::full(out.rows(), out.cols(), 1.0);
        conv.zero_grad();
        let _ = conv.backward(&ones, &mut scratch);
        let analytic = conv.params_mut()[0].grad.get(2, 1);

        let eps = 1e-3f32;
        let orig = conv.params_mut()[0].value.get(2, 1);
        conv.params_mut()[0].value.set(2, 1, orig + eps);
        let plus = conv.forward(&x, &mut scratch).sum();
        conv.params_mut()[0].value.set(2, 1, orig - eps);
        let minus = conv.forward(&x, &mut scratch).sum();
        conv.params_mut()[0].value.set(2, 1, orig);
        let numeric = (plus - minus) / (2.0 * eps);
        assert!(
            (analytic - numeric).abs() < 2e-2,
            "analytic {analytic} vs numeric {numeric}"
        );
    }
}
