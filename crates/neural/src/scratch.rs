//! A reusable buffer pool for intermediate matrices.
//!
//! Every layer's forward/backward pass needs short-lived output and
//! temporary matrices. Allocating them per call dominated the per-step cost
//! of the networks, so the [`crate::Layer`] API threads a [`Scratch`] pool
//! through every pass: layers [`Scratch::take`] their outputs from the pool
//! and callers [`Scratch::recycle`] matrices they are done with. After a few
//! warm-up passes the pool holds a buffer for every shape in flight and the
//! steady-state forward/backward path performs **zero heap allocations**.

use crate::backend::{self, BackendRef};
use crate::matrix::Matrix;

/// Upper bound on pooled buffers; beyond this, recycled buffers are dropped.
/// Generous compared to the ~30 intermediates of the deepest network here.
const MAX_POOLED: usize = 64;

/// A pool of reusable `f32` buffers handed out as [`Matrix`] values.
///
/// Buffers are matched by capacity, not shape: a recycled `4x8` matrix can
/// satisfy a later `2x16` request without reallocating. Cloning a pool
/// clones its (idle) buffers, so `#[derive(Clone)]` types may own one.
///
/// The pool also carries the session's [kernel backend](crate::backend):
/// since every layer pass already threads a `Scratch`, the backend reaches
/// every kernel call site with no API changes — layers ask
/// [`Scratch::backend`] instead of hardcoding the scalar kernels.
#[derive(Debug, Clone)]
pub struct Scratch {
    pool: Vec<Vec<f32>>,
    backend: BackendRef,
}

impl Default for Scratch {
    fn default() -> Self {
        Self::new()
    }
}

impl Scratch {
    /// Creates an empty pool using the process-wide
    /// [default backend](crate::backend::default_backend).
    pub fn new() -> Self {
        Self::with_backend(backend::default_backend())
    }

    /// Creates an empty pool pinned to a specific kernel backend. Used by
    /// tests and benches that compare backends side by side without touching
    /// the process-wide default.
    pub fn with_backend(backend: BackendRef) -> Self {
        Self {
            pool: Vec::new(),
            backend,
        }
    }

    /// The kernel backend every layer pass through this pool dispatches to.
    pub fn backend(&self) -> BackendRef {
        self.backend
    }

    /// Returns a zero-filled `rows x cols` matrix, reusing a pooled buffer
    /// when one with sufficient capacity exists.
    pub fn take(&mut self, rows: usize, cols: usize) -> Matrix {
        let len = rows * cols;
        if len == 0 {
            // Don't tie a pooled buffer up in an empty matrix.
            return Matrix::from_vec(rows, cols, Vec::new());
        }
        let position = self.pool.iter().position(|v| v.capacity() >= len);
        let mut data = match position {
            Some(i) => self.pool.swap_remove(i),
            // No pooled buffer fits: regrow whichever was recycled most
            // recently (or start fresh). Capacities only ever grow, so
            // mixed-size traffic converges to a reusable set after warm-up.
            None => self.pool.pop().unwrap_or_default(),
        };
        data.clear();
        data.resize(len, 0.0);
        Matrix::from_vec(rows, cols, data)
    }

    /// Returns a pooled copy of `src`.
    pub fn take_copy(&mut self, src: &Matrix) -> Matrix {
        let mut out = self.take(src.rows(), src.cols());
        out.data_mut().copy_from_slice(src.data());
        out
    }

    /// Returns a matrix's buffer to the pool for reuse.
    pub fn recycle(&mut self, matrix: Matrix) {
        if self.pool.len() < MAX_POOLED {
            self.pool.push(matrix.into_data());
        }
    }

    /// Number of idle pooled buffers (diagnostics/tests).
    pub fn pooled(&self) -> usize {
        self.pool.len()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn take_returns_zeroed_matrices_of_the_requested_shape() {
        let mut scratch = Scratch::new();
        let mut m = scratch.take(3, 4);
        assert_eq!(m.shape(), (3, 4));
        assert_eq!(m.sum(), 0.0);
        m.fill(7.0);
        scratch.recycle(m);
        // The recycled buffer comes back zeroed even though it was dirtied.
        let again = scratch.take(2, 6);
        assert_eq!(again.shape(), (2, 6));
        assert_eq!(again.sum(), 0.0);
    }

    #[test]
    fn steady_state_reuses_buffers_without_allocating() {
        let mut scratch = Scratch::new();
        let first = scratch.take(8, 8);
        let ptr = first.data().as_ptr();
        scratch.recycle(first);
        // Same-size request must reuse the identical allocation.
        let second = scratch.take(8, 8);
        assert_eq!(second.data().as_ptr(), ptr);
        // A smaller request also fits in the same buffer.
        scratch.recycle(second);
        let third = scratch.take(2, 2);
        assert_eq!(third.data().as_ptr(), ptr);
        assert_eq!(scratch.pooled(), 0);
    }

    #[test]
    fn take_copy_matches_source() {
        let mut scratch = Scratch::new();
        let src = Matrix::from_rows(&[&[1.0, 2.0], &[3.0, 4.0]]);
        let copy = scratch.take_copy(&src);
        assert_eq!(copy, src);
    }
}
