//! A dense, row-major `f32` matrix with the operations the layers need.

use serde::{Deserialize, Serialize};
use std::fmt;

/// A dense row-major matrix of `f32` values.
///
/// This is the only tensor type in the library; vectors are represented as
/// single-row or single-column matrices.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Matrix {
    rows: usize,
    cols: usize,
    data: Vec<f32>,
}

impl Matrix {
    /// Creates a matrix filled with zeros.
    pub fn zeros(rows: usize, cols: usize) -> Self {
        Self {
            rows,
            cols,
            data: vec![0.0; rows * cols],
        }
    }

    /// Creates a matrix filled with a constant value.
    pub fn full(rows: usize, cols: usize, value: f32) -> Self {
        Self {
            rows,
            cols,
            data: vec![value; rows * cols],
        }
    }

    /// Creates a matrix from row-major data.
    ///
    /// # Panics
    ///
    /// Panics if `data.len() != rows * cols`.
    pub fn from_vec(rows: usize, cols: usize, data: Vec<f32>) -> Self {
        assert_eq!(
            data.len(),
            rows * cols,
            "data length {} does not match {}x{}",
            data.len(),
            rows,
            cols
        );
        Self { rows, cols, data }
    }

    /// Creates a matrix from a slice of equal-length rows.
    ///
    /// # Panics
    ///
    /// Panics if rows have differing lengths or `rows` is empty.
    pub fn from_rows(rows: &[&[f32]]) -> Self {
        assert!(!rows.is_empty(), "from_rows requires at least one row");
        let cols = rows[0].len();
        let mut data = Vec::with_capacity(rows.len() * cols);
        for row in rows {
            assert_eq!(row.len(), cols, "all rows must have the same length");
            data.extend_from_slice(row);
        }
        Self {
            rows: rows.len(),
            cols,
            data,
        }
    }

    /// Creates a single-row matrix from a slice.
    pub fn row_vector(values: &[f32]) -> Self {
        Self::from_vec(1, values.len(), values.to_vec())
    }

    /// Number of rows.
    pub fn rows(&self) -> usize {
        self.rows
    }

    /// Number of columns.
    pub fn cols(&self) -> usize {
        self.cols
    }

    /// Shape as `(rows, cols)`.
    pub fn shape(&self) -> (usize, usize) {
        (self.rows, self.cols)
    }

    /// Raw row-major data.
    pub fn data(&self) -> &[f32] {
        &self.data
    }

    /// Mutable raw row-major data.
    pub fn data_mut(&mut self) -> &mut [f32] {
        &mut self.data
    }

    /// Value at `(row, col)`.
    ///
    /// # Panics
    ///
    /// Panics if the indices are out of bounds.
    pub fn get(&self, row: usize, col: usize) -> f32 {
        assert!(row < self.rows && col < self.cols, "index out of bounds");
        self.data[row * self.cols + col]
    }

    /// Sets the value at `(row, col)`.
    ///
    /// # Panics
    ///
    /// Panics if the indices are out of bounds.
    pub fn set(&mut self, row: usize, col: usize, value: f32) {
        assert!(row < self.rows && col < self.cols, "index out of bounds");
        self.data[row * self.cols + col] = value;
    }

    /// A view of one row as a slice.
    pub fn row(&self, row: usize) -> &[f32] {
        &self.data[row * self.cols..(row + 1) * self.cols]
    }

    /// Copies one row into a new single-row matrix.
    pub fn row_matrix(&self, row: usize) -> Matrix {
        Matrix::from_vec(1, self.cols, self.row(row).to_vec())
    }

    /// Builds a matrix by stacking the selected rows (in the given order).
    pub fn select_rows(&self, indices: &[usize]) -> Matrix {
        let mut data = Vec::with_capacity(indices.len() * self.cols);
        for &i in indices {
            data.extend_from_slice(self.row(i));
        }
        Matrix::from_vec(indices.len(), self.cols, data)
    }

    /// Matrix product `self * other`.
    ///
    /// # Panics
    ///
    /// Panics if `self.cols() != other.rows()`.
    pub fn matmul(&self, other: &Matrix) -> Matrix {
        assert_eq!(
            self.cols, other.rows,
            "matmul shape mismatch: {}x{} * {}x{}",
            self.rows, self.cols, other.rows, other.cols
        );
        let mut out = Matrix::zeros(self.rows, other.cols);
        for i in 0..self.rows {
            for k in 0..self.cols {
                let a = self.data[i * self.cols + k];
                if a == 0.0 {
                    continue;
                }
                let out_row = &mut out.data[i * other.cols..(i + 1) * other.cols];
                let b_row = &other.data[k * other.cols..(k + 1) * other.cols];
                for (o, b) in out_row.iter_mut().zip(b_row) {
                    *o += a * b;
                }
            }
        }
        out
    }

    /// Transpose.
    pub fn transpose(&self) -> Matrix {
        let mut out = Matrix::zeros(self.cols, self.rows);
        for i in 0..self.rows {
            for j in 0..self.cols {
                out.data[j * self.rows + i] = self.data[i * self.cols + j];
            }
        }
        out
    }

    /// Element-wise sum; shapes must match.
    ///
    /// # Panics
    ///
    /// Panics on shape mismatch.
    pub fn add(&self, other: &Matrix) -> Matrix {
        assert_eq!(self.shape(), other.shape(), "add shape mismatch");
        let data = self
            .data
            .iter()
            .zip(&other.data)
            .map(|(a, b)| a + b)
            .collect();
        Matrix::from_vec(self.rows, self.cols, data)
    }

    /// Element-wise difference; shapes must match.
    ///
    /// # Panics
    ///
    /// Panics on shape mismatch.
    pub fn sub(&self, other: &Matrix) -> Matrix {
        assert_eq!(self.shape(), other.shape(), "sub shape mismatch");
        let data = self
            .data
            .iter()
            .zip(&other.data)
            .map(|(a, b)| a - b)
            .collect();
        Matrix::from_vec(self.rows, self.cols, data)
    }

    /// Element-wise product; shapes must match.
    ///
    /// # Panics
    ///
    /// Panics on shape mismatch.
    pub fn hadamard(&self, other: &Matrix) -> Matrix {
        assert_eq!(self.shape(), other.shape(), "hadamard shape mismatch");
        let data = self
            .data
            .iter()
            .zip(&other.data)
            .map(|(a, b)| a * b)
            .collect();
        Matrix::from_vec(self.rows, self.cols, data)
    }

    /// Adds a single-row matrix to every row (bias broadcast).
    ///
    /// # Panics
    ///
    /// Panics if `bias` is not `1 x self.cols()`.
    pub fn add_row_broadcast(&self, bias: &Matrix) -> Matrix {
        assert_eq!(bias.rows, 1, "bias must be a row vector");
        assert_eq!(bias.cols, self.cols, "bias width mismatch");
        let mut out = self.clone();
        for i in 0..self.rows {
            for j in 0..self.cols {
                out.data[i * self.cols + j] += bias.data[j];
            }
        }
        out
    }

    /// Multiplies every element by a scalar.
    pub fn scale(&self, factor: f32) -> Matrix {
        let data = self.data.iter().map(|x| x * factor).collect();
        Matrix::from_vec(self.rows, self.cols, data)
    }

    /// Applies a function to every element.
    pub fn map(&self, f: impl Fn(f32) -> f32) -> Matrix {
        let data = self.data.iter().map(|x| f(*x)).collect();
        Matrix::from_vec(self.rows, self.cols, data)
    }

    /// In-place element-wise accumulation (`self += other`).
    ///
    /// # Panics
    ///
    /// Panics on shape mismatch.
    pub fn accumulate(&mut self, other: &Matrix) {
        assert_eq!(self.shape(), other.shape(), "accumulate shape mismatch");
        for (a, b) in self.data.iter_mut().zip(&other.data) {
            *a += b;
        }
    }

    /// Sum over rows, returning a `1 x cols` matrix.
    pub fn sum_rows(&self) -> Matrix {
        let mut out = Matrix::zeros(1, self.cols);
        for i in 0..self.rows {
            for j in 0..self.cols {
                out.data[j] += self.data[i * self.cols + j];
            }
        }
        out
    }

    /// Mean over rows, returning a `1 x cols` matrix.
    pub fn mean_rows(&self) -> Matrix {
        if self.rows == 0 {
            return Matrix::zeros(1, self.cols);
        }
        self.sum_rows().scale(1.0 / self.rows as f32)
    }

    /// Sum of all elements.
    pub fn sum(&self) -> f32 {
        self.data.iter().sum()
    }

    /// Mean of all elements.
    pub fn mean(&self) -> f32 {
        if self.data.is_empty() {
            0.0
        } else {
            self.sum() / self.data.len() as f32
        }
    }

    /// Row-wise softmax.
    pub fn softmax_rows(&self) -> Matrix {
        let mut out = self.clone();
        for i in 0..self.rows {
            let row = &mut out.data[i * self.cols..(i + 1) * self.cols];
            let max = row.iter().copied().fold(f32::NEG_INFINITY, f32::max);
            let mut sum = 0.0;
            for v in row.iter_mut() {
                *v = (*v - max).exp();
                sum += *v;
            }
            if sum > 0.0 {
                for v in row.iter_mut() {
                    *v /= sum;
                }
            }
        }
        out
    }

    /// Horizontally concatenates two matrices with equal row counts.
    ///
    /// # Panics
    ///
    /// Panics if the row counts differ.
    pub fn hcat(&self, other: &Matrix) -> Matrix {
        assert_eq!(self.rows, other.rows, "hcat row mismatch");
        let cols = self.cols + other.cols;
        let mut data = Vec::with_capacity(self.rows * cols);
        for i in 0..self.rows {
            data.extend_from_slice(self.row(i));
            data.extend_from_slice(other.row(i));
        }
        Matrix::from_vec(self.rows, cols, data)
    }

    /// Vertically stacks two matrices with equal column counts.
    ///
    /// # Panics
    ///
    /// Panics if the column counts differ.
    pub fn vcat(&self, other: &Matrix) -> Matrix {
        assert_eq!(self.cols, other.cols, "vcat column mismatch");
        let mut data = self.data.clone();
        data.extend_from_slice(&other.data);
        Matrix::from_vec(self.rows + other.rows, self.cols, data)
    }

    /// Splits the matrix after `left_cols` columns into two matrices.
    ///
    /// # Panics
    ///
    /// Panics if `left_cols > self.cols()`.
    pub fn hsplit(&self, left_cols: usize) -> (Matrix, Matrix) {
        assert!(left_cols <= self.cols, "hsplit out of bounds");
        let mut left = Matrix::zeros(self.rows, left_cols);
        let mut right = Matrix::zeros(self.rows, self.cols - left_cols);
        for i in 0..self.rows {
            left.data[i * left_cols..(i + 1) * left_cols]
                .copy_from_slice(&self.row(i)[..left_cols]);
            right.data[i * (self.cols - left_cols)..(i + 1) * (self.cols - left_cols)]
                .copy_from_slice(&self.row(i)[left_cols..]);
        }
        (left, right)
    }

    /// Index of the maximum element of a single-row matrix.
    pub fn argmax_row(&self, row: usize) -> usize {
        let slice = self.row(row);
        slice
            .iter()
            .enumerate()
            .max_by(|a, b| a.1.partial_cmp(b.1).unwrap_or(std::cmp::Ordering::Equal))
            .map(|(i, _)| i)
            .unwrap_or(0)
    }

    /// Frobenius norm.
    pub fn norm(&self) -> f32 {
        self.data.iter().map(|x| x * x).sum::<f32>().sqrt()
    }

    /// Number of elements.
    pub fn len(&self) -> usize {
        self.data.len()
    }

    /// Whether the matrix has zero elements.
    pub fn is_empty(&self) -> bool {
        self.data.is_empty()
    }
}

impl fmt::Display for Matrix {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        writeln!(f, "Matrix {}x{}", self.rows, self.cols)?;
        for i in 0..self.rows.min(8) {
            let row: Vec<String> = self
                .row(i)
                .iter()
                .take(8)
                .map(|v| format!("{v:.4}"))
                .collect();
            writeln!(f, "  [{}]", row.join(", "))?;
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn construction_and_access() {
        let m = Matrix::from_rows(&[&[1.0, 2.0], &[3.0, 4.0]]);
        assert_eq!(m.shape(), (2, 2));
        assert_eq!(m.get(1, 0), 3.0);
        let mut m = m;
        m.set(1, 0, 5.0);
        assert_eq!(m.get(1, 0), 5.0);
        assert_eq!(m.row(0), &[1.0, 2.0]);
        assert_eq!(Matrix::zeros(2, 3).sum(), 0.0);
        assert_eq!(Matrix::full(2, 2, 3.0).sum(), 12.0);
        assert_eq!(Matrix::row_vector(&[1.0, 2.0, 3.0]).shape(), (1, 3));
    }

    #[test]
    #[should_panic(expected = "does not match")]
    fn from_vec_checks_length() {
        let _ = Matrix::from_vec(2, 2, vec![1.0, 2.0, 3.0]);
    }

    #[test]
    fn matmul_matches_hand_computation() {
        let a = Matrix::from_rows(&[&[1.0, 2.0], &[3.0, 4.0]]);
        let b = Matrix::from_rows(&[&[5.0, 6.0], &[7.0, 8.0]]);
        let c = a.matmul(&b);
        assert_eq!(c.data(), &[19.0, 22.0, 43.0, 50.0]);
    }

    #[test]
    fn transpose_round_trips() {
        let a = Matrix::from_rows(&[&[1.0, 2.0, 3.0], &[4.0, 5.0, 6.0]]);
        let t = a.transpose();
        assert_eq!(t.shape(), (3, 2));
        assert_eq!(t.transpose(), a);
    }

    #[test]
    fn elementwise_ops() {
        let a = Matrix::from_rows(&[&[1.0, 2.0]]);
        let b = Matrix::from_rows(&[&[3.0, 4.0]]);
        assert_eq!(a.add(&b).data(), &[4.0, 6.0]);
        assert_eq!(b.sub(&a).data(), &[2.0, 2.0]);
        assert_eq!(a.hadamard(&b).data(), &[3.0, 8.0]);
        assert_eq!(a.scale(2.0).data(), &[2.0, 4.0]);
        assert_eq!(a.map(|x| x + 1.0).data(), &[2.0, 3.0]);
        let mut acc = Matrix::zeros(1, 2);
        acc.accumulate(&a);
        acc.accumulate(&a);
        assert_eq!(acc.data(), &[2.0, 4.0]);
    }

    #[test]
    fn broadcast_and_reductions() {
        let x = Matrix::from_rows(&[&[1.0, 2.0], &[3.0, 4.0]]);
        let bias = Matrix::row_vector(&[10.0, 20.0]);
        assert_eq!(x.add_row_broadcast(&bias).data(), &[11.0, 22.0, 13.0, 24.0]);
        assert_eq!(x.sum_rows().data(), &[4.0, 6.0]);
        assert_eq!(x.mean_rows().data(), &[2.0, 3.0]);
        assert_eq!(x.mean(), 2.5);
        assert!((x.norm() - (30.0f32).sqrt()).abs() < 1e-6);
    }

    #[test]
    fn softmax_rows_are_normalised() {
        let x = Matrix::from_rows(&[&[1.0, 2.0, 3.0], &[0.0, 0.0, 0.0]]);
        let s = x.softmax_rows();
        for i in 0..2 {
            let sum: f32 = s.row(i).iter().sum();
            assert!((sum - 1.0).abs() < 1e-6);
        }
        assert!(s.get(0, 2) > s.get(0, 0));
        assert!((s.get(1, 0) - 1.0 / 3.0).abs() < 1e-6);
    }

    #[test]
    fn concatenation_and_splitting() {
        let a = Matrix::from_rows(&[&[1.0], &[2.0]]);
        let b = Matrix::from_rows(&[&[3.0, 4.0], &[5.0, 6.0]]);
        let cat = a.hcat(&b);
        assert_eq!(cat.shape(), (2, 3));
        let (left, right) = cat.hsplit(1);
        assert_eq!(left, a);
        assert_eq!(right, b);
        let stacked = a.vcat(&a);
        assert_eq!(stacked.shape(), (4, 1));
    }

    #[test]
    fn row_selection_and_argmax() {
        let m = Matrix::from_rows(&[&[1.0, 9.0, 2.0], &[7.0, 0.0, 3.0]]);
        assert_eq!(m.argmax_row(0), 1);
        assert_eq!(m.argmax_row(1), 0);
        let sel = m.select_rows(&[1, 0, 1]);
        assert_eq!(sel.shape(), (3, 3));
        assert_eq!(sel.row(0), m.row(1));
        assert_eq!(sel.row(2), m.row(1));
        assert_eq!(m.row_matrix(1).row(0), m.row(1));
    }
}
