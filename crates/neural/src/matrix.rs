//! A dense, row-major `f32` matrix with the operations the layers need.

use serde::{Deserialize, Serialize};
use std::fmt;

/// A dense row-major matrix of `f32` values.
///
/// This is the only tensor type in the library; vectors are represented as
/// single-row or single-column matrices.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Matrix {
    rows: usize,
    cols: usize,
    data: Vec<f32>,
}

impl Matrix {
    /// Creates a matrix filled with zeros.
    pub fn zeros(rows: usize, cols: usize) -> Self {
        Self {
            rows,
            cols,
            data: vec![0.0; rows * cols],
        }
    }

    /// Creates a matrix filled with a constant value.
    pub fn full(rows: usize, cols: usize, value: f32) -> Self {
        Self {
            rows,
            cols,
            data: vec![value; rows * cols],
        }
    }

    /// Creates a matrix from row-major data.
    ///
    /// # Panics
    ///
    /// Panics if `data.len() != rows * cols`.
    pub fn from_vec(rows: usize, cols: usize, data: Vec<f32>) -> Self {
        assert_eq!(
            data.len(),
            rows * cols,
            "data length {} does not match {}x{}",
            data.len(),
            rows,
            cols
        );
        Self { rows, cols, data }
    }

    /// Creates a matrix from a slice of equal-length rows.
    ///
    /// # Panics
    ///
    /// Panics if rows have differing lengths or `rows` is empty.
    pub fn from_rows(rows: &[&[f32]]) -> Self {
        assert!(!rows.is_empty(), "from_rows requires at least one row");
        let cols = rows[0].len();
        let mut data = Vec::with_capacity(rows.len() * cols);
        for row in rows {
            assert_eq!(row.len(), cols, "all rows must have the same length");
            data.extend_from_slice(row);
        }
        Self {
            rows: rows.len(),
            cols,
            data,
        }
    }

    /// Creates a single-row matrix from a slice.
    pub fn row_vector(values: &[f32]) -> Self {
        Self::from_vec(1, values.len(), values.to_vec())
    }

    /// Number of rows.
    pub fn rows(&self) -> usize {
        self.rows
    }

    /// Number of columns.
    pub fn cols(&self) -> usize {
        self.cols
    }

    /// Shape as `(rows, cols)`.
    pub fn shape(&self) -> (usize, usize) {
        (self.rows, self.cols)
    }

    /// Raw row-major data.
    pub fn data(&self) -> &[f32] {
        &self.data
    }

    /// Mutable raw row-major data.
    pub fn data_mut(&mut self) -> &mut [f32] {
        &mut self.data
    }

    /// Value at `(row, col)`.
    ///
    /// # Panics
    ///
    /// Panics if the indices are out of bounds.
    pub fn get(&self, row: usize, col: usize) -> f32 {
        assert!(row < self.rows && col < self.cols, "index out of bounds");
        self.data[row * self.cols + col]
    }

    /// Sets the value at `(row, col)`.
    ///
    /// # Panics
    ///
    /// Panics if the indices are out of bounds.
    pub fn set(&mut self, row: usize, col: usize, value: f32) {
        assert!(row < self.rows && col < self.cols, "index out of bounds");
        self.data[row * self.cols + col] = value;
    }

    /// A view of one row as a slice.
    pub fn row(&self, row: usize) -> &[f32] {
        &self.data[row * self.cols..(row + 1) * self.cols]
    }

    /// Copies one row into a new single-row matrix.
    pub fn row_matrix(&self, row: usize) -> Matrix {
        Matrix::from_vec(1, self.cols, self.row(row).to_vec())
    }

    /// Builds a matrix by stacking the selected rows (in the given order).
    pub fn select_rows(&self, indices: &[usize]) -> Matrix {
        let mut data = Vec::with_capacity(indices.len() * self.cols);
        for &i in indices {
            data.extend_from_slice(self.row(i));
        }
        Matrix::from_vec(indices.len(), self.cols, data)
    }

    /// Matrix product `self * other`.
    ///
    /// # Panics
    ///
    /// Panics if `self.cols() != other.rows()`.
    pub fn matmul(&self, other: &Matrix) -> Matrix {
        let mut out = Matrix::zeros(self.rows, other.cols);
        self.matmul_into(other, &mut out);
        out
    }

    /// Writes `self * other` into `out` without allocating: the register
    /// tiles are stored directly, so `out`'s previous contents are neither
    /// read nor zeroed first.
    ///
    /// # Panics
    ///
    /// Panics if `self.cols() != other.rows()` or `out` is not
    /// `self.rows() x other.cols()`.
    pub fn matmul_into(&self, other: &Matrix, out: &mut Matrix) {
        out.matmul_impl::<false>(self, other);
    }

    /// Accumulates `a * b` into `self` (`self += a·b`) without allocating.
    ///
    /// The kernel is blocked into register tiles of 4 output rows × 32
    /// output columns: each tile accumulates in registers across the entire
    /// `k` loop (outputs are loaded and stored once per tile instead of once
    /// per `k`), every loaded 32-lane slice of `b` is reused by all four
    /// rows of the tile (4× less streaming of the shared weight matrix —
    /// what makes batched inference faster per state than solo inference),
    /// and the 32-lane tiles auto-vectorize. Within every output element the
    /// accumulation order is ascending `k` — the naive dot-product order —
    /// so `matmul_into` (which starts from zero) reproduces the naive kernel
    /// bit-for-bit at every size, *including* every row-count: stacking more
    /// rows into a batch never changes any row's result. Dense inputs take
    /// no data-dependent branches (`0 × NaN` correctly propagates `NaN`).
    ///
    /// # Panics
    ///
    /// Panics on any shape mismatch.
    pub fn add_matmul(&mut self, a: &Matrix, b: &Matrix) {
        self.matmul_impl::<true>(a, b);
    }

    /// Shared tiled kernel behind [`Matrix::matmul_into`] (`ACCUMULATE =
    /// false`: tiles stored directly) and [`Matrix::add_matmul`]
    /// (`ACCUMULATE = true`: tiles added onto the existing contents).
    fn matmul_impl<const ACCUMULATE: bool>(&mut self, a: &Matrix, b: &Matrix) {
        assert_eq!(
            a.cols, b.rows,
            "matmul shape mismatch: {}x{} * {}x{}",
            a.rows, a.cols, b.rows, b.cols
        );
        assert_eq!(
            (self.rows, self.cols),
            (a.rows, b.cols),
            "matmul output shape mismatch"
        );
        let (m, kk, n) = (a.rows, a.cols, b.cols);
        // Full 4-row blocks first (the shared-b hot path), then the ragged
        // row tail one row at a time. Both paths are monomorphized over the
        // block height so every accumulator tile stays in registers.
        let mut i0 = 0;
        while i0 + 4 <= m {
            mm_row_block::<ACCUMULATE, 4>(&mut self.data, &a.data, &b.data, i0, kk, n);
            i0 += 4;
        }
        while i0 < m {
            mm_row_block::<ACCUMULATE, 1>(&mut self.data, &a.data, &b.data, i0, kk, n);
            i0 += 1;
        }
    }

    /// Writes `selfᵀ * other` into `out` without materialising the transpose.
    ///
    /// # Panics
    ///
    /// Panics on any shape mismatch.
    pub fn matmul_transa_into(&self, other: &Matrix, out: &mut Matrix) {
        out.fill(0.0);
        out.add_matmul_transa(self, other);
    }

    /// Accumulates `aᵀ * b` into `self` without materialising the transpose
    /// or allocating — the gradient-accumulation kernel (`W.grad += Xᵀ·G`).
    /// Uses the same 32-lane register tiling as [`Matrix::add_matmul`]: each
    /// output tile accumulates in registers across the shared (`k`) row
    /// dimension, ascending `k`.
    ///
    /// # Panics
    ///
    /// Panics on any shape mismatch.
    pub fn add_matmul_transa(&mut self, a: &Matrix, b: &Matrix) {
        self.add_matmul_transa_blocks(a, b, 0, a.rows);
    }

    /// Accumulates `a[row_start .. row_start + rows]ᵀ * b[row_start ..
    /// row_start + rows]` into `self` — the per-item form of
    /// [`Matrix::add_matmul_transa`] over one row block of two stacked
    /// batch matrices.
    ///
    /// The float operations are exactly those of `add_matmul_transa` on
    /// copies of the two blocks (local tile accumulator over the block's
    /// rows in ascending order, one flush into `self` per element), so a
    /// per-item loop over a stacked batch reproduces a serial per-sample
    /// gradient accumulation **bit for bit** — the property the batched
    /// training path's determinism pin relies on for multi-row items.
    ///
    /// # Panics
    ///
    /// Panics on any shape mismatch or if the block runs past the last row.
    pub fn add_matmul_transa_blocks(
        &mut self,
        a: &Matrix,
        b: &Matrix,
        row_start: usize,
        rows: usize,
    ) {
        assert_eq!(
            a.rows, b.rows,
            "matmul_transa shape mismatch: {}x{}ᵀ * {}x{}",
            a.rows, a.cols, b.rows, b.cols
        );
        assert_eq!(
            (self.rows, self.cols),
            (a.cols, b.cols),
            "matmul_transa output shape mismatch"
        );
        assert!(
            row_start + rows <= a.rows,
            "row block {}..{} out of {} rows",
            row_start,
            row_start + rows,
            a.rows
        );
        const JT: usize = 32;
        let (r, c) = (a.cols, b.cols);
        let krange = row_start..row_start + rows;
        for i in 0..r {
            let mut j0 = 0;
            while j0 + JT <= c {
                let mut acc = [0.0f32; JT];
                for k in krange.clone() {
                    let av = a.data[k * r + i];
                    let b_tile = &b.data[k * c + j0..k * c + j0 + JT];
                    for (o, &bv) in acc.iter_mut().zip(b_tile) {
                        *o += av * bv;
                    }
                }
                let out = &mut self.data[i * c + j0..i * c + j0 + JT];
                for (o, &v) in out.iter_mut().zip(&acc) {
                    *o += v;
                }
                j0 += JT;
            }
            if j0 < c {
                let jb = c - j0;
                let mut acc = [0.0f32; JT];
                for k in krange.clone() {
                    let av = a.data[k * r + i];
                    let b_tile = &b.data[k * c + j0..k * c + j0 + jb];
                    for (o, &bv) in acc[..jb].iter_mut().zip(b_tile) {
                        *o += av * bv;
                    }
                }
                let out = &mut self.data[i * c + j0..i * c + j0 + jb];
                for (o, &v) in out.iter_mut().zip(&acc[..jb]) {
                    *o += v;
                }
            }
        }
    }

    /// Writes `self * otherᵀ` into `out` without materialising the transpose.
    ///
    /// # Panics
    ///
    /// Panics on any shape mismatch.
    pub fn matmul_transb_into(&self, other: &Matrix, out: &mut Matrix) {
        out.fill(0.0);
        out.add_matmul_transb(self, other);
    }

    /// Accumulates `a * bᵀ` into `self` without materialising the transpose
    /// or allocating. Both operands stream row-major, so this is the
    /// cache-friendly form of every `X·Wᵀ` backward product and of the
    /// attention score matrix `Q·Kᵀ`.
    ///
    /// Each dot product runs over eight independent accumulator lanes so
    /// the reduction vectorizes; the summation order therefore differs from
    /// the naive kernel by a few ulps (the layers' gradient tolerances
    /// absorb this, and [`Matrix::matmul_into`] — the kernel with the exact
    /// ordering contract — is unaffected).
    ///
    /// # Panics
    ///
    /// Panics on any shape mismatch.
    pub fn add_matmul_transb(&mut self, a: &Matrix, b: &Matrix) {
        assert_eq!(
            a.cols, b.cols,
            "matmul_transb shape mismatch: {}x{} * {}x{}ᵀ",
            a.rows, a.cols, b.rows, b.cols
        );
        assert_eq!(
            (self.rows, self.cols),
            (a.rows, b.rows),
            "matmul_transb output shape mismatch"
        );
        let (kk, n) = (a.cols, b.rows);
        for i in 0..a.rows {
            let a_row = &a.data[i * a.cols..(i + 1) * a.cols];
            let out_row = &mut self.data[i * n..(i + 1) * n];
            for (j, o) in out_row.iter_mut().enumerate() {
                let b_row = &b.data[j * kk..(j + 1) * kk];
                *o += dot_lanes(a_row, b_row);
            }
        }
    }

    /// Accumulates the outer product of two vectors into `self`
    /// (`self[i][j] += col[i] * row[j]`) — the rank-1 gradient update of a
    /// single-row layer input.
    ///
    /// # Panics
    ///
    /// Panics if `self` is not `col.len() x row.len()`.
    pub fn add_outer(&mut self, col: &[f32], row: &[f32]) {
        assert_eq!(
            (self.rows, self.cols),
            (col.len(), row.len()),
            "outer-product shape mismatch"
        );
        for (i, &cv) in col.iter().enumerate() {
            let out_row = &mut self.data[i * self.cols..(i + 1) * self.cols];
            for (o, &rv) in out_row.iter_mut().zip(row) {
                *o += cv * rv;
            }
        }
    }

    /// Transpose.
    pub fn transpose(&self) -> Matrix {
        let mut out = Matrix::zeros(self.cols, self.rows);
        self.transpose_into(&mut out);
        out
    }

    /// Writes the transpose into `out` without allocating.
    ///
    /// # Panics
    ///
    /// Panics if `out` is not `self.cols() x self.rows()`.
    pub fn transpose_into(&self, out: &mut Matrix) {
        assert_eq!(
            (out.rows, out.cols),
            (self.cols, self.rows),
            "transpose output shape mismatch"
        );
        for i in 0..self.rows {
            for j in 0..self.cols {
                out.data[j * self.rows + i] = self.data[i * self.cols + j];
            }
        }
    }

    /// Element-wise sum; shapes must match.
    ///
    /// # Panics
    ///
    /// Panics on shape mismatch.
    pub fn add(&self, other: &Matrix) -> Matrix {
        assert_eq!(self.shape(), other.shape(), "add shape mismatch");
        let data = self
            .data
            .iter()
            .zip(&other.data)
            .map(|(a, b)| a + b)
            .collect();
        Matrix::from_vec(self.rows, self.cols, data)
    }

    /// Element-wise difference; shapes must match.
    ///
    /// # Panics
    ///
    /// Panics on shape mismatch.
    pub fn sub(&self, other: &Matrix) -> Matrix {
        assert_eq!(self.shape(), other.shape(), "sub shape mismatch");
        let data = self
            .data
            .iter()
            .zip(&other.data)
            .map(|(a, b)| a - b)
            .collect();
        Matrix::from_vec(self.rows, self.cols, data)
    }

    /// Element-wise product; shapes must match.
    ///
    /// # Panics
    ///
    /// Panics on shape mismatch.
    pub fn hadamard(&self, other: &Matrix) -> Matrix {
        assert_eq!(self.shape(), other.shape(), "hadamard shape mismatch");
        let data = self
            .data
            .iter()
            .zip(&other.data)
            .map(|(a, b)| a * b)
            .collect();
        Matrix::from_vec(self.rows, self.cols, data)
    }

    /// Adds a single-row matrix to every row (bias broadcast).
    ///
    /// # Panics
    ///
    /// Panics if `bias` is not `1 x self.cols()`.
    pub fn add_row_broadcast(&self, bias: &Matrix) -> Matrix {
        assert_eq!(bias.rows, 1, "bias must be a row vector");
        assert_eq!(bias.cols, self.cols, "bias width mismatch");
        let mut out = self.clone();
        for i in 0..self.rows {
            for j in 0..self.cols {
                out.data[i * self.cols + j] += bias.data[j];
            }
        }
        out
    }

    /// Multiplies every element by a scalar.
    pub fn scale(&self, factor: f32) -> Matrix {
        let data = self.data.iter().map(|x| x * factor).collect();
        Matrix::from_vec(self.rows, self.cols, data)
    }

    /// Applies a function to every element.
    pub fn map(&self, f: impl Fn(f32) -> f32) -> Matrix {
        let data = self.data.iter().map(|x| f(*x)).collect();
        Matrix::from_vec(self.rows, self.cols, data)
    }

    /// In-place element-wise accumulation (`self += other`).
    ///
    /// # Panics
    ///
    /// Panics on shape mismatch.
    pub fn add_assign(&mut self, other: &Matrix) {
        assert_eq!(self.shape(), other.shape(), "accumulate shape mismatch");
        for (a, b) in self.data.iter_mut().zip(&other.data) {
            *a += b;
        }
    }

    /// Alias of [`Matrix::add_assign`], kept for existing call sites.
    pub fn accumulate(&mut self, other: &Matrix) {
        self.add_assign(other);
    }

    /// In-place scaled accumulation (`self += factor * other`).
    ///
    /// # Panics
    ///
    /// Panics on shape mismatch.
    pub fn add_scaled(&mut self, other: &Matrix, factor: f32) {
        assert_eq!(self.shape(), other.shape(), "add_scaled shape mismatch");
        for (a, b) in self.data.iter_mut().zip(&other.data) {
            *a += factor * b;
        }
    }

    /// Sets every element to `value` (zero-allocation reset).
    pub fn fill(&mut self, value: f32) {
        self.data.fill(value);
    }

    /// Copies another matrix's shape and contents into `self`, reusing the
    /// existing allocation whenever its capacity suffices.
    pub fn copy_from(&mut self, other: &Matrix) {
        self.rows = other.rows;
        self.cols = other.cols;
        self.data.clear();
        self.data.extend_from_slice(&other.data);
    }

    /// Applies a function to every element in place.
    pub fn map_inplace(&mut self, f: impl Fn(f32) -> f32) {
        for v in &mut self.data {
            *v = f(*v);
        }
    }

    /// Multiplies every element by a scalar in place.
    pub fn scale_inplace(&mut self, factor: f32) {
        for v in &mut self.data {
            *v *= factor;
        }
    }

    /// Adds a single-row matrix to every row in place (bias broadcast).
    ///
    /// # Panics
    ///
    /// Panics if `bias` is not `1 x self.cols()`.
    pub fn add_row_inplace(&mut self, bias: &Matrix) {
        assert_eq!(bias.rows, 1, "bias must be a row vector");
        assert_eq!(bias.cols, self.cols, "bias width mismatch");
        for i in 0..self.rows {
            let row = &mut self.data[i * self.cols..(i + 1) * self.cols];
            for (v, b) in row.iter_mut().zip(&bias.data) {
                *v += b;
            }
        }
    }

    /// Accumulates the column sums of `other` into this `1 x cols` matrix
    /// (the bias-gradient kernel: `b.grad += Σ_rows G`).
    ///
    /// # Panics
    ///
    /// Panics if `self` is not `1 x other.cols()`.
    pub fn add_sum_rows(&mut self, other: &Matrix) {
        assert_eq!(
            (self.rows, self.cols),
            (1, other.cols),
            "add_sum_rows shape mismatch"
        );
        for i in 0..other.rows {
            let row = &other.data[i * other.cols..(i + 1) * other.cols];
            for (o, v) in self.data.iter_mut().zip(row) {
                *o += v;
            }
        }
    }

    /// Writes the column means of `self` into a `1 x cols` matrix.
    ///
    /// # Panics
    ///
    /// Panics if `out` is not `1 x self.cols()`.
    pub fn mean_rows_into(&self, out: &mut Matrix) {
        assert_eq!(
            (out.rows, out.cols),
            (1, self.cols),
            "mean_rows output shape mismatch"
        );
        out.fill(0.0);
        out.add_sum_rows(self);
        if self.rows > 0 {
            out.scale_inplace(1.0 / self.rows as f32);
        }
    }

    /// Row-wise softmax in place.
    pub fn softmax_rows_inplace(&mut self) {
        for i in 0..self.rows {
            let row = &mut self.data[i * self.cols..(i + 1) * self.cols];
            let max = row.iter().copied().fold(f32::NEG_INFINITY, f32::max);
            let mut sum = 0.0;
            for v in row.iter_mut() {
                *v = (*v - max).exp();
                sum += *v;
            }
            if sum > 0.0 {
                for v in row.iter_mut() {
                    *v /= sum;
                }
            }
        }
    }

    /// Stacks the selected rows (in the given order) into `out` without
    /// allocating.
    ///
    /// # Panics
    ///
    /// Panics if `out` is not `indices.len() x self.cols()` or any index is
    /// out of bounds.
    pub fn select_rows_into(&self, indices: &[usize], out: &mut Matrix) {
        assert_eq!(
            (out.rows, out.cols),
            (indices.len(), self.cols),
            "select_rows output shape mismatch"
        );
        for (slot, &i) in indices.iter().enumerate() {
            let src = &self.data[i * self.cols..(i + 1) * self.cols];
            out.data[slot * self.cols..(slot + 1) * self.cols].copy_from_slice(src);
        }
    }

    /// A mutable view of one row as a slice.
    pub fn row_mut(&mut self, row: usize) -> &mut [f32] {
        &mut self.data[row * self.cols..(row + 1) * self.cols]
    }

    /// Copies the contiguous row block `src_row .. src_row + out.rows()` into
    /// `out` — the gather half of the batch view's per-item access.
    ///
    /// # Panics
    ///
    /// Panics if the column counts differ or the block runs past the last row.
    pub fn copy_row_block_into(&self, src_row: usize, out: &mut Matrix) {
        assert_eq!(self.cols, out.cols, "row block column mismatch");
        assert!(
            src_row + out.rows <= self.rows,
            "row block {}..{} out of {} rows",
            src_row,
            src_row + out.rows,
            self.rows
        );
        let start = src_row * self.cols;
        let len = out.data.len();
        out.data.copy_from_slice(&self.data[start..start + len]);
    }

    /// Overwrites the contiguous row block starting at `dst_row` with `src` —
    /// the scatter half of the batch view's per-item access.
    ///
    /// # Panics
    ///
    /// Panics if the column counts differ or the block runs past the last row.
    pub fn write_row_block(&mut self, dst_row: usize, src: &Matrix) {
        assert_eq!(self.cols, src.cols, "row block column mismatch");
        assert!(
            dst_row + src.rows <= self.rows,
            "row block {}..{} out of {} rows",
            dst_row,
            dst_row + src.rows,
            self.rows
        );
        let start = dst_row * self.cols;
        self.data[start..start + src.data.len()].copy_from_slice(&src.data);
    }

    /// Consumes the matrix, returning its backing buffer (for buffer pools).
    pub fn into_data(self) -> Vec<f32> {
        self.data
    }

    /// Sum over rows, returning a `1 x cols` matrix.
    pub fn sum_rows(&self) -> Matrix {
        let mut out = Matrix::zeros(1, self.cols);
        out.add_sum_rows(self);
        out
    }

    /// Mean over rows, returning a `1 x cols` matrix.
    pub fn mean_rows(&self) -> Matrix {
        if self.rows == 0 {
            return Matrix::zeros(1, self.cols);
        }
        self.sum_rows().scale(1.0 / self.rows as f32)
    }

    /// Sum of all elements.
    pub fn sum(&self) -> f32 {
        self.data.iter().sum()
    }

    /// Mean of all elements.
    pub fn mean(&self) -> f32 {
        if self.data.is_empty() {
            0.0
        } else {
            self.sum() / self.data.len() as f32
        }
    }

    /// Row-wise softmax.
    pub fn softmax_rows(&self) -> Matrix {
        let mut out = self.clone();
        out.softmax_rows_inplace();
        out
    }

    /// Horizontally concatenates two matrices with equal row counts.
    ///
    /// # Panics
    ///
    /// Panics if the row counts differ.
    pub fn hcat(&self, other: &Matrix) -> Matrix {
        assert_eq!(self.rows, other.rows, "hcat row mismatch");
        let cols = self.cols + other.cols;
        let mut data = Vec::with_capacity(self.rows * cols);
        for i in 0..self.rows {
            data.extend_from_slice(self.row(i));
            data.extend_from_slice(other.row(i));
        }
        Matrix::from_vec(self.rows, cols, data)
    }

    /// Vertically stacks two matrices with equal column counts.
    ///
    /// # Panics
    ///
    /// Panics if the column counts differ.
    pub fn vcat(&self, other: &Matrix) -> Matrix {
        assert_eq!(self.cols, other.cols, "vcat column mismatch");
        let mut data = self.data.clone();
        data.extend_from_slice(&other.data);
        Matrix::from_vec(self.rows + other.rows, self.cols, data)
    }

    /// Splits the matrix after `left_cols` columns into two matrices.
    ///
    /// # Panics
    ///
    /// Panics if `left_cols > self.cols()`.
    pub fn hsplit(&self, left_cols: usize) -> (Matrix, Matrix) {
        assert!(left_cols <= self.cols, "hsplit out of bounds");
        let mut left = Matrix::zeros(self.rows, left_cols);
        let mut right = Matrix::zeros(self.rows, self.cols - left_cols);
        for i in 0..self.rows {
            left.data[i * left_cols..(i + 1) * left_cols]
                .copy_from_slice(&self.row(i)[..left_cols]);
            right.data[i * (self.cols - left_cols)..(i + 1) * (self.cols - left_cols)]
                .copy_from_slice(&self.row(i)[left_cols..]);
        }
        (left, right)
    }

    /// Index of the maximum element of a single-row matrix.
    pub fn argmax_row(&self, row: usize) -> usize {
        let slice = self.row(row);
        slice
            .iter()
            .enumerate()
            .max_by(|a, b| a.1.partial_cmp(b.1).unwrap_or(std::cmp::Ordering::Equal))
            .map(|(i, _)| i)
            .unwrap_or(0)
    }

    /// Frobenius norm.
    pub fn norm(&self) -> f32 {
        self.data.iter().map(|x| x * x).sum::<f32>().sqrt()
    }

    /// Number of elements.
    pub fn len(&self) -> usize {
        self.data.len()
    }

    /// Whether the matrix has zero elements.
    pub fn is_empty(&self) -> bool {
        self.data.is_empty()
    }
}

/// One `IB`-row × 32-column register-tile pass of the matmul kernel:
/// computes output rows `i0 .. i0 + IB` across all `n` columns. Every loaded
/// 32-lane slice of `b` feeds all `IB` rows (the weight-reuse that makes
/// batched inference cheaper per state), each output element accumulates in
/// ascending-`k` order (bit-identical to the naive kernel for every block
/// height), and `IB` is a compile-time constant so the accumulator tile
/// stays in registers.
#[inline(always)]
fn mm_row_block<const ACCUMULATE: bool, const IB: usize>(
    out: &mut [f32],
    a: &[f32],
    b: &[f32],
    i0: usize,
    kk: usize,
    n: usize,
) {
    const JT: usize = 32;
    let mut j0 = 0;
    // Hot path: full 32-lane tiles with compile-time-known widths.
    while j0 + JT <= n {
        let mut acc = [[0.0f32; JT]; IB];
        for k in 0..kk {
            let b_tile = &b[k * n + j0..k * n + j0 + JT];
            for (r, acc_row) in acc.iter_mut().enumerate() {
                let av = a[(i0 + r) * kk + k];
                for (o, &bv) in acc_row.iter_mut().zip(b_tile) {
                    *o += av * bv;
                }
            }
        }
        for (r, acc_row) in acc.iter().enumerate() {
            let at = (i0 + r) * n + j0;
            for (o, &v) in out[at..at + JT].iter_mut().zip(acc_row) {
                if ACCUMULATE {
                    *o += v;
                } else {
                    *o = v;
                }
            }
        }
        j0 += JT;
    }
    // Ragged column tail: same ascending-k accumulation, runtime width.
    if j0 < n {
        let jb = n - j0;
        let mut acc = [[0.0f32; JT]; IB];
        for k in 0..kk {
            let b_tile = &b[k * n + j0..k * n + j0 + jb];
            for (r, acc_row) in acc.iter_mut().enumerate() {
                let av = a[(i0 + r) * kk + k];
                for (o, &bv) in acc_row[..jb].iter_mut().zip(b_tile) {
                    *o += av * bv;
                }
            }
        }
        for (r, acc_row) in acc.iter().enumerate() {
            let at = (i0 + r) * n + j0;
            for (o, &v) in out[at..at + jb].iter_mut().zip(&acc_row[..jb]) {
                if ACCUMULATE {
                    *o += v;
                } else {
                    *o = v;
                }
            }
        }
    }
}

/// Dot product over eight independent accumulator lanes (vectorizable
/// reduction), with a scalar tail for the remainder.
fn dot_lanes(a: &[f32], b: &[f32]) -> f32 {
    const LANES: usize = 8;
    let mut acc = [0.0f32; LANES];
    let mut a_chunks = a.chunks_exact(LANES);
    let mut b_chunks = b.chunks_exact(LANES);
    for (ac, bc) in (&mut a_chunks).zip(&mut b_chunks) {
        for l in 0..LANES {
            acc[l] += ac[l] * bc[l];
        }
    }
    let mut total = 0.0f32;
    for v in acc {
        total += v;
    }
    for (&av, &bv) in a_chunks.remainder().iter().zip(b_chunks.remainder()) {
        total += av * bv;
    }
    total
}

impl fmt::Display for Matrix {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        writeln!(f, "Matrix {}x{}", self.rows, self.cols)?;
        for i in 0..self.rows.min(8) {
            let row: Vec<String> = self
                .row(i)
                .iter()
                .take(8)
                .map(|v| format!("{v:.4}"))
                .collect();
            writeln!(f, "  [{}]", row.join(", "))?;
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn construction_and_access() {
        let m = Matrix::from_rows(&[&[1.0, 2.0], &[3.0, 4.0]]);
        assert_eq!(m.shape(), (2, 2));
        assert_eq!(m.get(1, 0), 3.0);
        let mut m = m;
        m.set(1, 0, 5.0);
        assert_eq!(m.get(1, 0), 5.0);
        assert_eq!(m.row(0), &[1.0, 2.0]);
        assert_eq!(Matrix::zeros(2, 3).sum(), 0.0);
        assert_eq!(Matrix::full(2, 2, 3.0).sum(), 12.0);
        assert_eq!(Matrix::row_vector(&[1.0, 2.0, 3.0]).shape(), (1, 3));
    }

    #[test]
    #[should_panic(expected = "does not match")]
    fn from_vec_checks_length() {
        let _ = Matrix::from_vec(2, 2, vec![1.0, 2.0, 3.0]);
    }

    #[test]
    fn matmul_matches_hand_computation() {
        let a = Matrix::from_rows(&[&[1.0, 2.0], &[3.0, 4.0]]);
        let b = Matrix::from_rows(&[&[5.0, 6.0], &[7.0, 8.0]]);
        let c = a.matmul(&b);
        assert_eq!(c.data(), &[19.0, 22.0, 43.0, 50.0]);
    }

    #[test]
    fn transpose_round_trips() {
        let a = Matrix::from_rows(&[&[1.0, 2.0, 3.0], &[4.0, 5.0, 6.0]]);
        let t = a.transpose();
        assert_eq!(t.shape(), (3, 2));
        assert_eq!(t.transpose(), a);
    }

    #[test]
    fn elementwise_ops() {
        let a = Matrix::from_rows(&[&[1.0, 2.0]]);
        let b = Matrix::from_rows(&[&[3.0, 4.0]]);
        assert_eq!(a.add(&b).data(), &[4.0, 6.0]);
        assert_eq!(b.sub(&a).data(), &[2.0, 2.0]);
        assert_eq!(a.hadamard(&b).data(), &[3.0, 8.0]);
        assert_eq!(a.scale(2.0).data(), &[2.0, 4.0]);
        assert_eq!(a.map(|x| x + 1.0).data(), &[2.0, 3.0]);
        let mut acc = Matrix::zeros(1, 2);
        acc.accumulate(&a);
        acc.accumulate(&a);
        assert_eq!(acc.data(), &[2.0, 4.0]);
    }

    #[test]
    fn broadcast_and_reductions() {
        let x = Matrix::from_rows(&[&[1.0, 2.0], &[3.0, 4.0]]);
        let bias = Matrix::row_vector(&[10.0, 20.0]);
        assert_eq!(x.add_row_broadcast(&bias).data(), &[11.0, 22.0, 13.0, 24.0]);
        assert_eq!(x.sum_rows().data(), &[4.0, 6.0]);
        assert_eq!(x.mean_rows().data(), &[2.0, 3.0]);
        assert_eq!(x.mean(), 2.5);
        assert!((x.norm() - (30.0f32).sqrt()).abs() < 1e-6);
    }

    #[test]
    fn softmax_rows_are_normalised() {
        let x = Matrix::from_rows(&[&[1.0, 2.0, 3.0], &[0.0, 0.0, 0.0]]);
        let s = x.softmax_rows();
        for i in 0..2 {
            let sum: f32 = s.row(i).iter().sum();
            assert!((sum - 1.0).abs() < 1e-6);
        }
        assert!(s.get(0, 2) > s.get(0, 0));
        assert!((s.get(1, 0) - 1.0 / 3.0).abs() < 1e-6);
    }

    #[test]
    fn concatenation_and_splitting() {
        let a = Matrix::from_rows(&[&[1.0], &[2.0]]);
        let b = Matrix::from_rows(&[&[3.0, 4.0], &[5.0, 6.0]]);
        let cat = a.hcat(&b);
        assert_eq!(cat.shape(), (2, 3));
        let (left, right) = cat.hsplit(1);
        assert_eq!(left, a);
        assert_eq!(right, b);
        let stacked = a.vcat(&a);
        assert_eq!(stacked.shape(), (4, 1));
    }

    #[test]
    fn matmul_propagates_non_finite_values() {
        // The dense kernel must not skip zero entries: 0 * NaN is NaN and
        // 0 * inf is NaN, exactly as IEEE 754 requires.
        let a = Matrix::from_rows(&[&[0.0, 1.0]]);
        let b = Matrix::from_rows(&[&[f32::NAN], &[2.0]]);
        assert!(a.matmul(&b).get(0, 0).is_nan());
        let c = Matrix::from_rows(&[&[f32::INFINITY], &[2.0]]);
        assert!(a.matmul(&c).get(0, 0).is_nan());
    }

    #[test]
    fn transposed_kernels_match_materialised_transposes() {
        let a = Matrix::from_rows(&[&[1.0, 2.0, 3.0], &[4.0, 5.0, 6.0]]);
        let c = Matrix::from_rows(&[&[7.0, 8.0], &[9.0, 10.0]]);
        let mut ta = Matrix::zeros(3, 2);
        a.matmul_transa_into(&c, &mut ta);
        assert_eq!(ta, a.transpose().matmul(&c));
        let mut tb = Matrix::zeros(2, 2);
        a.matmul_transb_into(&a, &mut tb);
        assert_eq!(tb, a.matmul(&a.transpose()));
        let mut t = Matrix::zeros(3, 2);
        a.transpose_into(&mut t);
        assert_eq!(t, a.transpose());
    }

    #[test]
    fn in_place_ops_match_allocating_ops() {
        let a = Matrix::from_rows(&[&[1.0, -2.0], &[3.0, 4.0]]);
        let bias = Matrix::row_vector(&[10.0, 20.0]);

        let mut m = a.clone();
        m.add_row_inplace(&bias);
        assert_eq!(m, a.add_row_broadcast(&bias));

        let mut m = a.clone();
        m.map_inplace(|x| x.max(0.0));
        assert_eq!(m, a.map(|x| x.max(0.0)));

        let mut m = a.clone();
        m.scale_inplace(0.5);
        assert_eq!(m, a.scale(0.5));

        let mut m = a.clone();
        m.softmax_rows_inplace();
        assert_eq!(m, a.softmax_rows());

        let mut sums = Matrix::zeros(1, 2);
        sums.add_sum_rows(&a);
        assert_eq!(sums, a.sum_rows());
        let mut means = Matrix::zeros(1, 2);
        a.mean_rows_into(&mut means);
        assert_eq!(means, a.mean_rows());

        let mut m = Matrix::zeros(1, 1);
        m.copy_from(&a);
        assert_eq!(m, a);
        m.fill(0.0);
        assert_eq!(m.sum(), 0.0);

        let mut sel = Matrix::zeros(2, 2);
        a.select_rows_into(&[1, 0], &mut sel);
        assert_eq!(sel, a.select_rows(&[1, 0]));

        let mut acc = a.clone();
        acc.add_scaled(&a, 2.0);
        assert_eq!(acc, a.scale(3.0));

        let mut outer = Matrix::zeros(2, 2);
        outer.add_outer(&[1.0, 2.0], &[3.0, 4.0]);
        assert_eq!(outer.data(), &[3.0, 4.0, 6.0, 8.0]);

        let mut row = a.clone();
        row.row_mut(0)[0] = 9.0;
        assert_eq!(row.get(0, 0), 9.0);
        assert_eq!(a.clone().into_data(), a.data());
    }

    #[test]
    fn transa_block_accumulation_matches_block_copies_bit_for_bit() {
        // A per-item loop over a stacked pair must reproduce, bit for bit,
        // the serial accumulation over copies of each block — the contract
        // the batched backward pass builds its determinism pin on.
        let mut state = 0x1234_5678u64;
        let mut next = move || {
            state = state.wrapping_mul(6364136223846793005).wrapping_add(1);
            ((state >> 33) % 2000) as f32 / 700.0 - 1.3
        };
        let mut a = Matrix::zeros(6, 3);
        let mut b = Matrix::zeros(6, 37); // exercises the ragged column tail
        for v in a.data_mut() {
            *v = next();
        }
        for v in b.data_mut() {
            *v = next();
        }

        let mut via_blocks = Matrix::zeros(3, 37);
        let mut via_copies = Matrix::zeros(3, 37);
        for item in 0..3 {
            via_blocks.add_matmul_transa_blocks(&a, &b, item * 2, 2);
            let mut ab = Matrix::zeros(2, 3);
            a.copy_row_block_into(item * 2, &mut ab);
            let mut bb = Matrix::zeros(2, 37);
            b.copy_row_block_into(item * 2, &mut bb);
            via_copies.add_matmul_transa(&ab, &bb);
        }
        assert_eq!(via_blocks.data(), via_copies.data());

        // Single-row blocks degenerate to the stacked call exactly.
        let mut stacked = Matrix::zeros(3, 37);
        stacked.add_matmul_transa(&a, &b);
        let mut rows = Matrix::zeros(3, 37);
        for r in 0..6 {
            rows.add_matmul_transa_blocks(&a, &b, r, 1);
        }
        assert_eq!(stacked.data(), rows.data());
    }

    #[test]
    fn row_blocks_gather_and_scatter() {
        let m = Matrix::from_rows(&[&[1.0, 2.0], &[3.0, 4.0], &[5.0, 6.0], &[7.0, 8.0]]);
        let mut block = Matrix::zeros(2, 2);
        m.copy_row_block_into(1, &mut block);
        assert_eq!(block, Matrix::from_rows(&[&[3.0, 4.0], &[5.0, 6.0]]));
        let mut out = Matrix::zeros(4, 2);
        out.write_row_block(2, &block);
        assert_eq!(out.row(2), &[3.0, 4.0]);
        assert_eq!(out.row(3), &[5.0, 6.0]);
        assert_eq!(out.row(0), &[0.0, 0.0]);
    }

    #[test]
    fn row_selection_and_argmax() {
        let m = Matrix::from_rows(&[&[1.0, 9.0, 2.0], &[7.0, 0.0, 3.0]]);
        assert_eq!(m.argmax_row(0), 1);
        assert_eq!(m.argmax_row(1), 0);
        let sel = m.select_rows(&[1, 0, 1]);
        assert_eq!(sel.shape(), (3, 3));
        assert_eq!(sel.row(0), m.row(1));
        assert_eq!(sel.row(2), m.row(1));
        assert_eq!(m.row_matrix(1).row(0), m.row(1));
    }
}
