//! The AVX2/FMA kernel backend (feature `backend-simd`).
//!
//! Explicit `std::arch` x86_64 intrinsics for the hot kernels: a
//! broadcast-FMA register-blocked GEMM (plain, `aᵀ·b` and `a·bᵀ` variants),
//! vectorized activation maps, a polynomial-`exp` row softmax, and fused
//! per-block attention kernels that run each batch item's
//! score/softmax/mix stage directly on the stacked `[b*n, n]` block-diagonal
//! layout — no gather copies, one fused pass per score row.
//!
//! Dispatch is at runtime: AVX2+FMA support is checked with
//! `is_x86_feature_detected!` on every entry (the detection result is cached
//! by `std`), and on hardware without it — or on non-x86_64 targets, or via
//! [`SimdBackend::scalar_fallback`] — every call falls through to the
//! exact-order reference kernels, **bit for bit**.
//!
//! The vectorized paths reorder reductions (FMA lanes) and approximate
//! `exp`, so the backend declares a [`Tolerance::Bounded`] contract rather
//! than exactness; the cross-backend equivalence suite holds it to that
//! bound. Within the backend the same guarantees as the reference hold:
//! results are run-to-run deterministic, each GEMM output element reduces
//! over ascending `k` independently of the row count (so batched passes stay
//! bit-identical per item to solo passes *within* this backend), and no
//! kernel takes data-dependent shortcuts (`0 × NaN` propagates `NaN`).

use super::{reference, KernelBackend, Tolerance};
use crate::layers::ActivationKind;
use crate::matrix::Matrix;
use crate::scratch::Scratch;

/// The feature-gated AVX2/FMA backend (see the module docs).
#[derive(Debug, Clone, Copy)]
pub struct SimdBackend {
    /// When set, the vectorized paths are never taken — the backend behaves
    /// exactly like [`super::ReferenceBackend`]. Exists so the
    /// runtime-dispatch fallback is testable on AVX2 hardware.
    force_scalar: bool,
}

impl SimdBackend {
    /// The normal runtime-dispatched backend.
    pub const fn new() -> Self {
        Self {
            force_scalar: false,
        }
    }

    /// A backend whose AVX2 paths are masked off, as if
    /// `is_x86_feature_detected!("avx2")` had returned false — every kernel
    /// takes the scalar fallback, which is bit-identical to the reference
    /// backend.
    pub const fn scalar_fallback() -> Self {
        Self { force_scalar: true }
    }

    /// Whether calls will take the vectorized AVX2/FMA paths.
    pub fn avx2_active(&self) -> bool {
        #[cfg(target_arch = "x86_64")]
        {
            !self.force_scalar
                && is_x86_feature_detected!("avx2")
                && is_x86_feature_detected!("fma")
        }
        #[cfg(not(target_arch = "x86_64"))]
        {
            false
        }
    }
}

impl Default for SimdBackend {
    fn default() -> Self {
        Self::new()
    }
}

/// Shape checks mirroring the [`Matrix`] kernel asserts, run before handing
/// raw slices to the unsafe AVX kernels.
#[cfg(target_arch = "x86_64")]
fn check_gemm(a: &Matrix, b: &Matrix, out: &Matrix) {
    assert_eq!(
        a.cols(),
        b.rows(),
        "matmul shape mismatch: {}x{} * {}x{}",
        a.rows(),
        a.cols(),
        b.rows(),
        b.cols()
    );
    assert_eq!(
        out.shape(),
        (a.rows(), b.cols()),
        "matmul output shape mismatch"
    );
}

impl KernelBackend for SimdBackend {
    fn name(&self) -> &'static str {
        "simd"
    }

    fn tolerance(&self) -> Tolerance {
        // FMA-lane reductions over the inner dims used here (≤ a few
        // hundred) and the ~2-ulp polynomial exp stay well inside the
        // relative bound; the absolute floor covers cancellation-heavy
        // sums whose tiny results carry the rounding noise of much larger
        // intermediate partial sums.
        Tolerance::Bounded {
            rel: 1e-4,
            abs: 1e-5,
        }
    }

    fn matmul_into(&self, a: &Matrix, b: &Matrix, out: &mut Matrix) {
        #[cfg(target_arch = "x86_64")]
        if self.avx2_active() {
            check_gemm(a, b, out);
            unsafe {
                avx::gemm(
                    a.data(),
                    b.data(),
                    out.data_mut(),
                    a.rows(),
                    a.cols(),
                    b.cols(),
                    false,
                );
            }
            return;
        }
        a.matmul_into(b, out);
    }

    fn add_matmul(&self, out: &mut Matrix, a: &Matrix, b: &Matrix) {
        #[cfg(target_arch = "x86_64")]
        if self.avx2_active() {
            check_gemm(a, b, out);
            unsafe {
                avx::gemm(
                    a.data(),
                    b.data(),
                    out.data_mut(),
                    a.rows(),
                    a.cols(),
                    b.cols(),
                    true,
                );
            }
            return;
        }
        out.add_matmul(a, b);
    }

    fn add_matmul_transa_blocks(
        &self,
        out: &mut Matrix,
        a: &Matrix,
        b: &Matrix,
        row_start: usize,
        rows: usize,
    ) {
        #[cfg(target_arch = "x86_64")]
        if self.avx2_active() {
            assert_eq!(
                a.rows(),
                b.rows(),
                "matmul_transa shape mismatch: {}x{}ᵀ * {}x{}",
                a.rows(),
                a.cols(),
                b.rows(),
                b.cols()
            );
            assert_eq!(
                out.shape(),
                (a.cols(), b.cols()),
                "matmul_transa output shape mismatch"
            );
            assert!(
                row_start + rows <= a.rows(),
                "row block {}..{} out of {} rows",
                row_start,
                row_start + rows,
                a.rows()
            );
            let (r, c) = (a.cols(), b.cols());
            unsafe {
                avx::gemm_transa(
                    &a.data()[row_start * r..(row_start + rows) * r],
                    &b.data()[row_start * c..(row_start + rows) * c],
                    out.data_mut(),
                    rows,
                    r,
                    c,
                );
            }
            return;
        }
        out.add_matmul_transa_blocks(a, b, row_start, rows);
    }

    fn matmul_transb_into(&self, a: &Matrix, b: &Matrix, out: &mut Matrix) {
        #[cfg(target_arch = "x86_64")]
        if self.avx2_active() {
            assert_eq!(
                a.cols(),
                b.cols(),
                "matmul_transb shape mismatch: {}x{} * {}x{}ᵀ",
                a.rows(),
                a.cols(),
                b.rows(),
                b.cols()
            );
            assert_eq!(
                out.shape(),
                (a.rows(), b.rows()),
                "matmul_transb output shape mismatch"
            );
            unsafe {
                avx::gemm_transb(
                    a.data(),
                    b.data(),
                    out.data_mut(),
                    a.rows(),
                    a.cols(),
                    b.rows(),
                    false,
                );
            }
            return;
        }
        a.matmul_transb_into(b, out);
    }

    // `transpose_into`, `add_assign` and `add_scaled` keep the trait
    // defaults: they are memory-bound copies/axpys the auto-vectorizer
    // already saturates, and staying on the reference bodies keeps them
    // bit-exact for free.

    fn softmax_rows_inplace(&self, m: &mut Matrix) {
        #[cfg(target_arch = "x86_64")]
        if self.avx2_active() {
            let cols = m.cols();
            let rows = m.rows();
            unsafe {
                avx::softmax_rows(m.data_mut(), rows, cols);
            }
            return;
        }
        m.softmax_rows_inplace();
    }

    fn apply_activation(&self, kind: ActivationKind, m: &mut Matrix) {
        #[cfg(target_arch = "x86_64")]
        if self.avx2_active() {
            // Tanh stays scalar: a vector tanh would need its own polynomial
            // with a tolerance story, and the tanh heads are a tiny slice of
            // the per-state cost.
            if kind != ActivationKind::Tanh {
                unsafe {
                    avx::apply_activation(kind, m.data_mut());
                }
                return;
            }
        }
        m.map_inplace(|x| kind.apply(x));
    }

    fn activation_grad_from_output(
        &self,
        kind: ActivationKind,
        output: &Matrix,
        grad_output: &Matrix,
        grad_input: &mut Matrix,
    ) {
        #[cfg(target_arch = "x86_64")]
        if self.avx2_active() {
            assert_eq!(
                grad_output.shape(),
                output.shape(),
                "activation gradient shape mismatch"
            );
            assert_eq!(
                grad_input.shape(),
                output.shape(),
                "activation gradient output shape mismatch"
            );
            unsafe {
                avx::activation_grad(
                    kind,
                    output.data(),
                    grad_output.data(),
                    grad_input.data_mut(),
                );
            }
            return;
        }
        reference::activation_grad_from_output(kind, output, grad_output, grad_input);
    }

    fn attention_forward_fused(
        &self,
        q: &Matrix,
        k: &Matrix,
        v: &Matrix,
        items: usize,
        scale: f32,
        attn: Option<&mut Matrix>,
        mixed: &mut Matrix,
        scratch: &mut Scratch,
    ) {
        #[cfg(target_arch = "x86_64")]
        if self.avx2_active() {
            let n = reference::attention_item_rows(q, k, v, items);
            let d = q.cols();
            assert_eq!(mixed.shape(), (items * n, d), "attention mixed shape");
            let mut attn = attn;
            if let Some(attn) = attn.as_deref() {
                assert_eq!(attn.shape(), (items * n, n), "attention stacked-A shape");
            }
            // One fused pass per score row, directly on the stacked
            // block-diagonal layout — no per-item gather copies. The score
            // row lands in the stacked attention cache when the caller wants
            // it, otherwise in this one reused row buffer.
            let mut score = scratch.take(1, n);
            for item in 0..items {
                let r = item * n;
                let qb = &q.data()[r * d..(r + n) * d];
                let kb = &k.data()[r * d..(r + n) * d];
                let vb = &v.data()[r * d..(r + n) * d];
                let mb = &mut mixed.data_mut()[r * d..(r + n) * d];
                let ab = attn
                    .as_deref_mut()
                    .map(|a| &mut a.data_mut()[r * n..(r + n) * n]);
                unsafe {
                    avx::attention_forward_item(qb, kb, vb, n, d, scale, ab, mb, score.data_mut());
                }
            }
            scratch.recycle(score);
            return;
        }
        reference::attention_forward_fused(q, k, v, items, scale, attn, mixed, scratch);
    }

    fn attention_backward_fused(
        &self,
        grad_mixed: &Matrix,
        q: &Matrix,
        k: &Matrix,
        v: &Matrix,
        attn: &Matrix,
        items: usize,
        scale: f32,
        grad_q: &mut Matrix,
        grad_k: &mut Matrix,
        grad_v: &mut Matrix,
        scratch: &mut Scratch,
    ) {
        #[cfg(target_arch = "x86_64")]
        if self.avx2_active() {
            let n = reference::attention_item_rows(q, k, v, items);
            let d = q.cols();
            assert_eq!(grad_mixed.shape(), (items * n, d), "attention dM shape");
            assert_eq!(attn.shape(), (items * n, n), "attention stacked-A shape");
            assert_eq!(grad_q.shape(), (items * n, d), "attention dQ shape");
            assert_eq!(grad_k.shape(), (items * n, d), "attention dK shape");
            assert_eq!(grad_v.shape(), (items * n, d), "attention dV shape");
            // dS is the only temporary; grad_q/k/v blocks are written in
            // place on the stacked layout (they arrive zero-filled, so the
            // accumulate-style transa kernel writes them exactly).
            let mut ds = scratch.take(n, n);
            for item in 0..items {
                let r = item * n;
                let gm = &grad_mixed.data()[r * d..(r + n) * d];
                let qb = &q.data()[r * d..(r + n) * d];
                let kb = &k.data()[r * d..(r + n) * d];
                let vb = &v.data()[r * d..(r + n) * d];
                let ab = &attn.data()[r * n..(r + n) * n];
                unsafe {
                    // dA = dM·Vᵀ
                    avx::gemm_transb(gm, vb, ds.data_mut(), n, d, n, false);
                    // dV = Aᵀ·dM (into the zeroed block)
                    avx::gemm_transa(ab, gm, &mut grad_v.data_mut()[r * d..(r + n) * d], n, n, d);
                    // dS = A ⊙ (dA − (dA·A)) * scale, row by row
                    avx::softmax_backward_rows(ab, ds.data_mut(), n, scale);
                    // dQ = dS·K, dK = dSᵀ·Q
                    avx::gemm(
                        ds.data(),
                        kb,
                        &mut grad_q.data_mut()[r * d..(r + n) * d],
                        n,
                        n,
                        d,
                        false,
                    );
                    avx::gemm_transa(
                        ds.data(),
                        qb,
                        &mut grad_k.data_mut()[r * d..(r + n) * d],
                        n,
                        n,
                        d,
                    );
                }
            }
            scratch.recycle(ds);
            return;
        }
        reference::attention_backward_fused(
            grad_mixed, q, k, v, attn, items, scale, grad_q, grad_k, grad_v, scratch,
        );
    }
}

/// The raw AVX2/FMA kernels. Everything here requires `avx2` and `fma` at
/// runtime — callers gate on [`SimdBackend::avx2_active`] — and fully dense,
/// correctly sized row-major slices, which the safe wrappers assert.
#[cfg(target_arch = "x86_64")]
mod avx {
    #![allow(clippy::too_many_arguments)]

    use crate::layers::ActivationKind;
    use std::arch::x86_64::*;

    /// Horizontal sum of the eight lanes.
    #[target_feature(enable = "avx2,fma")]
    unsafe fn hsum(v: __m256) -> f32 {
        let lo = _mm256_castps256_ps128(v);
        let hi = _mm256_extractf128_ps(v, 1);
        let s = _mm_add_ps(lo, hi);
        let s = _mm_add_ps(s, _mm_movehl_ps(s, s));
        let s = _mm_add_ss(s, _mm_shuffle_ps(s, s, 0x55));
        _mm_cvtss_f32(s)
    }

    /// Horizontal max of the eight lanes.
    #[target_feature(enable = "avx2,fma")]
    unsafe fn hmax(v: __m256) -> f32 {
        let lo = _mm256_castps256_ps128(v);
        let hi = _mm256_extractf128_ps(v, 1);
        let s = _mm_max_ps(lo, hi);
        let s = _mm_max_ps(s, _mm_movehl_ps(s, s));
        let s = _mm_max_ss(s, _mm_shuffle_ps(s, s, 0x55));
        _mm_cvtss_f32(s)
    }

    /// FMA dot product over two accumulator lanes with a scalar tail.
    #[target_feature(enable = "avx2,fma")]
    unsafe fn dot(a: *const f32, b: *const f32, len: usize) -> f32 {
        let mut acc0 = _mm256_setzero_ps();
        let mut acc1 = _mm256_setzero_ps();
        let mut i = 0;
        while i + 16 <= len {
            acc0 = _mm256_fmadd_ps(_mm256_loadu_ps(a.add(i)), _mm256_loadu_ps(b.add(i)), acc0);
            acc1 = _mm256_fmadd_ps(
                _mm256_loadu_ps(a.add(i + 8)),
                _mm256_loadu_ps(b.add(i + 8)),
                acc1,
            );
            i += 16;
        }
        if i + 8 <= len {
            acc0 = _mm256_fmadd_ps(_mm256_loadu_ps(a.add(i)), _mm256_loadu_ps(b.add(i)), acc0);
            i += 8;
        }
        let mut total = hsum(_mm256_add_ps(acc0, acc1));
        while i < len {
            total += *a.add(i) * *b.add(i);
            i += 1;
        }
        total
    }

    /// Cephes-style polynomial `exp` (~2 ulp over the clamped range), the
    /// softmax workhorse.
    // The first ln(2) reduction constant is the exactly-representable
    // 0.693359375 (Cephes' C1); spelling it with fewer digits would hide
    // that the two-step split depends on its low bits being zero.
    #[allow(clippy::excessive_precision)]
    #[target_feature(enable = "avx2,fma")]
    unsafe fn exp256(x: __m256) -> __m256 {
        let x = _mm256_min_ps(x, _mm256_set1_ps(88.376_26));
        let x = _mm256_max_ps(x, _mm256_set1_ps(-88.376_26));
        // n = round(x * log2(e)) via floor(x * log2(e) + 0.5).
        let fx = _mm256_fmadd_ps(
            x,
            _mm256_set1_ps(std::f32::consts::LOG2_E),
            _mm256_set1_ps(0.5),
        );
        let fx = _mm256_floor_ps(fx);
        // r = x − n·ln(2), split in two steps for precision.
        let x = _mm256_sub_ps(x, _mm256_mul_ps(fx, _mm256_set1_ps(0.693_359_375)));
        let x = _mm256_sub_ps(x, _mm256_mul_ps(fx, _mm256_set1_ps(-2.121_944_4e-4)));
        let z = _mm256_mul_ps(x, x);
        let mut y = _mm256_set1_ps(1.987_569_1e-4);
        y = _mm256_fmadd_ps(y, x, _mm256_set1_ps(1.398_199_9e-3));
        y = _mm256_fmadd_ps(y, x, _mm256_set1_ps(8.333_452e-3));
        y = _mm256_fmadd_ps(y, x, _mm256_set1_ps(4.166_579_5e-2));
        y = _mm256_fmadd_ps(y, x, _mm256_set1_ps(0.166_666_66));
        y = _mm256_fmadd_ps(y, x, _mm256_set1_ps(0.5));
        y = _mm256_fmadd_ps(y, z, x);
        let y = _mm256_add_ps(y, _mm256_set1_ps(1.0));
        // y · 2ⁿ via the exponent-field trick.
        let n = _mm256_cvttps_epi32(fx);
        let n = _mm256_add_epi32(n, _mm256_set1_epi32(0x7f));
        let pow2n = _mm256_castsi256_ps(_mm256_slli_epi32(n, 23));
        _mm256_mul_ps(y, pow2n)
    }

    /// `out (+)= a · b` — broadcast-FMA GEMM in 4-row × 16-column register
    /// tiles. Each output element reduces over ascending `k` independently
    /// of the row count (the per-item bit-exactness contract within this
    /// backend).
    pub unsafe fn gemm(
        a: &[f32],
        b: &[f32],
        out: &mut [f32],
        m: usize,
        kk: usize,
        n: usize,
        accumulate: bool,
    ) {
        debug_assert!(a.len() >= m * kk && b.len() >= kk * n && out.len() >= m * n);
        gemm_inner(
            a.as_ptr(),
            b.as_ptr(),
            out.as_mut_ptr(),
            m,
            kk,
            n,
            accumulate,
        );
    }

    #[target_feature(enable = "avx2,fma")]
    unsafe fn gemm_inner(
        a: *const f32,
        b: *const f32,
        out: *mut f32,
        m: usize,
        kk: usize,
        n: usize,
        accumulate: bool,
    ) {
        let mut i0 = 0;
        while i0 + 4 <= m {
            gemm_rows::<4>(a, b, out, i0, kk, n, accumulate);
            i0 += 4;
        }
        while i0 < m {
            gemm_rows::<1>(a, b, out, i0, kk, n, accumulate);
            i0 += 1;
        }
    }

    /// One `IB`-row pass of the GEMM across all `n` columns: 16-wide tiles,
    /// then an 8-wide tile, then a scalar tail.
    #[target_feature(enable = "avx2,fma")]
    unsafe fn gemm_rows<const IB: usize>(
        a: *const f32,
        b: *const f32,
        out: *mut f32,
        i0: usize,
        kk: usize,
        n: usize,
        accumulate: bool,
    ) {
        let mut j0 = 0;
        while j0 + 16 <= n {
            let mut acc = [[_mm256_setzero_ps(); 2]; IB];
            for k in 0..kk {
                let b0 = _mm256_loadu_ps(b.add(k * n + j0));
                let b1 = _mm256_loadu_ps(b.add(k * n + j0 + 8));
                for (r, acc_row) in acc.iter_mut().enumerate() {
                    let av = _mm256_set1_ps(*a.add((i0 + r) * kk + k));
                    acc_row[0] = _mm256_fmadd_ps(av, b0, acc_row[0]);
                    acc_row[1] = _mm256_fmadd_ps(av, b1, acc_row[1]);
                }
            }
            for (r, acc_row) in acc.iter().enumerate() {
                let dst = out.add((i0 + r) * n + j0);
                if accumulate {
                    _mm256_storeu_ps(dst, _mm256_add_ps(_mm256_loadu_ps(dst), acc_row[0]));
                    _mm256_storeu_ps(
                        dst.add(8),
                        _mm256_add_ps(_mm256_loadu_ps(dst.add(8)), acc_row[1]),
                    );
                } else {
                    _mm256_storeu_ps(dst, acc_row[0]);
                    _mm256_storeu_ps(dst.add(8), acc_row[1]);
                }
            }
            j0 += 16;
        }
        if j0 + 8 <= n {
            let mut acc = [_mm256_setzero_ps(); IB];
            for k in 0..kk {
                let b0 = _mm256_loadu_ps(b.add(k * n + j0));
                for (r, acc_row) in acc.iter_mut().enumerate() {
                    let av = _mm256_set1_ps(*a.add((i0 + r) * kk + k));
                    *acc_row = _mm256_fmadd_ps(av, b0, *acc_row);
                }
            }
            for (r, acc_row) in acc.iter().enumerate() {
                let dst = out.add((i0 + r) * n + j0);
                if accumulate {
                    _mm256_storeu_ps(dst, _mm256_add_ps(_mm256_loadu_ps(dst), *acc_row));
                } else {
                    _mm256_storeu_ps(dst, *acc_row);
                }
            }
            j0 += 8;
        }
        while j0 < n {
            for r in 0..IB {
                let mut s = 0.0f32;
                for k in 0..kk {
                    s += *a.add((i0 + r) * kk + k) * *b.add(k * n + j0);
                }
                let dst = out.add((i0 + r) * n + j0);
                if accumulate {
                    *dst += s;
                } else {
                    *dst = s;
                }
            }
            j0 += 1;
        }
    }

    /// `out (+)= a · bᵀ` — one FMA dot per output element, both operands
    /// streaming row-major (the score kernel `Q·Kᵀ`).
    pub unsafe fn gemm_transb(
        a: &[f32],
        b: &[f32],
        out: &mut [f32],
        m: usize,
        kk: usize,
        n: usize,
        accumulate: bool,
    ) {
        debug_assert!(a.len() >= m * kk && b.len() >= n * kk && out.len() >= m * n);
        gemm_transb_inner(
            a.as_ptr(),
            b.as_ptr(),
            out.as_mut_ptr(),
            m,
            kk,
            n,
            accumulate,
        );
    }

    #[target_feature(enable = "avx2,fma")]
    unsafe fn gemm_transb_inner(
        a: *const f32,
        b: *const f32,
        out: *mut f32,
        m: usize,
        kk: usize,
        n: usize,
        accumulate: bool,
    ) {
        for i in 0..m {
            let a_row = a.add(i * kk);
            for j in 0..n {
                let s = dot(a_row, b.add(j * kk), kk);
                let dst = out.add(i * n + j);
                if accumulate {
                    *dst += s;
                } else {
                    *dst = s;
                }
            }
        }
    }

    /// `out += aᵀ · b` over `rows` stacked rows (always accumulating — the
    /// parameter-gradient flush; callers zero `out` for the `=` form).
    pub unsafe fn gemm_transa(
        a: &[f32],
        b: &[f32],
        out: &mut [f32],
        rows: usize,
        r: usize,
        c: usize,
    ) {
        debug_assert!(a.len() >= rows * r && b.len() >= rows * c && out.len() >= r * c);
        gemm_transa_inner(a.as_ptr(), b.as_ptr(), out.as_mut_ptr(), rows, r, c);
    }

    #[target_feature(enable = "avx2,fma")]
    unsafe fn gemm_transa_inner(
        a: *const f32,
        b: *const f32,
        out: *mut f32,
        rows: usize,
        r: usize,
        c: usize,
    ) {
        for i in 0..r {
            let mut j0 = 0;
            while j0 + 16 <= c {
                let mut acc0 = _mm256_setzero_ps();
                let mut acc1 = _mm256_setzero_ps();
                for k in 0..rows {
                    let av = _mm256_set1_ps(*a.add(k * r + i));
                    acc0 = _mm256_fmadd_ps(av, _mm256_loadu_ps(b.add(k * c + j0)), acc0);
                    acc1 = _mm256_fmadd_ps(av, _mm256_loadu_ps(b.add(k * c + j0 + 8)), acc1);
                }
                let dst = out.add(i * c + j0);
                _mm256_storeu_ps(dst, _mm256_add_ps(_mm256_loadu_ps(dst), acc0));
                _mm256_storeu_ps(dst.add(8), _mm256_add_ps(_mm256_loadu_ps(dst.add(8)), acc1));
                j0 += 16;
            }
            if j0 + 8 <= c {
                let mut acc0 = _mm256_setzero_ps();
                for k in 0..rows {
                    let av = _mm256_set1_ps(*a.add(k * r + i));
                    acc0 = _mm256_fmadd_ps(av, _mm256_loadu_ps(b.add(k * c + j0)), acc0);
                }
                let dst = out.add(i * c + j0);
                _mm256_storeu_ps(dst, _mm256_add_ps(_mm256_loadu_ps(dst), acc0));
                j0 += 8;
            }
            while j0 < c {
                let mut s = 0.0f32;
                for k in 0..rows {
                    s += *a.add(k * r + i) * *b.add(k * c + j0);
                }
                *out.add(i * c + j0) += s;
                j0 += 1;
            }
        }
    }

    /// In-place row softmax: vector max, polynomial exp, vector divide.
    pub unsafe fn softmax_rows(data: &mut [f32], rows: usize, cols: usize) {
        debug_assert!(data.len() >= rows * cols);
        softmax_rows_inner(data.as_mut_ptr(), rows, cols);
    }

    #[target_feature(enable = "avx2,fma")]
    unsafe fn softmax_rows_inner(data: *mut f32, rows: usize, cols: usize) {
        for i in 0..rows {
            softmax_row(data.add(i * cols), cols);
        }
    }

    #[target_feature(enable = "avx2,fma")]
    unsafe fn softmax_row(row: *mut f32, cols: usize) {
        let mut vmax = _mm256_set1_ps(f32::NEG_INFINITY);
        let mut i = 0;
        while i + 8 <= cols {
            vmax = _mm256_max_ps(vmax, _mm256_loadu_ps(row.add(i)));
            i += 8;
        }
        let mut max = hmax(vmax);
        while i < cols {
            max = max.max(*row.add(i));
            i += 1;
        }
        // NEG_INFINITY max'ed against NaN scores: _mm_max_ps keeps the
        // second operand on NaN, matching the scalar fold.

        let vmaxb = _mm256_set1_ps(max);
        let mut vsum = _mm256_setzero_ps();
        let mut i = 0;
        while i + 8 <= cols {
            let e = exp256(_mm256_sub_ps(_mm256_loadu_ps(row.add(i)), vmaxb));
            _mm256_storeu_ps(row.add(i), e);
            vsum = _mm256_add_ps(vsum, e);
            i += 8;
        }
        let mut sum = hsum(vsum);
        while i < cols {
            let e = (*row.add(i) - max).exp();
            *row.add(i) = e;
            sum += e;
            i += 1;
        }
        if sum > 0.0 {
            let vs = _mm256_set1_ps(sum);
            let mut i = 0;
            while i + 8 <= cols {
                _mm256_storeu_ps(row.add(i), _mm256_div_ps(_mm256_loadu_ps(row.add(i)), vs));
                i += 8;
            }
            while i < cols {
                *row.add(i) /= sum;
                i += 1;
            }
        }
    }

    /// Element-wise ReLU / LeakyReLU (tanh is handled scalar by the caller).
    pub unsafe fn apply_activation(kind: ActivationKind, data: &mut [f32]) {
        apply_activation_inner(kind, data.as_mut_ptr(), data.len());
    }

    #[target_feature(enable = "avx2,fma")]
    unsafe fn apply_activation_inner(kind: ActivationKind, p: *mut f32, len: usize) {
        let zero = _mm256_setzero_ps();
        let slope = _mm256_set1_ps(0.01);
        let mut i = 0;
        while i + 8 <= len {
            let x = _mm256_loadu_ps(p.add(i));
            let y = match kind {
                // max(x, 0): the second operand wins on NaN inputs, exactly
                // like the scalar `x.max(0.0)`... except it doesn't — both
                // propagate the non-NaN operand, which is what we want, and
                // NaN inputs only arise in poisoned states anyway.
                ActivationKind::Relu => _mm256_max_ps(x, zero),
                ActivationKind::LeakyRelu => {
                    let mask = _mm256_cmp_ps::<_CMP_GT_OQ>(x, zero);
                    _mm256_blendv_ps(_mm256_mul_ps(x, slope), x, mask)
                }
                ActivationKind::Tanh => unreachable!("tanh is dispatched scalar"),
            };
            _mm256_storeu_ps(p.add(i), y);
            i += 8;
        }
        while i < len {
            let x = *p.add(i);
            *p.add(i) = match kind {
                ActivationKind::Relu => x.max(0.0),
                ActivationKind::LeakyRelu => {
                    if x > 0.0 {
                        x
                    } else {
                        0.01 * x
                    }
                }
                ActivationKind::Tanh => unreachable!("tanh is dispatched scalar"),
            };
            i += 1;
        }
    }

    /// `grad_input = grad_output ⊙ f'(output)` with the derivative taken
    /// from the activation output (matches
    /// [`ActivationKind::derivative_from_output`]).
    pub unsafe fn activation_grad(kind: ActivationKind, y: &[f32], go: &[f32], gi: &mut [f32]) {
        activation_grad_inner(kind, y.as_ptr(), go.as_ptr(), gi.as_mut_ptr(), y.len());
    }

    #[target_feature(enable = "avx2,fma")]
    unsafe fn activation_grad_inner(
        kind: ActivationKind,
        y: *const f32,
        go: *const f32,
        gi: *mut f32,
        len: usize,
    ) {
        let zero = _mm256_setzero_ps();
        let one = _mm256_set1_ps(1.0);
        let slope = _mm256_set1_ps(0.01);
        let mut i = 0;
        while i + 8 <= len {
            let yv = _mm256_loadu_ps(y.add(i));
            let gv = _mm256_loadu_ps(go.add(i));
            // Multiply by the blended derivative (never mask with AND): a
            // NaN upstream gradient times derivative 0 must stay NaN.
            let d = match kind {
                ActivationKind::Relu => {
                    _mm256_blendv_ps(zero, one, _mm256_cmp_ps::<_CMP_GT_OQ>(yv, zero))
                }
                ActivationKind::LeakyRelu => {
                    _mm256_blendv_ps(slope, one, _mm256_cmp_ps::<_CMP_GT_OQ>(yv, zero))
                }
                ActivationKind::Tanh => _mm256_sub_ps(one, _mm256_mul_ps(yv, yv)),
            };
            _mm256_storeu_ps(gi.add(i), _mm256_mul_ps(gv, d));
            i += 8;
        }
        while i < len {
            *gi.add(i) = *go.add(i) * kind.derivative_from_output(*y.add(i));
            i += 1;
        }
    }

    /// The row-fused attention forward for one batch item: for each query
    /// row, compute the scaled score row (`n` FMA dots), softmax it in
    /// place, then accumulate the mixed row as a broadcast-FMA combination
    /// of the value rows — the scores never leave cache between the three
    /// stages. Scores land in `attn_rows` (the stacked training cache) when
    /// present, otherwise in the reused `score_buf`.
    pub unsafe fn attention_forward_item(
        q: &[f32],
        k: &[f32],
        v: &[f32],
        n: usize,
        d: usize,
        scale: f32,
        mut attn_rows: Option<&mut [f32]>,
        mixed: &mut [f32],
        score_buf: &mut [f32],
    ) {
        debug_assert!(q.len() >= n * d && k.len() >= n * d && v.len() >= n * d);
        debug_assert!(mixed.len() >= n * d && score_buf.len() >= n);
        for i in 0..n {
            let s: *mut f32 = match attn_rows.as_deref_mut() {
                Some(rows) => rows.as_mut_ptr().add(i * n),
                None => score_buf.as_mut_ptr(),
            };
            attention_forward_row(
                q.as_ptr().add(i * d),
                k.as_ptr(),
                v.as_ptr(),
                n,
                d,
                scale,
                s,
                mixed.as_mut_ptr().add(i * d),
            );
        }
    }

    #[target_feature(enable = "avx2,fma")]
    unsafe fn attention_forward_row(
        q_row: *const f32,
        k: *const f32,
        v: *const f32,
        n: usize,
        d: usize,
        scale: f32,
        s: *mut f32,
        mixed_row: *mut f32,
    ) {
        for j in 0..n {
            *s.add(j) = dot(q_row, k.add(j * d), d) * scale;
        }
        softmax_row(s, n);
        // mixed_row = Σ_j s[j] · V[j], accumulated 32 columns at a time.
        let mut c0 = 0;
        while c0 + 32 <= d {
            let mut a0 = _mm256_setzero_ps();
            let mut a1 = _mm256_setzero_ps();
            let mut a2 = _mm256_setzero_ps();
            let mut a3 = _mm256_setzero_ps();
            for j in 0..n {
                let sv = _mm256_set1_ps(*s.add(j));
                let vr = v.add(j * d + c0);
                a0 = _mm256_fmadd_ps(sv, _mm256_loadu_ps(vr), a0);
                a1 = _mm256_fmadd_ps(sv, _mm256_loadu_ps(vr.add(8)), a1);
                a2 = _mm256_fmadd_ps(sv, _mm256_loadu_ps(vr.add(16)), a2);
                a3 = _mm256_fmadd_ps(sv, _mm256_loadu_ps(vr.add(24)), a3);
            }
            _mm256_storeu_ps(mixed_row.add(c0), a0);
            _mm256_storeu_ps(mixed_row.add(c0 + 8), a1);
            _mm256_storeu_ps(mixed_row.add(c0 + 16), a2);
            _mm256_storeu_ps(mixed_row.add(c0 + 24), a3);
            c0 += 32;
        }
        while c0 + 8 <= d {
            let mut a0 = _mm256_setzero_ps();
            for j in 0..n {
                a0 = _mm256_fmadd_ps(
                    _mm256_set1_ps(*s.add(j)),
                    _mm256_loadu_ps(v.add(j * d + c0)),
                    a0,
                );
            }
            _mm256_storeu_ps(mixed_row.add(c0), a0);
            c0 += 8;
        }
        while c0 < d {
            let mut acc = 0.0f32;
            for j in 0..n {
                acc += *s.add(j) * *v.add(j * d + c0);
            }
            *mixed_row.add(c0) = acc;
            c0 += 1;
        }
    }

    /// The softmax backward applied to every row of `ds` in place:
    /// `dS_i = A_i ⊙ (dA_i − (dA_i·A_i)) * scale`.
    pub unsafe fn softmax_backward_rows(a: &[f32], ds: &mut [f32], n: usize, scale: f32) {
        debug_assert!(a.len() >= n * n && ds.len() >= n * n);
        softmax_backward_rows_inner(a.as_ptr(), ds.as_mut_ptr(), n, scale);
    }

    #[target_feature(enable = "avx2,fma")]
    unsafe fn softmax_backward_rows_inner(a: *const f32, ds: *mut f32, n: usize, scale: f32) {
        let vscale = _mm256_set1_ps(scale);
        for i in 0..n {
            let a_row = a.add(i * n);
            let d_row = ds.add(i * n);
            let dot = dot(a_row, d_row, n);
            let vdot = _mm256_set1_ps(dot);
            let mut j = 0;
            while j + 8 <= n {
                let av = _mm256_loadu_ps(a_row.add(j));
                let dv = _mm256_loadu_ps(d_row.add(j));
                let out = _mm256_mul_ps(_mm256_mul_ps(av, _mm256_sub_ps(dv, vdot)), vscale);
                _mm256_storeu_ps(d_row.add(j), out);
                j += 8;
            }
            while j < n {
                let av = *a_row.add(j);
                let dv = *d_row.add(j);
                *d_row.add(j) = av * (dv - dot) * scale;
                j += 1;
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::super::ReferenceBackend;
    use super::*;
    use crate::matrix::Matrix;

    fn filled(rows: usize, cols: usize, seed: u64) -> Matrix {
        let mut state = seed.wrapping_mul(0x9e37_79b9_7f4a_7c15).wrapping_add(1);
        let mut m = Matrix::zeros(rows, cols);
        for v in m.data_mut() {
            state = state
                .wrapping_mul(6364136223846793005)
                .wrapping_add(1442695040888963407);
            *v = ((state >> 33) % 4000) as f32 / 1000.0 - 2.0;
        }
        m
    }

    #[test]
    fn scalar_fallback_is_bit_identical_to_reference() {
        // The runtime-dispatch fallback (AVX2 masked off) must not just be
        // close to the reference backend — it must take the exact same code
        // paths.
        let simd = SimdBackend::scalar_fallback();
        assert!(!simd.avx2_active());
        let reference = ReferenceBackend;
        let a = filled(5, 37, 1);
        let b = filled(37, 19, 2);
        let mut out_s = Matrix::zeros(5, 19);
        let mut out_r = Matrix::zeros(5, 19);
        simd.matmul_into(&a, &b, &mut out_s);
        reference.matmul_into(&a, &b, &mut out_r);
        assert_eq!(out_s.data(), out_r.data());

        let mut sm_s = filled(4, 11, 3);
        let mut sm_r = sm_s.clone();
        simd.softmax_rows_inplace(&mut sm_s);
        reference.softmax_rows_inplace(&mut sm_r);
        assert_eq!(sm_s.data(), sm_r.data());
    }

    #[test]
    fn avx_gemm_matches_reference_within_tolerance() {
        let simd = SimdBackend::new();
        if !simd.avx2_active() {
            return; // Nothing to compare on non-AVX2 hardware.
        }
        let tol = simd.tolerance();
        for (m, k, n) in [(1, 1, 1), (4, 16, 16), (5, 37, 23), (12, 64, 37), (3, 7, 8)] {
            let a = filled(m, k, (m * 31 + n) as u64);
            let b = filled(k, n, (k * 17 + m) as u64);
            let mut out_s = Matrix::zeros(m, n);
            let mut out_r = Matrix::zeros(m, n);
            simd.matmul_into(&a, &b, &mut out_s);
            a.matmul_into(&b, &mut out_r);
            for (s, r) in out_s.data().iter().zip(out_r.data()) {
                assert!(tol.allows(*s, *r), "{s} vs {r} at {m}x{k}x{n}");
            }
        }
    }

    #[test]
    fn avx_softmax_rows_match_reference_within_tolerance() {
        let simd = SimdBackend::new();
        if !simd.avx2_active() {
            return;
        }
        let tol = simd.tolerance();
        for cols in [1usize, 7, 8, 9, 30, 64] {
            let mut s = filled(3, cols, cols as u64);
            let mut r = s.clone();
            simd.softmax_rows_inplace(&mut s);
            r.softmax_rows_inplace();
            for (a, b) in s.data().iter().zip(r.data()) {
                assert!(tol.allows(*a, *b), "{a} vs {b} at cols={cols}");
            }
            // Rows still sum to one.
            for i in 0..3 {
                let sum: f32 = s.row(i).iter().sum();
                assert!((sum - 1.0).abs() < 1e-5);
            }
        }
    }

    #[test]
    fn avx_kernels_propagate_nan() {
        let simd = SimdBackend::new();
        if !simd.avx2_active() {
            return;
        }
        let a = Matrix::from_rows(&[&[0.0, 1.0]]);
        let b = Matrix::from_rows(&[&[f32::NAN], &[2.0]]);
        let mut out = Matrix::zeros(1, 1);
        simd.matmul_into(&a, &b, &mut out);
        assert!(out.get(0, 0).is_nan());

        let mut m = Matrix::from_rows(&[&[f32::NAN, 1.0, -3.0, 0.5, 2.0, -1.0, 0.0, 4.0, 7.0]]);
        simd.activation_grad_from_output(
            ActivationKind::Relu,
            &Matrix::full(1, 9, -1.0),
            &m.clone(),
            &mut m,
        );
        assert!(
            m.get(0, 0).is_nan(),
            "NaN grad × zero derivative must stay NaN"
        );
    }
}
