//! The exact-order reference backend.
//!
//! Every kernel delegates to the scalar register-tiled [`Matrix`] kernels
//! that predate the backend seam, so this backend's results are bit-identical
//! to the pre-seam code — the property all golden and determinism fixtures
//! pin. It is the process-wide default and is always compiled in.

use super::{KernelBackend, Tolerance};
use crate::layers::ActivationKind;
use crate::matrix::Matrix;
use crate::scratch::Scratch;

/// The always-available exact-order backend (see the module docs).
///
/// A unit struct: every [`KernelBackend`] method keeps its default body,
/// which *is* the reference implementation.
#[derive(Debug, Clone, Copy, Default)]
pub struct ReferenceBackend;

impl KernelBackend for ReferenceBackend {
    fn name(&self) -> &'static str {
        "reference"
    }

    fn tolerance(&self) -> Tolerance {
        Tolerance::Exact
    }
}

/// Reference body of [`KernelBackend::activation_grad_from_output`]: the
/// scalar element-wise loop the activation layer used before the seam.
pub(super) fn activation_grad_from_output(
    kind: ActivationKind,
    output: &Matrix,
    grad_output: &Matrix,
    grad_input: &mut Matrix,
) {
    assert_eq!(
        grad_output.shape(),
        output.shape(),
        "activation gradient shape mismatch"
    );
    assert_eq!(
        grad_input.shape(),
        output.shape(),
        "activation gradient output shape mismatch"
    );
    for ((g, &go), &y) in grad_input
        .data_mut()
        .iter_mut()
        .zip(grad_output.data())
        .zip(output.data())
    {
        *g = go * kind.derivative_from_output(y);
    }
}

/// Validates the stacked shapes of a fused attention call and returns the
/// per-item row count `n`.
pub(super) fn attention_item_rows(q: &Matrix, k: &Matrix, v: &Matrix, items: usize) -> usize {
    assert!(items > 0, "attention batch must contain at least one item");
    assert_eq!(q.shape(), k.shape(), "attention Q/K shape mismatch");
    assert_eq!(q.shape(), v.shape(), "attention Q/V shape mismatch");
    assert_eq!(
        q.rows() % items,
        0,
        "attention rows {} not divisible by {} items",
        q.rows(),
        items
    );
    q.rows() / items
}

/// Reference body of [`KernelBackend::attention_forward_fused`]: a per-item
/// loop over gathered row blocks running exactly the solo forward's kernel
/// calls (`Q_i·K_iᵀ` via the lane-summed transb kernel, scalar scale,
/// exact-order softmax, tiled `A_i·V_i`), so each item's scores and mixed
/// values are bit-identical to a solo pass on that item alone — the contract
/// the batched determinism fixtures pin.
#[allow(clippy::too_many_arguments)]
pub(super) fn attention_forward_fused(
    q: &Matrix,
    k: &Matrix,
    v: &Matrix,
    items: usize,
    scale: f32,
    mut attn: Option<&mut Matrix>,
    mixed: &mut Matrix,
    scratch: &mut Scratch,
) {
    let n = attention_item_rows(q, k, v, items);
    let d = q.cols();
    assert_eq!(mixed.shape(), (items * n, d), "attention mixed shape");
    if let Some(attn) = attn.as_deref() {
        assert_eq!(attn.shape(), (items * n, n), "attention stacked-A shape");
    }
    let mut qi = scratch.take(n, d);
    let mut ki = scratch.take(n, d);
    let mut vi = scratch.take(n, d);
    let mut attn_i = scratch.take(n, n);
    let mut mixed_i = scratch.take(n, d);
    for item in 0..items {
        let start = item * n;
        q.copy_row_block_into(start, &mut qi);
        k.copy_row_block_into(start, &mut ki);
        v.copy_row_block_into(start, &mut vi);
        qi.matmul_transb_into(&ki, &mut attn_i);
        attn_i.scale_inplace(scale);
        attn_i.softmax_rows_inplace();
        attn_i.matmul_into(&vi, &mut mixed_i);
        if let Some(attn) = attn.as_deref_mut() {
            attn.write_row_block(start, &attn_i);
        }
        mixed.write_row_block(start, &mixed_i);
    }
    scratch.recycle(qi);
    scratch.recycle(ki);
    scratch.recycle(vi);
    scratch.recycle(attn_i);
    scratch.recycle(mixed_i);
}

/// Reference body of [`KernelBackend::attention_backward_fused`]: the
/// per-item gathered-block loop of the pre-seam batched backward —
/// `dA_i = dM_i·V_iᵀ`, `dV_i = A_iᵀ·dM_i`, the scalar softmax-backward rows
/// (`dS = A ⊙ (dA − (dA·A)) * scale`), then `dQ_i = dS_i·K_i` and
/// `dK_i = dS_iᵀ·Q_i` — bit-identical to a solo backward per item.
#[allow(clippy::too_many_arguments)]
pub(super) fn attention_backward_fused(
    grad_mixed: &Matrix,
    q: &Matrix,
    k: &Matrix,
    v: &Matrix,
    attn: &Matrix,
    items: usize,
    scale: f32,
    grad_q: &mut Matrix,
    grad_k: &mut Matrix,
    grad_v: &mut Matrix,
    scratch: &mut Scratch,
) {
    let n = attention_item_rows(q, k, v, items);
    let d = q.cols();
    assert_eq!(grad_mixed.shape(), (items * n, d), "attention dM shape");
    assert_eq!(attn.shape(), (items * n, n), "attention stacked-A shape");
    assert_eq!(grad_q.shape(), (items * n, d), "attention dQ shape");
    assert_eq!(grad_k.shape(), (items * n, d), "attention dK shape");
    assert_eq!(grad_v.shape(), (items * n, d), "attention dV shape");
    let mut gm_i = scratch.take(n, d);
    let mut v_i = scratch.take(n, d);
    let mut q_i = scratch.take(n, d);
    let mut k_i = scratch.take(n, d);
    let mut a_i = scratch.take(n, n);
    let mut ga_i = scratch.take(n, n);
    let mut gq_i = scratch.take(n, d);
    let mut gk_i = scratch.take(n, d);
    let mut gv_i = scratch.take(n, d);
    for item in 0..items {
        let start = item * n;
        grad_mixed.copy_row_block_into(start, &mut gm_i);
        v.copy_row_block_into(start, &mut v_i);
        attn.copy_row_block_into(start, &mut a_i);

        // mixed = A·V
        gm_i.matmul_transb_into(&v_i, &mut ga_i);
        a_i.matmul_transa_into(&gm_i, &mut gv_i);

        // Softmax backward, row by row, pre-scaled.
        for i in 0..n {
            let a_row = a_i.row(i);
            let da_row = &mut ga_i.row_mut(i)[..];
            let dot: f32 = a_row.iter().zip(da_row.iter()).map(|(a, d)| a * d).sum();
            for (d, &a) in da_row.iter_mut().zip(a_row) {
                *d = a * (*d - dot) * scale;
            }
        }

        // scores = Q·Kᵀ
        k.copy_row_block_into(start, &mut k_i);
        q.copy_row_block_into(start, &mut q_i);
        ga_i.matmul_into(&k_i, &mut gq_i);
        ga_i.matmul_transa_into(&q_i, &mut gk_i);

        grad_q.write_row_block(start, &gq_i);
        grad_k.write_row_block(start, &gk_i);
        grad_v.write_row_block(start, &gv_i);
    }
    scratch.recycle(gm_i);
    scratch.recycle(v_i);
    scratch.recycle(q_i);
    scratch.recycle(k_i);
    scratch.recycle(a_i);
    scratch.recycle(ga_i);
    scratch.recycle(gq_i);
    scratch.recycle(gk_i);
    scratch.recycle(gv_i);
}
