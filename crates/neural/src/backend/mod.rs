//! The kernel-backend seam: pluggable providers for the hot float kernels.
//!
//! Every layer routes its GEMM variants, transposes, axpy-style updates,
//! softmax rows, activation maps and the fused attention score/softmax/mix
//! stage through a [`KernelBackend`] carried by the [`Scratch`] pool instead
//! of hardcoding the scalar register-tiled kernels. Two providers exist:
//!
//! * [`ReferenceBackend`] — the always-available default. It delegates to the
//!   exact-order kernels on [`Matrix`], so its results are **bit-identical**
//!   to the pre-seam code at every shape and batch size
//!   ([`Tolerance::Exact`]). All golden and determinism fixtures pin this
//!   backend.
//! * `SimdBackend` (feature `backend-simd`) — explicit `std::arch` x86_64
//!   AVX2/FMA kernels with `is_x86_feature_detected!` runtime dispatch. On
//!   hardware without AVX2+FMA (or via
//!   `SimdBackend::scalar_fallback`) every call falls back to the reference
//!   kernels, bit for bit. The vectorized paths reorder reductions and use a
//!   polynomial `exp`, so the backend declares a relative
//!   [`Tolerance`] instead of exactness.
//!
//! Selection flows through [`Scratch`] construction: [`Scratch::new`] picks
//! the process-wide default backend, resolved once from the `ACSO_BACKEND`
//! environment variable (`reference`|`simd`) or set programmatically with
//! [`set_default_backend`]; [`Scratch::with_backend`] pins a specific
//! provider for one pool (used by the cross-backend equivalence tests so
//! they never race on the global default).
//!
//! [`Scratch`]: crate::scratch::Scratch
//! [`Scratch::new`]: crate::scratch::Scratch::new
//! [`Scratch::with_backend`]: crate::scratch::Scratch::with_backend

mod reference;
#[cfg(feature = "backend-simd")]
mod simd;

pub use reference::ReferenceBackend;
#[cfg(feature = "backend-simd")]
pub use simd::SimdBackend;

use crate::layers::ActivationKind;
use crate::matrix::Matrix;
use crate::scratch::Scratch;
use std::sync::atomic::{AtomicUsize, Ordering};

/// A shared reference to a registered kernel backend.
///
/// Backends are stateless statics, so the reference is `Copy` and can be
/// held by any number of [`Scratch`] pools at once.
pub type BackendRef = &'static dyn KernelBackend;

/// Environment variable that selects the process-wide default backend
/// (`reference` or `simd`); read once, on the first
/// [`default_backend`] call.
pub const BACKEND_ENV: &str = "ACSO_BACKEND";

/// The accuracy contract a backend declares for its kernels, relative to
/// [`ReferenceBackend`].
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum Tolerance {
    /// Bit-identical to the reference kernels at every shape (same float
    /// operations in the same order). Golden fixtures may pin this backend.
    Exact,
    /// Each output element `x` matches the reference element `r` within
    /// `|x - r| <= abs + rel * max(|x|, |r|)` — reductions may be reordered
    /// and transcendentals approximated, but never beyond this bound.
    Bounded {
        /// Relative error bound.
        rel: f32,
        /// Absolute error floor (covers results near zero).
        abs: f32,
    },
}

impl Tolerance {
    /// Whether two values are equal under this tolerance. `NaN` matches
    /// `NaN` (kernels must propagate non-finite values identically).
    pub fn allows(&self, a: f32, b: f32) -> bool {
        if a.is_nan() || b.is_nan() {
            return a.is_nan() && b.is_nan();
        }
        match *self {
            Tolerance::Exact => a == b,
            Tolerance::Bounded { rel, abs } => (a - b).abs() <= abs + rel * a.abs().max(b.abs()),
        }
    }

    /// The looser of two contracts — the bound a cross-backend comparison
    /// must use.
    pub fn join(self, other: Tolerance) -> Tolerance {
        match (self, other) {
            (Tolerance::Exact, t) | (t, Tolerance::Exact) => t,
            (Tolerance::Bounded { rel: r1, abs: a1 }, Tolerance::Bounded { rel: r2, abs: a2 }) => {
                Tolerance::Bounded {
                    rel: r1.max(r2),
                    abs: a1.max(a2),
                }
            }
        }
    }
}

/// A provider of the float kernels the layers are built from.
///
/// Every method has a default body that delegates to the exact-order
/// [`Matrix`] kernels, so [`ReferenceBackend`] implements nothing beyond its
/// name and tolerance, and an accelerated backend overrides exactly the
/// kernels it accelerates (anything it leaves alone stays bit-identical to
/// the reference).
///
/// Two structural contracts every implementation must keep:
///
/// * **row-count invariance** — for `matmul_into`/`add_matmul`, each output
///   element's value depends only on its own row of `a` and column of `b`,
///   never on how many other rows are stacked below it. This is what makes
///   batched passes bit-identical *per item* to solo passes within one
///   backend (the contract `batch_determinism` pins for every backend).
/// * **NaN propagation** — kernels take no data-dependent shortcuts:
///   `0 × NaN` stays `NaN` exactly as IEEE 754 requires.
pub trait KernelBackend: std::fmt::Debug + Send + Sync {
    /// Stable identifier used by `ACSO_BACKEND`, bench snapshots and logs.
    fn name(&self) -> &'static str;

    /// The accuracy contract of this backend's kernels relative to
    /// [`ReferenceBackend`].
    fn tolerance(&self) -> Tolerance;

    /// `out = a · b` (`out`'s previous contents are neither read nor
    /// zeroed).
    fn matmul_into(&self, a: &Matrix, b: &Matrix, out: &mut Matrix) {
        a.matmul_into(b, out);
    }

    /// `out += a · b`.
    fn add_matmul(&self, out: &mut Matrix, a: &Matrix, b: &Matrix) {
        out.add_matmul(a, b);
    }

    /// `out += a[rows]ᵀ · b[rows]` over the row range
    /// `row_start .. row_start + rows` of both inputs — the per-item
    /// parameter-gradient flush. Implementations must flush a local
    /// accumulator into `out` once per call so a per-item loop reproduces
    /// the serial per-sample accumulation order.
    fn add_matmul_transa_blocks(
        &self,
        out: &mut Matrix,
        a: &Matrix,
        b: &Matrix,
        row_start: usize,
        rows: usize,
    ) {
        out.add_matmul_transa_blocks(a, b, row_start, rows);
    }

    /// `out += aᵀ · b` over all rows (the stacked form of
    /// [`KernelBackend::add_matmul_transa_blocks`]).
    fn add_matmul_transa(&self, out: &mut Matrix, a: &Matrix, b: &Matrix) {
        self.add_matmul_transa_blocks(out, a, b, 0, a.rows());
    }

    /// `out = aᵀ · b` without materialising the transpose.
    fn matmul_transa_into(&self, a: &Matrix, b: &Matrix, out: &mut Matrix) {
        out.fill(0.0);
        self.add_matmul_transa(out, a, b);
    }

    /// `out = a · bᵀ` without materialising the transpose (the attention
    /// score kernel `Q·Kᵀ` and every `X·Wᵀ` backward product).
    fn matmul_transb_into(&self, a: &Matrix, b: &Matrix, out: &mut Matrix) {
        a.matmul_transb_into(b, out);
    }

    /// `out = aᵀ`.
    fn transpose_into(&self, a: &Matrix, out: &mut Matrix) {
        a.transpose_into(out);
    }

    /// `out += other` (element-wise).
    fn add_assign(&self, out: &mut Matrix, other: &Matrix) {
        out.add_assign(other);
    }

    /// `out += factor * other` (axpy).
    fn add_scaled(&self, out: &mut Matrix, other: &Matrix, factor: f32) {
        out.add_scaled(other, factor);
    }

    /// Row-wise softmax in place.
    fn softmax_rows_inplace(&self, m: &mut Matrix) {
        m.softmax_rows_inplace();
    }

    /// Applies an activation function element-wise in place.
    fn apply_activation(&self, kind: ActivationKind, m: &mut Matrix) {
        m.map_inplace(|x| kind.apply(x));
    }

    /// `grad_input = grad_output ⊙ f'(output)` where the derivative is
    /// expressed in terms of the activation *output* (see
    /// `ActivationKind::derivative_from_output`).
    fn activation_grad_from_output(
        &self,
        kind: ActivationKind,
        output: &Matrix,
        grad_output: &Matrix,
        grad_input: &mut Matrix,
    ) {
        reference::activation_grad_from_output(kind, output, grad_output, grad_input);
    }

    /// The fused block-diagonal attention forward stage over a stacked batch
    /// of `items` independent row blocks:
    ///
    /// ```text
    /// per item i (rows i*n .. (i+1)*n of each stacked matrix):
    ///   A_i = softmax(Q_i · K_iᵀ * scale)      ([n, n])
    ///   mixed_i = A_i · V_i                     ([n, d])
    /// ```
    ///
    /// `q`, `k`, `v` and `mixed` are `[items * n, d]`; `attn`, when present,
    /// receives the stacked `[items * n, n]` attention blocks (the training
    /// cache; inference passes `None` and pays nothing for it). Temporaries
    /// come from `scratch`.
    #[allow(clippy::too_many_arguments)]
    fn attention_forward_fused(
        &self,
        q: &Matrix,
        k: &Matrix,
        v: &Matrix,
        items: usize,
        scale: f32,
        attn: Option<&mut Matrix>,
        mixed: &mut Matrix,
        scratch: &mut Scratch,
    ) {
        reference::attention_forward_fused(q, k, v, items, scale, attn, mixed, scratch);
    }

    /// The fused block-diagonal attention backward stage: given the stacked
    /// gradient of the mixed values and the cached forward intermediates, it
    /// writes the stacked gradients with respect to `Q`, `K` and `V`
    /// (softmax backward included, pre-scaled by `scale`). Parameter
    /// gradients stay with the caller. Temporaries come from `scratch`.
    #[allow(clippy::too_many_arguments)]
    fn attention_backward_fused(
        &self,
        grad_mixed: &Matrix,
        q: &Matrix,
        k: &Matrix,
        v: &Matrix,
        attn: &Matrix,
        items: usize,
        scale: f32,
        grad_q: &mut Matrix,
        grad_k: &mut Matrix,
        grad_v: &mut Matrix,
        scratch: &mut Scratch,
    ) {
        reference::attention_backward_fused(
            grad_mixed, q, k, v, attn, items, scale, grad_q, grad_k, grad_v, scratch,
        );
    }
}

/// The reference backend singleton (the process-wide fallback default).
static REFERENCE: ReferenceBackend = ReferenceBackend;
#[cfg(feature = "backend-simd")]
static SIMD: SimdBackend = SimdBackend::new();

/// Every backend compiled into this build, reference first.
pub fn all_backends() -> &'static [BackendRef] {
    #[cfg(feature = "backend-simd")]
    {
        static ALL: [BackendRef; 2] = [&REFERENCE, &SIMD];
        &ALL
    }
    #[cfg(not(feature = "backend-simd"))]
    {
        static ALL: [BackendRef; 1] = [&REFERENCE];
        &ALL
    }
}

/// Looks a backend up by its [`KernelBackend::name`].
///
/// # Errors
///
/// Returns a descriptive error for unknown names, including the case where
/// `simd` was requested but the build lacks the `backend-simd` feature.
pub fn backend_by_name(name: &str) -> Result<BackendRef, String> {
    if let Some(b) = all_backends().iter().find(|b| b.name() == name) {
        return Ok(*b);
    }
    if name == "simd" {
        return Err(
            "kernel backend 'simd' requires building with `--features backend-simd`".to_string(),
        );
    }
    let available: Vec<&str> = all_backends().iter().map(|b| b.name()).collect();
    Err(format!(
        "unknown kernel backend '{name}' (available: {})",
        available.join(", ")
    ))
}

/// Index into [`all_backends`] of the process-wide default, offset by one;
/// `0` means "not resolved yet".
static DEFAULT_BACKEND: AtomicUsize = AtomicUsize::new(0);

/// The process-wide default backend used by
/// [`Scratch::new`](crate::Scratch::new).
///
/// Resolved once: an explicit [`set_default_backend`] call wins; otherwise
/// the first call reads [`BACKEND_ENV`] (empty/unset means `reference`).
///
/// # Panics
///
/// Panics if [`BACKEND_ENV`] names an unknown or uncompiled backend — a
/// misconfigured deployment must fail loudly, not silently compute with the
/// wrong kernels.
pub fn default_backend() -> BackendRef {
    let all = all_backends();
    let idx = DEFAULT_BACKEND.load(Ordering::Relaxed);
    if idx > 0 {
        return all[idx - 1];
    }
    let chosen = match std::env::var(BACKEND_ENV) {
        Ok(name) if !name.is_empty() => {
            backend_by_name(&name).unwrap_or_else(|e| panic!("{BACKEND_ENV}: {e}"))
        }
        _ => &REFERENCE as BackendRef,
    };
    // Benign race: concurrent first calls resolve the same env value.
    set_default_backend(chosen);
    chosen
}

/// Programmatically sets the process-wide default backend (overrides
/// [`BACKEND_ENV`]). Affects [`Scratch::new`](crate::Scratch::new) pools
/// created *after* the call; existing pools keep the backend they were
/// built with.
///
/// # Panics
///
/// Panics if `backend` is not one of [`all_backends`].
pub fn set_default_backend(backend: BackendRef) {
    let idx = all_backends()
        .iter()
        .position(|b| b.name() == backend.name())
        .expect("backend is not registered in all_backends()");
    DEFAULT_BACKEND.store(idx + 1, Ordering::Relaxed);
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn reference_is_always_registered_and_first() {
        let all = all_backends();
        assert!(!all.is_empty());
        assert_eq!(all[0].name(), "reference");
        assert_eq!(all[0].tolerance(), Tolerance::Exact);
        assert_eq!(backend_by_name("reference").unwrap().name(), "reference");
    }

    #[test]
    fn unknown_backend_names_error_descriptively() {
        let err = backend_by_name("gpu").unwrap_err();
        assert!(err.contains("unknown kernel backend 'gpu'"), "{err}");
        assert!(err.contains("reference"), "{err}");
        #[cfg(not(feature = "backend-simd"))]
        {
            let err = backend_by_name("simd").unwrap_err();
            assert!(err.contains("backend-simd"), "{err}");
        }
    }

    #[test]
    fn default_backend_resolves_and_can_be_overridden() {
        // The suite runs with ACSO_BACKEND unset (or set to a valid name),
        // so resolution must not panic and must return a registered backend.
        let d = default_backend();
        assert!(all_backends().iter().any(|b| b.name() == d.name()));
        set_default_backend(d);
        assert_eq!(default_backend().name(), d.name());
    }

    #[test]
    fn tolerance_allows_and_joins() {
        let exact = Tolerance::Exact;
        assert!(exact.allows(1.25, 1.25));
        assert!(!exact.allows(1.25, 1.2500001));
        assert!(exact.allows(f32::NAN, f32::NAN));
        assert!(!exact.allows(f32::NAN, 1.0));

        let loose = Tolerance::Bounded {
            rel: 1e-3,
            abs: 1e-6,
        };
        assert!(loose.allows(1000.0, 1000.5));
        assert!(!loose.allows(1000.0, 1002.0));
        assert!(loose.allows(0.0, 5e-7));
        assert!(!loose.allows(f32::NAN, 1.0));

        assert_eq!(exact.join(loose), loose);
        assert_eq!(loose.join(exact), loose);
        let tighter = Tolerance::Bounded {
            rel: 1e-5,
            abs: 1e-7,
        };
        assert_eq!(loose.join(tighter), loose);
        assert_eq!(exact.join(exact), exact);
    }
}
