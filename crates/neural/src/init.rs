//! Weight initialisation schemes.

use crate::matrix::Matrix;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// Xavier/Glorot uniform initialisation: values drawn uniformly from
/// `[-limit, limit]` with `limit = sqrt(6 / (fan_in + fan_out))`.
///
/// The `seed` makes initialisation deterministic, which keeps training runs
/// and tests reproducible.
pub fn xavier_uniform(fan_in: usize, fan_out: usize, seed: u64) -> Matrix {
    let mut rng = StdRng::seed_from_u64(seed);
    let limit = (6.0 / (fan_in + fan_out) as f32).sqrt();
    let data = (0..fan_in * fan_out)
        .map(|_| rng.gen_range(-limit..=limit))
        .collect();
    Matrix::from_vec(fan_in, fan_out, data)
}

/// He/Kaiming uniform initialisation, suited to ReLU-family activations.
pub fn he_uniform(fan_in: usize, fan_out: usize, seed: u64) -> Matrix {
    let mut rng = StdRng::seed_from_u64(seed);
    let limit = (6.0 / fan_in as f32).sqrt();
    let data = (0..fan_in * fan_out)
        .map(|_| rng.gen_range(-limit..=limit))
        .collect();
    Matrix::from_vec(fan_in, fan_out, data)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn xavier_respects_limit_and_seed() {
        let m = xavier_uniform(10, 20, 7);
        let limit = (6.0f32 / 30.0).sqrt();
        assert_eq!(m.shape(), (10, 20));
        assert!(m.data().iter().all(|v| v.abs() <= limit + 1e-6));
        assert_eq!(m, xavier_uniform(10, 20, 7));
        assert_ne!(m, xavier_uniform(10, 20, 8));
        // Not degenerate.
        assert!(m.norm() > 0.0);
    }

    #[test]
    fn he_respects_limit() {
        let m = he_uniform(16, 8, 3);
        let limit = (6.0f32 / 16.0).sqrt();
        assert!(m.data().iter().all(|v| v.abs() <= limit + 1e-6));
        assert_eq!(m.shape(), (16, 8));
    }
}
