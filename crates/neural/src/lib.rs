//! A minimal CPU neural-network library built for the ACSO reproduction.
//!
//! The paper trains its defender with PyTorch on a GPU; this crate provides
//! the pieces of that stack the reproduction actually needs, implemented from
//! scratch with explicit forward/backward passes:
//!
//! * a dense row-major [`Matrix`] type with the linear algebra used by the
//!   layers;
//! * [`layers`] — fully-connected, activation, scaled-dot-product
//!   self-attention and 1-D convolution layers, each implementing [`Layer`]
//!   with a manual backward pass;
//! * [`optim`] — Adam and SGD optimizers over [`Param`] collections;
//! * [`loss`] — the Huber loss used by the DQN temporal-difference update.
//!
//! The library is deliberately small: no autograd graph, no broadcasting
//! rules, no GPU. Layers cache whatever they need from the forward pass and
//! `backward` consumes that cache, which is exactly the discipline a DQN
//! training loop needs.
//!
//! Every forward/backward pass takes a [`Scratch`] buffer pool; at steady
//! state the layers perform zero heap allocations (see [`scratch`]).
//!
//! All heavy kernels dispatch through a pluggable [`backend`] seam carried
//! by the `Scratch` pool: the always-available exact-order
//! [`backend::ReferenceBackend`] (the default — bit-identical to the
//! pre-seam kernels) and, behind the `backend-simd` feature, an AVX2/FMA
//! `SimdBackend` with runtime dispatch, fused block-diagonal attention
//! kernels, and a declared [`Tolerance`] contract.
//!
//! Inference is batch-first: every layer also exposes
//! [`Layer::forward_batch`] over a strided [`Batch`] of independent items,
//! amortising kernel and dispatch overhead across items while keeping each
//! item's output bit-identical to a solo forward pass (see [`batch`]).
//!
//! # Example
//!
//! ```
//! use neural::{layers::{Activation, Dense, Sequential}, Layer, Matrix, Scratch};
//! use neural::optim::Adam;
//! use neural::loss::huber;
//!
//! // A tiny regression: y = 2x, learned by a 2-layer MLP.
//! let mut net = Sequential::new(vec![
//!     Box::new(Dense::new(1, 8, 1)),
//!     Box::new(Activation::relu()),
//!     Box::new(Dense::new(8, 1, 2)),
//! ]);
//! let mut opt = Adam::new(1e-2);
//! let mut scratch = Scratch::new();
//! for _ in 0..300 {
//!     let x = Matrix::from_rows(&[&[0.0], &[0.5], &[1.0], &[1.5]]);
//!     let target = Matrix::from_rows(&[&[0.0], &[1.0], &[2.0], &[3.0]]);
//!     let pred = net.forward(&x, &mut scratch);
//!     let (_, grad) = huber(&pred, &target, 1.0);
//!     net.zero_grad();
//!     let grad_in = net.backward(&grad, &mut scratch);
//!     scratch.recycle(pred);
//!     scratch.recycle(grad_in);
//!     opt.step(&mut net.params_mut());
//! }
//! let pred = net.forward(&Matrix::from_rows(&[&[2.0]]), &mut scratch);
//! assert!((pred.get(0, 0) - 4.0).abs() < 0.5);
//! ```

#![warn(missing_docs)]

pub mod backend;
pub mod batch;
pub mod init;
pub mod layers;
pub mod loss;
pub mod matrix;
pub mod optim;
pub mod param;
pub mod scratch;

pub use backend::{KernelBackend, Tolerance};
pub use batch::Batch;
pub use layers::Layer;
pub use matrix::Matrix;
pub use param::Param;
pub use scratch::Scratch;
