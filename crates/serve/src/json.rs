//! A minimal JSON value type with a parser and a writer.
//!
//! The workspace's external dependencies are vendored no-op stand-ins (see
//! `vendor/README.md`), so the wire protocol cannot lean on serde: requests
//! are parsed and responses rendered through this hand-rolled module
//! instead. The subset is full JSON with two deliberate choices:
//!
//! * objects preserve **insertion order** (they are a `Vec` of pairs, not a
//!   map), so a response renders byte-identically run after run — the
//!   property the PROTOCOL.md transcript-replay test pins;
//! * numbers are `f64` and render integers without a decimal point and
//!   everything else through Rust's shortest-round-trip formatting, so a
//!   metric value parses back to the exact same bits.

use std::fmt;

/// A parsed JSON value.
#[derive(Debug, Clone, PartialEq)]
pub enum JsonValue {
    /// `null`.
    Null,
    /// `true` / `false`.
    Bool(bool),
    /// Any JSON number.
    Num(f64),
    /// A string.
    Str(String),
    /// An array.
    Arr(Vec<JsonValue>),
    /// An object; pairs keep insertion order.
    Obj(Vec<(String, JsonValue)>),
}

impl JsonValue {
    /// Builds a string value.
    pub fn str(s: impl Into<String>) -> Self {
        JsonValue::Str(s.into())
    }

    /// Builds a number value.
    pub fn num(v: f64) -> Self {
        JsonValue::Num(v)
    }

    /// The value as a string slice, if it is one.
    pub fn as_str(&self) -> Option<&str> {
        match self {
            JsonValue::Str(s) => Some(s),
            _ => None,
        }
    }

    /// The value as a number, if it is one.
    pub fn as_f64(&self) -> Option<f64> {
        match self {
            JsonValue::Num(v) => Some(*v),
            _ => None,
        }
    }

    /// The value as a non-negative integer, if it is a whole number in range.
    pub fn as_u64(&self) -> Option<u64> {
        match self {
            JsonValue::Num(v) if v.fract() == 0.0 && *v >= 0.0 && *v <= 2f64.powi(53) => {
                Some(*v as u64)
            }
            _ => None,
        }
    }

    /// The value as a boolean, if it is one.
    pub fn as_bool(&self) -> Option<bool> {
        match self {
            JsonValue::Bool(b) => Some(*b),
            _ => None,
        }
    }

    /// The value as an object's pair list, if it is an object.
    pub fn as_obj(&self) -> Option<&[(String, JsonValue)]> {
        match self {
            JsonValue::Obj(pairs) => Some(pairs),
            _ => None,
        }
    }

    /// The value as an array's element list, if it is an array.
    pub fn as_arr(&self) -> Option<&[JsonValue]> {
        match self {
            JsonValue::Arr(items) => Some(items),
            _ => None,
        }
    }

    /// Looks up a key in an object (first match; `None` for non-objects).
    pub fn get(&self, key: &str) -> Option<&JsonValue> {
        self.as_obj()?
            .iter()
            .find(|(k, _)| k == key)
            .map(|(_, v)| v)
    }

    /// Parses a JSON document (one complete value with nothing but
    /// whitespace after it).
    ///
    /// # Errors
    ///
    /// Returns a one-line description with the byte offset of the problem.
    pub fn parse(text: &str) -> Result<Self, String> {
        let bytes = text.as_bytes();
        let mut pos = 0usize;
        let value = parse_value(bytes, &mut pos)?;
        skip_ws(bytes, &mut pos);
        if pos != bytes.len() {
            return Err(format!("trailing content at byte {pos}"));
        }
        Ok(value)
    }

    /// Renders the value into `out` with no whitespace between tokens.
    pub fn render(&self, out: &mut String) {
        match self {
            JsonValue::Null => out.push_str("null"),
            JsonValue::Bool(true) => out.push_str("true"),
            JsonValue::Bool(false) => out.push_str("false"),
            JsonValue::Num(v) => out.push_str(&fmt_num(*v)),
            JsonValue::Str(s) => write_json_string(out, s),
            JsonValue::Arr(items) => {
                out.push('[');
                for (i, item) in items.iter().enumerate() {
                    if i > 0 {
                        out.push(',');
                    }
                    item.render(out);
                }
                out.push(']');
            }
            JsonValue::Obj(pairs) => {
                out.push('{');
                for (i, (key, value)) in pairs.iter().enumerate() {
                    if i > 0 {
                        out.push(',');
                    }
                    write_json_string(out, key);
                    out.push(':');
                    value.render(out);
                }
                out.push('}');
            }
        }
    }
}

impl fmt::Display for JsonValue {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let mut out = String::new();
        self.render(&mut out);
        f.write_str(&out)
    }
}

/// Formats a number the way the protocol writes it: whole numbers without a
/// decimal point, everything else via Rust's shortest-round-trip `{}`.
/// Non-finite values (which valid metrics never produce) render as `null`.
pub fn fmt_num(v: f64) -> String {
    if !v.is_finite() {
        return "null".to_string();
    }
    if v.fract() == 0.0 && v.abs() < 2f64.powi(53) {
        format!("{}", v as i64)
    } else {
        format!("{v}")
    }
}

/// Appends `s` as a quoted, escaped JSON string.
pub fn write_json_string(out: &mut String, s: &str) {
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\t' => out.push_str("\\t"),
            '\r' => out.push_str("\\r"),
            c if (c as u32) < 0x20 => {
                out.push_str(&format!("\\u{:04x}", c as u32));
            }
            c => out.push(c),
        }
    }
    out.push('"');
}

fn skip_ws(bytes: &[u8], pos: &mut usize) {
    while *pos < bytes.len() && matches!(bytes[*pos], b' ' | b'\t' | b'\n' | b'\r') {
        *pos += 1;
    }
}

fn parse_value(bytes: &[u8], pos: &mut usize) -> Result<JsonValue, String> {
    skip_ws(bytes, pos);
    let Some(&b) = bytes.get(*pos) else {
        return Err(format!("unexpected end of input at byte {pos}"));
    };
    match b {
        b'n' => parse_literal(bytes, pos, "null", JsonValue::Null),
        b't' => parse_literal(bytes, pos, "true", JsonValue::Bool(true)),
        b'f' => parse_literal(bytes, pos, "false", JsonValue::Bool(false)),
        b'"' => parse_string(bytes, pos).map(JsonValue::Str),
        b'[' => parse_array(bytes, pos),
        b'{' => parse_object(bytes, pos),
        b'-' | b'0'..=b'9' => parse_number(bytes, pos),
        other => Err(format!(
            "unexpected character `{}` at byte {pos}",
            other as char
        )),
    }
}

fn parse_literal(
    bytes: &[u8],
    pos: &mut usize,
    literal: &str,
    value: JsonValue,
) -> Result<JsonValue, String> {
    if bytes[*pos..].starts_with(literal.as_bytes()) {
        *pos += literal.len();
        Ok(value)
    } else {
        Err(format!("expected `{literal}` at byte {pos}"))
    }
}

fn parse_number(bytes: &[u8], pos: &mut usize) -> Result<JsonValue, String> {
    let start = *pos;
    while *pos < bytes.len()
        && matches!(bytes[*pos], b'-' | b'+' | b'.' | b'e' | b'E' | b'0'..=b'9')
    {
        *pos += 1;
    }
    let text = std::str::from_utf8(&bytes[start..*pos]).expect("ascii number bytes");
    text.parse::<f64>()
        .map(JsonValue::Num)
        .map_err(|_| format!("invalid number `{text}` at byte {start}"))
}

fn parse_string(bytes: &[u8], pos: &mut usize) -> Result<String, String> {
    debug_assert_eq!(bytes[*pos], b'"');
    *pos += 1;
    let mut out = String::new();
    loop {
        let Some(&b) = bytes.get(*pos) else {
            return Err(format!("unterminated string at byte {pos}"));
        };
        *pos += 1;
        match b {
            b'"' => return Ok(out),
            b'\\' => {
                let Some(&esc) = bytes.get(*pos) else {
                    return Err(format!("dangling escape at byte {pos}"));
                };
                *pos += 1;
                match esc {
                    b'"' => out.push('"'),
                    b'\\' => out.push('\\'),
                    b'/' => out.push('/'),
                    b'n' => out.push('\n'),
                    b't' => out.push('\t'),
                    b'r' => out.push('\r'),
                    b'b' => out.push('\u{0008}'),
                    b'f' => out.push('\u{000C}'),
                    b'u' => {
                        let code = parse_hex4(bytes, pos)?;
                        // Combine surrogate pairs; lone surrogates become the
                        // replacement character rather than failing the line.
                        let c = if (0xD800..0xDC00).contains(&code) {
                            if bytes.get(*pos) == Some(&b'\\') && bytes.get(*pos + 1) == Some(&b'u')
                            {
                                *pos += 2;
                                let low = parse_hex4(bytes, pos)?;
                                let combined =
                                    0x10000 + ((code - 0xD800) << 10) + (low.wrapping_sub(0xDC00));
                                char::from_u32(combined).unwrap_or('\u{FFFD}')
                            } else {
                                '\u{FFFD}'
                            }
                        } else {
                            char::from_u32(code).unwrap_or('\u{FFFD}')
                        };
                        out.push(c);
                    }
                    other => {
                        return Err(format!(
                            "unsupported escape `\\{}` at byte {pos}",
                            other as char
                        ))
                    }
                }
            }
            _ => {
                // Copy the full UTF-8 sequence starting at this byte.
                let seq_start = *pos - 1;
                let len = utf8_len(b);
                let end = seq_start + len;
                if end > bytes.len() {
                    return Err(format!("truncated UTF-8 sequence at byte {seq_start}"));
                }
                let s = std::str::from_utf8(&bytes[seq_start..end])
                    .map_err(|_| format!("invalid UTF-8 at byte {seq_start}"))?;
                out.push_str(s);
                *pos = end;
            }
        }
    }
}

fn utf8_len(first: u8) -> usize {
    match first {
        0x00..=0x7F => 1,
        0xC0..=0xDF => 2,
        0xE0..=0xEF => 3,
        _ => 4,
    }
}

fn parse_hex4(bytes: &[u8], pos: &mut usize) -> Result<u32, String> {
    let end = *pos + 4;
    if end > bytes.len() {
        return Err(format!("truncated \\u escape at byte {pos}"));
    }
    let text = std::str::from_utf8(&bytes[*pos..end])
        .map_err(|_| format!("invalid \\u escape at byte {pos}"))?;
    let code =
        u32::from_str_radix(text, 16).map_err(|_| format!("invalid \\u escape at byte {pos}"))?;
    *pos = end;
    Ok(code)
}

fn parse_array(bytes: &[u8], pos: &mut usize) -> Result<JsonValue, String> {
    debug_assert_eq!(bytes[*pos], b'[');
    *pos += 1;
    let mut items = Vec::new();
    skip_ws(bytes, pos);
    if bytes.get(*pos) == Some(&b']') {
        *pos += 1;
        return Ok(JsonValue::Arr(items));
    }
    loop {
        items.push(parse_value(bytes, pos)?);
        skip_ws(bytes, pos);
        match bytes.get(*pos) {
            Some(b',') => {
                *pos += 1;
            }
            Some(b']') => {
                *pos += 1;
                return Ok(JsonValue::Arr(items));
            }
            _ => return Err(format!("expected `,` or `]` at byte {pos}")),
        }
    }
}

fn parse_object(bytes: &[u8], pos: &mut usize) -> Result<JsonValue, String> {
    debug_assert_eq!(bytes[*pos], b'{');
    *pos += 1;
    let mut pairs = Vec::new();
    skip_ws(bytes, pos);
    if bytes.get(*pos) == Some(&b'}') {
        *pos += 1;
        return Ok(JsonValue::Obj(pairs));
    }
    loop {
        skip_ws(bytes, pos);
        if bytes.get(*pos) != Some(&b'"') {
            return Err(format!("expected a quoted key at byte {pos}"));
        }
        let key = parse_string(bytes, pos)?;
        skip_ws(bytes, pos);
        if bytes.get(*pos) != Some(&b':') {
            return Err(format!("expected `:` at byte {pos}"));
        }
        *pos += 1;
        let value = parse_value(bytes, pos)?;
        pairs.push((key, value));
        skip_ws(bytes, pos);
        match bytes.get(*pos) {
            Some(b',') => {
                *pos += 1;
            }
            Some(b'}') => {
                *pos += 1;
                return Ok(JsonValue::Obj(pairs));
            }
            _ => return Err(format!("expected `,` or `}}` at byte {pos}")),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn values_round_trip_through_render_and_parse() {
        let value = JsonValue::Obj(vec![
            ("id".to_string(), JsonValue::num(7.0)),
            ("ok".to_string(), JsonValue::Bool(true)),
            ("nothing".to_string(), JsonValue::Null),
            (
                "nested".to_string(),
                JsonValue::Arr(vec![
                    JsonValue::str("a \"quoted\" line\n"),
                    JsonValue::num(-0.125),
                    JsonValue::Obj(vec![]),
                ]),
            ),
        ]);
        let text = value.to_string();
        assert_eq!(
            text,
            r#"{"id":7,"ok":true,"nothing":null,"nested":["a \"quoted\" line\n",-0.125,{}]}"#
        );
        assert_eq!(JsonValue::parse(&text).unwrap(), value);
    }

    #[test]
    fn floats_render_shortest_round_trip() {
        assert_eq!(fmt_num(0.1), "0.1");
        assert_eq!(fmt_num(3.0), "3");
        assert_eq!(fmt_num(-2.0), "-2");
        assert_eq!(fmt_num(f64::NAN), "null");
        // Bit-exactness: whatever we render parses back to the same f64.
        for v in [0.1, 1.0 / 3.0, -17.125, 1.5e300, 9.007_199_254_740_993e15] {
            let s = fmt_num(v);
            assert_eq!(s.parse::<f64>().unwrap(), v, "{s}");
        }
    }

    #[test]
    fn parser_handles_whitespace_escapes_and_unicode() {
        let value = JsonValue::parse(
            " { \"k\" : [ 1 , 2.5e-1 , \"\\u0041\\u00e9\\ud83d\\ude00\" , true ] } ",
        )
        .unwrap();
        let arr = value.get("k").unwrap().as_arr().unwrap();
        assert_eq!(arr[0].as_u64(), Some(1));
        assert_eq!(arr[1].as_f64(), Some(0.25));
        assert_eq!(arr[2].as_str(), Some("Aé😀"));
        assert_eq!(arr[3].as_bool(), Some(true));
    }

    #[test]
    fn parser_rejects_malformed_documents() {
        for (text, needle) in [
            ("", "end of input"),
            ("{", "expected a quoted key"),
            ("{\"a\" 1}", "expected `:`"),
            ("[1 2]", "expected `,` or `]`"),
            ("\"abc", "unterminated string"),
            ("nul", "expected `null`"),
            ("{\"a\":1} trailing", "trailing content"),
            ("\"\\x\"", "unsupported escape"),
            ("1e+", "invalid number"),
        ] {
            let err = JsonValue::parse(text).unwrap_err();
            assert!(err.contains(needle), "`{text}` -> {err}");
        }
    }

    #[test]
    fn accessors_reject_wrong_types() {
        let v = JsonValue::parse(r#"{"n":1.5,"s":"x"}"#).unwrap();
        assert_eq!(v.get("n").unwrap().as_u64(), None);
        assert_eq!(v.get("n").unwrap().as_f64(), Some(1.5));
        assert_eq!(v.get("s").unwrap().as_f64(), None);
        assert_eq!(v.get("missing"), None);
        assert_eq!(JsonValue::Null.get("k"), None);
        assert_eq!(JsonValue::Num(-1.0).as_u64(), None);
    }
}
