//! Crash-recoverable serving state: `ACSOSNAP` snapshots of the policy table.
//!
//! A running daemon accumulates state a restart would otherwise lose: every
//! loaded policy handle, the trained weights behind `acso` handles, and the
//! handle counter that keeps names stable. This module serializes that table
//! into the same versioned, digest-sealed `ACSOSNAP` container the training
//! checkpoints use ([`acso_core::snapshot`]), written atomically into the
//! `--state-dir` directory.
//!
//! What is stored per handle is deliberately small: the reconstruction
//! parameters (scenario, horizon override, DBN fit size, seed) plus — for
//! `acso` — the exact `ACSOWTS` weight bytes. Everything else the daemon
//! derives deterministically: the DBN refit, the topology, the encoder and
//! the network architecture are all functions of those parameters, so a
//! restored handle serves **bit-identical** `evaluate` responses
//! (`crates/serve/tests` pin this). A torn or truncated snapshot fails the
//! container digest and the daemon falls back to a cold start.

use acso_core::snapshot::{
    push_bytes, push_string, push_u64, SectionReader, Snapshot, SnapshotBuilder, SnapshotError,
};

/// File name of the daemon state snapshot inside `--state-dir`.
pub const STATE_FILE: &str = "serve_state.acsosnap";

/// Everything needed to rebuild one policy handle after a restart.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct PolicyRecord {
    /// The versioned handle clients hold (`kind@N`).
    pub handle: String,
    /// Policy kind (`acso`, `dbn_expert`, `playbook`, `semi_random`, `null`).
    pub kind: String,
    /// Display name (matches the offline experiment tables).
    pub name: String,
    /// Artefact format version echoed to clients.
    pub version: u32,
    /// Scenario the policy was loaded against.
    pub scenario: String,
    /// Horizon override from the original `load_policy`, if any.
    pub max_time: Option<u64>,
    /// Random-defender episodes of the DBN fit (refit deterministically).
    pub dbn_episodes: u64,
    /// Seed of the original load (DBN fit, network init).
    pub seed: u64,
    /// `ACSOWTS` weight bytes for `acso` handles; `None` for baselines.
    pub weights: Option<Vec<u8>>,
}

/// The durable slice of an [`crate::service::EvalService`].
#[derive(Debug, Clone, PartialEq, Eq, Default)]
pub struct ServeState {
    /// Handle counter: restored so new handles never collide with old ones.
    pub next_policy_id: u64,
    /// One record per loaded policy, in load order.
    pub policies: Vec<PolicyRecord>,
}

/// Serializes the state into a digest-sealed `ACSOSNAP` container.
pub fn encode(state: &ServeState) -> Vec<u8> {
    let mut meta = Vec::new();
    push_u64(&mut meta, state.next_policy_id);

    let mut policies = Vec::new();
    push_u64(&mut policies, state.policies.len() as u64);
    for p in &state.policies {
        push_string(&mut policies, &p.handle);
        push_string(&mut policies, &p.kind);
        push_string(&mut policies, &p.name);
        policies.extend_from_slice(&p.version.to_le_bytes());
        push_string(&mut policies, &p.scenario);
        match p.max_time {
            Some(t) => {
                policies.push(1);
                push_u64(&mut policies, t);
            }
            None => policies.push(0),
        }
        push_u64(&mut policies, p.dbn_episodes);
        push_u64(&mut policies, p.seed);
        match &p.weights {
            Some(bytes) => {
                policies.push(1);
                push_bytes(&mut policies, bytes);
            }
            None => policies.push(0),
        }
    }

    let mut builder = SnapshotBuilder::new();
    builder.section("meta", meta);
    builder.section("policies", policies);
    builder.finish()
}

/// Parses a container written by [`encode`]. The digest is verified before
/// any field is decoded, so torn writes surface as one typed error.
pub fn decode(bytes: &[u8]) -> Result<ServeState, SnapshotError> {
    let snapshot = Snapshot::parse(bytes)?;

    let mut meta = SectionReader::new(snapshot.section("meta")?);
    let next_policy_id = meta.u64()?;
    meta.finish()?;

    let mut r = SectionReader::new(snapshot.section("policies")?);
    let count = r.u64()? as usize;
    let mut policies = Vec::with_capacity(count);
    for _ in 0..count {
        let handle = r.string()?;
        let kind = r.string()?;
        let name = r.string()?;
        let version = r.u32()?;
        let scenario = r.string()?;
        let max_time = match r.u8()? {
            0 => None,
            1 => Some(r.u64()?),
            other => return Err(SnapshotError::Corrupt(format!("max_time marker {other}"))),
        };
        let dbn_episodes = r.u64()?;
        let seed = r.u64()?;
        let weights = match r.u8()? {
            0 => None,
            1 => Some(r.bytes()?.to_vec()),
            other => return Err(SnapshotError::Corrupt(format!("weights marker {other}"))),
        };
        policies.push(PolicyRecord {
            handle,
            kind,
            name,
            version,
            scenario,
            max_time,
            dbn_episodes,
            seed,
            weights,
        });
    }
    r.finish()?;

    Ok(ServeState {
        next_policy_id,
        policies,
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample() -> ServeState {
        ServeState {
            next_policy_id: 7,
            policies: vec![
                PolicyRecord {
                    handle: "acso@3".into(),
                    kind: "acso".into(),
                    name: "ACSO".into(),
                    version: 1,
                    scenario: "tiny".into(),
                    max_time: Some(120),
                    dbn_episodes: 2,
                    seed: 11,
                    weights: Some(vec![1, 2, 3, 4, 5]),
                },
                PolicyRecord {
                    handle: "playbook@7".into(),
                    kind: "playbook".into(),
                    name: "Playbook".into(),
                    version: 1,
                    scenario: "small".into(),
                    max_time: None,
                    dbn_episodes: 0,
                    seed: 0,
                    weights: None,
                },
            ],
        }
    }

    #[test]
    fn state_round_trips_exactly() {
        let state = sample();
        assert_eq!(decode(&encode(&state)).unwrap(), state);
        let empty = ServeState::default();
        assert_eq!(decode(&encode(&empty)).unwrap(), empty);
    }

    #[test]
    fn truncation_anywhere_is_detected() {
        let bytes = encode(&sample());
        for keep in [0, 10, 24, bytes.len() / 2, bytes.len() - 1] {
            assert!(
                decode(&bytes[..keep]).is_err(),
                "truncation to {keep} bytes must not decode"
            );
        }
    }
}
