//! The `acso-serve` daemon binary: JSONL protocol on stdin/stdout.
//!
//! ```text
//! acso-serve [--lanes N] [--threads N] [--events PATH] [--fixed-time]
//! ```
//!
//! Requests are one JSON object per line on stdin; responses are one JSON
//! object per line on stdout (see `docs/PROTOCOL.md`). The process exits
//! when stdin closes or a `shutdown` request is handled.

use acso_serve::events::{Clock, EventSink};
use acso_serve::server::serve;
use acso_serve::service::{EvalService, ServiceConfig};
use acso_serve::transport::StdioTransport;
use std::io::Write as _;

const USAGE: &str =
    "usage: acso-serve [--lanes N] [--threads N] [--events PATH] [--state-dir DIR] [--fixed-time]

Persistent ACSO evaluation daemon: line-delimited JSON requests on stdin,
one JSON response per line on stdout. See docs/PROTOCOL.md.

options:
  --lanes N       lockstep lanes per inference batch
                  (default: ACSO_SERVE_LANES, ACSO_BATCH, or 8)
  --threads N     worker threads for episode fan-out
                  (default: ACSO_THREADS or available parallelism)
  --events PATH   append a structured JSONL event stream to PATH
  --state-dir DIR crash recovery: `snapshot` requests write the policy table
                  to DIR atomically, and startup reloads it (a corrupt or
                  torn snapshot degrades to a cold start)
  --fixed-time    pin timestamps/durations to zero for deterministic output
  --help          show this help
";

/// Flags that need wiring beyond the [`ServiceConfig`] itself.
#[derive(Debug, Default, PartialEq, Eq)]
struct CliPaths {
    events: Option<String>,
    state_dir: Option<String>,
}

fn parse_args(args: &[String]) -> Result<(ServiceConfig, CliPaths), String> {
    let mut config = ServiceConfig::from_env();
    let mut paths = CliPaths::default();
    let mut iter = args.iter();
    while let Some(arg) = iter.next() {
        match arg.as_str() {
            "--lanes" => {
                config.lanes = iter
                    .next()
                    .and_then(|v| v.parse::<usize>().ok())
                    .filter(|n| *n > 0)
                    .ok_or("--lanes needs a positive integer")?;
            }
            "--threads" => {
                config.threads = iter
                    .next()
                    .and_then(|v| v.parse::<usize>().ok())
                    .filter(|n| *n > 0)
                    .ok_or("--threads needs a positive integer")?;
            }
            "--events" => {
                paths.events = Some(
                    iter.next()
                        .filter(|p| !p.is_empty())
                        .ok_or("--events needs a file path")?
                        .clone(),
                );
            }
            "--state-dir" => {
                paths.state_dir = Some(
                    iter.next()
                        .filter(|p| !p.is_empty())
                        .ok_or("--state-dir needs a directory path")?
                        .clone(),
                );
            }
            "--fixed-time" => config.fixed_time = true,
            "--help" | "-h" => return Err(String::new()),
            other => return Err(format!("unknown argument `{other}`")),
        }
    }
    Ok((config, paths))
}

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let (config, paths) = match parse_args(&args) {
        Ok(parsed) => parsed,
        Err(message) => {
            if message.is_empty() {
                print!("{USAGE}");
                return;
            }
            eprintln!("acso-serve: {message}");
            eprint!("{USAGE}");
            std::process::exit(2);
        }
    };

    let clock = if config.fixed_time {
        Clock::Fixed
    } else {
        Clock::System
    };
    let events = match &paths.events {
        None => EventSink::disabled(),
        Some(path) => match std::fs::File::create(path) {
            Ok(file) => EventSink::to_writer(Box::new(file), clock),
            Err(e) => {
                eprintln!("acso-serve: cannot open events file `{path}`: {e}");
                std::process::exit(2);
            }
        },
    };

    let mut service = EvalService::new(config).with_events(events);
    if let Some(dir) = &paths.state_dir {
        if let Err(e) = std::fs::create_dir_all(dir) {
            eprintln!("acso-serve: cannot create state dir `{dir}`: {e}");
            std::process::exit(2);
        }
        service = service.with_state_dir(dir);
        service.restore_on_start();
    }
    let mut transport = StdioTransport::new();
    let served = serve(&mut service, &mut transport);
    let _ = writeln!(std::io::stderr(), "acso-serve: served {served} requests");
}

#[cfg(test)]
mod tests {
    use super::*;

    fn strings(args: &[&str]) -> Vec<String> {
        args.iter().map(|s| s.to_string()).collect()
    }

    #[test]
    fn args_override_the_environment_defaults() {
        let (config, paths) = parse_args(&strings(&[
            "--lanes",
            "4",
            "--threads",
            "2",
            "--events",
            "/tmp/ev.jsonl",
            "--state-dir",
            "/tmp/acso-state",
            "--fixed-time",
        ]))
        .unwrap();
        assert_eq!(config.lanes, 4);
        assert_eq!(config.threads, 2);
        assert!(config.fixed_time);
        assert_eq!(paths.events.as_deref(), Some("/tmp/ev.jsonl"));
        assert_eq!(paths.state_dir.as_deref(), Some("/tmp/acso-state"));
    }

    #[test]
    fn bad_args_are_rejected() {
        assert!(parse_args(&strings(&["--lanes"])).is_err());
        assert!(parse_args(&strings(&["--lanes", "0"])).is_err());
        assert!(parse_args(&strings(&["--threads", "x"])).is_err());
        assert!(parse_args(&strings(&["--events"])).is_err());
        assert!(parse_args(&strings(&["--state-dir"])).is_err());
        assert!(parse_args(&strings(&["--wat"])).is_err());
        assert_eq!(parse_args(&strings(&["--help"])).unwrap_err(), "");
    }
}
