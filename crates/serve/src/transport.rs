//! How request lines reach the service and response lines leave it.
//!
//! The daemon speaks line-delimited JSON over an abstract [`Transport`] so
//! the protocol layer never touches a socket or a pipe directly: stdio today
//! ([`StdioTransport`]), an in-process channel pair for tests, benchmarks and
//! embedded clients ([`ChannelTransport`]), and room for TCP/HTTP transports
//! later without touching the service.
//!
//! The split between [`Transport::recv`] (blocking) and
//! [`Transport::try_recv`] (non-blocking drain) is what enables request
//! coalescing: the serve loop blocks for one request, then drains everything
//! already queued behind it into the same lockstep evaluation batch.

use std::io::{BufRead, Write};
use std::sync::mpsc::{self, Receiver, Sender, TryRecvError};

/// A bidirectional stream of protocol lines.
pub trait Transport {
    /// Blocks until the next request line arrives; `None` means end of
    /// input (client closed the stream).
    fn recv(&mut self) -> Option<String>;

    /// Returns a request line only if one is already pending; never blocks.
    fn try_recv(&mut self) -> Option<String>;

    /// Sends one response line (without the trailing newline).
    fn send(&mut self, line: &str);
}

/// The stdio transport: requests on stdin, responses on stdout.
///
/// A reader thread pulls stdin lines into a channel so the serve loop can
/// drain already-buffered requests without blocking.
pub struct StdioTransport {
    incoming: Receiver<String>,
    disconnected: bool,
}

impl StdioTransport {
    /// Starts the stdin reader thread and returns the transport.
    pub fn new() -> Self {
        let (tx, rx) = mpsc::channel();
        std::thread::Builder::new()
            .name("acso-serve-stdin".to_string())
            .spawn(move || {
                let stdin = std::io::stdin();
                for line in stdin.lock().lines() {
                    let Ok(line) = line else { break };
                    if tx.send(line).is_err() {
                        break;
                    }
                }
            })
            .expect("spawn stdin reader thread");
        Self {
            incoming: rx,
            disconnected: false,
        }
    }
}

impl Default for StdioTransport {
    fn default() -> Self {
        Self::new()
    }
}

impl Transport for StdioTransport {
    fn recv(&mut self) -> Option<String> {
        if self.disconnected {
            return None;
        }
        match self.incoming.recv() {
            Ok(line) => Some(line),
            Err(_) => {
                self.disconnected = true;
                None
            }
        }
    }

    fn try_recv(&mut self) -> Option<String> {
        if self.disconnected {
            return None;
        }
        match self.incoming.try_recv() {
            Ok(line) => Some(line),
            Err(TryRecvError::Empty) => None,
            Err(TryRecvError::Disconnected) => {
                self.disconnected = true;
                None
            }
        }
    }

    fn send(&mut self, line: &str) {
        let stdout = std::io::stdout();
        let mut out = stdout.lock();
        let _ = out.write_all(line.as_bytes());
        let _ = out.write_all(b"\n");
        let _ = out.flush();
    }
}

/// An in-process transport backed by channels; the server side.
///
/// Built with [`ChannelTransport::pair`], which also returns the matching
/// [`ClientEnd`]. Used by the integration tests, `serve_bench` and
/// `examples/serve_client.rs` to drive the daemon without a subprocess.
pub struct ChannelTransport {
    incoming: Receiver<String>,
    outgoing: Sender<String>,
    disconnected: bool,
}

/// The client side of a [`ChannelTransport`] pair.
pub struct ClientEnd {
    to_server: Sender<String>,
    from_server: Receiver<String>,
}

impl ChannelTransport {
    /// Creates a connected (server transport, client end) pair.
    pub fn pair() -> (ChannelTransport, ClientEnd) {
        let (client_tx, server_rx) = mpsc::channel();
        let (server_tx, client_rx) = mpsc::channel();
        (
            ChannelTransport {
                incoming: server_rx,
                outgoing: server_tx,
                disconnected: false,
            },
            ClientEnd {
                to_server: client_tx,
                from_server: client_rx,
            },
        )
    }
}

impl Transport for ChannelTransport {
    fn recv(&mut self) -> Option<String> {
        if self.disconnected {
            return None;
        }
        match self.incoming.recv() {
            Ok(line) => Some(line),
            Err(_) => {
                self.disconnected = true;
                None
            }
        }
    }

    fn try_recv(&mut self) -> Option<String> {
        if self.disconnected {
            return None;
        }
        match self.incoming.try_recv() {
            Ok(line) => Some(line),
            Err(TryRecvError::Empty) => None,
            Err(TryRecvError::Disconnected) => {
                self.disconnected = true;
                None
            }
        }
    }

    fn send(&mut self, line: &str) {
        let _ = self.outgoing.send(line.to_string());
    }
}

impl ClientEnd {
    /// Queues one request line for the server.
    ///
    /// # Errors
    ///
    /// Returns an error if the server side has hung up.
    pub fn send_line(&self, line: &str) -> Result<(), String> {
        self.to_server
            .send(line.to_string())
            .map_err(|_| "server hung up".to_string())
    }

    /// Blocks for the next response line; `None` when the server has hung
    /// up and drained.
    pub fn recv_line(&self) -> Option<String> {
        self.from_server.recv().ok()
    }

    /// Drops the sending half, signalling end-of-input to the server.
    pub fn close(self) -> Receiver<String> {
        self.from_server
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn channel_pair_round_trips_lines() {
        let (mut server, client) = ChannelTransport::pair();
        client.send_line("req-1").unwrap();
        client.send_line("req-2").unwrap();
        assert_eq!(server.recv().as_deref(), Some("req-1"));
        // The second request is already pending: try_recv sees it.
        assert_eq!(server.try_recv().as_deref(), Some("req-2"));
        assert_eq!(server.try_recv(), None);
        server.send("resp-1");
        assert_eq!(client.recv_line().as_deref(), Some("resp-1"));
    }

    #[test]
    fn closing_the_client_ends_the_stream() {
        let (mut server, client) = ChannelTransport::pair();
        client.send_line("last").unwrap();
        let responses = client.close();
        assert_eq!(server.recv().as_deref(), Some("last"));
        assert_eq!(server.recv(), None);
        assert_eq!(server.recv(), None, "stays disconnected");
        assert_eq!(server.try_recv(), None);
        // The response channel outlives the request channel: the client can
        // still drain answers after signalling end-of-input.
        server.send("late");
        assert_eq!(responses.recv().ok().as_deref(), Some("late"));
        drop(server);
        assert!(responses.recv().is_err());
    }
}
