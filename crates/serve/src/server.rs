//! The serve loop: block for one request, drain whatever is already queued
//! behind it, hand the whole batch to the service, send every response.
//!
//! This drain-then-handle rhythm is the coalescing mechanism: concurrent
//! clients pipelining requests onto the same transport land in one
//! [`crate::service::EvalService::handle_batch`] call, and compatible
//! `evaluate` requests inside it share lockstep inference batches.

use crate::service::{BatchOutcome, EvalService};
use crate::transport::Transport;

/// Runs the service against a transport until the input stream ends or a
/// `shutdown` request is handled. Returns the number of requests served.
pub fn serve(service: &mut EvalService, transport: &mut dyn Transport) -> u64 {
    let mut served = 0u64;
    while let Some(first) = transport.recv() {
        let mut lines = vec![first];
        while let Some(line) = transport.try_recv() {
            lines.push(line);
        }
        served += lines.len() as u64;
        let BatchOutcome {
            responses,
            shutdown,
        } = service.handle_batch(&lines);
        for response in &responses {
            transport.send(response);
        }
        if shutdown {
            break;
        }
    }
    served
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::json::JsonValue;
    use crate::service::ServiceConfig;
    use crate::transport::ChannelTransport;

    #[test]
    fn serve_answers_until_shutdown() {
        let (mut transport, client) = ChannelTransport::pair();
        client
            .send_line(r#"{"id":1,"method":"list_scenarios"}"#)
            .unwrap();
        client.send_line(r#"{"id":2,"method":"metrics"}"#).unwrap();
        client.send_line(r#"{"id":3,"method":"shutdown"}"#).unwrap();
        client
            .send_line(r#"{"id":4,"method":"never_reached"}"#)
            .unwrap();

        let mut service = EvalService::new(ServiceConfig::fixed());
        let served = serve(&mut service, &mut transport);
        // The first recv/drain cycle grabs all four pipelined lines, so the
        // post-shutdown request is still answered before the loop exits.
        assert_eq!(served, 4);
        for expected_id in 1..=4 {
            let line = client.recv_line().expect("response line");
            let v = JsonValue::parse(&line).unwrap();
            assert_eq!(v.get("id").unwrap().as_u64(), Some(expected_id));
        }
    }

    #[test]
    fn serve_stops_at_end_of_input() {
        let (mut transport, client) = ChannelTransport::pair();
        client
            .send_line(r#"{"id":1,"method":"list_scenarios"}"#)
            .unwrap();
        let responses = client.close();
        let mut service = EvalService::new(ServiceConfig::fixed());
        assert_eq!(serve(&mut service, &mut transport), 1);
        assert!(responses.recv().is_ok());
    }
}
