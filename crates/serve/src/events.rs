//! The structured event stream (`--events PATH`) and the daemon's clock.
//!
//! Events are one JSON object per line: `{"event": ..., "ts_ms": ..., ...}`.
//! They exist for operators tailing a file, so they are strictly append-only
//! side-channel output — protocol responses never depend on them.
//!
//! The [`Clock`] abstraction is what makes the PROTOCOL.md transcript replay
//! byte-exact: under `--fixed-time` every timestamp is 0 and every measured
//! duration is 0.0, so metrics and events render identically run after run.

use crate::json::JsonValue;
use std::io::Write;
use std::time::{Instant, SystemTime, UNIX_EPOCH};

/// Where timestamps and durations come from.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Clock {
    /// Real wall-clock time.
    System,
    /// Deterministic time: timestamps are 0 ms, durations are 0 s. Used by
    /// `--fixed-time` and the transcript-replay test.
    Fixed,
}

impl Clock {
    /// Milliseconds since the Unix epoch (0 under [`Clock::Fixed`]).
    pub fn now_ms(&self) -> u64 {
        match self {
            Clock::System => SystemTime::now()
                .duration_since(UNIX_EPOCH)
                .map(|d| d.as_millis() as u64)
                .unwrap_or(0),
            Clock::Fixed => 0,
        }
    }

    /// Starts a stopwatch; [`Clock::elapsed_secs`] reads it.
    pub fn start(&self) -> Instant {
        Instant::now()
    }

    /// Seconds since `start` (0.0 under [`Clock::Fixed`]).
    pub fn elapsed_secs(&self, start: Instant) -> f64 {
        match self {
            Clock::System => start.elapsed().as_secs_f64(),
            Clock::Fixed => 0.0,
        }
    }
}

/// A JSONL event writer; a disabled sink drops events without formatting
/// them.
pub struct EventSink {
    writer: Option<Box<dyn Write + Send>>,
    clock: Clock,
}

impl std::fmt::Debug for EventSink {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("EventSink")
            .field("enabled", &self.writer.is_some())
            .field("clock", &self.clock)
            .finish()
    }
}

impl EventSink {
    /// A sink that drops every event.
    pub fn disabled() -> Self {
        Self {
            writer: None,
            clock: Clock::Fixed,
        }
    }

    /// A sink that appends one JSON line per event to `writer`.
    pub fn to_writer(writer: Box<dyn Write + Send>, clock: Clock) -> Self {
        Self {
            writer: Some(writer),
            clock,
        }
    }

    /// Whether events are being recorded.
    pub fn enabled(&self) -> bool {
        self.writer.is_some()
    }

    /// Emits one event with the given extra fields. Write failures are
    /// swallowed: observability must never take the service down.
    pub fn emit(&mut self, event: &str, fields: &[(&str, JsonValue)]) {
        let Some(writer) = self.writer.as_mut() else {
            return;
        };
        let mut pairs = vec![
            ("event".to_string(), JsonValue::str(event)),
            (
                "ts_ms".to_string(),
                JsonValue::num(self.clock.now_ms() as f64),
            ),
        ];
        for (key, value) in fields {
            pairs.push(((*key).to_string(), value.clone()));
        }
        let mut line = JsonValue::Obj(pairs).to_string();
        line.push('\n');
        let _ = writer.write_all(line.as_bytes());
        let _ = writer.flush();
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::{Arc, Mutex};

    /// A Write sink tests can read back.
    #[derive(Clone, Default)]
    struct SharedBuf(Arc<Mutex<Vec<u8>>>);

    impl Write for SharedBuf {
        fn write(&mut self, buf: &[u8]) -> std::io::Result<usize> {
            self.0.lock().unwrap().extend_from_slice(buf);
            Ok(buf.len())
        }
        fn flush(&mut self) -> std::io::Result<()> {
            Ok(())
        }
    }

    #[test]
    fn fixed_clock_is_deterministic() {
        let clock = Clock::Fixed;
        assert_eq!(clock.now_ms(), 0);
        let start = clock.start();
        assert_eq!(clock.elapsed_secs(start), 0.0);
    }

    #[test]
    fn system_clock_moves() {
        let clock = Clock::System;
        assert!(clock.now_ms() > 0);
        let start = clock.start();
        assert!(clock.elapsed_secs(start) >= 0.0);
    }

    #[test]
    fn events_render_one_json_line_each() {
        let buf = SharedBuf::default();
        let mut sink = EventSink::to_writer(Box::new(buf.clone()), Clock::Fixed);
        assert!(sink.enabled());
        sink.emit("request_accepted", &[("method", JsonValue::str("metrics"))]);
        sink.emit("shutdown", &[]);
        let text = String::from_utf8(buf.0.lock().unwrap().clone()).unwrap();
        assert_eq!(
            text,
            "{\"event\":\"request_accepted\",\"ts_ms\":0,\"method\":\"metrics\"}\n\
             {\"event\":\"shutdown\",\"ts_ms\":0}\n"
        );
    }

    #[test]
    fn disabled_sink_drops_events() {
        let mut sink = EventSink::disabled();
        assert!(!sink.enabled());
        sink.emit("ignored", &[]);
    }
}
