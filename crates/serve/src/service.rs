//! The protocol brain: parse requests, coalesce evaluations, answer.
//!
//! [`EvalService`] owns everything warm: the scenario registry (built once),
//! every loaded policy (trained networks and DBN models stay resident), the
//! lockstep [`SyncBatchEngine`], and the metrics/event registries. The serve
//! loop hands it whole *batches* of request lines
//! ([`EvalService::handle_batch`]): every `evaluate` in a batch that targets
//! the same policy, scenario and horizon is flattened into one
//! [`SyncBatchEngine::rollout_many`] call, so concurrent clients share
//! lockstep inference batches instead of running back to back. Per-lane
//! independence in the engine guarantees each request's transcripts are
//! bit-identical to running it alone — coalescing changes throughput, never
//! results.
//!
//! See `docs/PROTOCOL.md` for the complete request/response reference; its
//! worked transcript is replayed byte-for-byte against this module by
//! `tests/serve_protocol.rs`.

use crate::events::{Clock, EventSink};
use crate::json::JsonValue;
use crate::metrics::ServeMetrics;
use crate::state::{self, PolicyRecord, ServeState, STATE_FILE};
use acso_core::agent::io::{self as weights_io, FORMAT_VERSION};
use acso_core::agent::{AcsoAgent, AgentConfig, AttentionQNet};
use acso_core::baselines::{DbnExpertPolicy, PlaybookPolicy, SemiRandomPolicy};
use acso_core::experiments::{prepare, ExperimentScale};
use acso_core::policy::NullPolicy;
use acso_core::snapshot as core_snapshot;
use acso_core::train::{TrainReport, TrainedAcso};
use acso_core::{ActionSpace, DefenderPolicy, RolloutPlan, ScenarioRegistry, SyncBatchEngine};
use dbn::learn::{learn_model, LearnConfig};
use dbn::DbnModel;
use ics_sim::metrics::{EpisodeMetrics, EvaluationSummary, MeanStdErr};
use ics_sim::{IcsEnvironment, SimConfig};
use std::path::PathBuf;

/// Environment variable overriding the daemon's lockstep lane width. Falls
/// back to `ACSO_BATCH`, then to the machine-derived width (detected cores
/// clamped to `DEFAULT_LANES..=MAX_AUTO_LANES`).
pub const SERVE_LANES_ENV_VAR: &str = "ACSO_SERVE_LANES";

/// Smallest lane width the daemon autoscales to, and the width the pinned
/// [`ServiceConfig::fixed`] transcript configuration runs with.
pub const DEFAULT_LANES: usize = 8;

/// How the service runs: lane width, rollout threads, and whether time is
/// pinned for byte-deterministic output.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ServiceConfig {
    /// Lockstep lanes per inference batch (`ACSO_SERVE_LANES`).
    pub lanes: usize,
    /// Worker threads for episode fan-out within a batch.
    pub threads: usize,
    /// Pin the clock: timestamps 0, durations 0 (the `--fixed-time` flag).
    pub fixed_time: bool,
}

impl ServiceConfig {
    /// Reads `ACSO_SERVE_LANES` / `ACSO_BATCH` / `ACSO_THREADS`; with no
    /// lane override set, the lane width autoscales to the machine (detected
    /// cores clamped to `DEFAULT_LANES..=MAX_AUTO_LANES`). Lane width never
    /// affects a response transcript — the lockstep engine is pinned
    /// bit-identical for every width — so autoscaling is purely throughput.
    pub fn from_env() -> Self {
        let lanes = std::env::var(SERVE_LANES_ENV_VAR)
            .ok()
            .and_then(|v| v.trim().parse::<usize>().ok())
            .filter(|n| *n > 0)
            .or_else(acso_runtime::batch_lanes)
            .unwrap_or_else(|| {
                acso_runtime::detected_cores().clamp(DEFAULT_LANES, acso_runtime::MAX_AUTO_LANES)
            });
        Self {
            lanes,
            threads: acso_runtime::available_threads(),
            fixed_time: false,
        }
    }

    /// The configuration the transcript-replay test and the PROTOCOL.md
    /// worked transcript both run under: default lanes, one worker thread,
    /// fixed time. Every field is pinned so responses are byte-stable.
    pub fn fixed() -> Self {
        Self {
            lanes: DEFAULT_LANES,
            threads: 1,
            fixed_time: true,
        }
    }
}

/// The outcome of one request batch.
#[derive(Debug)]
pub struct BatchOutcome {
    /// One response line per request line, in arrival order.
    pub responses: Vec<String>,
    /// Whether a `shutdown` request was in the batch (the loop exits after
    /// sending every response).
    pub shutdown: bool,
}

/// What a loaded policy handle points at. Trained artefacts stay warm here
/// for the life of the daemon — that is the point of serving.
enum PolicyStock {
    /// A trained ACSO (attention Q-net + DBN filter).
    Acso(Box<TrainedAcso>),
    /// The DBN-expert baseline around a learned model.
    DbnExpert(DbnModel),
    /// The playbook baseline.
    Playbook,
    /// The semi-random baseline.
    SemiRandom,
    /// The no-defense policy.
    Null,
}

impl PolicyStock {
    fn make(&self) -> Box<dyn DefenderPolicy> {
        match self {
            PolicyStock::Acso(t) => Box::new(t.agent.eval_clone()),
            PolicyStock::DbnExpert(model) => Box::new(DbnExpertPolicy::new(model.clone())),
            PolicyStock::Playbook => Box::new(PlaybookPolicy::new()),
            PolicyStock::SemiRandom => Box::new(SemiRandomPolicy::new()),
            PolicyStock::Null => Box::new(NullPolicy::new()),
        }
    }
}

/// One versioned policy handle, together with the parameters a state
/// snapshot needs to rebuild it deterministically after a restart.
struct LoadedPolicy {
    handle: String,
    kind: String,
    /// Display name (matches the offline experiment tables).
    name: String,
    version: u32,
    scenario: String,
    /// Horizon override of the original `load_policy`, if any.
    max_time: Option<u64>,
    /// DBN fit size of the original load (refit deterministically on restore).
    dbn_episodes: u64,
    /// Seed of the original load (DBN fit, network init).
    seed: u64,
    stock: PolicyStock,
}

/// A parsed request envelope.
struct Request {
    id: JsonValue,
    method: String,
    params: JsonValue,
}

/// An `evaluate` request after validation, ready to coalesce.
struct EvaluateJob {
    slot: usize,
    id: JsonValue,
    policy_index: usize,
    scenario: String,
    sim: SimConfig,
    episodes: usize,
    seed: u64,
    max_time: Option<u64>,
    transcripts: bool,
}

/// The persistent evaluation service.
///
/// # Example
///
/// Coalescing: a batch of request lines is answered together, and
/// same-shaped evaluations share one lockstep run (the `batch` block in
/// each response reports how many requests were flattened in):
///
/// ```
/// use acso_serve::service::{EvalService, ServiceConfig};
///
/// let mut service = EvalService::new(ServiceConfig::fixed());
/// let outcome = service.handle_batch(&[
///     r#"{"id":1,"method":"load_policy","params":{"policy":"null"}}"#.to_string(),
///     r#"{"id":2,"method":"evaluate","params":{"handle":"null@1","scenario":"tiny","episodes":2,"max_time":60}}"#.to_string(),
///     r#"{"id":3,"method":"evaluate","params":{"handle":"null@1","scenario":"tiny","episodes":2,"max_time":60,"seed":9}}"#.to_string(),
/// ]);
/// assert_eq!(outcome.responses.len(), 3);
/// assert!(!outcome.shutdown);
/// // Both evaluations rode the same lockstep run.
/// assert!(outcome.responses[1].contains(r#""coalesced_requests":2"#));
/// assert!(outcome.responses[2].contains(r#""coalesced_requests":2"#));
/// ```
pub struct EvalService {
    config: ServiceConfig,
    clock: Clock,
    registry: ScenarioRegistry,
    engine: SyncBatchEngine,
    policies: Vec<LoadedPolicy>,
    next_policy_id: u64,
    metrics: ServeMetrics,
    events: EventSink,
    /// Where the crash-recovery snapshot lives (the `--state-dir` flag).
    state_path: Option<PathBuf>,
}

fn jobj(pairs: Vec<(&str, JsonValue)>) -> JsonValue {
    JsonValue::Obj(pairs.into_iter().map(|(k, v)| (k.to_string(), v)).collect())
}

fn mean_std_err_json(m: &MeanStdErr) -> JsonValue {
    jobj(vec![
        ("mean", JsonValue::num(m.mean)),
        ("std_err", JsonValue::num(m.std_err)),
    ])
}

fn summary_json(s: &EvaluationSummary) -> JsonValue {
    jobj(vec![
        ("episodes", JsonValue::num(s.episodes as f64)),
        ("discounted_return", mean_std_err_json(&s.discounted_return)),
        (
            "final_plcs_offline",
            mean_std_err_json(&s.final_plcs_offline),
        ),
        ("average_it_cost", mean_std_err_json(&s.average_it_cost)),
        (
            "average_nodes_compromised",
            mean_std_err_json(&s.average_nodes_compromised),
        ),
    ])
}

fn transcript_json(episodes: &[EpisodeMetrics]) -> JsonValue {
    JsonValue::Arr(
        episodes
            .iter()
            .enumerate()
            .map(|(i, e)| {
                jobj(vec![
                    ("episode", JsonValue::num(i as f64)),
                    ("discounted_return", JsonValue::num(e.discounted_return)),
                    ("undiscounted_return", JsonValue::num(e.undiscounted_return)),
                    (
                        "final_plcs_offline",
                        JsonValue::num(e.final_plcs_offline as f64),
                    ),
                    (
                        "max_plcs_offline",
                        JsonValue::num(e.max_plcs_offline() as f64),
                    ),
                    ("steps", JsonValue::num(e.steps as f64)),
                    ("average_it_cost", JsonValue::num(e.average_it_cost())),
                    (
                        "average_nodes_compromised",
                        JsonValue::num(e.average_nodes_compromised()),
                    ),
                ])
            })
            .collect(),
    )
}

fn ok_value(id: &JsonValue, result: JsonValue) -> JsonValue {
    jobj(vec![
        ("id", id.clone()),
        ("ok", JsonValue::Bool(true)),
        ("result", result),
    ])
}

impl EvalService {
    /// Builds the service: scenario registry constructed once, engine sized
    /// to the configured lane width, no event stream.
    pub fn new(config: ServiceConfig) -> Self {
        let clock = if config.fixed_time {
            Clock::Fixed
        } else {
            Clock::System
        };
        let engine = SyncBatchEngine::new(config.lanes);
        Self {
            config,
            clock,
            registry: ScenarioRegistry::builtin(),
            engine,
            policies: Vec::new(),
            next_policy_id: 0,
            metrics: ServeMetrics::new(),
            events: EventSink::disabled(),
            state_path: None,
        }
    }

    /// Attaches a structured event stream (the `--events PATH` flag).
    pub fn with_events(mut self, events: EventSink) -> Self {
        self.events = events;
        self
    }

    /// Enables crash recovery (the `--state-dir DIR` flag): `snapshot`
    /// requests write the policy table to `DIR/serve_state.acsosnap` and
    /// [`EvalService::restore_on_start`] reloads it after a restart.
    pub fn with_state_dir(mut self, dir: impl Into<PathBuf>) -> Self {
        self.state_path = Some(dir.into().join(STATE_FILE));
        self
    }

    /// The service configuration in effect.
    pub fn config(&self) -> &ServiceConfig {
        &self.config
    }

    /// Read-only access to the metrics registry (benchmarks assert on the
    /// batch-fill counters here).
    pub fn metrics(&self) -> &ServeMetrics {
        &self.metrics
    }

    /// Handles a single request line (a batch of one).
    pub fn handle_line(&mut self, line: &str) -> String {
        let mut outcome = self.handle_batch(std::slice::from_ref(&line.to_string()));
        outcome.responses.pop().expect("one response per request")
    }

    /// Handles a batch of request lines, coalescing compatible `evaluate`
    /// requests into shared lockstep batches. Returns one response line per
    /// request, in arrival order.
    ///
    /// Non-`evaluate` requests are answered in arrival order first (so an
    /// `evaluate` may reference a handle from a `load_policy` earlier in the
    /// same batch), then every `evaluate` runs; a `shutdown` anywhere in the
    /// batch takes effect only after the whole batch is answered.
    pub fn handle_batch(&mut self, lines: &[String]) -> BatchOutcome {
        let started = self.clock.start();
        let mut slots: Vec<Option<JsonValue>> = vec![None; lines.len()];
        let mut evaluates: Vec<EvaluateJob> = Vec::new();
        let mut shutdown = false;

        for (slot, line) in lines.iter().enumerate() {
            match self.parse_request(line) {
                Err(response) => slots[slot] = Some(response),
                Ok(request) => {
                    self.metrics.requests.add(&request.method, 1);
                    self.events.emit(
                        "request_accepted",
                        &[
                            ("id", request.id.clone()),
                            ("method", JsonValue::str(&request.method)),
                        ],
                    );
                    match request.method.as_str() {
                        "list_scenarios" => {
                            slots[slot] = Some(self.list_scenarios(&request));
                        }
                        "load_policy" => {
                            slots[slot] = Some(self.load_policy(&request));
                        }
                        "metrics" => {
                            slots[slot] = Some(self.metrics_snapshot(&request));
                        }
                        "snapshot" => {
                            slots[slot] = Some(self.snapshot_request(&request));
                        }
                        "restore" => {
                            slots[slot] = Some(self.restore_request(&request));
                        }
                        "shutdown" => {
                            shutdown = true;
                            self.events.emit("shutdown", &[]);
                            slots[slot] = Some(ok_value(
                                &request.id,
                                jobj(vec![("stopping", JsonValue::Bool(true))]),
                            ));
                        }
                        "evaluate" => match self.parse_evaluate(slot, &request) {
                            Ok(job) => evaluates.push(job),
                            Err(response) => slots[slot] = Some(response),
                        },
                        other => {
                            slots[slot] = Some(self.fail(
                                &request.id,
                                "unknown_method",
                                &format!("unknown method `{other}`"),
                            ));
                        }
                    }
                }
            }
        }

        self.run_evaluates(&mut slots, evaluates);

        let elapsed = self.clock.elapsed_secs(started);
        let duration_ms = elapsed * 1_000.0;
        let mut responses = Vec::with_capacity(lines.len());
        for slot in slots {
            let value = slot.expect("every request slot is answered");
            self.metrics.request_latency.observe(elapsed);
            self.events.emit(
                "request_completed",
                &[
                    ("id", value.get("id").cloned().unwrap_or(JsonValue::Null)),
                    ("ok", value.get("ok").cloned().unwrap_or(JsonValue::Null)),
                    ("duration_ms", JsonValue::num(duration_ms)),
                ],
            );
            responses.push(value.to_string());
        }
        BatchOutcome {
            responses,
            shutdown,
        }
    }

    /// Builds an error response and records it in metrics and events.
    fn fail(&mut self, id: &JsonValue, code: &str, message: &str) -> JsonValue {
        self.metrics.errors.add(code, 1);
        self.events.emit(
            "error",
            &[
                ("id", id.clone()),
                ("code", JsonValue::str(code)),
                ("message", JsonValue::str(message)),
            ],
        );
        jobj(vec![
            ("id", id.clone()),
            ("ok", JsonValue::Bool(false)),
            (
                "error",
                jobj(vec![
                    ("code", JsonValue::str(code)),
                    ("message", JsonValue::str(message)),
                ]),
            ),
        ])
    }

    fn parse_request(&mut self, line: &str) -> Result<Request, JsonValue> {
        let value = match JsonValue::parse(line) {
            Ok(v) => v,
            Err(e) => {
                self.metrics.requests.add("invalid", 1);
                return Err(self.fail(&JsonValue::Null, "parse_error", &e));
            }
        };
        let id = value.get("id").cloned().unwrap_or(JsonValue::Null);
        if value.as_obj().is_none() {
            self.metrics.requests.add("invalid", 1);
            return Err(self.fail(&id, "invalid_request", "request must be a JSON object"));
        }
        let Some(method) = value.get("method").and_then(|m| m.as_str()) else {
            self.metrics.requests.add("invalid", 1);
            return Err(self.fail(
                &id,
                "invalid_request",
                "request needs a string `method` field",
            ));
        };
        let params = value
            .get("params")
            .cloned()
            .unwrap_or(JsonValue::Obj(Vec::new()));
        if params.as_obj().is_none() {
            self.metrics.requests.add("invalid", 1);
            return Err(self.fail(&id, "invalid_request", "`params` must be an object"));
        }
        Ok(Request {
            id,
            method: method.to_string(),
            params,
        })
    }

    fn list_scenarios(&mut self, request: &Request) -> JsonValue {
        let scenarios = JsonValue::Arr(
            self.registry
                .iter()
                .map(|s| {
                    jobj(vec![
                        ("name", JsonValue::str(&s.name)),
                        ("description", JsonValue::str(&s.description)),
                        (
                            "tags",
                            JsonValue::Arr(s.tags.iter().map(JsonValue::str).collect()),
                        ),
                    ])
                })
                .collect(),
        );
        ok_value(&request.id, jobj(vec![("scenarios", scenarios)]))
    }

    /// Resolves a scenario name + optional horizon override into the
    /// simulator configuration an evaluation or training run uses.
    fn resolve_sim(
        &mut self,
        id: &JsonValue,
        scenario: &str,
        max_time: Option<u64>,
    ) -> Result<SimConfig, JsonValue> {
        let Some(found) = self.registry.get(scenario) else {
            return Err(self.fail(
                id,
                "unknown_scenario",
                &format!("unknown scenario `{scenario}`"),
            ));
        };
        let mut sim = found.config.clone();
        if let Some(max_time) = max_time {
            sim = sim.with_max_time(max_time);
        }
        Ok(sim)
    }

    fn load_policy(&mut self, request: &Request) -> JsonValue {
        let params = &request.params;
        let Some(kind) = params.get("policy").and_then(|p| p.as_str()) else {
            return self.fail(
                &request.id,
                "invalid_params",
                "`policy` must be one of acso, dbn_expert, playbook, semi_random, null",
            );
        };
        let kind = kind.to_string();
        let scenario = params
            .get("scenario")
            .and_then(|s| s.as_str())
            .unwrap_or("tiny")
            .to_string();
        let max_time = params.get("max_time").and_then(|v| v.as_u64());
        let train_episodes = params
            .get("train_episodes")
            .and_then(|v| v.as_u64())
            .unwrap_or(1) as usize;
        let dbn_episodes = params
            .get("dbn_episodes")
            .and_then(|v| v.as_u64())
            .unwrap_or(2) as usize;
        let seed = params.get("seed").and_then(|v| v.as_u64()).unwrap_or(0);
        let weights = params
            .get("weights")
            .and_then(|w| w.as_str())
            .map(str::to_string);

        let sim = match self.resolve_sim(&request.id, &scenario, max_time) {
            Ok(sim) => sim,
            Err(response) => return response,
        };

        let (stock, name, version) = match kind.as_str() {
            "acso" => {
                let trained = match weights {
                    None => {
                        // Same path the offline experiments take
                        // (`experiments::prepare`), so a daemon-loaded agent
                        // is bit-identical to a sweep-trained one.
                        let ctx = prepare(ExperimentScale {
                            eval_sim: sim.clone(),
                            train_sim: sim,
                            eval_episodes: 0,
                            train_episodes,
                            dbn_episodes,
                            seed,
                        });
                        ctx.trained
                    }
                    Some(path) => match self.load_acso_weights(&sim, dbn_episodes, seed, &path) {
                        Ok(trained) => trained,
                        Err(message) => return self.fail(&request.id, "weights_error", &message),
                    },
                };
                (PolicyStock::Acso(Box::new(trained)), "ACSO", FORMAT_VERSION)
            }
            "dbn_expert" => {
                let model = learn_model(&LearnConfig {
                    episodes: dbn_episodes,
                    seed,
                    sim,
                });
                (PolicyStock::DbnExpert(model), "DBN Expert", 1)
            }
            "playbook" => (PolicyStock::Playbook, "Playbook", 1),
            "semi_random" => (PolicyStock::SemiRandom, "Semi Random", 1),
            "null" => (PolicyStock::Null, "No defense", 1),
            other => {
                return self.fail(
                    &request.id,
                    "unknown_policy_kind",
                    &format!("unknown policy kind `{other}`"),
                );
            }
        };

        self.next_policy_id += 1;
        let handle = format!("{kind}@{}", self.next_policy_id);
        self.policies.push(LoadedPolicy {
            handle: handle.clone(),
            kind: kind.clone(),
            name: name.to_string(),
            version,
            scenario: scenario.clone(),
            max_time,
            dbn_episodes: dbn_episodes as u64,
            seed,
            stock,
        });
        self.metrics.policies_loaded = self.policies.len() as u64;
        let loaded = self.policies.last().expect("just pushed");
        let event_fields = [
            ("handle", JsonValue::str(&loaded.handle)),
            ("kind", JsonValue::str(&loaded.kind)),
            ("scenario", JsonValue::str(&loaded.scenario)),
        ];
        self.events.emit("policy_loaded", &event_fields);

        ok_value(
            &request.id,
            jobj(vec![
                ("handle", JsonValue::str(handle)),
                ("policy", JsonValue::str(name)),
                ("kind", JsonValue::str(kind)),
                ("version", JsonValue::num(f64::from(version))),
                ("scenario", JsonValue::str(scenario)),
            ]),
        )
    }

    /// Builds an ACSO from saved weights instead of training: the DBN is
    /// learned (cheap), the attention Q-net is constructed for the
    /// scenario's topology and its parameters restored from `path`.
    fn load_acso_weights(
        &self,
        sim: &SimConfig,
        dbn_episodes: usize,
        seed: u64,
        path: &str,
    ) -> Result<TrainedAcso, String> {
        let model = learn_model(&LearnConfig {
            episodes: dbn_episodes,
            seed,
            sim: sim.clone(),
        });
        let env = IcsEnvironment::new(sim.clone());
        let space = ActionSpace::new(env.topology());
        let mut network = AttentionQNet::new(space, seed);
        acso_core::agent::io::load_weights(&mut network, path)
            .map_err(|e| format!("cannot load weights from `{path}`: {e}"))?;
        let mut agent = AcsoAgent::new(
            env.topology(),
            model.clone(),
            network,
            AgentConfig {
                seed,
                ..AgentConfig::smoke()
            },
        );
        agent.set_explore(false);
        Ok(TrainedAcso {
            agent,
            dbn_model: model,
            report: TrainReport::default(),
        })
    }

    fn parse_evaluate(&mut self, slot: usize, request: &Request) -> Result<EvaluateJob, JsonValue> {
        let params = &request.params;
        let Some(handle) = params.get("handle").and_then(|h| h.as_str()) else {
            return Err(self.fail(
                &request.id,
                "invalid_params",
                "`handle` must be a policy handle from load_policy",
            ));
        };
        let handle = handle.to_string();
        let Some(policy_index) = self.policies.iter().position(|p| p.handle == handle) else {
            return Err(self.fail(
                &request.id,
                "unknown_handle",
                &format!("unknown policy handle `{handle}`"),
            ));
        };
        let Some(scenario) = params.get("scenario").and_then(|s| s.as_str()) else {
            return Err(self.fail(
                &request.id,
                "invalid_params",
                "`scenario` must be a scenario name from list_scenarios",
            ));
        };
        let scenario = scenario.to_string();
        let Some(episodes) = params.get("episodes").and_then(|e| e.as_u64()) else {
            return Err(self.fail(
                &request.id,
                "invalid_params",
                "`episodes` must be a positive integer",
            ));
        };
        if episodes == 0 {
            return Err(self.fail(
                &request.id,
                "invalid_params",
                "`episodes` must be a positive integer",
            ));
        }
        let seed = params.get("seed").and_then(|v| v.as_u64()).unwrap_or(0);
        let max_time = params.get("max_time").and_then(|v| v.as_u64());
        let transcripts = params
            .get("transcripts")
            .and_then(|t| t.as_bool())
            .unwrap_or(false);
        let sim = self.resolve_sim(&request.id, &scenario, max_time)?;
        Ok(EvaluateJob {
            slot,
            id: request.id.clone(),
            policy_index,
            scenario,
            sim,
            episodes: episodes as usize,
            seed,
            max_time,
            transcripts,
        })
    }

    /// Runs every `evaluate` of a batch. Jobs sharing (policy, scenario,
    /// horizon) — and therefore an identical simulator and topology — are
    /// coalesced into one [`SyncBatchEngine::rollout_many`] call so their
    /// episodes share lockstep inference batches.
    fn run_evaluates(&mut self, slots: &mut [Option<JsonValue>], jobs: Vec<EvaluateJob>) {
        let mut groups: Vec<Vec<EvaluateJob>> = Vec::new();
        for job in jobs {
            let key = |j: &EvaluateJob| (j.policy_index, j.scenario.clone(), j.max_time);
            match groups.iter_mut().find(|g| key(&g[0]) == key(&job)) {
                Some(group) => group.push(job),
                None => groups.push(vec![job]),
            }
        }

        for group in groups {
            let started = self.clock.start();
            let plans: Vec<RolloutPlan> = group
                .iter()
                .map(|j| {
                    RolloutPlan::new(j.sim.clone(), j.episodes, j.seed)
                        .with_threads(self.config.threads)
                })
                .collect();
            let stock = &self.policies[group[0].policy_index].stock;
            let (results, stats) = self.engine.rollout_many(&plans, &|| stock.make());

            let elapsed = self.clock.elapsed_secs(started);
            let total_episodes: usize = results.iter().map(Vec::len).sum();
            let total_steps: u64 = results.iter().flat_map(|r| r.iter().map(|e| e.steps)).sum();
            let fill_ratio = stats.batch.fill_ratio();
            let utilization = stats.pool.utilization();

            self.metrics.episodes_total += total_episodes as u64;
            self.metrics.steps_total += total_steps;
            self.metrics.batch_rounds_total += stats.batch.rounds;
            self.metrics.batch_filled_slots_total += stats.batch.filled_slots;
            self.metrics.batch_capacity_slots_total += stats.batch.capacity_slots;
            self.metrics.last_batch_fill_ratio = fill_ratio;
            self.metrics.last_engine_utilization = utilization;
            self.metrics.last_episodes_per_sec = if elapsed > 0.0 {
                total_episodes as f64 / elapsed
            } else {
                0.0
            };
            self.events.emit(
                "evaluate_batch",
                &[
                    ("requests", JsonValue::num(group.len() as f64)),
                    ("episodes", JsonValue::num(total_episodes as f64)),
                    ("fill_ratio", JsonValue::num(fill_ratio)),
                ],
            );
            self.events.emit(
                "episodes_done",
                &[("total", JsonValue::num(self.metrics.episodes_total as f64))],
            );

            let coalesced = group.len();
            for (job, episodes) in group.into_iter().zip(results) {
                let policy = &self.policies[job.policy_index];
                let summary = EvaluationSummary::from_episodes(&episodes);
                let mut result = vec![
                    ("policy", JsonValue::str(&policy.name)),
                    ("handle", JsonValue::str(&policy.handle)),
                    ("version", JsonValue::num(f64::from(policy.version))),
                    ("scenario", JsonValue::str(&job.scenario)),
                    ("episodes", JsonValue::num(episodes.len() as f64)),
                    ("seed", JsonValue::num(job.seed as f64)),
                    ("summary", summary_json(&summary)),
                    (
                        "batch",
                        jobj(vec![
                            ("lanes", JsonValue::num(self.engine.lanes() as f64)),
                            ("rounds", JsonValue::num(stats.batch.rounds as f64)),
                            ("fill_ratio", JsonValue::num(fill_ratio)),
                            ("coalesced_requests", JsonValue::num(coalesced as f64)),
                        ]),
                    ),
                ];
                if job.transcripts {
                    result.push(("transcripts", transcript_json(&episodes)));
                }
                slots[job.slot] = Some(ok_value(&job.id, jobj(result)));
            }
        }
    }

    /// Captures the durable slice of the service: every policy handle with
    /// its reconstruction parameters, plus the exact weight bytes behind
    /// `acso` handles.
    fn capture_state(&mut self) -> ServeState {
        let mut records = Vec::with_capacity(self.policies.len());
        for policy in self.policies.iter_mut() {
            let weights = match &mut policy.stock {
                PolicyStock::Acso(trained) => {
                    let mut bytes = Vec::new();
                    weights_io::save_weights_to(trained.agent.network_mut(), &mut bytes)
                        .expect("writing weights to a Vec cannot fail");
                    Some(bytes)
                }
                _ => None,
            };
            records.push(PolicyRecord {
                handle: policy.handle.clone(),
                kind: policy.kind.clone(),
                name: policy.name.clone(),
                version: policy.version,
                scenario: policy.scenario.clone(),
                max_time: policy.max_time,
                dbn_episodes: policy.dbn_episodes,
                seed: policy.seed,
                weights,
            });
        }
        ServeState {
            next_policy_id: self.next_policy_id,
            policies: records,
        }
    }

    /// Rebuilds one policy handle from its snapshot record. Everything not
    /// stored verbatim (the DBN model, topology, network architecture) is a
    /// deterministic function of the stored parameters, so the rebuilt handle
    /// serves bit-identical responses.
    fn rebuild_policy(
        registry: &ScenarioRegistry,
        record: &PolicyRecord,
    ) -> Result<LoadedPolicy, String> {
        let Some(found) = registry.get(&record.scenario) else {
            return Err(format!(
                "snapshot references unknown scenario `{}`",
                record.scenario
            ));
        };
        let mut sim = found.config.clone();
        if let Some(max_time) = record.max_time {
            sim = sim.with_max_time(max_time);
        }
        let stock = match record.kind.as_str() {
            "acso" => {
                let Some(weights) = &record.weights else {
                    return Err(format!(
                        "snapshot record `{}` has no weight bytes",
                        record.handle
                    ));
                };
                let model = learn_model(&LearnConfig {
                    episodes: record.dbn_episodes as usize,
                    seed: record.seed,
                    sim: sim.clone(),
                });
                let env = IcsEnvironment::new(sim);
                let space = ActionSpace::new(env.topology());
                let mut network = AttentionQNet::new(space, record.seed);
                weights_io::load_weights_from(&mut network, &mut weights.as_slice())
                    .map_err(|e| format!("snapshot record `{}`: {e}", record.handle))?;
                let mut agent = AcsoAgent::new(
                    env.topology(),
                    model.clone(),
                    network,
                    AgentConfig {
                        seed: record.seed,
                        ..AgentConfig::smoke()
                    },
                );
                agent.set_explore(false);
                PolicyStock::Acso(Box::new(TrainedAcso {
                    agent,
                    dbn_model: model,
                    report: TrainReport::default(),
                }))
            }
            "dbn_expert" => PolicyStock::DbnExpert(learn_model(&LearnConfig {
                episodes: record.dbn_episodes as usize,
                seed: record.seed,
                sim,
            })),
            "playbook" => PolicyStock::Playbook,
            "semi_random" => PolicyStock::SemiRandom,
            "null" => PolicyStock::Null,
            other => {
                return Err(format!("snapshot references unknown policy kind `{other}`"));
            }
        };
        Ok(LoadedPolicy {
            handle: record.handle.clone(),
            kind: record.kind.clone(),
            name: record.name.clone(),
            version: record.version,
            scenario: record.scenario.clone(),
            max_time: record.max_time,
            dbn_episodes: record.dbn_episodes,
            seed: record.seed,
            stock,
        })
    }

    /// Writes the state snapshot atomically into the configured state dir.
    ///
    /// # Errors
    ///
    /// Fails when no `--state-dir` is configured or the write itself fails.
    pub fn write_state_snapshot(&mut self) -> Result<(PathBuf, usize), String> {
        let Some(path) = self.state_path.clone() else {
            return Err("no --state-dir configured".to_string());
        };
        let state = self.capture_state();
        let bytes = state::encode(&state);
        core_snapshot::write_atomic(&path, &bytes)
            .map_err(|e| format!("cannot write snapshot `{}`: {e}", path.display()))?;
        self.events.emit(
            "snapshot_written",
            &[
                ("path", JsonValue::str(path.display().to_string())),
                ("bytes", JsonValue::num(bytes.len() as f64)),
                ("policies", JsonValue::num(state.policies.len() as f64)),
            ],
        );
        Ok((path, state.policies.len()))
    }

    /// Replaces the policy table with the snapshot in the state dir.
    ///
    /// All-or-nothing: every record is rebuilt before the live table is
    /// touched, so a corrupt snapshot (torn write, unknown scenario, bad
    /// weights) leaves the service exactly as it was.
    ///
    /// # Errors
    ///
    /// Fails when no `--state-dir` is configured, the snapshot is missing or
    /// fails its digest, or any record cannot be rebuilt.
    pub fn restore_state_snapshot(&mut self) -> Result<usize, String> {
        let Some(path) = self.state_path.clone() else {
            return Err("no --state-dir configured".to_string());
        };
        let bytes = std::fs::read(&path)
            .map_err(|e| format!("cannot read snapshot `{}`: {e}", path.display()))?;
        let state = state::decode(&bytes).map_err(|e| e.to_string())?;
        let mut policies = Vec::with_capacity(state.policies.len());
        for record in &state.policies {
            policies.push(Self::rebuild_policy(&self.registry, record)?);
        }
        let restored = policies.len();
        self.policies = policies;
        self.next_policy_id = state.next_policy_id;
        self.metrics.policies_loaded = restored as u64;
        self.events.emit(
            "snapshot_restored",
            &[
                ("path", JsonValue::str(path.display().to_string())),
                ("policies", JsonValue::num(restored as f64)),
            ],
        );
        Ok(restored)
    }

    /// Startup crash recovery: reload the state snapshot if one exists.
    /// Degrades gracefully — a missing snapshot is a normal first boot, and a
    /// corrupt one emits a `snapshot_corrupt` event and falls back to a cold
    /// start instead of refusing to serve.
    pub fn restore_on_start(&mut self) {
        let Some(path) = self.state_path.clone() else {
            return;
        };
        if !path.exists() {
            return;
        }
        if let Err(message) = self.restore_state_snapshot() {
            self.events
                .emit("snapshot_corrupt", &[("message", JsonValue::str(&message))]);
        }
    }

    fn snapshot_request(&mut self, request: &Request) -> JsonValue {
        match self.write_state_snapshot() {
            Ok((path, policies)) => ok_value(
                &request.id,
                jobj(vec![
                    ("path", JsonValue::str(path.display().to_string())),
                    ("policies", JsonValue::num(policies as f64)),
                ]),
            ),
            Err(message) => self.fail(&request.id, "state_error", &message),
        }
    }

    fn restore_request(&mut self, request: &Request) -> JsonValue {
        match self.restore_state_snapshot() {
            Ok(policies) => {
                let handles = JsonValue::Arr(
                    self.policies
                        .iter()
                        .map(|p| JsonValue::str(&p.handle))
                        .collect(),
                );
                ok_value(
                    &request.id,
                    jobj(vec![
                        ("policies", JsonValue::num(policies as f64)),
                        ("handles", handles),
                    ]),
                )
            }
            Err(message) => self.fail(&request.id, "state_error", &message),
        }
    }

    fn metrics_snapshot(&mut self, request: &Request) -> JsonValue {
        let m = &self.metrics;
        ok_value(
            &request.id,
            jobj(vec![
                ("requests_total", JsonValue::num(m.requests.total() as f64)),
                ("errors_total", JsonValue::num(m.errors.total() as f64)),
                ("episodes_total", JsonValue::num(m.episodes_total as f64)),
                ("steps_total", JsonValue::num(m.steps_total as f64)),
                ("policies_loaded", JsonValue::num(m.policies_loaded as f64)),
                ("batch_fill_ratio", JsonValue::num(m.batch_fill_ratio())),
                (
                    "last_episodes_per_sec",
                    JsonValue::num(m.last_episodes_per_sec),
                ),
                (
                    "last_engine_utilization",
                    JsonValue::num(m.last_engine_utilization),
                ),
                ("prometheus", JsonValue::str(m.render_prometheus())),
            ]),
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use acso_core::eval::{evaluate_factory_detailed, EvalConfig};

    fn service() -> EvalService {
        EvalService::new(ServiceConfig::fixed())
    }

    fn parse_ok(line: &str) -> JsonValue {
        let v = JsonValue::parse(line).unwrap();
        assert_eq!(v.get("ok").and_then(|o| o.as_bool()), Some(true), "{line}");
        v.get("result").unwrap().clone()
    }

    fn parse_err(line: &str) -> (String, String) {
        let v = JsonValue::parse(line).unwrap();
        assert_eq!(v.get("ok").and_then(|o| o.as_bool()), Some(false), "{line}");
        let e = v.get("error").unwrap();
        (
            e.get("code").unwrap().as_str().unwrap().to_string(),
            e.get("message").unwrap().as_str().unwrap().to_string(),
        )
    }

    #[test]
    fn list_scenarios_returns_the_builtin_catalog() {
        let mut service = service();
        let result = parse_ok(&service.handle_line(r#"{"id":1,"method":"list_scenarios"}"#));
        let scenarios = result.get("scenarios").unwrap().as_arr().unwrap();
        assert_eq!(scenarios.len(), ScenarioRegistry::builtin().len());
        assert!(scenarios.iter().any(|s| {
            s.get("name").and_then(|n| n.as_str()) == Some("tiny")
                && s.get("tags")
                    .and_then(|t| t.as_arr())
                    .is_some_and(|tags| tags.iter().any(|t| t.as_str() == Some("paper")))
        }));
    }

    #[test]
    fn malformed_requests_get_typed_errors() {
        let mut service = service();
        for (line, code) in [
            ("{not json", "parse_error"),
            (r#"{"id":1}"#, "invalid_request"),
            (r#"{"id":1,"method":"explode"}"#, "unknown_method"),
            (r#"{"id":1,"method":"evaluate"}"#, "invalid_params"),
            (
                r#"{"id":1,"method":"evaluate","params":{"handle":"nope","scenario":"tiny","episodes":1}}"#,
                "unknown_handle",
            ),
            (
                r#"{"id":1,"method":"load_policy","params":{"policy":"wat"}}"#,
                "unknown_policy_kind",
            ),
            (
                r#"{"id":1,"method":"load_policy","params":{"policy":"playbook","scenario":"missing"}}"#,
                "unknown_scenario",
            ),
            (
                r#"{"id":1,"method":"load_policy","params":{"policy":"acso","scenario":"tiny","weights":"/nonexistent/weights.bin"}}"#,
                "weights_error",
            ),
        ] {
            let (got, _) = parse_err(&service.handle_line(line));
            assert_eq!(got, code, "{line}");
        }
        assert_eq!(service.metrics().errors.total(), 8);
        assert_eq!(service.metrics().requests.get("invalid"), 2);
    }

    #[test]
    fn evaluate_matches_the_offline_evaluation_path() {
        let mut service = service();
        let loaded = parse_ok(
            &service
                .handle_line(r#"{"id":1,"method":"load_policy","params":{"policy":"playbook"}}"#),
        );
        let handle = loaded.get("handle").unwrap().as_str().unwrap().to_string();
        assert_eq!(handle, "playbook@1");
        assert_eq!(
            loaded.get("policy").and_then(|p| p.as_str()),
            Some("Playbook")
        );

        let line = format!(
            r#"{{"id":2,"method":"evaluate","params":{{"handle":"{handle}","scenario":"tiny","episodes":3,"seed":11,"max_time":150,"transcripts":true}}}}"#
        );
        let result = parse_ok(&service.handle_line(&line));

        let offline = evaluate_factory_detailed(
            || Box::new(PlaybookPolicy::new()),
            &EvalConfig {
                sim: SimConfig::tiny().with_max_time(150),
                episodes: 3,
                seed: 11,
            },
        );
        let summary = result.get("summary").unwrap();
        assert_eq!(
            summary
                .get("discounted_return")
                .unwrap()
                .get("mean")
                .unwrap()
                .as_f64(),
            Some(offline.summary.discounted_return.mean)
        );
        let transcripts = result.get("transcripts").unwrap().as_arr().unwrap();
        assert_eq!(transcripts.len(), 3);
        for (t, e) in transcripts.iter().zip(&offline.episodes) {
            assert_eq!(
                t.get("discounted_return").unwrap().as_f64(),
                Some(e.discounted_return)
            );
            assert_eq!(t.get("steps").unwrap().as_u64(), Some(e.steps));
        }
        assert_eq!(service.metrics().episodes_total, 3);
        assert!(service.metrics().steps_total > 0);
    }

    #[test]
    fn coalesced_requests_share_batches_and_keep_their_transcripts() {
        // Four pipelined 2-episode requests against one handle: coalesced
        // into one lockstep run with a higher fill ratio than a solo run,
        // while each request's numbers stay bit-identical to running alone.
        let mut solo = service();
        let load = r#"{"id":0,"method":"load_policy","params":{"policy":"playbook"}}"#;
        parse_ok(&solo.handle_line(load));
        let request = |id: usize, seed: u64| {
            format!(
                r#"{{"id":{id},"method":"evaluate","params":{{"handle":"playbook@1","scenario":"tiny","episodes":2,"seed":{seed},"max_time":150,"transcripts":true}}}}"#
            )
        };
        let solo_responses: Vec<JsonValue> = (0..4)
            .map(|i| parse_ok(&solo.handle_line(&request(i, 20 + i as u64))))
            .collect();
        let solo_fill = solo.metrics().batch_fill_ratio();

        let mut coalesced = service();
        parse_ok(&coalesced.handle_line(load));
        let lines: Vec<String> = (0..4).map(|i| request(i, 20 + i as u64)).collect();
        let outcome = coalesced.handle_batch(&lines);
        assert!(!outcome.shutdown);
        let coalesced_fill = coalesced.metrics().batch_fill_ratio();

        for (line, solo_result) in outcome.responses.iter().zip(&solo_responses) {
            let result = parse_ok(line);
            assert_eq!(
                result.get("transcripts").unwrap(),
                solo_result.get("transcripts").unwrap(),
                "coalescing changed a transcript"
            );
            assert_eq!(
                result
                    .get("batch")
                    .unwrap()
                    .get("coalesced_requests")
                    .unwrap()
                    .as_u64(),
                Some(4)
            );
        }
        assert!(
            coalesced_fill > solo_fill,
            "coalesced fill {coalesced_fill} should beat solo fill {solo_fill}"
        );
    }

    #[test]
    fn shutdown_answers_the_whole_batch_first() {
        let mut service = service();
        let outcome = service.handle_batch(&[
            r#"{"id":1,"method":"shutdown"}"#.to_string(),
            r#"{"id":2,"method":"metrics"}"#.to_string(),
        ]);
        assert!(outcome.shutdown);
        assert_eq!(outcome.responses.len(), 2);
        parse_ok(&outcome.responses[1]);
    }

    #[test]
    fn metrics_snapshot_reports_request_counts_and_prometheus_text() {
        let mut service = service();
        service.handle_line(r#"{"id":1,"method":"list_scenarios"}"#);
        let result = parse_ok(&service.handle_line(r#"{"id":2,"method":"metrics"}"#));
        assert_eq!(result.get("requests_total").unwrap().as_u64(), Some(2));
        assert_eq!(result.get("errors_total").unwrap().as_u64(), Some(0));
        let prometheus = result.get("prometheus").unwrap().as_str().unwrap();
        assert!(prometheus.contains("acso_serve_requests_total{method=\"list_scenarios\"} 1"));
        assert!(prometheus.contains("# TYPE acso_serve_request_duration_seconds histogram"));
    }

    /// The crash-recovery acceptance test: a daemon restarted against the
    /// same `--state-dir` serves byte-identical `evaluate` responses for the
    /// handles it had loaded, including a trained `acso` policy.
    #[test]
    fn restart_from_state_snapshot_serves_bit_identical_responses() {
        let dir = std::env::temp_dir().join("acso_serve_state_restart_test");
        let _ = std::fs::remove_dir_all(&dir);
        std::fs::create_dir_all(&dir).unwrap();

        let mut first = EvalService::new(ServiceConfig::fixed()).with_state_dir(&dir);
        parse_ok(&first.handle_line(
            r#"{"id":1,"method":"load_policy","params":{"policy":"acso","scenario":"tiny","max_time":60,"train_episodes":1,"dbn_episodes":2,"seed":5}}"#,
        ));
        parse_ok(
            &first.handle_line(r#"{"id":2,"method":"load_policy","params":{"policy":"playbook"}}"#),
        );
        let eval_line = r#"{"id":3,"method":"evaluate","params":{"handle":"acso@1","scenario":"tiny","episodes":2,"seed":9,"max_time":60,"transcripts":true}}"#;
        let before = first.handle_line(eval_line);
        let snap = parse_ok(&first.handle_line(r#"{"id":4,"method":"snapshot"}"#));
        assert_eq!(snap.get("policies").unwrap().as_u64(), Some(2));
        drop(first); // the "crash"

        let mut second = EvalService::new(ServiceConfig::fixed()).with_state_dir(&dir);
        second.restore_on_start();
        let after = second.handle_line(eval_line);
        assert_eq!(
            before, after,
            "restored policy must serve byte-identical responses"
        );
        // The handle counter survives too: new handles never collide.
        let loaded = parse_ok(
            &second.handle_line(r#"{"id":5,"method":"load_policy","params":{"policy":"null"}}"#),
        );
        assert_eq!(
            loaded.get("handle").and_then(|h| h.as_str()),
            Some("null@3")
        );
        // An explicit `restore` round trip works as a protocol method too.
        let restored = parse_ok(&second.handle_line(r#"{"id":6,"method":"restore"}"#));
        assert_eq!(restored.get("policies").unwrap().as_u64(), Some(2));
        let _ = std::fs::remove_dir_all(&dir);
    }

    /// A torn snapshot write must degrade to a cold start with an error
    /// event — never serve from, or crash on, half-written state.
    #[test]
    fn torn_state_snapshot_degrades_to_cold_start() {
        let dir = std::env::temp_dir().join("acso_serve_state_torn_test");
        let _ = std::fs::remove_dir_all(&dir);
        std::fs::create_dir_all(&dir).unwrap();

        let mut first = EvalService::new(ServiceConfig::fixed()).with_state_dir(&dir);
        parse_ok(
            &first.handle_line(r#"{"id":1,"method":"load_policy","params":{"policy":"playbook"}}"#),
        );
        parse_ok(&first.handle_line(r#"{"id":2,"method":"snapshot"}"#));
        drop(first);

        // Tear the write: truncate the snapshot mid-container.
        let path = dir.join(STATE_FILE);
        let bytes = std::fs::read(&path).unwrap();
        std::fs::write(&path, &bytes[..bytes.len() - 5]).unwrap();

        let events_path = dir.join("events.jsonl");
        let mut second = EvalService::new(ServiceConfig::fixed())
            .with_events(EventSink::to_writer(
                Box::new(std::fs::File::create(&events_path).unwrap()),
                Clock::Fixed,
            ))
            .with_state_dir(&dir);
        second.restore_on_start();

        // Cold start: the old handle is gone, but the daemon serves.
        let (code, _) = parse_err(&second.handle_line(
            r#"{"id":3,"method":"evaluate","params":{"handle":"playbook@1","scenario":"tiny","episodes":1,"max_time":60}}"#,
        ));
        assert_eq!(code, "unknown_handle");
        // An explicit `restore` surfaces the typed digest failure.
        let (code, message) = parse_err(&second.handle_line(r#"{"id":4,"method":"restore"}"#));
        assert_eq!(code, "state_error");
        assert!(
            message.contains("digest mismatch"),
            "torn write should fail the digest check: {message}"
        );
        drop(second);
        let events = std::fs::read_to_string(&events_path).unwrap();
        assert!(
            events.contains(r#""event":"snapshot_corrupt""#),
            "startup fallback must log the corruption: {events}"
        );
        let _ = std::fs::remove_dir_all(&dir);
    }

    /// `snapshot`/`restore` without `--state-dir` are well-formed errors.
    #[test]
    fn state_methods_without_a_state_dir_get_typed_errors() {
        let mut service = service();
        let (code, message) = parse_err(&service.handle_line(r#"{"id":1,"method":"snapshot"}"#));
        assert_eq!(code, "state_error");
        assert_eq!(message, "no --state-dir configured");
        let (code, _) = parse_err(&service.handle_line(r#"{"id":2,"method":"restore"}"#));
        assert_eq!(code, "state_error");
    }

    #[test]
    fn evaluate_can_use_a_handle_loaded_earlier_in_the_same_batch() {
        let mut service = service();
        let outcome = service.handle_batch(&[
            r#"{"id":1,"method":"load_policy","params":{"policy":"null"}}"#.to_string(),
            r#"{"id":2,"method":"evaluate","params":{"handle":"null@1","scenario":"tiny","episodes":1,"max_time":150}}"#
                .to_string(),
        ]);
        let loaded = parse_ok(&outcome.responses[0]);
        assert_eq!(
            loaded.get("policy").and_then(|p| p.as_str()),
            Some("No defense")
        );
        let result = parse_ok(&outcome.responses[1]);
        assert_eq!(result.get("episodes").unwrap().as_u64(), Some(1));
        // The null policy never acts, so its IT cost is exactly zero.
        assert_eq!(
            result
                .get("summary")
                .unwrap()
                .get("average_it_cost")
                .unwrap()
                .get("mean")
                .unwrap()
                .as_f64(),
            Some(0.0)
        );
    }
}
