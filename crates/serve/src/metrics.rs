//! The daemon's observability registry: counters, gauges and one latency
//! histogram, rendered in the Prometheus text exposition format.
//!
//! The service handles requests on a single thread, so the registry is plain
//! data behind `&mut self` — no atomics, no locks. Everything the `metrics`
//! request returns comes from here, and the same numbers drive the
//! `serve_bench` coalescing assertion (batch-fill ratio) and the engine
//! utilization gauge.

use crate::json::fmt_num;

/// Histogram bucket upper bounds (seconds) for request latency.
const LATENCY_BUCKETS: [f64; 6] = [0.001, 0.01, 0.1, 1.0, 10.0, f64::INFINITY];

/// A fixed-bucket histogram in Prometheus cumulative form.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct Histogram {
    counts: [u64; LATENCY_BUCKETS.len()],
    sum: f64,
    count: u64,
}

impl Histogram {
    /// Records one observation (seconds).
    pub fn observe(&mut self, value: f64) {
        for (i, bound) in LATENCY_BUCKETS.iter().enumerate() {
            if value <= *bound {
                self.counts[i] += 1;
            }
        }
        self.sum += value;
        self.count += 1;
    }

    /// Total number of observations.
    pub fn count(&self) -> u64 {
        self.count
    }

    /// Sum of all observations.
    pub fn sum(&self) -> f64 {
        self.sum
    }

    fn render(&self, out: &mut String, name: &str) {
        for (i, bound) in LATENCY_BUCKETS.iter().enumerate() {
            let le = if bound.is_infinite() {
                "+Inf".to_string()
            } else {
                fmt_num(*bound)
            };
            out.push_str(&format!(
                "{name}_bucket{{le=\"{le}\"}} {}\n",
                self.counts[i]
            ));
        }
        out.push_str(&format!("{name}_sum {}\n", fmt_num(self.sum)));
        out.push_str(&format!("{name}_count {}\n", self.count));
    }
}

/// A labelled counter family: one monotonically increasing value per label,
/// in first-seen order (so the rendering is deterministic).
#[derive(Debug, Clone, Default, PartialEq)]
pub struct CounterFamily {
    entries: Vec<(String, u64)>,
}

impl CounterFamily {
    /// Adds `by` to the counter for `label`, creating it at zero first.
    pub fn add(&mut self, label: &str, by: u64) {
        if let Some((_, v)) = self.entries.iter_mut().find(|(l, _)| l == label) {
            *v += by;
        } else {
            self.entries.push((label.to_string(), by));
        }
    }

    /// Current value for `label` (0 when never incremented).
    pub fn get(&self, label: &str) -> u64 {
        self.entries
            .iter()
            .find(|(l, _)| l == label)
            .map(|(_, v)| *v)
            .unwrap_or(0)
    }

    /// Sum over every label.
    pub fn total(&self) -> u64 {
        self.entries.iter().map(|(_, v)| v).sum()
    }

    fn render(&self, out: &mut String, name: &str, label_key: &str) {
        for (label, value) in &self.entries {
            out.push_str(&format!("{name}{{{label_key}=\"{label}\"}} {value}\n"));
        }
    }
}

/// Every metric the daemon exposes.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct ServeMetrics {
    /// Requests handled, by method (parse failures count under `invalid`).
    pub requests: CounterFamily,
    /// Error responses sent, by error code.
    pub errors: CounterFamily,
    /// Evaluation episodes completed.
    pub episodes_total: u64,
    /// Simulation steps consumed by completed episodes.
    pub steps_total: u64,
    /// Lockstep decision rounds run by the batch engine.
    pub batch_rounds_total: u64,
    /// Lane-slots that carried a live episode across all rounds.
    pub batch_filled_slots_total: u64,
    /// Lane-slots available across all rounds (lanes × rounds).
    pub batch_capacity_slots_total: u64,
    /// Per-request wall-clock latency (seconds).
    pub request_latency: Histogram,
    /// Policies currently loaded.
    pub policies_loaded: u64,
    /// Episodes per second of the most recent evaluate batch.
    pub last_episodes_per_sec: f64,
    /// Batch-fill ratio of the most recent evaluate batch.
    pub last_batch_fill_ratio: f64,
    /// Worker-pool utilization of the most recent evaluate batch.
    pub last_engine_utilization: f64,
}

impl ServeMetrics {
    /// A fresh, all-zero registry.
    pub fn new() -> Self {
        Self::default()
    }

    /// Lifetime batch-fill ratio (filled slots / capacity slots; 1.0 before
    /// any batch has run).
    pub fn batch_fill_ratio(&self) -> f64 {
        if self.batch_capacity_slots_total == 0 {
            1.0
        } else {
            self.batch_filled_slots_total as f64 / self.batch_capacity_slots_total as f64
        }
    }

    /// Renders the whole registry in the Prometheus text exposition format
    /// (version 0.0.4): `# HELP` / `# TYPE` headers followed by samples.
    pub fn render_prometheus(&self) -> String {
        let mut out = String::new();
        let header = |out: &mut String, name: &str, kind: &str, help: &str| {
            out.push_str(&format!("# HELP {name} {help}\n# TYPE {name} {kind}\n"));
        };

        header(
            &mut out,
            "acso_serve_requests_total",
            "counter",
            "Requests handled, by method.",
        );
        self.requests
            .render(&mut out, "acso_serve_requests_total", "method");

        header(
            &mut out,
            "acso_serve_errors_total",
            "counter",
            "Error responses sent, by code.",
        );
        self.errors
            .render(&mut out, "acso_serve_errors_total", "code");

        header(
            &mut out,
            "acso_serve_episodes_total",
            "counter",
            "Evaluation episodes completed.",
        );
        out.push_str(&format!(
            "acso_serve_episodes_total {}\n",
            self.episodes_total
        ));

        header(
            &mut out,
            "acso_serve_steps_total",
            "counter",
            "Simulation steps consumed by completed episodes.",
        );
        out.push_str(&format!("acso_serve_steps_total {}\n", self.steps_total));

        header(
            &mut out,
            "acso_serve_batch_rounds_total",
            "counter",
            "Lockstep decision rounds run by the batch engine.",
        );
        out.push_str(&format!(
            "acso_serve_batch_rounds_total {}\n",
            self.batch_rounds_total
        ));

        header(
            &mut out,
            "acso_serve_batch_filled_slots_total",
            "counter",
            "Lane-slots that carried a live episode.",
        );
        out.push_str(&format!(
            "acso_serve_batch_filled_slots_total {}\n",
            self.batch_filled_slots_total
        ));

        header(
            &mut out,
            "acso_serve_batch_capacity_slots_total",
            "counter",
            "Lane-slots available (lanes x rounds).",
        );
        out.push_str(&format!(
            "acso_serve_batch_capacity_slots_total {}\n",
            self.batch_capacity_slots_total
        ));

        header(
            &mut out,
            "acso_serve_request_duration_seconds",
            "histogram",
            "Per-request wall-clock latency.",
        );
        self.request_latency
            .render(&mut out, "acso_serve_request_duration_seconds");

        header(
            &mut out,
            "acso_serve_policies_loaded",
            "gauge",
            "Policies currently loaded.",
        );
        out.push_str(&format!(
            "acso_serve_policies_loaded {}\n",
            self.policies_loaded
        ));

        header(
            &mut out,
            "acso_serve_last_episodes_per_sec",
            "gauge",
            "Episode throughput of the most recent evaluate batch.",
        );
        out.push_str(&format!(
            "acso_serve_last_episodes_per_sec {}\n",
            fmt_num(self.last_episodes_per_sec)
        ));

        header(
            &mut out,
            "acso_serve_last_batch_fill_ratio",
            "gauge",
            "Batch-fill ratio of the most recent evaluate batch.",
        );
        out.push_str(&format!(
            "acso_serve_last_batch_fill_ratio {}\n",
            fmt_num(self.last_batch_fill_ratio)
        ));

        header(
            &mut out,
            "acso_serve_last_engine_utilization",
            "gauge",
            "Worker-pool utilization of the most recent evaluate batch.",
        );
        out.push_str(&format!(
            "acso_serve_last_engine_utilization {}\n",
            fmt_num(self.last_engine_utilization)
        ));

        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn histogram_buckets_are_cumulative() {
        let mut h = Histogram::default();
        for v in [0.0005, 0.05, 0.05, 2.0, 100.0] {
            h.observe(v);
        }
        assert_eq!(h.count(), 5);
        assert!((h.sum() - 102.1005).abs() < 1e-9);
        let mut out = String::new();
        h.render(&mut out, "m");
        assert!(out.contains("m_bucket{le=\"0.001\"} 1\n"));
        assert!(out.contains("m_bucket{le=\"0.1\"} 3\n"));
        assert!(out.contains("m_bucket{le=\"10\"} 4\n"));
        assert!(out.contains("m_bucket{le=\"+Inf\"} 5\n"));
        assert!(out.contains("m_count 5\n"));
    }

    #[test]
    fn counter_families_keep_first_seen_order() {
        let mut c = CounterFamily::default();
        c.add("evaluate", 1);
        c.add("metrics", 1);
        c.add("evaluate", 2);
        assert_eq!(c.get("evaluate"), 3);
        assert_eq!(c.get("unknown"), 0);
        assert_eq!(c.total(), 4);
        let mut out = String::new();
        c.render(&mut out, "reqs", "method");
        assert_eq!(
            out,
            "reqs{method=\"evaluate\"} 3\nreqs{method=\"metrics\"} 1\n"
        );
    }

    #[test]
    fn prometheus_exposition_covers_every_metric() {
        let mut m = ServeMetrics::new();
        m.requests.add("evaluate", 2);
        m.errors.add("unknown_method", 1);
        m.episodes_total = 8;
        m.steps_total = 1200;
        m.batch_rounds_total = 150;
        m.batch_filled_slots_total = 900;
        m.batch_capacity_slots_total = 1200;
        m.request_latency.observe(0.02);
        m.policies_loaded = 1;
        m.last_episodes_per_sec = 42.5;
        m.last_batch_fill_ratio = 0.75;
        m.last_engine_utilization = 1.0;

        assert_eq!(m.batch_fill_ratio(), 0.75);
        let text = m.render_prometheus();
        for needle in [
            "# TYPE acso_serve_requests_total counter",
            "acso_serve_requests_total{method=\"evaluate\"} 2",
            "acso_serve_errors_total{code=\"unknown_method\"} 1",
            "acso_serve_episodes_total 8",
            "acso_serve_steps_total 1200",
            "acso_serve_batch_rounds_total 150",
            "acso_serve_batch_filled_slots_total 900",
            "acso_serve_batch_capacity_slots_total 1200",
            "# TYPE acso_serve_request_duration_seconds histogram",
            "acso_serve_request_duration_seconds_count 1",
            "acso_serve_policies_loaded 1",
            "acso_serve_last_episodes_per_sec 42.5",
            "acso_serve_last_batch_fill_ratio 0.75",
            "acso_serve_last_engine_utilization 1",
        ] {
            assert!(text.contains(needle), "missing `{needle}` in:\n{text}");
        }
    }

    #[test]
    fn fill_ratio_defaults_to_one_before_any_batch() {
        assert_eq!(ServeMetrics::new().batch_fill_ratio(), 1.0);
    }
}
