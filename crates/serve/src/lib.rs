//! `acso-serve`: the persistent evaluation daemon.
//!
//! The offline binaries (`scenario_sweep`, the experiment runners) pay the
//! full startup bill — building the scenario registry, training or loading
//! policies — on every invocation. This crate keeps all of that warm in one
//! long-lived process and answers evaluation requests over a line-delimited
//! JSON protocol (one request object in, one response object out, newline
//! framed). `docs/PROTOCOL.md` is the complete wire reference; its worked
//! transcript is replayed byte-for-byte by `tests/serve_protocol.rs`.
//!
//! The layers, bottom to top:
//!
//! * [`json`] — a hand-rolled JSON value/parser/writer (the workspace's
//!   serde is a vendored no-op stand-in) with insertion-ordered objects and
//!   shortest-round-trip numbers, so responses are byte-deterministic;
//! * [`transport`] — the [`transport::Transport`] trait over line streams:
//!   stdio for the daemon binary, an in-process channel pair for tests,
//!   benchmarks and embedded clients; TCP/HTTP can slot in later;
//! * [`metrics`] — counters, gauges and a latency histogram, rendered in the
//!   Prometheus text exposition format;
//! * [`events`] — the optional JSONL event stream (`--events`) and the
//!   [`events::Clock`] that `--fixed-time` pins for deterministic output;
//! * [`state`] — crash-recoverable serving state: the policy table written
//!   as a digest-sealed `ACSOSNAP` snapshot (`--state-dir`), reloaded on
//!   startup with graceful fallback to a cold start;
//! * [`service`] — [`service::EvalService`]: request parsing, the policy
//!   handle table, and evaluate-request coalescing through
//!   [`acso_core::rollout::SyncBatchEngine::rollout_many`];
//! * [`server`] — the drain-then-handle serve loop that turns pipelined
//!   client requests into coalesced batches.
//!
//! # In-process quick start
//!
//! The daemon's whole protocol works without a subprocess — hand the serve
//! loop a channel transport and write JSON lines at it:
//!
//! ```
//! use acso_serve::service::{EvalService, ServiceConfig};
//!
//! let mut service = EvalService::new(ServiceConfig::fixed());
//! let response = service.handle_line(r#"{"id":1,"method":"list_scenarios"}"#);
//! assert!(response.starts_with(r#"{"id":1,"ok":true,"#));
//! assert!(response.contains(r#""name":"paper-full""#));
//! ```

#![warn(missing_docs)]

pub mod events;
pub mod json;
pub mod metrics;
pub mod server;
pub mod service;
pub mod state;
pub mod transport;

pub use events::{Clock, EventSink};
pub use json::JsonValue;
pub use metrics::ServeMetrics;
pub use server::serve;
pub use service::{BatchOutcome, EvalService, ServiceConfig, DEFAULT_LANES, SERVE_LANES_ENV_VAR};
pub use transport::{ChannelTransport, ClientEnd, StdioTransport, Transport};
