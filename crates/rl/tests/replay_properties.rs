//! Property-based tests of the replay buffer, n-step accumulator and
//! schedules: invariants that must hold for any sequence of pushes, samples
//! and priority updates.

use proptest::prelude::*;
use rand::rngs::StdRng;
use rand::SeedableRng;
use rl::trainer::{DqnConfig, DqnTrainer};
use rl::{EpsilonSchedule, LinearSchedule, NStepBuffer, PrioritizedReplay, Transition};

proptest! {
    #![proptest_config(ProptestConfig::with_cases(32))]

    /// Sampling never yields items that were not pushed, never exceeds the
    /// requested batch, and produces weights in (0, 1].
    #[test]
    fn replay_samples_are_valid(
        capacity in 1usize..64,
        pushes in prop::collection::vec(0u32..10_000, 0..128),
        batch in 1usize..32,
        seed in 0u64..1_000,
    ) {
        let mut buf = PrioritizedReplay::new(capacity, 0.6);
        for p in &pushes {
            buf.push(*p);
        }
        prop_assert!(buf.len() <= buf.capacity());
        prop_assert_eq!(buf.len(), pushes.len().min(buf.capacity()));
        let mut rng = StdRng::seed_from_u64(seed);
        let samples = buf.sample_indices(batch, 0.5, &mut rng);
        prop_assert!(samples.len() <= batch.min(buf.len().max(1)));
        for (index, weight) in samples {
            prop_assert!(pushes.contains(buf.get(index)));
            prop_assert!(weight > 0.0 && weight <= 1.0 + 1e-9);
            prop_assert!(index < buf.capacity());
        }
    }

    /// Priority updates never panic and never corrupt sampling, even with
    /// extreme error magnitudes.
    #[test]
    fn priority_updates_accept_any_magnitude(
        errors in prop::collection::vec(-1e6f64..1e6, 1..64),
        seed in 0u64..1_000,
    ) {
        let mut buf = PrioritizedReplay::new(64, 1.0);
        for i in 0..errors.len() as u32 {
            buf.push(i);
        }
        for (i, e) in errors.iter().enumerate() {
            buf.update_priority(i, *e);
        }
        let mut rng = StdRng::seed_from_u64(seed);
        let samples = buf.sample_indices(16, 1.0, &mut rng);
        prop_assert!(!samples.is_empty());
    }

    /// The n-step accumulator conserves transitions: every pushed transition
    /// is eventually emitted exactly once (after a flush), with returns that
    /// equal the discounted sum of the rewards in its window.
    #[test]
    fn nstep_conserves_transitions(
        rewards in prop::collection::vec(-5.0f64..5.0, 1..40),
        n in 1usize..6,
    ) {
        let gamma = 0.9;
        let mut buf = NStepBuffer::new(n, gamma);
        let mut emitted = Vec::new();
        for (i, r) in rewards.iter().enumerate() {
            emitted.extend(buf.push(Transition {
                state: i as i64,
                action: i % 3,
                reward: *r,
                next_state: i as i64 + 1,
                done: false,
            }));
        }
        emitted.extend(buf.flush());
        prop_assert_eq!(emitted.len(), rewards.len());
        prop_assert_eq!(buf.pending(), 0);
        for (i, t) in emitted.iter().enumerate() {
            prop_assert_eq!(t.state, i as i64);
            prop_assert!(t.steps >= 1 && t.steps <= n);
            let expected: f64 = rewards[i..(i + t.steps).min(rewards.len())]
                .iter()
                .enumerate()
                .map(|(k, r)| gamma.powi(k as i32) * r)
                .sum();
            prop_assert!((t.return_n - expected).abs() < 1e-9);
        }
    }

    /// Whatever the episode structure, the feature arena tracks the replay
    /// contents: roughly one live feature set per distinct decision point
    /// still referenced by the ring — never the pre-arena two-per-transition
    /// layout, and never a leak proportional to history length.
    #[test]
    fn arena_tracks_replay_contents(
        episode_lens in prop::collection::vec(1usize..30, 1..6),
        n in 1usize..6,
    ) {
        let cfg = DqnConfig {
            n_step: n,
            buffer_capacity: 64,
            ..DqnConfig::smoke()
        };
        let mut trainer: DqnTrainer<u64> = DqnTrainer::new(cfg);
        let mut step = 0u64;
        for len in &episode_lens {
            let mut last = trainer.intern(step);
            for i in 0..*len {
                let next = trainer.intern(step + 1);
                trainer.observe(Transition {
                    state: last,
                    action: 0,
                    reward: 1.0,
                    next_state: next,
                    done: i + 1 == *len,
                });
                last = next;
                step += 1;
            }
            trainer.end_episode();
            prop_assert!(
                trainer.arena_live() <= trainer.buffered() + episode_lens.len() + n + 1,
                "arena {} live vs {} buffered",
                trainer.arena_live(),
                trainer.buffered()
            );
        }
    }

    /// Whatever the episode structure, capturing the arena and replay ring
    /// through their snapshot accessors and rebuilding them via `from_parts`
    /// reproduces the contents, reference counts and free list exactly —
    /// the release-on-eviction bookkeeping survives a checkpoint round trip.
    #[test]
    fn arena_snapshot_round_trips_for_arbitrary_episodes(
        episode_lens in prop::collection::vec(1usize..30, 1..6),
        n in 1usize..6,
    ) {
        let cfg = DqnConfig {
            n_step: n,
            buffer_capacity: 32,
            ..DqnConfig::smoke()
        };
        let mut trainer: DqnTrainer<u64> = DqnTrainer::new(cfg);
        let mut step = 0u64;
        for len in &episode_lens {
            let mut last = trainer.intern(step);
            for i in 0..*len {
                let next = trainer.intern(step + 1);
                trainer.observe(Transition {
                    state: last,
                    action: 0,
                    reward: 1.0,
                    next_state: next,
                    done: i + 1 == *len,
                });
                last = next;
                step += 1;
            }
            trainer.end_episode();
        }
        let (slots, refs, free) = trainer.arena().parts();
        let rebuilt = rl::FeatureArena::from_parts(
            slots.to_vec(), refs.to_vec(), free.to_vec(),
        ).unwrap();
        let (r_slots, r_refs, r_free) = rebuilt.parts();
        prop_assert_eq!(slots, r_slots);
        prop_assert_eq!(refs, r_refs);
        prop_assert_eq!(free, r_free);
        prop_assert_eq!(rebuilt.live(), trainer.arena_live());
        // Refcount balance: every live replay entry retains exactly two ids.
        prop_assert_eq!(rebuilt.total_refs(), 2 * trainer.buffered() as u64);
    }

    /// Epsilon schedules are monotonically non-increasing and bounded by
    /// their configured floor; linear schedules stay within [start, end].
    #[test]
    fn schedules_are_monotone_and_bounded(
        decay in 0.5f64..1.0,
        end in 0.0f64..0.5,
        steps in 1u64..50,
    ) {
        let mut eps = EpsilonSchedule::new(1.0, end, decay);
        let mut prev = eps.value();
        for _ in 0..200 {
            let v = eps.step();
            prop_assert!(v <= prev + 1e-12);
            prop_assert!(v >= end - 1e-12);
            prev = v;
        }
        let mut beta = LinearSchedule::new(0.4, 1.0, steps);
        let mut prev = beta.value();
        for _ in 0..(steps + 10) {
            let v = beta.step();
            prop_assert!(v >= prev - 1e-12);
            prop_assert!(v <= 1.0 + 1e-12);
            prev = v;
        }
    }
}
