//! Deep Q-learning machinery for the ACSO defender.
//!
//! The paper trains its agent with an augmented DQN: double DQN targets,
//! prioritized experience replay, n-step temporal-difference returns and an
//! ε-greedy exploration schedule (§4.2). This crate provides those pieces in
//! a domain-agnostic form — it knows nothing about ICS networks or neural
//! architectures, only about transitions over a generic state type:
//!
//! * [`replay`] — a sum-tree backed prioritized replay buffer with
//!   importance-sampling weights;
//! * [`arena`] — a reference-counted feature arena: states are stored once
//!   and transitions hold [`arena::FeatureId`]s, halving replay memory and
//!   making minibatch assembly an index gather;
//! * [`nstep`] — an n-step return accumulator;
//! * [`schedule`] — ε-greedy and linear schedules;
//! * [`trainer`] — [`trainer::DqnTrainer`], which wires the above together
//!   and tells the caller when to sample a batch, what the bootstrap discount
//!   is, and when to refresh the target network;
//! * [`policy`] — ε-greedy action selection over a slice of Q-values.
//!
//! The Q-function itself (the attention network of the paper) lives in the
//! `acso-core` crate, which implements target computation and gradient steps
//! on top of this crate's sampling and bookkeeping.

#![warn(missing_docs)]

pub mod arena;
pub mod nstep;
pub mod policy;
pub mod replay;
pub mod schedule;
pub mod trainer;

pub use arena::{FeatureArena, FeatureId};
pub use nstep::{NStepBuffer, NStepTransition, Transition};
pub use policy::epsilon_greedy;
pub use replay::{PrioritizedReplay, ReplayConfigError};
pub use schedule::{EpsilonSchedule, LinearSchedule};
pub use trainer::{DqnConfig, DqnTrainer, TrainerCounters};
