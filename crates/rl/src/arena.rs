//! A reference-counted feature arena for replay storage.
//!
//! Before the arena, every replay transition owned two full feature sets
//! (its start state and its bootstrap state), even though consecutive
//! transitions share states: the state reached at step `t` is both the
//! `final_state` of one n-step window and the `state` of another. Storing
//! each encoded state **once** and letting transitions hold [`FeatureId`]
//! indices halves the steady-state replay memory, and turns "stack the
//! minibatch" into a strided gather over the arena instead of N feature
//! clones.
//!
//! Ownership is reference-counted at the granularity the replay pipeline
//! needs: [`FeatureArena::retain`] when a replay entry starts referencing an
//! id, [`FeatureArena::release`] when that entry is evicted from the ring.
//! A slot whose count returns to zero goes onto a free list and its storage
//! is dropped immediately, so the live arena tracks the replay contents.

/// An index into a [`FeatureArena`].
///
/// Deliberately small and `Copy`: transitions and n-step windows move these
/// around instead of cloning feature matrices.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct FeatureId(u32);

impl FeatureId {
    /// The raw slot index (diagnostics).
    pub fn index(self) -> usize {
        self.0 as usize
    }
}

/// A reference-counted slot arena for feature sets.
#[derive(Debug, Clone, Default)]
pub struct FeatureArena<S> {
    slots: Vec<Option<S>>,
    refs: Vec<u32>,
    free: Vec<u32>,
}

impl<S> FeatureArena<S> {
    /// Creates an empty arena.
    pub fn new() -> Self {
        Self {
            slots: Vec::new(),
            refs: Vec::new(),
            free: Vec::new(),
        }
    }

    /// Stores a feature set and returns its id, with a reference count of
    /// zero — the caller is expected to [`FeatureArena::retain`] it once it
    /// lands in a replay entry. Freed slots are reused before the arena
    /// grows.
    pub fn intern(&mut self, features: S) -> FeatureId {
        match self.free.pop() {
            Some(slot) => {
                debug_assert!(self.slots[slot as usize].is_none());
                self.slots[slot as usize] = Some(features);
                FeatureId(slot)
            }
            None => {
                let slot = u32::try_from(self.slots.len()).expect("feature arena overflow");
                self.slots.push(Some(features));
                self.refs.push(0);
                FeatureId(slot)
            }
        }
    }

    /// The feature set behind an id.
    ///
    /// # Panics
    ///
    /// Panics if the id was already freed.
    pub fn get(&self, id: FeatureId) -> &S {
        self.slots[id.index()]
            .as_ref()
            .expect("feature id resolved after being freed")
    }

    /// Increments an id's reference count (a replay entry now points at it).
    pub fn retain(&mut self, id: FeatureId) {
        self.refs[id.index()] += 1;
    }

    /// Decrements an id's reference count; the slot is freed (storage
    /// dropped, index recycled) when the count returns to zero.
    ///
    /// # Panics
    ///
    /// Panics if the id's count is already zero.
    pub fn release(&mut self, id: FeatureId) {
        let count = &mut self.refs[id.index()];
        assert!(*count > 0, "release of an unreferenced feature id");
        *count -= 1;
        if *count == 0 {
            self.slots[id.index()] = None;
            self.free.push(id.0);
        }
    }

    /// Number of live (occupied) slots.
    pub fn live(&self) -> usize {
        self.slots.len() - self.free.len()
    }

    /// Total slots ever allocated (live + free-listed).
    pub fn capacity(&self) -> usize {
        self.slots.len()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn intern_get_round_trips() {
        let mut arena = FeatureArena::new();
        let a = arena.intern("alpha".to_string());
        let b = arena.intern("beta".to_string());
        assert_ne!(a, b);
        assert_eq!(arena.get(a), "alpha");
        assert_eq!(arena.get(b), "beta");
        assert_eq!(arena.live(), 2);
    }

    #[test]
    fn release_frees_and_reuses_slots() {
        let mut arena = FeatureArena::new();
        let a = arena.intern(1u32);
        arena.retain(a);
        arena.retain(a);
        arena.release(a);
        assert_eq!(arena.live(), 1, "still one reference outstanding");
        arena.release(a);
        assert_eq!(arena.live(), 0);
        // The freed index is recycled before the arena grows.
        let b = arena.intern(2u32);
        assert_eq!(b.index(), a.index());
        assert_eq!(arena.capacity(), 1);
        assert_eq!(*arena.get(b), 2);
    }

    #[test]
    #[should_panic(expected = "unreferenced")]
    fn releasing_an_unreferenced_id_panics() {
        let mut arena = FeatureArena::new();
        let a = arena.intern(0u8);
        arena.release(a);
    }

    #[test]
    #[should_panic(expected = "after being freed")]
    fn resolving_a_freed_id_panics() {
        let mut arena = FeatureArena::new();
        let a = arena.intern(0u8);
        arena.retain(a);
        arena.release(a);
        let _ = arena.get(a);
    }
}
