//! A reference-counted feature arena for replay storage.
//!
//! Before the arena, every replay transition owned two full feature sets
//! (its start state and its bootstrap state), even though consecutive
//! transitions share states: the state reached at step `t` is both the
//! `final_state` of one n-step window and the `state` of another. Storing
//! each encoded state **once** and letting transitions hold [`FeatureId`]
//! indices halves the steady-state replay memory, and turns "stack the
//! minibatch" into a strided gather over the arena instead of N feature
//! clones.
//!
//! Ownership is reference-counted at the granularity the replay pipeline
//! needs: [`FeatureArena::retain`] when a replay entry starts referencing an
//! id, [`FeatureArena::release`] when that entry is evicted from the ring.
//! A slot whose count returns to zero goes onto a free list and its storage
//! is dropped immediately, so the live arena tracks the replay contents.

/// An index into a [`FeatureArena`].
///
/// Deliberately small and `Copy`: transitions and n-step windows move these
/// around instead of cloning feature matrices.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct FeatureId(u32);

impl FeatureId {
    /// The raw slot index (diagnostics).
    pub fn index(self) -> usize {
        self.0 as usize
    }

    /// Rebuilds an id from a raw slot index, the inverse of
    /// [`FeatureId::index`]. Only checkpoint decoding should need this: an id
    /// is only meaningful against the arena it was interned in (or a
    /// bit-identical restore of it).
    pub fn from_index(index: usize) -> Self {
        FeatureId(u32::try_from(index).expect("feature id out of u32 range"))
    }
}

/// A reference-counted slot arena for feature sets.
#[derive(Debug, Clone, Default)]
pub struct FeatureArena<S> {
    slots: Vec<Option<S>>,
    refs: Vec<u32>,
    free: Vec<u32>,
}

impl<S> FeatureArena<S> {
    /// Creates an empty arena.
    pub fn new() -> Self {
        Self {
            slots: Vec::new(),
            refs: Vec::new(),
            free: Vec::new(),
        }
    }

    /// Stores a feature set and returns its id, with a reference count of
    /// zero — the caller is expected to [`FeatureArena::retain`] it once it
    /// lands in a replay entry. Freed slots are reused before the arena
    /// grows.
    pub fn intern(&mut self, features: S) -> FeatureId {
        match self.free.pop() {
            Some(slot) => {
                debug_assert!(self.slots[slot as usize].is_none());
                self.slots[slot as usize] = Some(features);
                FeatureId(slot)
            }
            None => {
                let slot = u32::try_from(self.slots.len()).expect("feature arena overflow");
                self.slots.push(Some(features));
                self.refs.push(0);
                FeatureId(slot)
            }
        }
    }

    /// The feature set behind an id.
    ///
    /// # Panics
    ///
    /// Panics if the id was already freed.
    pub fn get(&self, id: FeatureId) -> &S {
        self.slots[id.index()]
            .as_ref()
            .expect("feature id resolved after being freed")
    }

    /// Increments an id's reference count (a replay entry now points at it).
    pub fn retain(&mut self, id: FeatureId) {
        self.refs[id.index()] += 1;
    }

    /// Decrements an id's reference count; the slot is freed (storage
    /// dropped, index recycled) when the count returns to zero.
    ///
    /// # Panics
    ///
    /// Panics if the id's count is already zero.
    pub fn release(&mut self, id: FeatureId) {
        let count = &mut self.refs[id.index()];
        assert!(*count > 0, "release of an unreferenced feature id");
        *count -= 1;
        if *count == 0 {
            self.slots[id.index()] = None;
            self.free.push(id.0);
        }
    }

    /// Number of live (occupied) slots.
    pub fn live(&self) -> usize {
        self.slots.len() - self.free.len()
    }

    /// Total slots ever allocated (live + free-listed).
    pub fn capacity(&self) -> usize {
        self.slots.len()
    }

    /// The arena's raw storage — `(slots, refs, free list)` — for checkpoint
    /// encoding. Slot order is load-bearing: transitions hold [`FeatureId`]
    /// indices into `slots`, so a snapshot must preserve positions exactly.
    pub fn parts(&self) -> (&[Option<S>], &[u32], &[u32]) {
        (&self.slots, &self.refs, &self.free)
    }

    /// The reference count of a slot (diagnostics and invariant sweeps).
    pub fn ref_count(&self, id: FeatureId) -> u32 {
        self.refs[id.index()]
    }

    /// Sum of all reference counts (invariant sweeps: must equal the number
    /// of ids retained by live replay entries).
    pub fn total_refs(&self) -> u64 {
        self.refs.iter().map(|&r| u64::from(r)).sum()
    }

    /// Rebuilds an arena from storage captured by [`FeatureArena::parts`],
    /// validating the structural invariants a well-formed snapshot must
    /// satisfy. The error string names the first violated invariant.
    pub fn from_parts(
        slots: Vec<Option<S>>,
        refs: Vec<u32>,
        free: Vec<u32>,
    ) -> Result<Self, String> {
        if slots.len() != refs.len() {
            return Err(format!(
                "arena parts disagree: {} slots vs {} ref counts",
                slots.len(),
                refs.len()
            ));
        }
        let mut on_free_list = vec![false; slots.len()];
        for &slot in &free {
            let index = slot as usize;
            if index >= slots.len() {
                return Err(format!(
                    "free-list entry {index} out of range ({} slots)",
                    slots.len()
                ));
            }
            if on_free_list[index] {
                return Err(format!("free-list entry {index} appears twice"));
            }
            on_free_list[index] = true;
            if slots[index].is_some() {
                return Err(format!("free-list entry {index} is occupied"));
            }
            if refs[index] != 0 {
                return Err(format!(
                    "free-list entry {index} has {} outstanding references",
                    refs[index]
                ));
            }
        }
        for (index, slot) in slots.iter().enumerate() {
            if slot.is_none() && !on_free_list[index] {
                return Err(format!("empty slot {index} missing from the free list"));
            }
        }
        Ok(Self { slots, refs, free })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn intern_get_round_trips() {
        let mut arena = FeatureArena::new();
        let a = arena.intern("alpha".to_string());
        let b = arena.intern("beta".to_string());
        assert_ne!(a, b);
        assert_eq!(arena.get(a), "alpha");
        assert_eq!(arena.get(b), "beta");
        assert_eq!(arena.live(), 2);
    }

    #[test]
    fn release_frees_and_reuses_slots() {
        let mut arena = FeatureArena::new();
        let a = arena.intern(1u32);
        arena.retain(a);
        arena.retain(a);
        arena.release(a);
        assert_eq!(arena.live(), 1, "still one reference outstanding");
        arena.release(a);
        assert_eq!(arena.live(), 0);
        // The freed index is recycled before the arena grows.
        let b = arena.intern(2u32);
        assert_eq!(b.index(), a.index());
        assert_eq!(arena.capacity(), 1);
        assert_eq!(*arena.get(b), 2);
    }

    #[test]
    fn parts_round_trip_preserves_slot_positions() {
        let mut arena = FeatureArena::new();
        let a = arena.intern("a".to_string());
        let b = arena.intern("b".to_string());
        let c = arena.intern("c".to_string());
        arena.retain(a);
        arena.retain(b);
        arena.retain(b);
        arena.retain(c);
        arena.release(c); // slot 2 goes to the free list
        let (slots, refs, free) = arena.parts();
        let rebuilt =
            FeatureArena::from_parts(slots.to_vec(), refs.to_vec(), free.to_vec()).unwrap();
        assert_eq!(rebuilt.get(a), "a");
        assert_eq!(rebuilt.get(b), "b");
        assert_eq!(rebuilt.ref_count(b), 2);
        assert_eq!(rebuilt.live(), 2);
        assert_eq!(rebuilt.total_refs(), 3);
        // The free list survives too: the next intern reuses slot 2.
        let mut rebuilt = rebuilt;
        let d = rebuilt.intern("d".to_string());
        assert_eq!(d.index(), c.index());
        assert_eq!(FeatureId::from_index(c.index()), c);
    }

    #[test]
    fn from_parts_rejects_malformed_snapshots() {
        // Length mismatch.
        assert!(FeatureArena::from_parts(vec![Some(1u8)], vec![1, 2], vec![]).is_err());
        // Free entry out of range / duplicated / occupied / referenced.
        assert!(FeatureArena::from_parts(vec![Some(1u8)], vec![1], vec![3]).is_err());
        assert!(FeatureArena::<u8>::from_parts(vec![None, None], vec![0, 0], vec![0, 0]).is_err());
        assert!(FeatureArena::from_parts(vec![Some(1u8)], vec![0], vec![0]).is_err());
        // Empty slot absent from the free list.
        assert!(FeatureArena::<u8>::from_parts(vec![None], vec![0], vec![]).is_err());
        // A free-listed empty slot with a nonzero refcount.
        let err = FeatureArena::<u8>::from_parts(vec![None], vec![2], vec![0]).unwrap_err();
        assert!(err.contains("outstanding references"), "{err}");
    }

    #[test]
    #[should_panic(expected = "unreferenced")]
    fn releasing_an_unreferenced_id_panics() {
        let mut arena = FeatureArena::new();
        let a = arena.intern(0u8);
        arena.release(a);
    }

    #[test]
    #[should_panic(expected = "after being freed")]
    fn resolving_a_freed_id_panics() {
        let mut arena = FeatureArena::new();
        let a = arena.intern(0u8);
        arena.retain(a);
        arena.release(a);
        let _ = arena.get(a);
    }
}
