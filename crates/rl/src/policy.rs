//! Action-selection helpers.

use rand::rngs::StdRng;
use rand::Rng;

/// ε-greedy selection over a slice of action values.
///
/// With probability `epsilon` a uniformly random action index is returned;
/// otherwise the index of the maximum value (ties broken by the first
/// maximum).
///
/// # Panics
///
/// Panics if `q_values` is empty.
pub fn epsilon_greedy(q_values: &[f32], epsilon: f64, rng: &mut StdRng) -> usize {
    assert!(
        !q_values.is_empty(),
        "cannot select an action from no values"
    );
    // Purely-greedy selection (ε ≤ 0) consumes no randomness at all, so
    // greedy evaluation is deterministic regardless of the RNG's history —
    // the property the parallel rollout engine relies on for cloned agents.
    if epsilon > 0.0 && rng.gen_bool(epsilon.clamp(0.0, 1.0)) {
        rng.gen_range(0..q_values.len())
    } else {
        greedy(q_values)
    }
}

/// Index of the maximum action value (first maximum wins on ties).
///
/// # Panics
///
/// Panics if `q_values` is empty.
pub fn greedy(q_values: &[f32]) -> usize {
    assert!(
        !q_values.is_empty(),
        "cannot select an action from no values"
    );
    let mut best = 0;
    let mut best_value = q_values[0];
    for (i, v) in q_values.iter().enumerate().skip(1) {
        if *v > best_value {
            best = i;
            best_value = *v;
        }
    }
    best
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::SeedableRng;

    #[test]
    fn greedy_picks_maximum() {
        assert_eq!(greedy(&[0.1, 0.9, 0.3]), 1);
        assert_eq!(greedy(&[2.0]), 0);
        // Ties go to the first maximum.
        assert_eq!(greedy(&[1.0, 1.0, 0.0]), 0);
    }

    #[test]
    fn epsilon_zero_is_greedy() {
        let mut rng = StdRng::seed_from_u64(0);
        for _ in 0..50 {
            assert_eq!(epsilon_greedy(&[0.0, 5.0, 1.0], 0.0, &mut rng), 1);
        }
    }

    #[test]
    fn epsilon_one_is_uniform() {
        let mut rng = StdRng::seed_from_u64(1);
        let mut seen = std::collections::HashSet::new();
        for _ in 0..200 {
            seen.insert(epsilon_greedy(&[0.0, 5.0, 1.0], 1.0, &mut rng));
        }
        assert_eq!(seen.len(), 3);
    }

    #[test]
    #[should_panic(expected = "no values")]
    fn empty_values_panic() {
        greedy(&[]);
    }
}
