//! n-step return accumulation.
//!
//! The paper computes its TD targets over n = 8 steps: the stored transition
//! pairs the state at time `t` with the discounted sum of the next n rewards
//! and the state at time `t + n`, from which the target network bootstraps.

use std::collections::VecDeque;

/// A single-step transition observed from the environment.
#[derive(Debug, Clone, PartialEq)]
pub struct Transition<S> {
    /// State the action was taken from.
    pub state: S,
    /// Index of the action taken.
    pub action: usize,
    /// Reward received (task reward plus any shaping).
    pub reward: f64,
    /// State reached.
    pub next_state: S,
    /// Whether the episode ended at `next_state`.
    pub done: bool,
}

/// An n-step transition ready to be stored in the replay buffer.
#[derive(Debug, Clone, PartialEq)]
pub struct NStepTransition<S> {
    /// State the first action was taken from.
    pub state: S,
    /// Index of the first action.
    pub action: usize,
    /// Discounted sum of the intermediate rewards: `Σ γ^k r_{t+k}`.
    pub return_n: f64,
    /// State at the end of the n-step window.
    pub final_state: S,
    /// Whether the episode ended within the window.
    pub done: bool,
    /// Number of steps actually accumulated (≤ n; shorter at episode end).
    pub steps: usize,
}

impl<S> NStepTransition<S> {
    /// The factor `γ^steps` to apply to the bootstrap value (zero if the
    /// window ended the episode).
    pub fn bootstrap_discount(&self, gamma: f64) -> f64 {
        if self.done {
            0.0
        } else {
            gamma.powi(self.steps as i32)
        }
    }
}

/// Accumulates single-step transitions into n-step transitions.
#[derive(Debug, Clone)]
pub struct NStepBuffer<S> {
    n: usize,
    gamma: f64,
    window: VecDeque<Transition<S>>,
}

impl<S: Clone> NStepBuffer<S> {
    /// Creates an accumulator for `n`-step returns with discount `gamma`.
    ///
    /// # Panics
    ///
    /// Panics if `n` is zero.
    pub fn new(n: usize, gamma: f64) -> Self {
        assert!(n > 0, "n-step horizon must be positive");
        Self {
            n,
            gamma,
            window: VecDeque::with_capacity(n),
        }
    }

    /// The configured horizon n.
    pub fn horizon(&self) -> usize {
        self.n
    }

    fn emit_front(&mut self) -> Option<NStepTransition<S>> {
        let first = self.window.front()?.clone();
        let mut return_n = 0.0;
        let mut discount = 1.0;
        let mut final_state = first.next_state.clone();
        let mut done = first.done;
        let mut steps = 0;
        for t in self.window.iter() {
            return_n += discount * t.reward;
            discount *= self.gamma;
            final_state = t.next_state.clone();
            done = t.done;
            steps += 1;
            if t.done {
                break;
            }
        }
        self.window.pop_front();
        Some(NStepTransition {
            state: first.state,
            action: first.action,
            return_n,
            final_state,
            done,
            steps,
        })
    }

    /// Pushes a transition; returns an n-step transition once the window is
    /// full (or the episode ends — see [`NStepBuffer::flush`]).
    pub fn push(&mut self, transition: Transition<S>) -> Vec<NStepTransition<S>> {
        let terminal = transition.done;
        self.window.push_back(transition);
        let mut out = Vec::new();
        if terminal {
            while !self.window.is_empty() {
                if let Some(t) = self.emit_front() {
                    out.push(t);
                }
            }
        } else if self.window.len() >= self.n {
            if let Some(t) = self.emit_front() {
                out.push(t);
            }
        }
        out
    }

    /// Flushes any partially-accumulated transitions (call at episode end if
    /// the final transition was not marked `done`).
    pub fn flush(&mut self) -> Vec<NStepTransition<S>> {
        let mut out = Vec::new();
        while !self.window.is_empty() {
            if let Some(t) = self.emit_front() {
                out.push(t);
            }
        }
        out
    }

    /// Number of buffered single-step transitions not yet emitted.
    pub fn pending(&self) -> usize {
        self.window.len()
    }

    /// The buffered transitions, oldest first (checkpoint encoding).
    pub fn window(&self) -> impl Iterator<Item = &Transition<S>> {
        self.window.iter()
    }

    /// Replaces the buffered window with transitions from a checkpoint,
    /// oldest first. Rejects windows of `n` or more: `push` emits as soon as
    /// `n` transitions accumulate, so a window that long cannot have come
    /// from this accumulator.
    pub fn load_window(&mut self, window: Vec<Transition<S>>) -> Result<(), String> {
        if window.len() >= self.n {
            return Err(format!(
                "n-step window of {} cannot come from a horizon of {}",
                window.len(),
                self.n
            ));
        }
        self.window = window.into();
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tr(state: i32, reward: f64, done: bool) -> Transition<i32> {
        Transition {
            state,
            action: state as usize,
            reward,
            next_state: state + 1,
            done,
        }
    }

    #[test]
    fn emits_after_n_steps_with_discounted_return() {
        let mut buf = NStepBuffer::new(3, 0.5);
        assert_eq!(buf.horizon(), 3);
        assert!(buf.push(tr(0, 1.0, false)).is_empty());
        assert!(buf.push(tr(1, 1.0, false)).is_empty());
        let out = buf.push(tr(2, 1.0, false));
        assert_eq!(out.len(), 1);
        let t = &out[0];
        assert_eq!(t.state, 0);
        assert_eq!(t.steps, 3);
        assert!((t.return_n - (1.0 + 0.5 + 0.25)).abs() < 1e-12);
        assert_eq!(t.final_state, 3);
        assert!(!t.done);
        assert!((t.bootstrap_discount(0.5) - 0.125).abs() < 1e-12);
        assert_eq!(buf.pending(), 2);
    }

    #[test]
    fn terminal_transition_flushes_window() {
        let mut buf = NStepBuffer::new(4, 0.9);
        buf.push(tr(0, 1.0, false));
        buf.push(tr(1, 2.0, false));
        let out = buf.push(tr(2, 3.0, true));
        // All three pending transitions are emitted, each truncated at the
        // terminal step.
        assert_eq!(out.len(), 3);
        assert!(out.iter().all(|t| t.done));
        assert_eq!(out[0].steps, 3);
        assert_eq!(out[2].steps, 1);
        assert_eq!(out[0].bootstrap_discount(0.9), 0.0);
        assert_eq!(buf.pending(), 0);
    }

    #[test]
    fn flush_emits_partial_windows() {
        let mut buf = NStepBuffer::new(5, 1.0);
        buf.push(tr(0, 1.0, false));
        buf.push(tr(1, 1.0, false));
        let out = buf.flush();
        assert_eq!(out.len(), 2);
        assert_eq!(out[0].steps, 2);
        assert_eq!(out[0].return_n, 2.0);
        assert_eq!(out[1].steps, 1);
    }

    #[test]
    fn one_step_horizon_degenerates_to_plain_transitions() {
        let mut buf = NStepBuffer::new(1, 0.99);
        let out = buf.push(tr(7, 4.0, false));
        assert_eq!(out.len(), 1);
        assert_eq!(out[0].return_n, 4.0);
        assert_eq!(out[0].steps, 1);
    }

    #[test]
    fn window_round_trip_preserves_pending_returns() {
        let mut buf = NStepBuffer::new(4, 0.9);
        buf.push(tr(0, 1.0, false));
        buf.push(tr(1, 2.0, false));
        let saved: Vec<Transition<i32>> = buf.window().cloned().collect();
        let mut restored = NStepBuffer::new(4, 0.9);
        restored.load_window(saved).unwrap();
        assert_eq!(restored.pending(), 2);
        let (a, b) = (buf.flush(), restored.flush());
        assert_eq!(a, b);
        // A window as long as the horizon cannot have come from push().
        let mut bad = NStepBuffer::new(2, 0.9);
        let too_long = vec![tr(0, 1.0, false), tr(1, 1.0, false)];
        assert!(bad.load_window(too_long).is_err());
    }

    #[test]
    #[should_panic(expected = "must be positive")]
    fn zero_horizon_is_rejected() {
        let _: NStepBuffer<i32> = NStepBuffer::new(0, 0.9);
    }
}
