//! Prioritized experience replay (Schaul et al., 2016).
//!
//! Transitions are stored in a ring buffer; sampling probability is
//! proportional to `priority^alpha`, maintained in a sum tree so sampling and
//! priority updates are O(log n). Samples carry importance-sampling weights
//! `(N * P(i))^-beta`, normalised by the maximum weight in the batch.

use rand::rngs::StdRng;
use rand::Rng;

/// A replay configuration a buffer (or trainer) cannot be built from.
///
/// Surfaced as a `Result` so callers driving many generated configurations
/// (scenario TOMLs, soak sweeps) can skip a bad one with a message instead of
/// aborting the whole run.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ReplayConfigError {
    /// The requested capacity was zero.
    ZeroCapacity,
    /// The capacity cannot cover the n-step horizon: an id still pending in
    /// the n-step window could be evicted from replay first, breaking the
    /// arena's reference counting.
    CapacityBelowHorizon {
        /// The requested replay capacity.
        capacity: usize,
        /// The configured n-step horizon.
        n_step: usize,
    },
}

impl std::fmt::Display for ReplayConfigError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            ReplayConfigError::ZeroCapacity => write!(f, "replay capacity must be positive"),
            ReplayConfigError::CapacityBelowHorizon { capacity, n_step } => write!(
                f,
                "replay capacity must cover the n-step horizon \
                 (capacity {capacity} < n_step {n_step})"
            ),
        }
    }
}

impl std::error::Error for ReplayConfigError {}

/// A binary sum tree over leaf priorities.
#[derive(Debug, Clone)]
struct SumTree {
    capacity: usize,
    nodes: Vec<f64>,
}

impl SumTree {
    fn new(capacity: usize) -> Self {
        Self {
            capacity,
            nodes: vec![0.0; 2 * capacity],
        }
    }

    fn total(&self) -> f64 {
        self.nodes[1]
    }

    fn set(&mut self, index: usize, priority: f64) {
        let mut i = index + self.capacity;
        self.nodes[i] = priority;
        i /= 2;
        while i >= 1 {
            self.nodes[i] = self.nodes[2 * i] + self.nodes[2 * i + 1];
            if i == 1 {
                break;
            }
            i /= 2;
        }
    }

    fn get(&self, index: usize) -> f64 {
        self.nodes[index + self.capacity]
    }

    /// Finds the leaf index whose cumulative priority interval contains `value`.
    fn find(&self, mut value: f64) -> usize {
        let mut i = 1;
        while i < self.capacity {
            let left = 2 * i;
            if value <= self.nodes[left] || self.nodes[left + 1] <= 0.0 {
                i = left;
            } else {
                value -= self.nodes[left];
                i = left + 1;
            }
        }
        i - self.capacity
    }
}

/// A prioritized replay buffer.
#[derive(Debug, Clone)]
pub struct PrioritizedReplay<T> {
    capacity: usize,
    alpha: f64,
    items: Vec<Option<T>>,
    tree: SumTree,
    next_slot: usize,
    len: usize,
    max_priority: f64,
}

impl<T: Clone> PrioritizedReplay<T> {
    /// Creates a buffer holding at most `capacity` transitions.
    ///
    /// `alpha` controls how strongly priorities skew sampling (0 = uniform).
    ///
    /// # Panics
    ///
    /// Panics if `capacity` is zero.
    pub fn new(capacity: usize, alpha: f64) -> Self {
        match Self::try_new(capacity, alpha) {
            Ok(buf) => buf,
            Err(e) => panic!("{e}"),
        }
    }

    /// Fallible form of [`PrioritizedReplay::new`]: returns a typed error
    /// instead of panicking on a zero capacity.
    pub fn try_new(capacity: usize, alpha: f64) -> Result<Self, ReplayConfigError> {
        if capacity == 0 {
            return Err(ReplayConfigError::ZeroCapacity);
        }
        let capacity = capacity.next_power_of_two();
        Ok(Self {
            capacity,
            alpha,
            items: vec![None; capacity],
            tree: SumTree::new(capacity),
            next_slot: 0,
            len: 0,
            max_priority: 1.0,
        })
    }

    /// Number of stored transitions.
    pub fn len(&self) -> usize {
        self.len
    }

    /// Whether the buffer is empty.
    pub fn is_empty(&self) -> bool {
        self.len == 0
    }

    /// Maximum number of transitions the buffer can hold.
    pub fn capacity(&self) -> usize {
        self.capacity
    }

    /// Adds a transition with maximal priority (so new experience is sampled
    /// at least once before its priority is refined). When the ring is full,
    /// returns the transition this push evicted, so the caller can release
    /// whatever external storage (e.g. an arena slot) it referenced.
    pub fn push(&mut self, item: T) -> Option<T> {
        let slot = self.next_slot;
        let evicted = self.items[slot].replace(item);
        self.tree.set(slot, self.max_priority.powf(self.alpha));
        self.next_slot = (self.next_slot + 1) % self.capacity;
        self.len = (self.len + 1).min(self.capacity);
        evicted
    }

    /// Samples `batch` buffer indices with probability proportional to
    /// priority, without cloning the stored transitions (pair with
    /// [`PrioritizedReplay::get`] on the hot path).
    ///
    /// `beta` is the importance-sampling exponent (1 fully corrects the
    /// sampling bias). Returns fewer than `batch` entries only if the buffer
    /// holds fewer transitions.
    pub fn sample_indices(&self, batch: usize, beta: f64, rng: &mut StdRng) -> Vec<(usize, f64)> {
        if self.is_empty() || self.tree.total() <= 0.0 {
            return Vec::new();
        }
        let batch = batch.min(self.len);
        let total = self.tree.total();
        let mut max_weight: f64 = 0.0;
        let mut raw = Vec::with_capacity(batch);
        for _ in 0..batch {
            let target = rng.gen_range(0.0..total);
            let mut index = self.tree.find(target);
            // Guard against landing on an empty slot due to rounding.
            if self.items[index].is_none() {
                index = rng.gen_range(0..self.len);
            }
            let priority = self.tree.get(index).max(1e-12);
            let prob = priority / total;
            let weight = (self.len as f64 * prob).powf(-beta);
            max_weight = max_weight.max(weight);
            raw.push((index, weight));
        }
        for entry in &mut raw {
            entry.1 = if max_weight > 0.0 {
                entry.1 / max_weight
            } else {
                1.0
            };
        }
        raw
    }

    /// The stored transition at a sampled index.
    ///
    /// # Panics
    ///
    /// Panics if the slot is empty (an index not returned by
    /// [`PrioritizedReplay::sample_indices`]).
    pub fn get(&self, index: usize) -> &T {
        self.items[index]
            .as_ref()
            .expect("sampled index must hold an item")
    }

    /// Updates the priority of a stored transition (typically to its most
    /// recent absolute TD error).
    pub fn update_priority(&mut self, index: usize, priority: f64) {
        let priority = priority.abs().max(1e-6);
        self.max_priority = self.max_priority.max(priority);
        self.tree.set(index, priority.powf(self.alpha));
    }

    /// The priority exponent α (checkpoint encoding).
    pub fn alpha(&self) -> f64 {
        self.alpha
    }

    /// The ring cursor: the slot the next push writes to.
    pub fn next_slot(&self) -> usize {
        self.next_slot
    }

    /// The running maximum priority new pushes inherit.
    pub fn max_priority(&self) -> f64 {
        self.max_priority
    }

    /// The raw ring slot at `index` (occupied or not), unlike
    /// [`PrioritizedReplay::get`] which panics on empty slots. Checkpoint
    /// encoding and invariant sweeps walk every slot in `0..capacity`.
    pub fn slot(&self, index: usize) -> Option<&T> {
        self.items[index].as_ref()
    }

    /// The sum-tree leaf value (already α-exponentiated) at a slot.
    pub fn leaf_priority(&self, index: usize) -> f64 {
        self.tree.get(index)
    }

    /// Rebuilds a buffer from storage captured via the accessors above.
    ///
    /// The sum tree is rebuilt leaf by leaf; every internal node ends up as
    /// the sum of its children's *final* values, computed with the same
    /// left-to-right f64 additions as the incremental build, so the restored
    /// tree — and therefore every future sampling draw — is bit-identical to
    /// the saved one. The error string names the first violated invariant.
    pub fn from_parts(
        alpha: f64,
        items: Vec<Option<T>>,
        leaf_priorities: &[f64],
        next_slot: usize,
        len: usize,
        max_priority: f64,
    ) -> Result<Self, String> {
        let capacity = items.len();
        if capacity == 0 || !capacity.is_power_of_two() {
            return Err(format!("replay capacity {capacity} is not a power of two"));
        }
        if leaf_priorities.len() != capacity {
            return Err(format!(
                "{} leaf priorities for {capacity} slots",
                leaf_priorities.len()
            ));
        }
        if next_slot >= capacity {
            return Err(format!(
                "ring cursor {next_slot} out of range ({capacity} slots)"
            ));
        }
        let occupied = items.iter().filter(|i| i.is_some()).count();
        if occupied != len {
            return Err(format!("len {len} but {occupied} occupied slots"));
        }
        let mut tree = SumTree::new(capacity);
        for (index, &priority) in leaf_priorities.iter().enumerate() {
            if !priority.is_finite() || priority < 0.0 {
                return Err(format!("leaf priority {priority} at slot {index}"));
            }
            tree.set(index, priority);
        }
        Ok(Self {
            capacity,
            alpha,
            items,
            tree,
            next_slot,
            len,
            max_priority,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::SeedableRng;

    #[test]
    fn push_and_len_respect_capacity_and_report_evictions() {
        let mut buf: PrioritizedReplay<u32> = PrioritizedReplay::new(4, 0.6);
        assert!(buf.is_empty());
        for i in 0..4 {
            assert_eq!(buf.push(i), None, "no eviction while the ring fills");
        }
        for i in 4..10u32 {
            // The ring overwrites oldest-first, so push i evicts i - capacity.
            assert_eq!(buf.push(i), Some(i - 4));
        }
        assert_eq!(buf.len(), 4);
        assert_eq!(buf.capacity(), 4);
    }

    #[test]
    fn sampling_returns_requested_batch_with_weights() {
        let mut buf = PrioritizedReplay::new(64, 0.6);
        for i in 0..50u32 {
            buf.push(i);
        }
        let mut rng = StdRng::seed_from_u64(0);
        let batch = buf.sample_indices(16, 0.4, &mut rng);
        assert_eq!(batch.len(), 16);
        for (index, weight) in &batch {
            assert!(*weight > 0.0 && *weight <= 1.0 + 1e-9);
            assert!(*buf.get(*index) < 50);
        }
    }

    #[test]
    fn empty_buffer_samples_nothing() {
        let buf: PrioritizedReplay<u32> = PrioritizedReplay::new(8, 0.5);
        let mut rng = StdRng::seed_from_u64(1);
        assert!(buf.sample_indices(4, 0.4, &mut rng).is_empty());
    }

    #[test]
    fn high_priority_items_are_sampled_more_often() {
        let mut buf = PrioritizedReplay::new(8, 1.0);
        for i in 0..8u32 {
            buf.push(i);
        }
        // Give item 3 a much higher priority than the rest.
        for i in 0..8 {
            buf.update_priority(i, if i == 3 { 10.0 } else { 0.1 });
        }
        let mut rng = StdRng::seed_from_u64(2);
        let mut count_3 = 0;
        let mut total = 0;
        for _ in 0..200 {
            for (index, _) in buf.sample_indices(4, 0.4, &mut rng) {
                total += 1;
                if *buf.get(index) == 3 {
                    count_3 += 1;
                }
            }
        }
        let frac = count_3 as f64 / total as f64;
        assert!(
            frac > 0.5,
            "high-priority item sampled only {frac:.2} of the time"
        );
    }

    #[test]
    fn importance_weights_penalise_over_sampled_items() {
        let mut buf = PrioritizedReplay::new(8, 1.0);
        for i in 0..8u32 {
            buf.push(i);
        }
        for i in 0..8 {
            buf.update_priority(i, if i == 0 { 5.0 } else { 0.5 });
        }
        let mut rng = StdRng::seed_from_u64(3);
        let batch = buf.sample_indices(8, 1.0, &mut rng);
        let w_hot = batch
            .iter()
            .filter(|(i, _)| *buf.get(*i) == 0)
            .map(|(_, w)| *w)
            .fold(f64::NAN, f64::min);
        let w_cold = batch
            .iter()
            .filter(|(i, _)| *buf.get(*i) != 0)
            .map(|(_, w)| *w)
            .fold(0.0, f64::max);
        if w_hot.is_finite() && w_cold > 0.0 {
            assert!(w_hot <= w_cold + 1e-9);
        }
    }

    #[test]
    #[should_panic(expected = "capacity must be positive")]
    fn zero_capacity_is_rejected() {
        let _: PrioritizedReplay<u32> = PrioritizedReplay::new(0, 0.5);
    }

    #[test]
    fn try_new_reports_zero_capacity_as_a_typed_error() {
        assert_eq!(
            PrioritizedReplay::<u32>::try_new(0, 0.5).unwrap_err(),
            ReplayConfigError::ZeroCapacity
        );
        assert!(PrioritizedReplay::<u32>::try_new(3, 0.5).is_ok());
    }

    #[test]
    fn from_parts_restores_sampling_bit_for_bit() {
        let mut buf = PrioritizedReplay::new(16, 0.7);
        for i in 0..23u32 {
            buf.push(i);
        }
        for i in 0..8 {
            buf.update_priority(i, 0.3 + i as f64);
        }
        let items: Vec<Option<u32>> = (0..buf.capacity()).map(|i| buf.slot(i).copied()).collect();
        let leaves: Vec<f64> = (0..buf.capacity()).map(|i| buf.leaf_priority(i)).collect();
        let restored = PrioritizedReplay::from_parts(
            buf.alpha(),
            items,
            &leaves,
            buf.next_slot(),
            buf.len(),
            buf.max_priority(),
        )
        .unwrap();
        // Identical draws from identical RNG states: the rebuilt tree must
        // route every sample to the same slot with the same weight bits.
        let mut rng_a = StdRng::seed_from_u64(99);
        let mut rng_b = StdRng::seed_from_u64(99);
        for _ in 0..50 {
            let a = buf.sample_indices(8, 0.6, &mut rng_a);
            let b = restored.sample_indices(8, 0.6, &mut rng_b);
            assert_eq!(a.len(), b.len());
            for ((ia, wa), (ib, wb)) in a.iter().zip(&b) {
                assert_eq!(ia, ib);
                assert_eq!(wa.to_bits(), wb.to_bits());
            }
        }
    }

    #[test]
    fn from_parts_rejects_malformed_snapshots() {
        // Non-power-of-two capacity.
        assert!(
            PrioritizedReplay::from_parts(0.5, vec![Some(1u32); 3], &[0.0; 3], 0, 3, 1.0).is_err()
        );
        // Leaf count mismatch.
        assert!(
            PrioritizedReplay::from_parts(0.5, vec![Some(1u32); 4], &[0.0; 3], 0, 4, 1.0).is_err()
        );
        // Cursor out of range.
        assert!(
            PrioritizedReplay::from_parts(0.5, vec![Some(1u32); 4], &[0.0; 4], 4, 4, 1.0).is_err()
        );
        // Occupancy/len disagreement.
        assert!(
            PrioritizedReplay::from_parts(0.5, vec![Some(1u32), None], &[0.0; 2], 0, 2, 1.0)
                .is_err()
        );
        // Negative / non-finite priorities.
        assert!(PrioritizedReplay::from_parts(
            0.5,
            vec![Some(1u32), None],
            &[-1.0, 0.0],
            0,
            1,
            1.0
        )
        .is_err());
        assert!(PrioritizedReplay::from_parts(
            0.5,
            vec![Some(1u32), None],
            &[f64::NAN, 0.0],
            0,
            1,
            1.0
        )
        .is_err());
    }
}
