//! Exploration and annealing schedules.

use serde::{Deserialize, Serialize};

/// An exponentially decaying ε-greedy schedule.
///
/// ε starts at `start`, is multiplied by `decay` on every call to
/// [`EpsilonSchedule::step`], and never falls below `end`. The paper's grid
/// search considers decay rates of 0.999 and 0.9999 per episode.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct EpsilonSchedule {
    start: f64,
    end: f64,
    decay: f64,
    current: f64,
}

impl EpsilonSchedule {
    /// Creates a schedule from `start` decaying by `decay` per step toward
    /// `end`.
    ///
    /// # Panics
    ///
    /// Panics if the parameters are outside `[0, 1]` or `end > start`.
    pub fn new(start: f64, end: f64, decay: f64) -> Self {
        assert!((0.0..=1.0).contains(&start), "start must be in [0, 1]");
        assert!((0.0..=1.0).contains(&end), "end must be in [0, 1]");
        assert!((0.0..=1.0).contains(&decay), "decay must be in [0, 1]");
        assert!(end <= start, "end must not exceed start");
        Self {
            start,
            end,
            decay,
            current: start,
        }
    }

    /// The paper's selected schedule: ε from 1.0 to 0.05 with a 0.999 decay.
    pub fn paper() -> Self {
        Self::new(1.0, 0.05, 0.999)
    }

    /// Current ε.
    pub fn value(&self) -> f64 {
        self.current
    }

    /// Decays ε by one step and returns the new value.
    pub fn step(&mut self) -> f64 {
        self.current = (self.current * self.decay).max(self.end);
        self.current
    }

    /// Resets ε to its starting value.
    pub fn reset(&mut self) {
        self.current = self.start;
    }

    /// Restores the current ε from a checkpoint. The value is stored as raw
    /// f64 bits on disk, so the restored schedule continues decaying from the
    /// exact position the saved run reached.
    ///
    /// # Panics
    ///
    /// Panics if `current` falls outside `[end, start]` — a checkpointed ε
    /// always lies in that interval.
    pub fn restore_current(&mut self, current: f64) {
        assert!(
            (self.end..=self.start).contains(&current),
            "restored epsilon {current} outside [{}, {}]",
            self.end,
            self.start
        );
        self.current = current;
    }
}

/// A linear interpolation schedule, used for annealing the prioritized-replay
/// importance exponent β from its initial value to 1.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct LinearSchedule {
    start: f64,
    end: f64,
    steps: u64,
    current_step: u64,
}

impl LinearSchedule {
    /// Creates a schedule moving from `start` to `end` over `steps` steps.
    pub fn new(start: f64, end: f64, steps: u64) -> Self {
        Self {
            start,
            end,
            steps: steps.max(1),
            current_step: 0,
        }
    }

    /// Current value.
    pub fn value(&self) -> f64 {
        let frac = (self.current_step as f64 / self.steps as f64).min(1.0);
        self.start + (self.end - self.start) * frac
    }

    /// Advances the schedule by one step and returns the new value.
    pub fn step(&mut self) -> f64 {
        self.current_step = self.current_step.saturating_add(1);
        self.value()
    }

    /// Steps taken so far (checkpoint encoding).
    pub fn current_step(&self) -> u64 {
        self.current_step
    }

    /// Restores the step position from a checkpoint; [`LinearSchedule::value`]
    /// resumes from exactly where the saved run stopped.
    pub fn restore_current_step(&mut self, current_step: u64) {
        self.current_step = current_step;
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn epsilon_decays_to_floor() {
        let mut eps = EpsilonSchedule::new(1.0, 0.1, 0.5);
        assert_eq!(eps.value(), 1.0);
        assert_eq!(eps.step(), 0.5);
        assert_eq!(eps.step(), 0.25);
        assert_eq!(eps.step(), 0.125);
        assert_eq!(eps.step(), 0.1);
        assert_eq!(eps.step(), 0.1);
        eps.reset();
        assert_eq!(eps.value(), 1.0);
    }

    #[test]
    fn paper_schedule_parameters() {
        let eps = EpsilonSchedule::paper();
        assert_eq!(eps.value(), 1.0);
    }

    #[test]
    #[should_panic(expected = "end must not exceed start")]
    fn invalid_epsilon_bounds_are_rejected() {
        let _ = EpsilonSchedule::new(0.1, 0.5, 0.9);
    }

    #[test]
    fn schedules_restore_to_exact_positions() {
        let mut eps = EpsilonSchedule::new(1.0, 0.05, 0.999);
        for _ in 0..37 {
            eps.step();
        }
        let saved = eps.value();
        let mut restored = EpsilonSchedule::new(1.0, 0.05, 0.999);
        restored.restore_current(saved);
        assert_eq!(restored.step().to_bits(), eps.step().to_bits());

        let mut beta = LinearSchedule::new(0.4, 1.0, 100);
        for _ in 0..12 {
            beta.step();
        }
        let mut restored = LinearSchedule::new(0.4, 1.0, 100);
        restored.restore_current_step(beta.current_step());
        assert_eq!(restored.value().to_bits(), beta.value().to_bits());
        assert_eq!(restored.current_step(), 12);
    }

    #[test]
    #[should_panic(expected = "outside")]
    fn epsilon_restore_rejects_out_of_range_values() {
        let mut eps = EpsilonSchedule::new(1.0, 0.05, 0.999);
        eps.restore_current(1.5);
    }

    #[test]
    fn linear_schedule_interpolates_and_saturates() {
        let mut beta = LinearSchedule::new(0.4, 1.0, 3);
        assert!((beta.value() - 0.4).abs() < 1e-12);
        assert!((beta.step() - 0.6).abs() < 1e-12);
        assert!((beta.step() - 0.8).abs() < 1e-12);
        assert!((beta.step() - 1.0).abs() < 1e-12);
        assert!((beta.step() - 1.0).abs() < 1e-12);
    }
}
