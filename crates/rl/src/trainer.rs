//! The DQN trainer: bookkeeping that ties replay, n-step returns and
//! schedules together.
//!
//! The trainer is generic over the state representation, but it no longer
//! *stores* states inside transitions: encoded states live once in a
//! reference-counted [`FeatureArena`] and every n-step transition holds two
//! [`FeatureId`]s. Consecutive transitions share states (the state reached
//! at step `t` is one window's `final_state` and another's `state`), so the
//! arena halves steady-state replay memory, and minibatch assembly becomes
//! an index gather instead of per-sample feature clones.
//!
//! The caller owns the Q-networks; the trainer decides *when* to train,
//! *what* to train on and *when* to refresh the target network, and receives
//! TD errors back to keep the replay priorities current.

use crate::arena::{FeatureArena, FeatureId};
use crate::nstep::{NStepBuffer, NStepTransition, Transition};
use crate::replay::{PrioritizedReplay, ReplayConfigError};
use crate::schedule::{EpsilonSchedule, LinearSchedule};
use rand::rngs::StdRng;
use serde::{Deserialize, Serialize};

/// Hyper-parameters of the augmented DQN of §4.2.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct DqnConfig {
    /// Discount factor γ.
    pub gamma: f64,
    /// n-step TD horizon (the paper uses n = 8).
    pub n_step: usize,
    /// Batch size (the paper uses 64).
    pub batch_size: usize,
    /// Replay buffer capacity.
    pub buffer_capacity: usize,
    /// Environment steps between gradient updates.
    pub update_every: u64,
    /// Gradient updates between target-network refreshes (the paper's grid
    /// search selects 5 000).
    pub target_update_interval: u64,
    /// Minimum number of stored transitions before training starts.
    pub warmup_transitions: usize,
    /// Prioritized replay exponent α.
    pub priority_alpha: f64,
    /// Initial importance-sampling exponent β (annealed to 1).
    pub priority_beta_start: f64,
    /// Number of updates over which β anneals to 1.
    pub priority_beta_steps: u64,
    /// ε-greedy starting value.
    pub epsilon_start: f64,
    /// ε-greedy floor.
    pub epsilon_end: f64,
    /// ε decay factor applied once per episode (the paper's selected value is
    /// 0.999).
    pub epsilon_decay: f64,
}

impl DqnConfig {
    /// The paper's training hyper-parameters (γ = 0.9995, n = 8, batch 64,
    /// target update every 5 000 updates, ε decay 0.999).
    pub fn paper() -> Self {
        Self {
            gamma: 0.9995,
            n_step: 8,
            batch_size: 64,
            buffer_capacity: 1 << 17,
            update_every: 8,
            target_update_interval: 5_000,
            warmup_transitions: 1_000,
            priority_alpha: 0.6,
            priority_beta_start: 0.4,
            priority_beta_steps: 100_000,
            epsilon_start: 1.0,
            epsilon_end: 0.05,
            epsilon_decay: 0.999,
        }
    }

    /// A small-scale configuration suitable for CPU smoke training: shorter
    /// warm-up and more frequent target refreshes.
    pub fn smoke() -> Self {
        Self {
            buffer_capacity: 1 << 14,
            update_every: 16,
            target_update_interval: 500,
            warmup_transitions: 200,
            priority_beta_steps: 5_000,
            ..Self::paper()
        }
    }
}

impl Default for DqnConfig {
    fn default() -> Self {
        Self::paper()
    }
}

/// Bookkeeping for augmented DQN training.
///
/// `Clone` is derived so evaluation harnesses can snapshot a trained agent
/// (replay contents and feature arena included) per rollout worker.
#[derive(Debug, Clone)]
pub struct DqnTrainer<S> {
    config: DqnConfig,
    arena: FeatureArena<S>,
    replay: PrioritizedReplay<NStepTransition<FeatureId>>,
    nstep: NStepBuffer<FeatureId>,
    epsilon: EpsilonSchedule,
    beta: LinearSchedule,
    env_steps: u64,
    updates: u64,
    updates_since_sync: u64,
}

impl<S> DqnTrainer<S> {
    /// Creates a trainer from a configuration.
    ///
    /// # Panics
    ///
    /// Panics if the replay capacity is smaller than the n-step horizon:
    /// the arena's reference counting assumes an id still pending in the
    /// n-step window cannot be evicted from replay first.
    pub fn new(config: DqnConfig) -> Self {
        match Self::try_new(config) {
            Ok(trainer) => trainer,
            Err(e) => panic!("{e}"),
        }
    }

    /// Fallible form of [`DqnTrainer::new`]: a configuration whose replay
    /// capacity cannot cover the n-step horizon (for example from a
    /// hand-written scenario TOML) comes back as a typed error instead of
    /// aborting the process.
    pub fn try_new(config: DqnConfig) -> Result<Self, ReplayConfigError> {
        if config.buffer_capacity < config.n_step {
            return Err(ReplayConfigError::CapacityBelowHorizon {
                capacity: config.buffer_capacity,
                n_step: config.n_step,
            });
        }
        Ok(Self {
            arena: FeatureArena::new(),
            replay: PrioritizedReplay::try_new(config.buffer_capacity, config.priority_alpha)?,
            nstep: NStepBuffer::new(config.n_step, config.gamma),
            epsilon: EpsilonSchedule::new(
                config.epsilon_start,
                config.epsilon_end,
                config.epsilon_decay,
            ),
            beta: LinearSchedule::new(config.priority_beta_start, 1.0, config.priority_beta_steps),
            env_steps: 0,
            updates: 0,
            updates_since_sync: 0,
            config,
        })
    }

    /// The trainer's configuration.
    pub fn config(&self) -> &DqnConfig {
        &self.config
    }

    /// Current exploration rate.
    pub fn epsilon(&self) -> f64 {
        self.epsilon.value()
    }

    /// Decays the exploration rate (call once per episode).
    pub fn end_episode(&mut self) {
        self.epsilon.step();
        // Flush any partial n-step windows so no experience is lost.
        for t in self.nstep.flush() {
            self.store(t);
        }
    }

    /// Number of transitions stored in the replay buffer.
    pub fn buffered(&self) -> usize {
        self.replay.len()
    }

    /// Total environment steps observed.
    pub fn env_steps(&self) -> u64 {
        self.env_steps
    }

    /// Total gradient updates performed (as reported via
    /// [`DqnTrainer::record_update`]).
    pub fn updates(&self) -> u64 {
        self.updates
    }

    /// Stores an encoded state in the feature arena, returning the id that
    /// transitions reference it by. Each decision point is interned exactly
    /// once — as the next state of one transition *and* the current state of
    /// the following one.
    ///
    /// Every interned id is expected to reach [`DqnTrainer::observe`] (as
    /// `state` or `next_state`): slots are freed by the reference counting
    /// that replay eviction drives, so an id that never enters a transition
    /// occupies its slot until the trainer is dropped. Don't intern
    /// speculatively.
    pub fn intern(&mut self, features: S) -> FeatureId {
        self.arena.intern(features)
    }

    /// The encoded state behind an arena id (the minibatch gather).
    pub fn features(&self, id: FeatureId) -> &S {
        self.arena.get(id)
    }

    /// Number of live feature sets in the arena. The pre-arena layout held
    /// two owned feature sets per replay transition; the arena holds about
    /// one per *distinct* decision point, i.e. about half that.
    pub fn arena_live(&self) -> usize {
        self.arena.live()
    }

    /// Records a single-step transition (by arena ids) from the environment.
    pub fn observe(&mut self, transition: Transition<FeatureId>) {
        self.env_steps += 1;
        for t in self.nstep.push(transition) {
            self.store(t);
        }
    }

    /// Moves an emitted n-step transition into replay, keeping the arena's
    /// reference counts in sync: the new entry's two ids are retained, and
    /// the ring eviction (if any) releases its entry's ids — freeing arena
    /// slots the moment no replay entry references them.
    fn store(&mut self, transition: NStepTransition<FeatureId>) {
        self.arena.retain(transition.state);
        self.arena.retain(transition.final_state);
        if let Some(evicted) = self.replay.push(transition) {
            self.arena.release(evicted.state);
            self.arena.release(evicted.final_state);
        }
    }

    /// Whether enough experience has accumulated and enough environment steps
    /// have elapsed for the caller to run a gradient update now.
    pub fn should_update(&self) -> bool {
        self.replay.len() >= self.config.warmup_transitions
            && self.env_steps.is_multiple_of(self.config.update_every)
    }

    /// Samples a prioritized batch as `(replay index, importance weight)`
    /// pairs without cloning anything; resolve each index with
    /// [`DqnTrainer::transition`] and its states with
    /// [`DqnTrainer::features`].
    pub fn sample_batch_indices(&mut self, rng: &mut StdRng) -> Vec<(usize, f64)> {
        let beta = self.beta.value();
        self.replay
            .sample_indices(self.config.batch_size, beta, rng)
    }

    /// The stored n-step transition at a replay index returned by
    /// [`DqnTrainer::sample_batch_indices`].
    pub fn transition(&self, index: usize) -> &NStepTransition<FeatureId> {
        self.replay.get(index)
    }

    /// Reports the absolute TD errors of a just-trained batch so replay
    /// priorities stay current, and advances the update counters.
    ///
    /// Returns `true` when the caller should copy the online network into the
    /// target network.
    pub fn record_update(&mut self, indexed_errors: &[(usize, f64)]) -> bool {
        for (index, error) in indexed_errors {
            self.replay.update_priority(*index, *error);
        }
        self.updates += 1;
        self.updates_since_sync += 1;
        self.beta.step();
        if self.updates_since_sync >= self.config.target_update_interval {
            self.updates_since_sync = 0;
            true
        } else {
            false
        }
    }

    /// Discount to apply to the bootstrap term of an n-step transition.
    pub fn bootstrap_discount(&self, transition: &NStepTransition<FeatureId>) -> f64 {
        transition.bootstrap_discount(self.config.gamma)
    }

    /// The feature arena (checkpoint encoding and invariant sweeps).
    pub fn arena(&self) -> &FeatureArena<S> {
        &self.arena
    }

    /// The replay ring (checkpoint encoding and invariant sweeps).
    pub fn replay(&self) -> &PrioritizedReplay<NStepTransition<FeatureId>> {
        &self.replay
    }

    /// The pending n-step window, oldest first (checkpoint encoding; empty
    /// right after [`DqnTrainer::end_episode`]).
    pub fn nstep_window(&self) -> impl Iterator<Item = &Transition<FeatureId>> {
        self.nstep.window()
    }

    /// The scalar counters a checkpoint must carry.
    pub fn counters(&self) -> TrainerCounters {
        TrainerCounters {
            epsilon_current: self.epsilon.value(),
            beta_current_step: self.beta.current_step(),
            env_steps: self.env_steps,
            updates: self.updates,
            updates_since_sync: self.updates_since_sync,
        }
    }

    /// Restores the trainer's full mutable state from checkpoint parts: the
    /// arena, the replay ring, the pending n-step window and the scalar
    /// counters. The configuration (and thus horizons, schedules and
    /// capacities) stays as constructed; parts that contradict it are
    /// rejected with a message naming the mismatch.
    pub fn restore(
        &mut self,
        arena: FeatureArena<S>,
        replay: PrioritizedReplay<NStepTransition<FeatureId>>,
        window: Vec<Transition<FeatureId>>,
        counters: TrainerCounters,
    ) -> Result<(), String> {
        let expected = self.replay.capacity();
        if replay.capacity() != expected {
            return Err(format!(
                "replay capacity {} does not match the configured {expected}",
                replay.capacity()
            ));
        }
        self.nstep.load_window(window)?;
        self.arena = arena;
        self.replay = replay;
        self.epsilon.restore_current(counters.epsilon_current);
        self.beta.restore_current_step(counters.beta_current_step);
        self.env_steps = counters.env_steps;
        self.updates = counters.updates;
        self.updates_since_sync = counters.updates_since_sync;
        Ok(())
    }
}

/// The scalar state of a [`DqnTrainer`] captured in a checkpoint: schedule
/// positions and step/update counters. Everything else the trainer owns
/// (arena, replay ring, n-step window) is structural and travels separately.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct TrainerCounters {
    /// Current ε of the exploration schedule.
    pub epsilon_current: f64,
    /// Steps taken by the β annealing schedule.
    pub beta_current_step: u64,
    /// Total environment steps observed.
    pub env_steps: u64,
    /// Total gradient updates recorded.
    pub updates: u64,
    /// Updates since the last target-network sync.
    pub updates_since_sync: u64,
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::SeedableRng;

    /// Drives the trainer like the agent does: each decision point is
    /// interned once and reused as the next transition's start state.
    struct Driver {
        last: Option<FeatureId>,
    }

    impl Driver {
        fn new() -> Self {
            Self { last: None }
        }

        fn step(&mut self, trainer: &mut DqnTrainer<u64>, step: u64, done: bool) {
            let state = match self.last.take() {
                Some(id) => id,
                None => trainer.intern(step),
            };
            let next_state = trainer.intern(step + 1);
            trainer.observe(Transition {
                state,
                action: (step % 3) as usize,
                reward: 1.0,
                next_state,
                done,
            });
            self.last = if done { None } else { Some(next_state) };
        }
    }

    #[test]
    fn paper_config_values() {
        let cfg = DqnConfig::paper();
        assert_eq!(cfg.gamma, 0.9995);
        assert_eq!(cfg.n_step, 8);
        assert_eq!(cfg.batch_size, 64);
        assert_eq!(cfg.target_update_interval, 5_000);
        assert_eq!(cfg.epsilon_decay, 0.999);
        assert_eq!(DqnConfig::default(), DqnConfig::paper());
    }

    #[test]
    fn warmup_gates_training() {
        let cfg = DqnConfig {
            warmup_transitions: 20,
            update_every: 1,
            n_step: 1,
            ..DqnConfig::smoke()
        };
        let mut trainer: DqnTrainer<u64> = DqnTrainer::new(cfg);
        let mut driver = Driver::new();
        for i in 0..10 {
            driver.step(&mut trainer, i, false);
            assert!(!trainer.should_update());
        }
        for i in 10..40 {
            driver.step(&mut trainer, i, false);
        }
        assert!(trainer.should_update());
        assert_eq!(trainer.env_steps(), 40);
        assert!(trainer.buffered() >= 20);
    }

    #[test]
    fn sampling_and_priority_updates_round_trip() {
        let cfg = DqnConfig {
            warmup_transitions: 5,
            update_every: 1,
            n_step: 2,
            batch_size: 8,
            target_update_interval: 3,
            ..DqnConfig::smoke()
        };
        let mut trainer: DqnTrainer<u64> = DqnTrainer::new(cfg);
        let mut driver = Driver::new();
        for i in 0..50 {
            driver.step(&mut trainer, i, i % 25 == 24);
        }
        let mut rng = StdRng::seed_from_u64(0);
        let batch = trainer.sample_batch_indices(&mut rng);
        assert_eq!(batch.len(), 8);
        // Sampled transitions resolve through the arena: the stored value is
        // the step the window started from, the final state is `steps`
        // later (both interned exactly once).
        for (index, _) in &batch {
            let t = trainer.transition(*index);
            let state = *trainer.features(t.state);
            let final_state = *trainer.features(t.final_state);
            assert_eq!(final_state, state + t.steps as u64);
        }
        let errors: Vec<(usize, f64)> = batch.iter().map(|(i, _)| (*i, 0.5)).collect();
        // Target sync fires after `target_update_interval` updates.
        assert!(!trainer.record_update(&errors));
        assert!(!trainer.record_update(&errors));
        assert!(trainer.record_update(&errors));
        assert!(!trainer.record_update(&errors));
        assert_eq!(trainer.updates(), 4);
    }

    #[test]
    fn end_episode_decays_epsilon_and_flushes() {
        let cfg = DqnConfig {
            n_step: 4,
            epsilon_decay: 0.5,
            ..DqnConfig::smoke()
        };
        let mut trainer: DqnTrainer<u64> = DqnTrainer::new(cfg);
        let mut driver = Driver::new();
        driver.step(&mut trainer, 0, false);
        driver.step(&mut trainer, 1, false);
        let before = trainer.buffered();
        let eps_before = trainer.epsilon();
        trainer.end_episode();
        assert!(trainer.buffered() > before);
        assert!(trainer.epsilon() < eps_before);
    }

    #[test]
    fn arena_holds_one_feature_set_per_decision_point() {
        // 40 steps in one episode: 41 distinct decision points, 40 n-step
        // windows. The pre-arena layout would have owned 80 feature sets.
        let cfg = DqnConfig {
            n_step: 4,
            ..DqnConfig::smoke()
        };
        let mut trainer: DqnTrainer<u64> = DqnTrainer::new(cfg);
        let mut driver = Driver::new();
        for i in 0..40 {
            driver.step(&mut trainer, i, i == 39);
        }
        assert_eq!(trainer.buffered(), 40);
        assert_eq!(trainer.arena_live(), 41);
        assert!(trainer.arena_live() <= trainer.buffered() + 1);
    }

    #[test]
    fn evicted_transitions_release_their_arena_slots() {
        // Capacity 8 ring: after hundreds of steps the arena must track the
        // ring contents, not the whole history.
        let cfg = DqnConfig {
            n_step: 2,
            buffer_capacity: 8,
            ..DqnConfig::smoke()
        };
        let mut trainer: DqnTrainer<u64> = DqnTrainer::new(cfg);
        let mut driver = Driver::new();
        for i in 0..300 {
            driver.step(&mut trainer, i, false);
        }
        assert_eq!(trainer.buffered(), 8);
        // 8 entries spanning n=2 steps each cover at most 8 + n + (window
        // in flight) distinct states.
        assert!(
            trainer.arena_live() <= 8 + 2 + 2,
            "arena leaked: {} live slots for 8 replay entries",
            trainer.arena_live()
        );
    }

    #[test]
    #[should_panic(expected = "capacity must cover")]
    fn capacity_below_horizon_is_rejected() {
        let cfg = DqnConfig {
            n_step: 8,
            buffer_capacity: 4,
            ..DqnConfig::smoke()
        };
        let _: DqnTrainer<u64> = DqnTrainer::new(cfg);
    }

    #[test]
    fn try_new_surfaces_bad_configs_as_typed_errors() {
        use crate::replay::ReplayConfigError;
        let cfg = DqnConfig {
            n_step: 8,
            buffer_capacity: 4,
            ..DqnConfig::smoke()
        };
        assert_eq!(
            DqnTrainer::<u64>::try_new(cfg).unwrap_err(),
            ReplayConfigError::CapacityBelowHorizon {
                capacity: 4,
                n_step: 8
            }
        );
        // A zero capacity is always below the horizon (n_step >= 1), so it
        // surfaces through the same typed error.
        let cfg = DqnConfig {
            n_step: 1,
            buffer_capacity: 0,
            ..DqnConfig::smoke()
        };
        assert_eq!(
            DqnTrainer::<u64>::try_new(cfg).unwrap_err(),
            ReplayConfigError::CapacityBelowHorizon {
                capacity: 0,
                n_step: 1
            }
        );
        assert!(DqnTrainer::<u64>::try_new(DqnConfig::smoke()).is_ok());
    }

    #[test]
    fn restore_reproduces_sampling_and_counters_bit_for_bit() {
        let cfg = DqnConfig {
            warmup_transitions: 5,
            update_every: 1,
            n_step: 3,
            batch_size: 8,
            ..DqnConfig::smoke()
        };
        let mut trainer: DqnTrainer<u64> = DqnTrainer::new(cfg);
        let mut driver = Driver::new();
        for i in 0..60 {
            driver.step(&mut trainer, i, i % 20 == 19);
        }
        trainer.end_episode();
        let mut rng = StdRng::seed_from_u64(5);
        let batch = trainer.sample_batch_indices(&mut rng);
        let errors: Vec<(usize, f64)> = batch.iter().map(|(i, _)| (*i, 1.5)).collect();
        trainer.record_update(&errors);

        // Capture parts exactly as the checkpoint codec does.
        let (slots, refs, free) = trainer.arena().parts();
        let arena = FeatureArena::from_parts(slots.to_vec(), refs.to_vec(), free.to_vec()).unwrap();
        let replay = trainer.replay();
        let items: Vec<Option<NStepTransition<FeatureId>>> = (0..replay.capacity())
            .map(|i| replay.slot(i).cloned())
            .collect();
        let leaves: Vec<f64> = (0..replay.capacity())
            .map(|i| replay.leaf_priority(i))
            .collect();
        let replay = PrioritizedReplay::from_parts(
            replay.alpha(),
            items,
            &leaves,
            replay.next_slot(),
            replay.len(),
            replay.max_priority(),
        )
        .unwrap();
        let window: Vec<Transition<FeatureId>> = trainer.nstep_window().cloned().collect();
        let counters = trainer.counters();

        let mut restored: DqnTrainer<u64> = DqnTrainer::new(cfg);
        restored.restore(arena, replay, window, counters).unwrap();
        assert_eq!(restored.counters(), trainer.counters());
        assert_eq!(restored.buffered(), trainer.buffered());
        assert_eq!(restored.arena_live(), trainer.arena_live());
        let mut rng_a = StdRng::seed_from_u64(77);
        let mut rng_b = StdRng::seed_from_u64(77);
        for _ in 0..20 {
            let a = trainer.sample_batch_indices(&mut rng_a);
            let b = restored.sample_batch_indices(&mut rng_b);
            assert_eq!(a.len(), b.len());
            for ((ia, wa), (ib, wb)) in a.iter().zip(&b) {
                assert_eq!(ia, ib);
                assert_eq!(wa.to_bits(), wb.to_bits());
            }
        }
    }

    #[test]
    fn restore_rejects_mismatched_replay_capacity() {
        let mut trainer: DqnTrainer<u64> = DqnTrainer::new(DqnConfig::smoke());
        let other = PrioritizedReplay::try_new(4, 0.6).unwrap();
        let err = trainer
            .restore(FeatureArena::new(), other, Vec::new(), trainer.counters())
            .unwrap_err();
        assert!(err.contains("does not match"), "{err}");
    }

    #[test]
    fn bootstrap_discount_respects_termination() {
        let mut trainer: DqnTrainer<u64> = DqnTrainer::new(DqnConfig {
            gamma: 0.9,
            ..DqnConfig::smoke()
        });
        let s0 = trainer.intern(0);
        let s3 = trainer.intern(3);
        let alive = NStepTransition {
            state: s0,
            action: 0,
            return_n: 1.0,
            final_state: s3,
            done: false,
            steps: 3,
        };
        let dead = NStepTransition {
            done: true,
            ..alive.clone()
        };
        assert!((trainer.bootstrap_discount(&alive) - 0.9f64.powi(3)).abs() < 1e-12);
        assert_eq!(trainer.bootstrap_discount(&dead), 0.0);
    }
}
