//! The DQN trainer: bookkeeping that ties replay, n-step returns and
//! schedules together.
//!
//! The trainer is generic over the state representation. The caller owns the
//! Q-networks; the trainer decides *when* to train, *what* to train on and
//! *when* to refresh the target network, and receives TD errors back to keep
//! the replay priorities current.

use crate::nstep::{NStepBuffer, NStepTransition, Transition};
use crate::replay::{PrioritizedReplay, Sampled};
use crate::schedule::{EpsilonSchedule, LinearSchedule};
use rand::rngs::StdRng;
use serde::{Deserialize, Serialize};

/// Hyper-parameters of the augmented DQN of §4.2.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct DqnConfig {
    /// Discount factor γ.
    pub gamma: f64,
    /// n-step TD horizon (the paper uses n = 8).
    pub n_step: usize,
    /// Batch size (the paper uses 64).
    pub batch_size: usize,
    /// Replay buffer capacity.
    pub buffer_capacity: usize,
    /// Environment steps between gradient updates.
    pub update_every: u64,
    /// Gradient updates between target-network refreshes (the paper's grid
    /// search selects 5 000).
    pub target_update_interval: u64,
    /// Minimum number of stored transitions before training starts.
    pub warmup_transitions: usize,
    /// Prioritized replay exponent α.
    pub priority_alpha: f64,
    /// Initial importance-sampling exponent β (annealed to 1).
    pub priority_beta_start: f64,
    /// Number of updates over which β anneals to 1.
    pub priority_beta_steps: u64,
    /// ε-greedy starting value.
    pub epsilon_start: f64,
    /// ε-greedy floor.
    pub epsilon_end: f64,
    /// ε decay factor applied once per episode (the paper's selected value is
    /// 0.999).
    pub epsilon_decay: f64,
}

impl DqnConfig {
    /// The paper's training hyper-parameters (γ = 0.9995, n = 8, batch 64,
    /// target update every 5 000 updates, ε decay 0.999).
    pub fn paper() -> Self {
        Self {
            gamma: 0.9995,
            n_step: 8,
            batch_size: 64,
            buffer_capacity: 1 << 17,
            update_every: 8,
            target_update_interval: 5_000,
            warmup_transitions: 1_000,
            priority_alpha: 0.6,
            priority_beta_start: 0.4,
            priority_beta_steps: 100_000,
            epsilon_start: 1.0,
            epsilon_end: 0.05,
            epsilon_decay: 0.999,
        }
    }

    /// A small-scale configuration suitable for CPU smoke training: shorter
    /// warm-up and more frequent target refreshes.
    pub fn smoke() -> Self {
        Self {
            buffer_capacity: 1 << 14,
            update_every: 16,
            target_update_interval: 500,
            warmup_transitions: 200,
            priority_beta_steps: 5_000,
            ..Self::paper()
        }
    }
}

impl Default for DqnConfig {
    fn default() -> Self {
        Self::paper()
    }
}

/// A training batch entry: an n-step transition plus its replay index and
/// importance weight.
pub type Batch<S> = Vec<Sampled<NStepTransition<S>>>;

/// Bookkeeping for augmented DQN training.
///
/// `Clone` is derived so evaluation harnesses can snapshot a trained agent
/// (replay contents included) per rollout worker.
#[derive(Debug, Clone)]
pub struct DqnTrainer<S> {
    config: DqnConfig,
    replay: PrioritizedReplay<NStepTransition<S>>,
    nstep: NStepBuffer<S>,
    epsilon: EpsilonSchedule,
    beta: LinearSchedule,
    env_steps: u64,
    updates: u64,
    updates_since_sync: u64,
}

impl<S: Clone> DqnTrainer<S> {
    /// Creates a trainer from a configuration.
    pub fn new(config: DqnConfig) -> Self {
        Self {
            replay: PrioritizedReplay::new(config.buffer_capacity, config.priority_alpha),
            nstep: NStepBuffer::new(config.n_step, config.gamma),
            epsilon: EpsilonSchedule::new(
                config.epsilon_start,
                config.epsilon_end,
                config.epsilon_decay,
            ),
            beta: LinearSchedule::new(config.priority_beta_start, 1.0, config.priority_beta_steps),
            env_steps: 0,
            updates: 0,
            updates_since_sync: 0,
            config,
        }
    }

    /// The trainer's configuration.
    pub fn config(&self) -> &DqnConfig {
        &self.config
    }

    /// Current exploration rate.
    pub fn epsilon(&self) -> f64 {
        self.epsilon.value()
    }

    /// Decays the exploration rate (call once per episode).
    pub fn end_episode(&mut self) {
        self.epsilon.step();
        // Flush any partial n-step windows so no experience is lost.
        for t in self.nstep.flush() {
            self.replay.push(t);
        }
    }

    /// Number of transitions stored in the replay buffer.
    pub fn buffered(&self) -> usize {
        self.replay.len()
    }

    /// Total environment steps observed.
    pub fn env_steps(&self) -> u64 {
        self.env_steps
    }

    /// Total gradient updates performed (as reported via
    /// [`DqnTrainer::record_update`]).
    pub fn updates(&self) -> u64 {
        self.updates
    }

    /// Records a single-step transition from the environment.
    pub fn observe(&mut self, transition: Transition<S>) {
        self.env_steps += 1;
        for t in self.nstep.push(transition) {
            self.replay.push(t);
        }
    }

    /// Whether enough experience has accumulated and enough environment steps
    /// have elapsed for the caller to run a gradient update now.
    pub fn should_update(&self) -> bool {
        self.replay.len() >= self.config.warmup_transitions
            && self.env_steps.is_multiple_of(self.config.update_every)
    }

    /// Samples a prioritized batch for training.
    pub fn sample_batch(&mut self, rng: &mut StdRng) -> Batch<S> {
        let beta = self.beta.value();
        self.replay.sample(self.config.batch_size, beta, rng)
    }

    /// Samples a prioritized batch as `(replay index, importance weight)`
    /// pairs without cloning any stored transition; resolve each index with
    /// [`DqnTrainer::transition`]. This is the zero-copy path the training
    /// loop uses.
    pub fn sample_batch_indices(&mut self, rng: &mut StdRng) -> Vec<(usize, f64)> {
        let beta = self.beta.value();
        self.replay
            .sample_indices(self.config.batch_size, beta, rng)
    }

    /// The stored n-step transition at a replay index returned by
    /// [`DqnTrainer::sample_batch_indices`].
    pub fn transition(&self, index: usize) -> &NStepTransition<S> {
        self.replay.get(index)
    }

    /// Reports the absolute TD errors of a just-trained batch so replay
    /// priorities stay current, and advances the update counters.
    ///
    /// Returns `true` when the caller should copy the online network into the
    /// target network.
    pub fn record_update(&mut self, indexed_errors: &[(usize, f64)]) -> bool {
        for (index, error) in indexed_errors {
            self.replay.update_priority(*index, *error);
        }
        self.updates += 1;
        self.updates_since_sync += 1;
        self.beta.step();
        if self.updates_since_sync >= self.config.target_update_interval {
            self.updates_since_sync = 0;
            true
        } else {
            false
        }
    }

    /// Discount to apply to the bootstrap term of an n-step transition.
    pub fn bootstrap_discount(&self, transition: &NStepTransition<S>) -> f64 {
        transition.bootstrap_discount(self.config.gamma)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::SeedableRng;

    fn transition(step: u64, done: bool) -> Transition<u64> {
        Transition {
            state: step,
            action: (step % 3) as usize,
            reward: 1.0,
            next_state: step + 1,
            done,
        }
    }

    #[test]
    fn paper_config_values() {
        let cfg = DqnConfig::paper();
        assert_eq!(cfg.gamma, 0.9995);
        assert_eq!(cfg.n_step, 8);
        assert_eq!(cfg.batch_size, 64);
        assert_eq!(cfg.target_update_interval, 5_000);
        assert_eq!(cfg.epsilon_decay, 0.999);
        assert_eq!(DqnConfig::default(), DqnConfig::paper());
    }

    #[test]
    fn warmup_gates_training() {
        let cfg = DqnConfig {
            warmup_transitions: 20,
            update_every: 1,
            n_step: 1,
            ..DqnConfig::smoke()
        };
        let mut trainer: DqnTrainer<u64> = DqnTrainer::new(cfg);
        for i in 0..10 {
            trainer.observe(transition(i, false));
            assert!(!trainer.should_update());
        }
        for i in 10..40 {
            trainer.observe(transition(i, false));
        }
        assert!(trainer.should_update());
        assert_eq!(trainer.env_steps(), 40);
        assert!(trainer.buffered() >= 20);
    }

    #[test]
    fn sampling_and_priority_updates_round_trip() {
        let cfg = DqnConfig {
            warmup_transitions: 5,
            update_every: 1,
            n_step: 2,
            batch_size: 8,
            target_update_interval: 3,
            ..DqnConfig::smoke()
        };
        let mut trainer: DqnTrainer<u64> = DqnTrainer::new(cfg);
        for i in 0..50 {
            trainer.observe(transition(i, i % 25 == 24));
        }
        let mut rng = StdRng::seed_from_u64(0);
        let batch = trainer.sample_batch(&mut rng);
        assert_eq!(batch.len(), 8);
        let errors: Vec<(usize, f64)> = batch.iter().map(|s| (s.index, 0.5)).collect();
        // Target sync fires after `target_update_interval` updates.
        assert!(!trainer.record_update(&errors));
        assert!(!trainer.record_update(&errors));
        assert!(trainer.record_update(&errors));
        assert!(!trainer.record_update(&errors));
        assert_eq!(trainer.updates(), 4);
    }

    #[test]
    fn end_episode_decays_epsilon_and_flushes() {
        let cfg = DqnConfig {
            n_step: 4,
            epsilon_decay: 0.5,
            ..DqnConfig::smoke()
        };
        let mut trainer: DqnTrainer<u64> = DqnTrainer::new(cfg);
        trainer.observe(transition(0, false));
        trainer.observe(transition(1, false));
        let before = trainer.buffered();
        let eps_before = trainer.epsilon();
        trainer.end_episode();
        assert!(trainer.buffered() > before);
        assert!(trainer.epsilon() < eps_before);
    }

    #[test]
    fn bootstrap_discount_respects_termination() {
        let trainer: DqnTrainer<u64> = DqnTrainer::new(DqnConfig {
            gamma: 0.9,
            ..DqnConfig::smoke()
        });
        let alive = NStepTransition {
            state: 0u64,
            action: 0,
            return_n: 1.0,
            final_state: 3,
            done: false,
            steps: 3,
        };
        let dead = NStepTransition {
            done: true,
            ..alive.clone()
        };
        assert!((trainer.bootstrap_discount(&alive) - 0.9f64.powi(3)).abs() < 1e-12);
        assert_eq!(trainer.bootstrap_discount(&dead), 0.0);
    }
}
