//! Error types for topology construction and queries.

use crate::address::IpAddr;
use std::error::Error;
use std::fmt;

/// Errors produced when building or querying a topology.
#[derive(Debug, Clone, PartialEq)]
#[non_exhaustive]
pub enum TopologyError {
    /// The specification cannot support an end-to-end attack scenario
    /// (e.g. no historian server or no PLCs).
    UnattackableSpec,
    /// A node identifier did not refer to a node in this topology.
    UnknownNode(usize),
    /// A PLC identifier did not refer to a PLC in this topology.
    UnknownPlc(usize),
    /// A generative parameter was outside its supported range.
    InvalidParameter {
        /// Which parameter was rejected.
        field: &'static str,
        /// Why it was rejected.
        reason: &'static str,
    },
    /// Address assignment produced a duplicate IP (a spec packed more hosts
    /// into a subnet than the addressing scheme supports).
    DuplicateIp(IpAddr),
    /// A level's host overflow exceeds its available /24 overflow subnets:
    /// the level genuinely cannot address that many hosts.
    AddressSpaceExhausted {
        /// The PERA level whose address space ran out.
        level: u8,
    },
}

impl fmt::Display for TopologyError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            TopologyError::UnattackableSpec => {
                write!(f, "topology spec cannot support an end-to-end attack")
            }
            TopologyError::UnknownNode(idx) => write!(f, "unknown node index {idx}"),
            TopologyError::UnknownPlc(idx) => write!(f, "unknown plc index {idx}"),
            TopologyError::InvalidParameter { field, reason } => {
                write!(f, "invalid topology parameter `{field}`: {reason}")
            }
            TopologyError::DuplicateIp(ip) => write!(f, "duplicate ip address {ip}"),
            TopologyError::AddressSpaceExhausted { level } => write!(
                f,
                "level {level} address space exhausted: segment overflow exceeds the level's /24 blocks"
            ),
        }
    }
}

impl Error for TopologyError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_messages_are_lowercase_and_concise() {
        let msg = TopologyError::UnattackableSpec.to_string();
        assert!(msg.starts_with("topology spec"));
        assert!(TopologyError::UnknownNode(3).to_string().contains('3'));
        assert!(TopologyError::UnknownPlc(9).to_string().contains('9'));
    }

    #[test]
    fn validation_variants_name_the_offender() {
        let msg = TopologyError::InvalidParameter {
            field: "plcs",
            reason: "must be at least 1",
        }
        .to_string();
        assert!(msg.contains("plcs"));
        assert!(msg.contains("at least 1"));
        let dup = TopologyError::DuplicateIp(IpAddr::new(10, 1, 2, 100)).to_string();
        assert!(dup.contains("10.1.2.100"));
        let exhausted = TopologyError::AddressSpaceExhausted { level: 1 }.to_string();
        assert!(exhausted.contains("level 1"));
        assert!(exhausted.contains("exhausted"));
    }

    #[test]
    fn implements_error_trait() {
        fn assert_error<E: Error + Send + Sync + 'static>() {}
        assert_error::<TopologyError>();
    }
}
