//! Error types for topology construction and queries.

use std::error::Error;
use std::fmt;

/// Errors produced when building or querying a topology.
#[derive(Debug, Clone, PartialEq, Eq)]
#[non_exhaustive]
pub enum TopologyError {
    /// The specification cannot support an end-to-end attack scenario
    /// (e.g. no historian server or no PLCs).
    UnattackableSpec,
    /// A node identifier did not refer to a node in this topology.
    UnknownNode(usize),
    /// A PLC identifier did not refer to a PLC in this topology.
    UnknownPlc(usize),
}

impl fmt::Display for TopologyError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            TopologyError::UnattackableSpec => {
                write!(f, "topology spec cannot support an end-to-end attack")
            }
            TopologyError::UnknownNode(idx) => write!(f, "unknown node index {idx}"),
            TopologyError::UnknownPlc(idx) => write!(f, "unknown plc index {idx}"),
        }
    }
}

impl Error for TopologyError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_messages_are_lowercase_and_concise() {
        let msg = TopologyError::UnattackableSpec.to_string();
        assert!(msg.starts_with("topology spec"));
        assert!(TopologyError::UnknownNode(3).to_string().contains('3'));
        assert!(TopologyError::UnknownPlc(9).to_string().contains('9'));
    }

    #[test]
    fn implements_error_trait() {
        fn assert_error<E: Error + Send + Sync + 'static>() {}
        assert_error::<TopologyError>();
    }
}
