//! Network addressing: IPv4-style node addresses and VLAN identifiers.
//!
//! The simulator reports alerts by the IP address of the node or device that
//! produced them, so addresses must be stable, human-readable identifiers.
//! Addresses are synthetic: each VLAN owns a /24 subnet and hosts are numbered
//! within it.

use serde::{Deserialize, Serialize};
use std::fmt;

/// An IPv4-style address used to identify nodes and devices in alerts.
///
/// Addresses are synthetic (`10.<level>.<vlan>.<host>`) but behave like real
/// IPv4 addresses for display and subnet membership purposes.
///
/// # Example
///
/// ```
/// use ics_net::IpAddr;
/// let ip = IpAddr::new(10, 2, 1, 17);
/// assert_eq!(ip.to_string(), "10.2.1.17");
/// assert_eq!(ip.octets(), [10, 2, 1, 17]);
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize)]
pub struct IpAddr {
    octets: [u8; 4],
}

impl IpAddr {
    /// Creates an address from its four octets.
    pub fn new(a: u8, b: u8, c: u8, d: u8) -> Self {
        Self {
            octets: [a, b, c, d],
        }
    }

    /// Returns the four octets of the address.
    pub fn octets(&self) -> [u8; 4] {
        self.octets
    }

    /// Returns the /24 subnet prefix (first three octets).
    pub fn subnet(&self) -> [u8; 3] {
        [self.octets[0], self.octets[1], self.octets[2]]
    }

    /// Returns true if `other` is in the same /24 subnet.
    ///
    /// ```
    /// use ics_net::IpAddr;
    /// assert!(IpAddr::new(10, 2, 1, 3).same_subnet(IpAddr::new(10, 2, 1, 200)));
    /// assert!(!IpAddr::new(10, 2, 1, 3).same_subnet(IpAddr::new(10, 1, 1, 3)));
    /// ```
    pub fn same_subnet(&self, other: IpAddr) -> bool {
        self.subnet() == other.subnet()
    }
}

impl fmt::Display for IpAddr {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "{}.{}.{}.{}",
            self.octets[0], self.octets[1], self.octets[2], self.octets[3]
        )
    }
}

impl From<[u8; 4]> for IpAddr {
    fn from(octets: [u8; 4]) -> Self {
        Self { octets }
    }
}

/// Identifier of a VLAN within the topology.
///
/// Each PERA level has one or more operations VLAN *segments* holding the
/// nominal nodes, and for each segment a (nominally empty) quarantine VLAN
/// that the defender can move suspicious workstations into. The paper's
/// networks use a single segment per level; generated scenarios may split a
/// level across several segments, which forces same-level attacker traffic
/// through the level router.
///
/// ```
/// use ics_net::VlanId;
/// let v = VlanId::new(2, true);
/// assert_eq!(v.level_number(), 2);
/// assert_eq!(v.segment(), 0);
/// assert!(v.is_quarantine());
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize)]
pub struct VlanId {
    level: u8,
    segment: u8,
    quarantine: bool,
}

impl VlanId {
    /// Creates a VLAN identifier for the given PERA level (segment 0).
    ///
    /// `quarantine` selects the quarantine VLAN of that level rather than the
    /// operations VLAN.
    pub fn new(level: u8, quarantine: bool) -> Self {
        Self {
            level,
            segment: 0,
            quarantine,
        }
    }

    /// Creates a VLAN identifier for a specific segment of a level.
    pub fn segmented(level: u8, segment: u8, quarantine: bool) -> Self {
        Self {
            level,
            segment,
            quarantine,
        }
    }

    /// The (segment-0) operations VLAN of a level.
    pub fn ops(level: u8) -> Self {
        Self::new(level, false)
    }

    /// The operations VLAN of a specific segment of a level.
    pub fn ops_segment(level: u8, segment: u8) -> Self {
        Self::segmented(level, segment, false)
    }

    /// The (segment-0) quarantine VLAN of a level.
    pub fn quarantine(level: u8) -> Self {
        Self::new(level, true)
    }

    /// PERA level number this VLAN belongs to (1 or 2 in the paper's network).
    pub fn level_number(&self) -> u8 {
        self.level
    }

    /// Segment index of the VLAN within its level (0 in the paper's network).
    pub fn segment(&self) -> u8 {
        self.segment
    }

    /// Whether this is a quarantine VLAN.
    pub fn is_quarantine(&self) -> bool {
        self.quarantine
    }

    /// The counterpart VLAN on the same level and segment (ops <-> quarantine).
    ///
    /// ```
    /// use ics_net::VlanId;
    /// assert_eq!(VlanId::ops(2).counterpart(), VlanId::quarantine(2));
    /// assert_eq!(VlanId::quarantine(2).counterpart(), VlanId::ops(2));
    /// ```
    pub fn counterpart(&self) -> Self {
        Self {
            level: self.level,
            segment: self.segment,
            quarantine: !self.quarantine,
        }
    }
}

impl fmt::Display for VlanId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        // Segment 0 keeps the paper's historical labels ("VLAN 2.1" /
        // "VLAN 2.q"); further segments count up from there.
        match (self.quarantine, self.segment) {
            (false, s) => write!(f, "VLAN {}.{}", self.level, s + 1),
            (true, 0) => write!(f, "VLAN {}.q", self.level),
            (true, s) => write!(f, "VLAN {}.q{}", self.level, s + 1),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn ip_display_round_trip() {
        let ip = IpAddr::new(10, 2, 1, 42);
        assert_eq!(ip.to_string(), "10.2.1.42");
        assert_eq!(ip.octets(), [10, 2, 1, 42]);
    }

    #[test]
    fn ip_subnet_membership() {
        let a = IpAddr::new(10, 1, 1, 5);
        let b = IpAddr::new(10, 1, 1, 6);
        let c = IpAddr::new(10, 1, 2, 5);
        assert!(a.same_subnet(b));
        assert!(!a.same_subnet(c));
        assert_eq!(a.subnet(), [10, 1, 1]);
    }

    #[test]
    fn ip_from_octets() {
        let ip: IpAddr = [192, 168, 0, 1].into();
        assert_eq!(ip, IpAddr::new(192, 168, 0, 1));
    }

    #[test]
    fn vlan_counterpart_is_involution() {
        let v = VlanId::ops(1);
        assert_eq!(v.counterpart().counterpart(), v);
        assert_ne!(v, v.counterpart());
    }

    #[test]
    fn vlan_display() {
        assert_eq!(VlanId::ops(2).to_string(), "VLAN 2.1");
        assert_eq!(VlanId::quarantine(1).to_string(), "VLAN 1.q");
    }

    #[test]
    fn segmented_vlans_are_distinct_and_display() {
        assert_eq!(VlanId::ops_segment(2, 0), VlanId::ops(2));
        let b = VlanId::ops_segment(2, 1);
        assert_ne!(b, VlanId::ops(2));
        assert_eq!(b.segment(), 1);
        assert_eq!(b.level_number(), 2);
        assert_eq!(b.to_string(), "VLAN 2.2");
        assert_eq!(b.counterpart().to_string(), "VLAN 2.q2");
        assert_eq!(b.counterpart().counterpart(), b);
        assert_eq!(VlanId::segmented(1, 2, true).to_string(), "VLAN 1.q3");
    }

    #[test]
    fn vlan_ordering_is_total() {
        let mut vlans = [
            VlanId::quarantine(2),
            VlanId::ops(1),
            VlanId::ops(2),
            VlanId::quarantine(1),
        ];
        vlans.sort();
        assert_eq!(vlans[0].level_number(), 1);
        assert_eq!(vlans[3].level_number(), 2);
    }
}
