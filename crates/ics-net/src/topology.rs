//! The [`Topology`] type: a concrete ICS network built from a [`TopologySpec`].

use crate::address::{IpAddr, VlanId};
use crate::device::{Device, DeviceId, DeviceKind};
use crate::error::TopologyError;
use crate::node::{Level, Node, NodeId, NodeKind, ServerRole};
use crate::plc::{Plc, PlcId};
use crate::spec::{
    TopologySpec, OVERFLOW_SUBNET_BASE, OVERFLOW_SUBNET_HOSTS, SEGMENT_SUBNET_HOSTS,
};
use serde::{Deserialize, Serialize};
use std::collections::HashMap;

/// A static ICS network: nodes, PLCs and the networking devices connecting
/// them, organised into per-level operations and quarantine VLANs as in the
/// paper's Fig. 2.
///
/// The topology is immutable once built. Dynamic facts (which VLAN a
/// workstation currently sits on after a quarantine action, which nodes are
/// compromised) are owned by the simulator, which passes current VLAN
/// assignments into the path queries below.
///
/// # Example
///
/// ```
/// use ics_net::{Topology, TopologySpec, VlanId};
///
/// let topo = Topology::build(&TopologySpec::paper_full()).unwrap();
///
/// // Same-VLAN traffic only crosses the VLAN switch (device factor 1).
/// let factor = topo.device_factor_between_vlans(VlanId::ops(2), VlanId::ops(2));
/// assert_eq!(factor, 1.0);
///
/// // Cross-level traffic crosses switches, routers and the plant firewall.
/// let cross = topo.device_factor_between_vlans(VlanId::ops(2), VlanId::ops(1));
/// assert_eq!(cross, 20.0);
/// ```
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct Topology {
    spec: TopologySpec,
    nodes: Vec<Node>,
    devices: Vec<Device>,
    plcs: Vec<Plc>,
    node_ips: Vec<IpAddr>,
    plc_ips: Vec<IpAddr>,
    ip_to_node: HashMap<IpAddr, NodeId>,
    vlan_switches: HashMap<VlanId, DeviceId>,
    level_routers: HashMap<u8, DeviceId>,
    plant_firewall: DeviceId,
    engineering_firewall: DeviceId,
    /// Node identifiers per PERA level (`[level-1, level-2]`), in insertion
    /// order — the same order `nodes().filter(|n| n.level == level)` yields.
    /// Cached so per-level hot paths (IDS false alerts) need no dense scan.
    level_nodes: [Vec<NodeId>; 2],
}

/// Per-segment IP allocation state for one PERA level: slot counters plus the
/// precomputed start of each segment's range in the level's overflow subnets.
///
/// Slot `k` of segment `s` maps to the segment's own /24
/// (`10.<level>.<1+s>.<10+k>`) while `k < SEGMENT_SUBNET_HOSTS`; denser
/// segments continue into the level-wide overflow subnets at third octet
/// [`OVERFLOW_SUBNET_BASE`]+. Overflow ranges are derived from the spec's
/// per-segment loads, so the mapping is a pure function of (spec, segment,
/// slot) regardless of the interleaved push order.
struct LevelAllocator {
    level: u8,
    slots: Vec<usize>,
    overflow_starts: Vec<usize>,
}

impl LevelAllocator {
    fn new(spec: &TopologySpec, level: u8) -> Self {
        let loads = spec.segment_loads(level);
        let mut overflow_starts = Vec::with_capacity(loads.len());
        let mut total = 0usize;
        for load in &loads {
            overflow_starts.push(total);
            total += load.saturating_sub(SEGMENT_SUBNET_HOSTS);
        }
        Self {
            level,
            slots: vec![0; loads.len()],
            overflow_starts,
        }
    }

    fn next_ip(&mut self, segment: usize) -> Result<IpAddr, TopologyError> {
        let slot = self.slots[segment];
        self.slots[segment] += 1;
        if slot < SEGMENT_SUBNET_HOSTS {
            return Ok(IpAddr::new(
                10,
                self.level,
                1 + segment as u8,
                (10 + slot) as u8,
            ));
        }
        let overflow = self.overflow_starts[segment] + (slot - SEGMENT_SUBNET_HOSTS);
        let block = OVERFLOW_SUBNET_BASE + overflow / OVERFLOW_SUBNET_HOSTS;
        if block > u8::MAX as usize {
            return Err(TopologyError::AddressSpaceExhausted { level: self.level });
        }
        Ok(IpAddr::new(
            10,
            self.level,
            block as u8,
            (10 + overflow % OVERFLOW_SUBNET_HOSTS) as u8,
        ))
    }
}

impl Topology {
    /// Builds a topology from a specification.
    ///
    /// Node identifiers are assigned densely: level-2 workstations first, then
    /// servers (OPC, historian, domain controller), then level-1 HMIs. PLCs
    /// get their own dense identifier space. Hosts are dealt round-robin
    /// across a level's operations-VLAN segments (servers stay on level-2
    /// segment 0); each segment owns the `10.<level>.<1 + segment>.0/24`
    /// subnet, and segments denser than the /24 host range continue into the
    /// level's overflow subnets (third octet 9+). PLC subnets start at
    /// `10.1.2.0/24` in the 100+ host range.
    ///
    /// # Errors
    ///
    /// Returns [`TopologyError::InvalidParameter`] /
    /// [`TopologyError::UnattackableSpec`] when the spec fails
    /// [`TopologySpec::validate`], [`TopologyError::AddressSpaceExhausted`]
    /// if a level's overflow subnets run out (validation also catches this up
    /// front), and [`TopologyError::DuplicateIp`] if address assignment would
    /// alias two elements (unreachable for a spec that validates; kept as a
    /// hard backstop).
    pub fn build(spec: &TopologySpec) -> Result<Self, TopologyError> {
        spec.validate()?;

        let mut nodes = Vec::new();
        let mut node_ips = Vec::new();

        // Per-level IP allocators: each segment fills its own /24 first
        // (hosts 10..=98, exactly the legacy layout), then continues into the
        // level's overflow subnets so a segment may span multiple /24s.
        let mut alloc_l2 = LevelAllocator::new(spec, 2);
        let mut alloc_l1 = LevelAllocator::new(spec, 1);

        let mut push_node = |nodes: &mut Vec<Node>,
                             node_ips: &mut Vec<IpAddr>,
                             kind: NodeKind,
                             level: Level,
                             segment: usize|
         -> Result<NodeId, TopologyError> {
            let alloc = if level == Level::Engineering2 {
                &mut alloc_l2
            } else {
                &mut alloc_l1
            };
            let ip = alloc.next_ip(segment)?;
            let vlan = VlanId::ops_segment(level.number(), segment as u8);
            let id = NodeId(nodes.len());
            nodes.push(Node::new(id, kind, level, vlan));
            node_ips.push(ip);
            Ok(id)
        };

        for i in 0..spec.l2_workstations {
            push_node(
                &mut nodes,
                &mut node_ips,
                NodeKind::Workstation,
                Level::Engineering2,
                i % spec.l2_segments,
            )?;
        }
        for (present, role) in [
            (spec.opc_server, ServerRole::Opc),
            (spec.historian_server, ServerRole::Historian),
            (spec.domain_controller, ServerRole::DomainController),
        ] {
            if present {
                push_node(
                    &mut nodes,
                    &mut node_ips,
                    NodeKind::Server(role),
                    Level::Engineering2,
                    0,
                )?;
            }
        }
        for i in 0..spec.l1_hmis {
            push_node(
                &mut nodes,
                &mut node_ips,
                NodeKind::Hmi,
                Level::Plant1,
                i % spec.l1_segments,
            )?;
        }

        // Networking devices: one switch per VLAN (ops + quarantine per
        // segment), one router per level, one firewall per level.
        let mut devices = Vec::new();
        let mut vlan_switches = HashMap::new();
        let mut level_routers = HashMap::new();

        let push_device = |devices: &mut Vec<Device>, kind: DeviceKind, level: Level| {
            let id = DeviceId(devices.len());
            devices.push(Device::new(id, kind, level));
            id
        };

        for level in [Level::Engineering2, Level::Plant1] {
            for segment in 0..spec.segments_for_level(level.number()) {
                for quarantine in [false, true] {
                    let vlan = VlanId::segmented(level.number(), segment as u8, quarantine);
                    let id = push_device(&mut devices, DeviceKind::Switch { vlan }, level);
                    vlan_switches.insert(vlan, id);
                }
            }
            let router = push_device(&mut devices, DeviceKind::Router, level);
            level_routers.insert(level.number(), router);
        }
        let engineering_firewall =
            push_device(&mut devices, DeviceKind::Firewall, Level::Engineering2);
        let plant_firewall = push_device(&mut devices, DeviceKind::Firewall, Level::Plant1);

        // PLCs are attached to the level-1 segment-0 operations switch; 150
        // PLCs per /24, subnets counting up from 10.1.2.0/24.
        let mut plcs = Vec::new();
        let mut plc_ips = Vec::new();
        for i in 0..spec.plcs {
            let id = PlcId(plcs.len());
            plcs.push(Plc::new(id));
            plc_ips.push(IpAddr::new(
                10,
                1,
                (2 + i / 150) as u8,
                (100 + (i % 150)) as u8,
            ));
        }

        let mut ip_to_node = HashMap::new();
        let mut seen = std::collections::HashSet::new();
        for (i, ip) in node_ips.iter().enumerate() {
            if !seen.insert(*ip) {
                return Err(TopologyError::DuplicateIp(*ip));
            }
            ip_to_node.insert(*ip, NodeId(i));
        }
        for ip in &plc_ips {
            if !seen.insert(*ip) {
                return Err(TopologyError::DuplicateIp(*ip));
            }
        }

        let mut level_nodes: [Vec<NodeId>; 2] = [Vec::new(), Vec::new()];
        for node in &nodes {
            level_nodes[node.level.number() as usize - 1].push(node.id);
        }

        Ok(Self {
            spec: spec.clone(),
            nodes,
            devices,
            plcs,
            node_ips,
            plc_ips,
            ip_to_node,
            vlan_switches,
            level_routers,
            plant_firewall,
            engineering_firewall,
            level_nodes,
        })
    }

    /// The specification this topology was built from.
    pub fn spec(&self) -> &TopologySpec {
        &self.spec
    }

    /// Number of computing nodes.
    pub fn node_count(&self) -> usize {
        self.nodes.len()
    }

    /// Number of PLCs.
    pub fn plc_count(&self) -> usize {
        self.plcs.len()
    }

    /// Number of networking devices.
    pub fn device_count(&self) -> usize {
        self.devices.len()
    }

    /// All computing nodes.
    pub fn nodes(&self) -> impl Iterator<Item = &Node> {
        self.nodes.iter()
    }

    /// All node identifiers, in dense index order.
    pub fn node_ids(&self) -> impl Iterator<Item = NodeId> + '_ {
        (0..self.nodes.len()).map(NodeId)
    }

    /// All PLC identifiers, in dense index order.
    pub fn plc_ids(&self) -> impl Iterator<Item = PlcId> + '_ {
        (0..self.plcs.len()).map(PlcId)
    }

    /// Level-2 workstations.
    pub fn workstations(&self) -> impl Iterator<Item = &Node> {
        self.nodes.iter().filter(|n| n.kind.is_workstation())
    }

    /// Servers of any role.
    pub fn servers(&self) -> impl Iterator<Item = &Node> {
        self.nodes.iter().filter(|n| n.kind.is_server())
    }

    /// Level-1 HMIs.
    pub fn hmis(&self) -> impl Iterator<Item = &Node> {
        self.nodes.iter().filter(|n| n.kind.is_hmi())
    }

    /// Node identifiers on a PERA level, in dense insertion order — identical
    /// content and order to `nodes().filter(|n| n.level == level)`, but
    /// precomputed so per-level hot paths avoid a full scan.
    pub fn nodes_on_level(&self, level: Level) -> &[NodeId] {
        &self.level_nodes[level.number() as usize - 1]
    }

    /// All networking devices.
    pub fn devices(&self) -> impl Iterator<Item = &Device> {
        self.devices.iter()
    }

    /// Looks up a node.
    ///
    /// # Errors
    ///
    /// Returns [`TopologyError::UnknownNode`] if the identifier does not refer
    /// to a node in this topology.
    pub fn node(&self, id: NodeId) -> Result<&Node, TopologyError> {
        self.nodes
            .get(id.index())
            .ok_or(TopologyError::UnknownNode(id.index()))
    }

    /// Looks up a PLC.
    ///
    /// # Errors
    ///
    /// Returns [`TopologyError::UnknownPlc`] if the identifier does not refer
    /// to a PLC in this topology.
    pub fn plc(&self, id: PlcId) -> Result<&Plc, TopologyError> {
        self.plcs
            .get(id.index())
            .ok_or(TopologyError::UnknownPlc(id.index()))
    }

    /// The server node with the given role, if present.
    pub fn server(&self, role: ServerRole) -> Option<&Node> {
        self.nodes
            .iter()
            .find(|n| n.kind.server_role() == Some(role))
    }

    /// IP address assigned to a node.
    ///
    /// # Panics
    ///
    /// Panics if `id` is not a node of this topology. Use [`Topology::node`]
    /// first if the identifier may come from untrusted input.
    pub fn ip_of(&self, id: NodeId) -> IpAddr {
        self.node_ips[id.index()]
    }

    /// IP address assigned to a PLC.
    ///
    /// # Panics
    ///
    /// Panics if `id` is not a PLC of this topology.
    pub fn plc_ip(&self, id: PlcId) -> IpAddr {
        self.plc_ips[id.index()]
    }

    /// Node owning an IP address, if any.
    pub fn node_by_ip(&self, ip: IpAddr) -> Option<NodeId> {
        self.ip_to_node.get(&ip).copied()
    }

    /// All node identifiers whose *home* VLAN is `vlan`.
    ///
    /// Run-time VLAN reassignment (quarantine) is owned by the simulator,
    /// which should filter by its own assignment map instead when relevant.
    pub fn nodes_homed_on(&self, vlan: VlanId) -> impl Iterator<Item = NodeId> + '_ {
        self.nodes
            .iter()
            .filter(move |n| n.home_vlan == vlan)
            .map(|n| n.id)
    }

    /// The switch serving a VLAN, if the VLAN exists in this topology.
    pub fn switch_for_vlan(&self, vlan: VlanId) -> Option<DeviceId> {
        self.vlan_switches.get(&vlan).copied()
    }

    /// The router of a PERA level.
    pub fn router_for_level(&self, level: Level) -> Option<DeviceId> {
        self.level_routers.get(&level.number()).copied()
    }

    /// All VLANs present in the topology (ops and quarantine for each level).
    pub fn vlans(&self) -> Vec<VlanId> {
        let mut v: Vec<VlanId> = self.vlan_switches.keys().copied().collect();
        v.sort();
        v
    }

    /// Operations VLANs only (the VLANs attackers scan for hosts).
    pub fn ops_vlans(&self) -> Vec<VlanId> {
        self.vlans()
            .into_iter()
            .filter(|v| !v.is_quarantine())
            .collect()
    }

    /// Devices a message crosses travelling from a host on `from` to a host on
    /// `to`, in traversal order.
    ///
    /// * Same VLAN: the VLAN switch only.
    /// * Same level, different VLAN: switch, level router, switch.
    /// * Different level: switch, source router, plant firewall, destination
    ///   router, switch.
    pub fn devices_between_vlans(&self, from: VlanId, to: VlanId) -> Vec<DeviceId> {
        let from_switch = self.vlan_switches[&from];
        let to_switch = self.vlan_switches[&to];
        if from == to {
            return vec![from_switch];
        }
        if from.level_number() == to.level_number() {
            let router = self.level_routers[&from.level_number()];
            return vec![from_switch, router, to_switch];
        }
        let from_router = self.level_routers[&from.level_number()];
        let to_router = self.level_routers[&to.level_number()];
        vec![
            from_switch,
            from_router,
            self.plant_firewall,
            to_router,
            to_switch,
        ]
    }

    /// Product of the alert factors of every device on the path between two
    /// VLANs, using the spec's [`crate::DeviceFactors`] (paper values:
    /// switch 1x, router 2x, firewall 5x).
    pub fn device_factor_between_vlans(&self, from: VlanId, to: VlanId) -> f64 {
        self.devices_between_vlans(from, to)
            .into_iter()
            .map(|d| {
                self.spec
                    .device_factors
                    .factor(&self.devices[d.index()].kind)
            })
            .product()
    }

    /// Convenience: device factor between two nodes using their *home* VLANs.
    ///
    /// # Panics
    ///
    /// Panics if either identifier is not a node of this topology.
    pub fn path_device_factor(&self, from: NodeId, to: NodeId) -> f64 {
        let from_vlan = self.nodes[from.index()].home_vlan;
        let to_vlan = self.nodes[to.index()].home_vlan;
        self.device_factor_between_vlans(from_vlan, to_vlan)
    }

    /// Device factor for a message sent from a host on `from` to the PLCs
    /// (the PLCs sit on the level-1 operations switch).
    pub fn device_factor_to_plcs(&self, from: VlanId) -> f64 {
        self.device_factor_between_vlans(from, VlanId::ops(1))
    }

    /// The level-1 ("plant") firewall crossed by inter-level traffic.
    pub fn plant_firewall(&self) -> DeviceId {
        self.plant_firewall
    }

    /// The level-2 ("engineering") external firewall.
    pub fn engineering_firewall(&self) -> DeviceId {
        self.engineering_firewall
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn full() -> Topology {
        Topology::build(&TopologySpec::paper_full()).unwrap()
    }

    #[test]
    fn full_topology_counts_match_paper() {
        let t = full();
        assert_eq!(t.workstations().count(), 25);
        assert_eq!(t.servers().count(), 3);
        assert_eq!(t.hmis().count(), 5);
        assert_eq!(t.node_count(), 33);
        assert_eq!(t.plc_count(), 50);
        // 4 switches (2 per level) + 2 routers + 2 firewalls.
        assert_eq!(t.device_count(), 8);
    }

    #[test]
    fn servers_have_expected_roles() {
        let t = full();
        assert!(t.server(ServerRole::Opc).is_some());
        assert!(t.server(ServerRole::Historian).is_some());
        assert!(t.server(ServerRole::DomainController).is_some());
        let small = Topology::build(&TopologySpec::tiny()).unwrap();
        assert!(small.server(ServerRole::DomainController).is_none());
    }

    #[test]
    fn node_ids_are_dense_and_resolvable() {
        let t = full();
        for (i, id) in t.node_ids().enumerate() {
            assert_eq!(id.index(), i);
            assert!(t.node(id).is_ok());
        }
        assert_eq!(
            t.node(NodeId::from_index(999)),
            Err(TopologyError::UnknownNode(999))
        );
        assert_eq!(
            t.plc(PlcId::from_index(999)),
            Err(TopologyError::UnknownPlc(999))
        );
    }

    #[test]
    fn ips_are_unique_and_reverse_resolvable() {
        let t = full();
        let mut seen = std::collections::HashSet::new();
        for id in t.node_ids() {
            let ip = t.ip_of(id);
            assert!(seen.insert(ip), "duplicate ip {ip}");
            assert_eq!(t.node_by_ip(ip), Some(id));
        }
    }

    #[test]
    fn same_vlan_factor_is_one() {
        let t = full();
        assert_eq!(
            t.device_factor_between_vlans(VlanId::ops(2), VlanId::ops(2)),
            1.0
        );
    }

    #[test]
    fn same_level_cross_vlan_factor_is_two() {
        let t = full();
        // switch (1) * router (2) * switch (1) = 2
        assert_eq!(
            t.device_factor_between_vlans(VlanId::ops(2), VlanId::quarantine(2)),
            2.0
        );
    }

    #[test]
    fn cross_level_factor_is_twenty() {
        let t = full();
        // switch (1) * router (2) * firewall (5) * router (2) * switch (1) = 20
        assert_eq!(
            t.device_factor_between_vlans(VlanId::ops(2), VlanId::ops(1)),
            20.0
        );
        // Commanding PLCs from level 2 is noisier than from level-1 HMIs,
        // which is the asymmetry §3.2 of the paper relies on.
        assert!(t.device_factor_to_plcs(VlanId::ops(2)) > t.device_factor_to_plcs(VlanId::ops(1)));
    }

    #[test]
    fn path_between_levels_contains_firewall() {
        let t = full();
        let path = t.devices_between_vlans(VlanId::ops(2), VlanId::ops(1));
        assert_eq!(path.len(), 5);
        assert!(path.contains(&t.plant_firewall()));
    }

    #[test]
    fn path_factor_between_nodes_uses_home_vlans() {
        let t = full();
        let ws = t.workstations().next().unwrap().id;
        let hmi = t.hmis().next().unwrap().id;
        assert_eq!(t.path_device_factor(ws, hmi), 20.0);
        let ws2 = t.workstations().nth(1).unwrap().id;
        assert_eq!(t.path_device_factor(ws, ws2), 1.0);
    }

    #[test]
    fn vlan_queries() {
        let t = full();
        assert_eq!(t.vlans().len(), 4);
        assert_eq!(t.ops_vlans().len(), 2);
        assert_eq!(t.nodes_homed_on(VlanId::ops(2)).count(), 28);
        assert_eq!(t.nodes_homed_on(VlanId::ops(1)).count(), 5);
        assert_eq!(t.nodes_homed_on(VlanId::quarantine(2)).count(), 0);
        assert!(t.switch_for_vlan(VlanId::quarantine(1)).is_some());
        assert!(t.switch_for_vlan(VlanId::ops(3)).is_none());
        assert!(t.router_for_level(Level::Plant1).is_some());
    }

    #[test]
    fn small_topology_matches_grid_search_spec() {
        let t = Topology::build(&TopologySpec::paper_small()).unwrap();
        assert_eq!(t.workstations().count(), 10);
        assert_eq!(t.hmis().count(), 3);
        assert_eq!(t.plc_count(), 30);
    }

    #[test]
    fn degenerate_specs_are_rejected_not_panicked() {
        let mut spec = TopologySpec::paper_small();
        spec.plcs = 0;
        assert!(matches!(
            Topology::build(&spec),
            Err(TopologyError::UnattackableSpec)
        ));

        let mut spec = TopologySpec::paper_small();
        spec.l2_segments = 0;
        assert!(matches!(
            Topology::build(&spec),
            Err(TopologyError::InvalidParameter { .. })
        ));

        // 150 hosts would previously have wrapped the u8 host counter into
        // silently duplicated IPs; now the spec is rejected up front.
        let mut spec = TopologySpec::paper_small();
        spec.l2_workstations = 150;
        assert!(matches!(
            Topology::build(&spec),
            Err(TopologyError::InvalidParameter { .. })
        ));
    }

    #[test]
    fn segmented_build_spreads_hosts_round_robin() {
        let mut spec = TopologySpec::paper_small();
        spec.l2_segments = 2;
        spec.l1_segments = 2;
        let t = Topology::build(&spec).unwrap();
        // 2 levels x 2 segments x (ops + quarantine) switches + 2 routers +
        // 2 firewalls.
        assert_eq!(t.device_count(), 12);
        assert_eq!(t.vlans().len(), 8);
        assert_eq!(t.ops_vlans().len(), 4);
        assert_eq!(t.nodes_homed_on(VlanId::ops_segment(2, 0)).count(), 5 + 3);
        assert_eq!(t.nodes_homed_on(VlanId::ops_segment(2, 1)).count(), 5);
        // Servers stay on segment 0.
        for server in t.servers() {
            assert_eq!(server.home_vlan, VlanId::ops_segment(2, 0));
        }
        // Same level, different segment: traffic crosses the level router.
        assert_eq!(
            t.device_factor_between_vlans(VlanId::ops_segment(2, 0), VlanId::ops_segment(2, 1)),
            2.0
        );
        // Cross-level still crosses the plant firewall.
        let path = t.devices_between_vlans(VlanId::ops_segment(2, 1), VlanId::ops_segment(1, 1));
        assert!(path.contains(&t.plant_firewall()));
        // All IPs are still unique.
        let mut seen = std::collections::HashSet::new();
        for id in t.node_ids() {
            assert!(seen.insert(t.ip_of(id)));
        }
        for plc in t.plc_ids() {
            assert!(seen.insert(t.plc_ip(plc)));
        }
    }

    #[test]
    fn custom_device_factors_flow_into_path_costs() {
        let mut spec = TopologySpec::paper_small();
        spec.device_factors = crate::DeviceFactors {
            switch: 1.0,
            router: 3.0,
            firewall: 10.0,
        };
        let t = Topology::build(&spec).unwrap();
        // switch * router * firewall * router * switch = 3 * 10 * 3 = 90.
        assert_eq!(
            t.device_factor_between_vlans(VlanId::ops(2), VlanId::ops(1)),
            90.0
        );
    }

    #[test]
    fn dense_segments_span_multiple_subnets() {
        // 350 workstations + 3 servers on one level-2 segment: the first 89
        // hosts keep the legacy in-segment layout, the rest overflow into
        // 10.2.9.0/24 and 10.2.10.0/24.
        let mut spec = TopologySpec::paper_full();
        spec.l2_workstations = 350;
        spec.host_budget = 400;
        let t = Topology::build(&spec).unwrap();
        assert_eq!(t.workstations().count(), 350);
        assert_eq!(t.ip_of(NodeId::from_index(0)).octets(), [10, 2, 1, 10]);
        assert_eq!(t.ip_of(NodeId::from_index(88)).octets(), [10, 2, 1, 98]);
        // Slot 89 is the first overflow host.
        assert_eq!(t.ip_of(NodeId::from_index(89)).octets(), [10, 2, 9, 10]);
        // Slot 89 + 240 starts the second overflow block.
        assert_eq!(t.ip_of(NodeId::from_index(329)).octets(), [10, 2, 10, 10]);
        let mut seen = std::collections::HashSet::new();
        for id in t.node_ids() {
            assert!(seen.insert(t.ip_of(id)), "duplicate ip for {id}");
            assert_eq!(t.node_by_ip(t.ip_of(id)), Some(id));
        }
        for plc in t.plc_ids() {
            assert!(seen.insert(t.plc_ip(plc)));
        }
    }

    #[test]
    fn overflow_segments_coexist_with_plc_subnets_on_level_one() {
        // A dense level-1 segment overflows into 10.1.9.0/24+, clear of the
        // PLC subnets at 10.1.2-5.x (100+ host range) and of other segments.
        let mut spec = TopologySpec::paper_full();
        spec.l1_hmis = 200;
        spec.l1_segments = 2;
        spec.plcs = 600;
        spec.host_budget = 128;
        let t = Topology::build(&spec).unwrap();
        assert_eq!(t.hmis().count(), 200);
        assert_eq!(t.plc_count(), 600);
        let mut seen = std::collections::HashSet::new();
        for id in t.node_ids() {
            assert!(seen.insert(t.ip_of(id)));
        }
        for plc in t.plc_ids() {
            assert!(seen.insert(t.plc_ip(plc)));
        }
        // Both level-1 segments overflow (100 hosts each > 89); their
        // overflow ranges are disjoint slices of the same block sequence.
        let first_seg1_overflow = t
            .nodes_homed_on(VlanId::ops_segment(1, 1))
            .map(|id| t.ip_of(id))
            .filter(|ip| ip.octets()[2] >= 9)
            .min()
            .unwrap();
        assert_eq!(first_seg1_overflow.octets(), [10, 1, 9, 21]);
    }

    #[test]
    fn overflow_ip_layout_is_stable_for_existing_shapes() {
        // Budget-89 specs (every preset, every pre-existing scenario) keep
        // the exact legacy addresses: this is what the determinism goldens
        // rely on.
        let t = full();
        for (i, id) in t.node_ids().enumerate().take(25) {
            assert_eq!(t.ip_of(id).octets(), [10, 2, 1, (10 + i) as u8]);
        }
        // HMIs (last five nodes) live on level 1.
        assert_eq!(t.ip_of(NodeId::from_index(28)).octets(), [10, 1, 1, 10]);
    }

    #[test]
    fn level_node_cache_matches_filtered_scan() {
        for spec in [TopologySpec::paper_full(), TopologySpec::tiny(), {
            let mut s = TopologySpec::paper_small();
            s.l2_segments = 2;
            s.l1_segments = 2;
            s
        }] {
            let t = Topology::build(&spec).unwrap();
            for level in [Level::Plant1, Level::Engineering2] {
                let scanned: Vec<NodeId> = t
                    .nodes()
                    .filter(|n| n.level == level)
                    .map(|n| n.id)
                    .collect();
                assert_eq!(t.nodes_on_level(level), scanned.as_slice());
            }
        }
    }

    #[test]
    fn many_plcs_span_multiple_subnets() {
        let mut spec = TopologySpec::paper_small();
        spec.plcs = 400;
        let t = Topology::build(&spec).unwrap();
        assert_eq!(t.plc_count(), 400);
        assert_eq!(t.plc_ip(PlcId::from_index(0)).octets(), [10, 1, 2, 100]);
        assert_eq!(t.plc_ip(PlcId::from_index(150)).octets(), [10, 1, 3, 100]);
        assert_eq!(t.plc_ip(PlcId::from_index(399)).octets(), [10, 1, 4, 199]);
        let mut seen = std::collections::HashSet::new();
        for plc in t.plc_ids() {
            assert!(seen.insert(t.plc_ip(plc)));
        }
    }
}
