//! Networking devices: switches, routers, and firewalls.
//!
//! Devices matter to the decision problem because every device a malicious
//! message passes through multiplies the probability that the intrusion
//! detection system raises an alert: switches by 1x, routers by 2x and
//! firewalls by 5x (paper appendix, IDS module).

use crate::address::VlanId;
use crate::node::Level;
use serde::{Deserialize, Serialize};
use std::fmt;

/// Index of a networking device within a [`crate::Topology`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize)]
pub struct DeviceId(pub(crate) usize);

impl DeviceId {
    /// Creates a device identifier from a raw index.
    pub fn from_index(index: usize) -> Self {
        Self(index)
    }

    /// Raw dense index of the device.
    pub fn index(&self) -> usize {
        self.0
    }
}

impl fmt::Display for DeviceId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "device#{}", self.0)
    }
}

/// The kind of a networking device.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum DeviceKind {
    /// A VLAN switch. Each VLAN is modelled as being served by its own switch.
    Switch {
        /// VLAN this switch serves.
        vlan: VlanId,
    },
    /// A per-level router connecting that level's switches.
    Router,
    /// The external firewall of a level, crossed by inter-level traffic.
    Firewall,
}

impl DeviceKind {
    /// Alert-probability multiplier applied to messages passing through this
    /// device (paper appendix: switch 1x, router 2x, firewall 5x).
    pub fn alert_factor(&self) -> f64 {
        match self {
            DeviceKind::Switch { .. } => 1.0,
            DeviceKind::Router => 2.0,
            DeviceKind::Firewall => 5.0,
        }
    }

    /// Whether this device is a switch.
    pub fn is_switch(&self) -> bool {
        matches!(self, DeviceKind::Switch { .. })
    }
}

impl fmt::Display for DeviceKind {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            DeviceKind::Switch { vlan } => write!(f, "switch ({vlan})"),
            DeviceKind::Router => write!(f, "router"),
            DeviceKind::Firewall => write!(f, "firewall"),
        }
    }
}

/// A networking device in the topology.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct Device {
    /// Dense identifier of the device.
    pub id: DeviceId,
    /// What kind of device this is.
    pub kind: DeviceKind,
    /// PERA level the device belongs to.
    pub level: Level,
}

impl Device {
    /// Creates a device. Topology construction assigns identifiers.
    pub fn new(id: DeviceId, kind: DeviceKind, level: Level) -> Self {
        Self { id, kind, level }
    }

    /// Alert-probability multiplier of this device.
    pub fn alert_factor(&self) -> f64 {
        self.kind.alert_factor()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn alert_factors_match_paper() {
        assert_eq!(
            DeviceKind::Switch {
                vlan: VlanId::ops(2)
            }
            .alert_factor(),
            1.0
        );
        assert_eq!(DeviceKind::Router.alert_factor(), 2.0);
        assert_eq!(DeviceKind::Firewall.alert_factor(), 5.0);
    }

    #[test]
    fn device_display() {
        assert_eq!(DeviceKind::Router.to_string(), "router");
        assert_eq!(DeviceKind::Firewall.to_string(), "firewall");
        assert!(DeviceKind::Switch {
            vlan: VlanId::ops(1)
        }
        .to_string()
        .contains("VLAN 1.1"));
    }

    #[test]
    fn device_id_round_trip() {
        assert_eq!(DeviceId::from_index(3).index(), 3);
    }
}
