//! Topology specifications: how many of each element to build.

use serde::{Deserialize, Serialize};

/// Parameters describing the shape of an ICS network to build.
///
/// The two presets match the networks used in the paper:
///
/// * [`TopologySpec::paper_full`] — the evaluation network of Fig. 2
///   (25 level-2 workstations, 3 servers, 5 level-1 HMIs, 50 PLCs).
/// * [`TopologySpec::paper_small`] — the reduced network used for the
///   hyper-parameter grid search in §4.2 (10 level-2 workstations, 3 level-1
///   HMIs, 30 PLCs).
///
/// ```
/// use ics_net::TopologySpec;
/// let spec = TopologySpec::paper_full();
/// assert_eq!(spec.l2_workstations, 25);
/// assert_eq!(spec.plcs, 50);
/// assert_eq!(spec.total_nodes(), 33);
/// ```
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct TopologySpec {
    /// Number of engineering (level-2) workstations.
    pub l2_workstations: usize,
    /// Whether to include the OPC server.
    pub opc_server: bool,
    /// Whether to include the data historian server.
    pub historian_server: bool,
    /// Whether to include the domain controller.
    pub domain_controller: bool,
    /// Number of local HMI workstations on level 1.
    pub l1_hmis: usize,
    /// Number of PLCs on level 1.
    pub plcs: usize,
}

impl TopologySpec {
    /// The full-scale evaluation network of the paper (Fig. 2).
    pub fn paper_full() -> Self {
        Self {
            l2_workstations: 25,
            opc_server: true,
            historian_server: true,
            domain_controller: true,
            l1_hmis: 5,
            plcs: 50,
        }
    }

    /// The reduced network used for hyper-parameter tuning (§4.2): ten level-2
    /// workstations, three level-1 HMIs, thirty PLCs. Servers are retained so
    /// every attack trajectory remains reachable.
    pub fn paper_small() -> Self {
        Self {
            l2_workstations: 10,
            opc_server: true,
            historian_server: true,
            domain_controller: true,
            l1_hmis: 3,
            plcs: 30,
        }
    }

    /// A tiny network for fast unit tests.
    pub fn tiny() -> Self {
        Self {
            l2_workstations: 3,
            opc_server: true,
            historian_server: true,
            domain_controller: false,
            l1_hmis: 2,
            plcs: 4,
        }
    }

    /// Number of servers implied by the flags.
    pub fn server_count(&self) -> usize {
        usize::from(self.opc_server)
            + usize::from(self.historian_server)
            + usize::from(self.domain_controller)
    }

    /// Total number of computing nodes (workstations + servers + HMIs).
    pub fn total_nodes(&self) -> usize {
        self.l2_workstations + self.server_count() + self.l1_hmis
    }

    /// Validates that the specification can support an end-to-end attack:
    /// at least one level-2 node to serve as a beachhead, at least one HMI or
    /// the OPC server as an attack vector, the historian for process
    /// discovery, and at least one PLC target.
    pub fn is_attackable(&self) -> bool {
        self.l2_workstations >= 1
            && self.historian_server
            && (self.l1_hmis >= 1 || self.opc_server)
            && self.plcs >= 1
    }
}

impl Default for TopologySpec {
    fn default() -> Self {
        Self::paper_full()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn paper_full_matches_figure_2() {
        let spec = TopologySpec::paper_full();
        assert_eq!(spec.l2_workstations, 25);
        assert_eq!(spec.server_count(), 3);
        assert_eq!(spec.l1_hmis, 5);
        assert_eq!(spec.plcs, 50);
        assert_eq!(spec.total_nodes(), 33);
        assert!(spec.is_attackable());
    }

    #[test]
    fn paper_small_matches_section_4_2() {
        let spec = TopologySpec::paper_small();
        assert_eq!(spec.l2_workstations, 10);
        assert_eq!(spec.l1_hmis, 3);
        assert_eq!(spec.plcs, 30);
        assert!(spec.is_attackable());
    }

    #[test]
    fn default_is_full() {
        assert_eq!(TopologySpec::default(), TopologySpec::paper_full());
    }

    #[test]
    fn attackability_requires_historian_and_targets() {
        let mut spec = TopologySpec::tiny();
        assert!(spec.is_attackable());
        spec.historian_server = false;
        assert!(!spec.is_attackable());
        spec.historian_server = true;
        spec.plcs = 0;
        assert!(!spec.is_attackable());
    }
}
