//! Topology specifications: how many of each element to build.
//!
//! Two layers describe a network:
//!
//! * [`TopologyParams`] — the *generative* surface: PERA levels, VLAN
//!   segments per level, nodes per segment, the server mix, the PLC count and
//!   the per-device alert-cost factors. Parameters validate into a
//!   [`TopologySpec`].
//! * [`TopologySpec`] — the concrete, validated element counts that
//!   [`crate::Topology::build`] consumes. The paper's three networks are kept
//!   as named instances ([`TopologySpec::paper_full`],
//!   [`TopologySpec::paper_small`], [`TopologySpec::tiny`]).

use crate::device::DeviceKind;
use crate::error::TopologyError;
use serde::{Deserialize, Serialize};

/// Number of PERA levels the simulator models (plant level 1 and engineering
/// level 2 — see [`crate::Level`]).
pub const PERA_LEVELS: usize = 2;

/// Maximum operations-VLAN segments per level. Bounded so segment subnets
/// (third IP octet `1 + segment`) stay clear of reserved address space.
pub const MAX_SEGMENTS_PER_LEVEL: usize = 8;

/// Hosts that fit inside a segment's *own* `/24` subnet. Host numbers start
/// at 10 and must stay below 100 so node addresses never collide with the PLC
/// host range (100+) even when a level-1 segment shares a /24 third octet
/// with a PLC subnet. Segments denser than this spill into per-level overflow
/// subnets (third octet [`OVERFLOW_SUBNET_BASE`]+).
pub const SEGMENT_SUBNET_HOSTS: usize = 89;

/// Default per-segment host budget ([`TopologySpec::host_budget`]): the
/// paper-era cap where every segment fits its own /24 and no overflow subnets
/// are allocated. Scenarios raise the budget to build denser segments.
pub const MAX_HOSTS_PER_SEGMENT: usize = SEGMENT_SUBNET_HOSTS;

/// First third-octet used by overflow subnets. Stays clear of the segment
/// subnets (third octets `1..=8`) and, on level 1, of the PLC subnets (third
/// octets `2..=5`, which only use the 100+ host range anyway).
pub const OVERFLOW_SUBNET_BASE: usize = 9;

/// Hosts per overflow /24 block (fourth octets `10..=249`, mirroring the
/// segment-subnet host-numbering convention).
pub const OVERFLOW_SUBNET_HOSTS: usize = 240;

/// Overflow /24 blocks available per level (third octets `9..=255`).
pub const OVERFLOW_SUBNETS_PER_LEVEL: usize = 256 - OVERFLOW_SUBNET_BASE;

/// Maximum PLCs. PLC subnets start at third octet 2 and hold 150 PLCs each;
/// four subnets keep them clear of segment subnets' host ranges.
pub const MAX_PLCS: usize = 600;

/// Alert-probability multipliers of the three networking device kinds.
///
/// Every device a malicious message crosses multiplies the probability that
/// the IDS raises an alert; the paper's appendix fixes switch 1x, router 2x,
/// firewall 5x. Generated scenarios may strengthen or weaken the monitoring
/// fabric by scaling these factors.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct DeviceFactors {
    /// Multiplier of a VLAN switch.
    pub switch: f64,
    /// Multiplier of a level router.
    pub router: f64,
    /// Multiplier of a firewall.
    pub firewall: f64,
}

impl DeviceFactors {
    /// The paper's factors: switch 1x, router 2x, firewall 5x.
    pub fn paper() -> Self {
        Self {
            switch: 1.0,
            router: 2.0,
            firewall: 5.0,
        }
    }

    /// The factor for a device kind.
    pub fn factor(&self, kind: &DeviceKind) -> f64 {
        match kind {
            DeviceKind::Switch { .. } => self.switch,
            DeviceKind::Router => self.router,
            DeviceKind::Firewall => self.firewall,
        }
    }

    /// Validates that every factor is finite and positive.
    ///
    /// # Errors
    ///
    /// Returns [`TopologyError::InvalidParameter`] on a non-finite,
    /// non-positive or implausibly large factor.
    pub fn validate(&self) -> Result<(), TopologyError> {
        for (field, value) in [
            ("device_factors.switch", self.switch),
            ("device_factors.router", self.router),
            ("device_factors.firewall", self.firewall),
        ] {
            if !value.is_finite() || value <= 0.0 || value > 1_000.0 {
                return Err(TopologyError::InvalidParameter {
                    field,
                    reason: "must be finite and in (0, 1000]",
                });
            }
        }
        Ok(())
    }
}

impl Default for DeviceFactors {
    fn default() -> Self {
        Self::paper()
    }
}

/// Which level-2 servers a network contains.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct ServerMix {
    /// Include the OPC server.
    pub opc: bool,
    /// Include the data historian.
    pub historian: bool,
    /// Include the domain controller.
    pub domain_controller: bool,
}

impl ServerMix {
    /// All three servers (the paper's full and small networks).
    pub fn full() -> Self {
        Self {
            opc: true,
            historian: true,
            domain_controller: true,
        }
    }

    /// OPC + historian only (the tiny test network).
    pub fn minimal() -> Self {
        Self {
            opc: true,
            historian: true,
            domain_controller: false,
        }
    }

    /// Number of servers in the mix.
    pub fn count(&self) -> usize {
        usize::from(self.opc) + usize::from(self.historian) + usize::from(self.domain_controller)
    }
}

/// Generative parameters for an ICS network: the shape knobs a scenario can
/// turn, validated down to a [`TopologySpec`].
///
/// ```
/// use ics_net::{TopologyParams, TopologySpec};
///
/// // The paper's full network, expressed generatively.
/// let spec = TopologyParams::paper_full().into_spec().unwrap();
/// assert_eq!(spec, TopologySpec::paper_full());
///
/// // A segmented variant: two engineering VLANs of 8 workstations each.
/// let mut params = TopologyParams::paper_small();
/// params.vlans_per_level = [1, 2];
/// params.nodes_per_vlan = [3, 8];
/// let spec = params.into_spec().unwrap();
/// assert_eq!(spec.l2_workstations, 16);
/// assert_eq!(spec.l2_segments, 2);
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct TopologyParams {
    /// Number of PERA levels. The simulator models exactly
    /// [`PERA_LEVELS`] (plant 1 + engineering 2); other values are rejected
    /// by validation rather than silently reinterpreted.
    pub levels: usize,
    /// Operations-VLAN segments per level, indexed `[level-1, level-2]`.
    pub vlans_per_level: [usize; PERA_LEVELS],
    /// Hosts homed on each segment, indexed `[level-1, level-2]`: HMIs per
    /// level-1 segment, workstations per level-2 segment (servers are homed
    /// on level-2 segment 0 in addition to these).
    pub nodes_per_vlan: [usize; PERA_LEVELS],
    /// Which level-2 servers exist.
    pub servers: ServerMix,
    /// Number of PLCs on level 1.
    pub plcs: usize,
    /// Alert-cost multipliers of switches, routers and firewalls.
    pub device_factors: DeviceFactors,
    /// Per-segment host budget (see [`TopologySpec::host_budget`]).
    pub host_budget: usize,
}

impl TopologyParams {
    /// The full-scale evaluation network of the paper (Fig. 2), generatively.
    pub fn paper_full() -> Self {
        Self {
            levels: PERA_LEVELS,
            vlans_per_level: [1, 1],
            nodes_per_vlan: [5, 25],
            servers: ServerMix::full(),
            plcs: 50,
            device_factors: DeviceFactors::paper(),
            host_budget: MAX_HOSTS_PER_SEGMENT,
        }
    }

    /// The reduced grid-search network (§4.2), generatively.
    pub fn paper_small() -> Self {
        Self {
            vlans_per_level: [1, 1],
            nodes_per_vlan: [3, 10],
            plcs: 30,
            ..Self::paper_full()
        }
    }

    /// Validates the parameters and produces the concrete spec.
    ///
    /// # Errors
    ///
    /// Returns [`TopologyError::InvalidParameter`] for out-of-range values
    /// and [`TopologyError::UnattackableSpec`] if the resulting network could
    /// not host an end-to-end attack.
    pub fn into_spec(self) -> Result<TopologySpec, TopologyError> {
        if self.levels != PERA_LEVELS {
            return Err(TopologyError::InvalidParameter {
                field: "levels",
                reason: "the PERA model has exactly 2 levels (plant 1 + engineering 2)",
            });
        }
        let spec = TopologySpec {
            l2_workstations: self.nodes_per_vlan[1] * self.vlans_per_level[1],
            opc_server: self.servers.opc,
            historian_server: self.servers.historian,
            domain_controller: self.servers.domain_controller,
            l1_hmis: self.nodes_per_vlan[0] * self.vlans_per_level[0],
            plcs: self.plcs,
            l2_segments: self.vlans_per_level[1],
            l1_segments: self.vlans_per_level[0],
            device_factors: self.device_factors,
            host_budget: self.host_budget,
        };
        spec.validate()?;
        Ok(spec)
    }
}

impl Default for TopologyParams {
    fn default() -> Self {
        Self::paper_full()
    }
}

/// Parameters describing the shape of an ICS network to build.
///
/// The presets match the networks used in the paper:
///
/// * [`TopologySpec::paper_full`] — the evaluation network of Fig. 2
///   (25 level-2 workstations, 3 servers, 5 level-1 HMIs, 50 PLCs).
/// * [`TopologySpec::paper_small`] — the reduced network used for the
///   hyper-parameter grid search in §4.2 (10 level-2 workstations, 3 level-1
///   HMIs, 30 PLCs).
///
/// Arbitrary shapes come from [`TopologyParams`], which validates into this
/// type.
///
/// ```
/// use ics_net::TopologySpec;
/// let spec = TopologySpec::paper_full();
/// assert_eq!(spec.l2_workstations, 25);
/// assert_eq!(spec.plcs, 50);
/// assert_eq!(spec.total_nodes(), 33);
/// ```
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct TopologySpec {
    /// Number of engineering (level-2) workstations.
    pub l2_workstations: usize,
    /// Whether to include the OPC server.
    pub opc_server: bool,
    /// Whether to include the data historian server.
    pub historian_server: bool,
    /// Whether to include the domain controller.
    pub domain_controller: bool,
    /// Number of local HMI workstations on level 1.
    pub l1_hmis: usize,
    /// Number of PLCs on level 1.
    pub plcs: usize,
    /// Operations-VLAN segments on level 2 (workstations round-robin across
    /// them; servers stay on segment 0).
    pub l2_segments: usize,
    /// Operations-VLAN segments on level 1 (HMIs round-robin across them;
    /// PLCs stay attached to segment 0's switch).
    pub l1_segments: usize,
    /// Alert-cost multipliers of switches, routers and firewalls.
    pub device_factors: DeviceFactors,
    /// Per-segment host budget: the heaviest host load any one segment may
    /// carry. Defaults to [`MAX_HOSTS_PER_SEGMENT`] (89, the paper-era cap
    /// where every segment fits its own /24); larger budgets let segments
    /// span multiple /24s via per-level overflow subnets, bounded by the
    /// level's address space ([`OVERFLOW_SUBNETS_PER_LEVEL`] blocks of
    /// [`OVERFLOW_SUBNET_HOSTS`] hosts).
    pub host_budget: usize,
}

impl TopologySpec {
    /// The full-scale evaluation network of the paper (Fig. 2).
    pub fn paper_full() -> Self {
        Self {
            l2_workstations: 25,
            opc_server: true,
            historian_server: true,
            domain_controller: true,
            l1_hmis: 5,
            plcs: 50,
            l2_segments: 1,
            l1_segments: 1,
            device_factors: DeviceFactors::paper(),
            host_budget: MAX_HOSTS_PER_SEGMENT,
        }
    }

    /// The reduced network used for hyper-parameter tuning (§4.2): ten level-2
    /// workstations, three level-1 HMIs, thirty PLCs. Servers are retained so
    /// every attack trajectory remains reachable.
    pub fn paper_small() -> Self {
        Self {
            l2_workstations: 10,
            l1_hmis: 3,
            plcs: 30,
            ..Self::paper_full()
        }
    }

    /// A tiny network for fast unit tests.
    pub fn tiny() -> Self {
        Self {
            l2_workstations: 3,
            domain_controller: false,
            l1_hmis: 2,
            plcs: 4,
            ..Self::paper_full()
        }
    }

    /// Number of servers implied by the flags.
    pub fn server_count(&self) -> usize {
        usize::from(self.opc_server)
            + usize::from(self.historian_server)
            + usize::from(self.domain_controller)
    }

    /// Total number of computing nodes (workstations + servers + HMIs).
    pub fn total_nodes(&self) -> usize {
        self.l2_workstations + self.server_count() + self.l1_hmis
    }

    /// Segment count for a PERA level number.
    pub fn segments_for_level(&self, level: u8) -> usize {
        if level == 1 {
            self.l1_segments
        } else {
            self.l2_segments
        }
    }

    /// Validates that the specification can support an end-to-end attack:
    /// at least one level-2 node to serve as a beachhead, at least one HMI or
    /// the OPC server as an attack vector, the historian for process
    /// discovery, and at least one PLC target.
    pub fn is_attackable(&self) -> bool {
        self.l2_workstations >= 1
            && self.historian_server
            && (self.l1_hmis >= 1 || self.opc_server)
            && self.plcs >= 1
    }

    /// Host load of every segment on a level, in segment order: hosts are
    /// dealt round-robin (so earlier segments carry the remainder), and
    /// level-2 segment 0 additionally homes the servers.
    pub fn segment_loads(&self, level: u8) -> Vec<usize> {
        let (hosts, segments, extra) = if level == 1 {
            (self.l1_hmis, self.l1_segments, 0)
        } else {
            (self.l2_workstations, self.l2_segments, self.server_count())
        };
        let segments = segments.max(1);
        (0..segments)
            .map(|s| {
                hosts / segments
                    + usize::from(s < hosts % segments)
                    + if s == 0 { extra } else { 0 }
            })
            .collect()
    }

    /// The heaviest host load of any one segment on a level.
    fn max_segment_load(&self, level: u8) -> usize {
        self.segment_loads(level).into_iter().max().unwrap_or(0)
    }

    /// Hosts on a level that do not fit their segment's own /24 subnet and
    /// spill into the level's overflow subnets.
    fn overflow_hosts(&self, level: u8) -> usize {
        self.segment_loads(level)
            .into_iter()
            .map(|load| load.saturating_sub(SEGMENT_SUBNET_HOSTS))
            .sum()
    }

    /// Validates the spec against the addressing scheme and the attack model.
    ///
    /// # Errors
    ///
    /// Returns [`TopologyError::InvalidParameter`] for structurally degenerate
    /// specs (zero or excessive segments, a segment too dense for its /24
    /// subnet, too many PLCs, bad device factors) and
    /// [`TopologyError::UnattackableSpec`] when the network cannot host an
    /// end-to-end attack.
    pub fn validate(&self) -> Result<(), TopologyError> {
        for (field, segments) in [
            ("l1_segments", self.l1_segments),
            ("l2_segments", self.l2_segments),
        ] {
            if segments == 0 || segments > MAX_SEGMENTS_PER_LEVEL {
                return Err(TopologyError::InvalidParameter {
                    field,
                    reason: "segments per level must be in 1..=8",
                });
            }
        }
        if self.plcs > MAX_PLCS {
            return Err(TopologyError::InvalidParameter {
                field: "plcs",
                reason: "at most 600 PLCs fit the PLC subnets",
            });
        }
        if self.host_budget == 0 {
            return Err(TopologyError::InvalidParameter {
                field: "host_budget",
                reason: "per-segment host budget must be at least 1",
            });
        }
        for level in [1u8, 2] {
            if self.max_segment_load(level) > self.host_budget {
                return Err(TopologyError::InvalidParameter {
                    field: if level == 1 {
                        "l1_hmis"
                    } else {
                        "l2_workstations"
                    },
                    reason: "a VLAN segment holds more hosts than the scenario's host budget",
                });
            }
            if self.overflow_hosts(level) > OVERFLOW_SUBNETS_PER_LEVEL * OVERFLOW_SUBNET_HOSTS {
                return Err(TopologyError::AddressSpaceExhausted { level });
            }
        }
        self.device_factors.validate()?;
        if !self.is_attackable() {
            return Err(TopologyError::UnattackableSpec);
        }
        Ok(())
    }
}

impl Default for TopologySpec {
    fn default() -> Self {
        Self::paper_full()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn paper_full_matches_figure_2() {
        let spec = TopologySpec::paper_full();
        assert_eq!(spec.l2_workstations, 25);
        assert_eq!(spec.server_count(), 3);
        assert_eq!(spec.l1_hmis, 5);
        assert_eq!(spec.plcs, 50);
        assert_eq!(spec.total_nodes(), 33);
        assert!(spec.is_attackable());
        assert!(spec.validate().is_ok());
    }

    #[test]
    fn paper_small_matches_section_4_2() {
        let spec = TopologySpec::paper_small();
        assert_eq!(spec.l2_workstations, 10);
        assert_eq!(spec.l1_hmis, 3);
        assert_eq!(spec.plcs, 30);
        assert!(spec.is_attackable());
    }

    #[test]
    fn default_is_full() {
        assert_eq!(TopologySpec::default(), TopologySpec::paper_full());
        assert_eq!(
            TopologyParams::default().into_spec().unwrap(),
            TopologySpec::paper_full()
        );
    }

    #[test]
    fn attackability_requires_historian_and_targets() {
        let mut spec = TopologySpec::tiny();
        assert!(spec.is_attackable());
        spec.historian_server = false;
        assert!(!spec.is_attackable());
        assert_eq!(spec.validate(), Err(TopologyError::UnattackableSpec));
        spec.historian_server = true;
        spec.plcs = 0;
        assert!(!spec.is_attackable());
    }

    #[test]
    fn params_reproduce_paper_presets() {
        assert_eq!(
            TopologyParams::paper_full().into_spec().unwrap(),
            TopologySpec::paper_full()
        );
        assert_eq!(
            TopologyParams::paper_small().into_spec().unwrap(),
            TopologySpec::paper_small()
        );
    }

    #[test]
    fn params_validation_rejects_degenerate_shapes() {
        let mut params = TopologyParams::paper_small();
        params.levels = 3;
        assert!(matches!(
            params.into_spec(),
            Err(TopologyError::InvalidParameter {
                field: "levels",
                ..
            })
        ));

        let mut params = TopologyParams::paper_small();
        params.vlans_per_level = [1, 0];
        assert!(matches!(
            params.into_spec(),
            Err(TopologyError::InvalidParameter {
                field: "l2_segments",
                ..
            })
        ));

        let mut params = TopologyParams::paper_small();
        params.nodes_per_vlan = [3, 120];
        assert!(matches!(
            params.into_spec(),
            Err(TopologyError::InvalidParameter {
                field: "l2_workstations",
                ..
            })
        ));

        let mut params = TopologyParams::paper_small();
        params.plcs = MAX_PLCS + 1;
        assert!(matches!(
            params.into_spec(),
            Err(TopologyError::InvalidParameter { field: "plcs", .. })
        ));

        let mut params = TopologyParams::paper_small();
        params.device_factors.firewall = f64::NAN;
        assert!(matches!(
            params.into_spec(),
            Err(TopologyError::InvalidParameter {
                field: "device_factors.firewall",
                ..
            })
        ));

        let mut params = TopologyParams::paper_small();
        params.plcs = 0;
        assert_eq!(params.into_spec(), Err(TopologyError::UnattackableSpec));
    }

    #[test]
    fn segment_loads_account_for_servers_on_segment_zero() {
        let mut spec = TopologySpec::paper_full();
        // 25 workstations over 1 segment + 3 servers = 28 <= 89.
        assert!(spec.validate().is_ok());
        spec.l2_workstations = 87;
        // 87 + 3 servers = 90 > 89: one host too many.
        assert!(spec.validate().is_err());
        spec.l2_segments = 2;
        // ceil(87/2) + 3 = 47: fits again.
        assert!(spec.validate().is_ok());
        assert_eq!(spec.segments_for_level(2), 2);
        assert_eq!(spec.segments_for_level(1), 1);
    }

    #[test]
    fn host_budget_lifts_the_per_segment_cap() {
        let mut spec = TopologySpec::paper_full();
        spec.l2_workstations = 150;
        // 150 + 3 servers = 153 > 89: rejected under the default budget...
        assert!(matches!(
            spec.validate(),
            Err(TopologyError::InvalidParameter {
                field: "l2_workstations",
                ..
            })
        ));
        // ...but valid once the scenario budgets for denser segments.
        spec.host_budget = 200;
        assert!(spec.validate().is_ok());
        assert_eq!(spec.segment_loads(2), vec![153]);
        assert_eq!(spec.segment_loads(1), vec![5]);
    }

    #[test]
    fn host_budget_zero_is_rejected() {
        let mut spec = TopologySpec::paper_full();
        spec.host_budget = 0;
        assert!(matches!(
            spec.validate(),
            Err(TopologyError::InvalidParameter {
                field: "host_budget",
                ..
            })
        ));
    }

    #[test]
    fn segment_loads_deal_remainders_to_early_segments() {
        let mut spec = TopologySpec::paper_full();
        spec.l2_workstations = 7;
        spec.l2_segments = 3;
        // 7 over 3 segments: 3/2/2, plus 3 servers on segment 0.
        assert_eq!(spec.segment_loads(2), vec![6, 2, 2]);
    }

    #[test]
    fn overflow_past_the_level_address_space_is_exhaustion() {
        let mut spec = TopologySpec::paper_full();
        // One segment carrying more overflow hosts than 247 /24 blocks hold.
        let too_many = SEGMENT_SUBNET_HOSTS + OVERFLOW_SUBNETS_PER_LEVEL * OVERFLOW_SUBNET_HOSTS;
        spec.l2_workstations = too_many; // + 3 servers pushes past the space
        spec.host_budget = usize::MAX;
        assert_eq!(
            spec.validate(),
            Err(TopologyError::AddressSpaceExhausted { level: 2 })
        );
    }

    #[test]
    fn device_factor_presets_and_lookup() {
        let f = DeviceFactors::paper();
        assert_eq!(f.factor(&DeviceKind::Router), 2.0);
        assert_eq!(f.factor(&DeviceKind::Firewall), 5.0);
        assert_eq!(
            f.factor(&DeviceKind::Switch {
                vlan: crate::VlanId::ops(2)
            }),
            1.0
        );
        assert_eq!(DeviceFactors::default(), DeviceFactors::paper());
        assert!(f.validate().is_ok());
        let bad = DeviceFactors {
            router: 0.0,
            ..DeviceFactors::paper()
        };
        assert!(bad.validate().is_err());
    }

    #[test]
    fn server_mix_counts() {
        assert_eq!(ServerMix::full().count(), 3);
        assert_eq!(ServerMix::minimal().count(), 2);
    }
}
