//! Computing nodes: workstations, servers, and human-machine interfaces.

use crate::address::VlanId;
use serde::{Deserialize, Serialize};
use std::fmt;

/// Index of a computing node within a [`crate::Topology`].
///
/// Node identifiers are dense indices assigned at topology construction time,
/// which makes them suitable as direct indices into per-node state vectors.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize)]
pub struct NodeId(pub(crate) usize);

impl NodeId {
    /// Creates a node identifier from a raw index.
    ///
    /// Intended for tests and for state containers that index per-node arrays;
    /// topologies assign identifiers themselves.
    pub fn from_index(index: usize) -> Self {
        Self(index)
    }

    /// Raw dense index of the node.
    pub fn index(&self) -> usize {
        self.0
    }
}

impl fmt::Display for NodeId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "node#{}", self.0)
    }
}

/// PERA level a node or device belongs to.
///
/// The paper models level 2 (engineering: workstations and servers) and
/// level 1 (plant: local HMIs and PLCs).
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize)]
pub enum Level {
    /// Plant level: local HMIs and the PLCs they control.
    Plant1,
    /// Engineering level: operator workstations and servers.
    Engineering2,
}

impl Level {
    /// Numeric PERA level (1 or 2).
    pub fn number(&self) -> u8 {
        match self {
            Level::Plant1 => 1,
            Level::Engineering2 => 2,
        }
    }

    /// All modelled levels, lowest (most critical) first.
    pub fn all() -> [Level; 2] {
        [Level::Plant1, Level::Engineering2]
    }
}

impl fmt::Display for Level {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "level {}", self.number())
    }
}

/// Functional role of a server node.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum ServerRole {
    /// Open Platform Communications server: provides direct access to scan and
    /// control the PLCs from level 2.
    Opc,
    /// Data historian: records the performance of the controlled process. The
    /// attacker must compromise and analyze it before executing an attack.
    Historian,
    /// Domain controller. In the paper's simulation its credential management
    /// functionality is disabled, making it behave like a workstation, but it
    /// is still a server for action-cost purposes.
    DomainController,
}

impl fmt::Display for ServerRole {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ServerRole::Opc => write!(f, "OPC"),
            ServerRole::Historian => write!(f, "historian"),
            ServerRole::DomainController => write!(f, "domain controller"),
        }
    }
}

/// The kind of a computing node.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum NodeKind {
    /// A level-2 engineering workstation.
    Workstation,
    /// A level-2 server with a specific role.
    Server(ServerRole),
    /// A level-1 local human-machine interface workstation.
    Hmi,
}

impl NodeKind {
    /// Whether the node is a server (affects action costs and alert severity).
    pub fn is_server(&self) -> bool {
        matches!(self, NodeKind::Server(_))
    }

    /// Whether the node is a level-1 HMI.
    pub fn is_hmi(&self) -> bool {
        matches!(self, NodeKind::Hmi)
    }

    /// Whether the node is a level-2 workstation.
    pub fn is_workstation(&self) -> bool {
        matches!(self, NodeKind::Workstation)
    }

    /// The server role, if this node is a server.
    pub fn server_role(&self) -> Option<ServerRole> {
        match self {
            NodeKind::Server(role) => Some(*role),
            _ => None,
        }
    }
}

impl fmt::Display for NodeKind {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            NodeKind::Workstation => write!(f, "workstation"),
            NodeKind::Server(role) => write!(f, "{role} server"),
            NodeKind::Hmi => write!(f, "HMI"),
        }
    }
}

/// A computing node in the topology.
///
/// Nodes carry only static structure; their dynamic compromise state lives in
/// the simulator crate.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct Node {
    /// Dense identifier of the node.
    pub id: NodeId,
    /// What kind of node this is.
    pub kind: NodeKind,
    /// PERA level the node belongs to.
    pub level: Level,
    /// Operations VLAN the node is homed on. The simulator may move
    /// workstations to the corresponding quarantine VLAN at run time.
    pub home_vlan: VlanId,
}

impl Node {
    /// Creates a node. Topology construction assigns identifiers.
    pub fn new(id: NodeId, kind: NodeKind, level: Level, home_vlan: VlanId) -> Self {
        Self {
            id,
            kind,
            level,
            home_vlan,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn level_numbers() {
        assert_eq!(Level::Plant1.number(), 1);
        assert_eq!(Level::Engineering2.number(), 2);
        assert_eq!(Level::all().len(), 2);
    }

    #[test]
    fn node_kind_predicates() {
        assert!(NodeKind::Workstation.is_workstation());
        assert!(!NodeKind::Workstation.is_server());
        assert!(NodeKind::Server(ServerRole::Opc).is_server());
        assert_eq!(
            NodeKind::Server(ServerRole::Historian).server_role(),
            Some(ServerRole::Historian)
        );
        assert!(NodeKind::Hmi.is_hmi());
        assert_eq!(NodeKind::Hmi.server_role(), None);
    }

    #[test]
    fn node_kind_display() {
        assert_eq!(NodeKind::Workstation.to_string(), "workstation");
        assert_eq!(NodeKind::Server(ServerRole::Opc).to_string(), "OPC server");
        assert_eq!(NodeKind::Hmi.to_string(), "HMI");
    }

    #[test]
    fn node_id_index_round_trip() {
        let id = NodeId::from_index(7);
        assert_eq!(id.index(), 7);
        assert_eq!(id.to_string(), "node#7");
    }
}
