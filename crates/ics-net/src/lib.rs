//! ICS network topology substrate for the ACSO reproduction.
//!
//! This crate models the *static* structure of an industrial control network
//! organised according to the Purdue Enterprise Reference Architecture (PERA):
//! computing nodes (workstations, servers, human-machine interfaces),
//! programmable logic controllers (PLCs), and the networking devices
//! (switches, routers, firewalls) that connect them into per-level VLANs.
//!
//! The dynamic behaviour (compromise states, attacker and defender actions,
//! alerts) lives in the `ics-sim` crate; this crate only answers structural
//! questions such as *"which devices does a message from node A to node B
//! traverse?"* and *"which nodes share a VLAN with this switch?"*.
//!
//! # Example
//!
//! ```
//! use ics_net::{Topology, TopologySpec};
//!
//! // The full-scale network used in the paper: 25 level-2 workstations,
//! // 3 servers, 5 level-1 HMIs and 50 PLCs.
//! let topo = Topology::build(&TopologySpec::paper_full()).unwrap();
//! assert_eq!(topo.workstations().count(), 25);
//! assert_eq!(topo.plc_count(), 50);
//!
//! // Messages crossing from level 2 to level 1 pass through a firewall,
//! // which multiplies the alert probability by 5.
//! let l2 = topo.workstations().next().unwrap().id;
//! let hmi = topo.hmis().next().unwrap().id;
//! assert!(topo.path_device_factor(l2, hmi) >= 5.0);
//! ```

#![warn(missing_docs)]

pub mod address;
pub mod device;
pub mod node;
pub mod plc;
pub mod spec;
pub mod topology;

mod error;

pub use address::{IpAddr, VlanId};
pub use device::{Device, DeviceId, DeviceKind};
pub use error::TopologyError;
pub use node::{Level, Node, NodeId, NodeKind, ServerRole};
pub use plc::{Plc, PlcId};
pub use spec::{DeviceFactors, ServerMix, TopologyParams, TopologySpec, MAX_HOSTS_PER_SEGMENT};
pub use topology::Topology;
