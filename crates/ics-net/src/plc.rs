//! Programmable logic controllers.
//!
//! PLCs are the assets the attacker ultimately targets: disrupting their
//! process or destroying the equipment they control. They are attached to the
//! level-1 switch and are not general-purpose computing nodes (the APT cannot
//! pivot *from* a PLC), so they are modelled separately from [`crate::Node`].

use serde::{Deserialize, Serialize};
use std::fmt;

/// Index of a PLC within a [`crate::Topology`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize)]
pub struct PlcId(pub(crate) usize);

impl PlcId {
    /// Creates a PLC identifier from a raw index.
    pub fn from_index(index: usize) -> Self {
        Self(index)
    }

    /// Raw dense index of the PLC.
    pub fn index(&self) -> usize {
        self.0
    }
}

impl fmt::Display for PlcId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "plc#{}", self.0)
    }
}

/// A programmable logic controller.
///
/// PLCs carry only static structure here; operational state (nominal,
/// disrupted, destroyed, firmware-compromised) lives in the simulator.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct Plc {
    /// Dense identifier of the PLC.
    pub id: PlcId,
}

impl Plc {
    /// Creates a PLC. Topology construction assigns identifiers.
    pub fn new(id: PlcId) -> Self {
        Self { id }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn plc_id_round_trip() {
        let id = PlcId::from_index(42);
        assert_eq!(id.index(), 42);
        assert_eq!(id.to_string(), "plc#42");
        assert_eq!(Plc::new(id).id, id);
    }
}
