//! Property-based invariants of the generative topology builder.
//!
//! For randomized [`TopologyParams`], any parameters that validate must
//! build a topology upholding the structural invariants the simulator
//! depends on; parameters that do not validate must be rejected with a typed
//! error, never a panic.

use ics_net::{
    DeviceFactors, DeviceKind, ServerMix, Topology, TopologyError, TopologyParams, VlanId,
};
use proptest::prelude::*;

proptest! {
    #![proptest_config(ProptestConfig::with_cases(256))]

    /// Arbitrary — frequently degenerate — generative parameters: the ranges
    /// deliberately exceed the validated bounds so rejection paths are
    /// exercised alongside construction paths.
    fn built_topologies_uphold_invariants(
        levels in 1usize..4,
        l1_vlans in 0usize..11,
        l2_vlans in 0usize..11,
        hmis_per_vlan in 0usize..100,
        ws_per_vlan in 0usize..100,
        opc in 0u8..2,
        historian in 0u8..2,
        dc in 0u8..2,
        plcs in 0usize..700,
        router_factor in 0.0f64..12.0,
        host_budget in 0usize..400,
    ) {
        let params = TopologyParams {
            levels,
            vlans_per_level: [l1_vlans, l2_vlans],
            nodes_per_vlan: [hmis_per_vlan, ws_per_vlan],
            servers: ServerMix {
                opc: opc == 1,
                historian: historian == 1,
                domain_controller: dc == 1,
            },
            plcs,
            device_factors: DeviceFactors {
                router: router_factor,
                ..DeviceFactors::paper()
            },
            host_budget,
        };

        // Validation and construction must agree, and neither may panic.
        let spec = match params.into_spec() {
            Ok(spec) => spec,
            Err(
                TopologyError::InvalidParameter { .. }
                | TopologyError::UnattackableSpec
                | TopologyError::AddressSpaceExhausted { .. },
            ) => return Ok(()),
            Err(other) => {
                prop_assert!(false, "unexpected validation error {other:?}");
                unreachable!()
            }
        };
        let topo = match Topology::build(&spec) {
            Ok(topo) => topo,
            Err(e) => {
                prop_assert!(false, "validated spec failed to build: {e}");
                unreachable!()
            }
        };

        // Counts match the spec.
        prop_assert_eq!(topo.node_count(), spec.total_nodes());
        prop_assert_eq!(topo.plc_count(), spec.plcs);

        // Unique IPs across nodes and PLCs.
        let mut seen = std::collections::HashSet::new();
        for id in topo.node_ids() {
            prop_assert!(seen.insert(topo.ip_of(id)), "duplicate node ip");
        }
        for plc in topo.plc_ids() {
            prop_assert!(seen.insert(topo.plc_ip(plc)), "duplicate plc ip");
        }

        // Every node is reachable from its home VLAN's switch, and that
        // switch serves the node's VLAN.
        for node in topo.nodes() {
            let switch = topo.switch_for_vlan(node.home_vlan);
            prop_assert!(switch.is_some(), "node {} has no switch", node.id);
            let device = topo
                .devices()
                .find(|d| Some(d.id) == switch)
                .expect("switch id resolves");
            prop_assert!(
                matches!(device.kind, DeviceKind::Switch { vlan } if vlan == node.home_vlan)
            );
            prop_assert_eq!(device.level, node.level);
        }

        // A router exists for every level, and every VLAN has a quarantine
        // counterpart switch.
        for vlan in topo.vlans() {
            prop_assert!(topo
                .router_for_level(if vlan.level_number() == 1 {
                    ics_net::Level::Plant1
                } else {
                    ics_net::Level::Engineering2
                })
                .is_some());
            prop_assert!(topo.switch_for_vlan(vlan.counterpart()).is_some());
        }

        // Every cross-level path crosses the plant firewall exactly once;
        // same-level paths never do.
        for from in topo.vlans() {
            for to in topo.vlans() {
                let path = topo.devices_between_vlans(from, to);
                let firewalls = path
                    .iter()
                    .filter(|d| **d == topo.plant_firewall())
                    .count();
                if from.level_number() == to.level_number() {
                    prop_assert_eq!(firewalls, 0);
                } else {
                    prop_assert_eq!(firewalls, 1);
                }
                prop_assert!(topo.device_factor_between_vlans(from, to) > 0.0);
            }
        }
    }

    /// Generated scenario parameter ranges (`Scenario::from_seed` draws
    /// segments up to 3x2, hosts up to 20, PLCs up to 80) always validate.
    fn scenario_generation_ranges_always_validate(
        l1_vlans in 1usize..3,
        l2_vlans in 1usize..4,
        hmis_per_vlan in 2usize..7,
        ws_per_vlan in 4usize..21,
        plcs in 10usize..81,
    ) {
        let params = TopologyParams {
            levels: 2,
            vlans_per_level: [l1_vlans, l2_vlans],
            nodes_per_vlan: [hmis_per_vlan, ws_per_vlan],
            servers: ServerMix::full(),
            plcs,
            device_factors: DeviceFactors::paper(),
            host_budget: ics_net::MAX_HOSTS_PER_SEGMENT,
        };
        let spec = params.into_spec();
        prop_assert!(spec.is_ok(), "{spec:?}");
        prop_assert!(Topology::build(&spec.unwrap()).is_ok());
    }
}

#[test]
fn paper_preset_still_single_segment() {
    // Guard that the property-test machinery exercises the same builder the
    // presets use: segment-0-only presets keep the paper's VLAN set.
    let topo = Topology::build(&ics_net::TopologySpec::paper_full()).unwrap();
    assert_eq!(
        topo.vlans(),
        vec![
            VlanId::ops(1),
            VlanId::quarantine(1),
            VlanId::ops(2),
            VlanId::quarantine(2),
        ]
    );
}
