//! Dynamic Bayes network filter for per-node compromise beliefs (§4.3).
//!
//! The defender never observes which nodes the APT controls; it only sees
//! IDS alerts and the outcomes of its own investigations. The paper's ACSO
//! does not learn a perception system — instead it feeds its policy network a
//! *belief* over each node's compromise state produced by a dynamic Bayes
//! network (DBN) whose conditional probability tables are learned from
//! episodes collected with a random defender.
//!
//! This crate provides:
//!
//! * [`types`] — the discretisation of observations, defender actions and
//!   the network summary statistic µ used to keep the update tractable;
//! * [`cpt`] — Laplace-smoothed conditional probability tables;
//! * [`learn`] — data collection (random-defender episodes against the
//!   simulator) and table estimation;
//! * [`filter`] — the recursive Bayes update of eq. (7), producing one belief
//!   vector per node per hour;
//! * [`validate`] — the KL-divergence validation protocol of §4.3.
//!
//! # Example
//!
//! ```
//! use dbn::{learn::LearnConfig, learn::learn_model, filter::DbnFilter};
//! use ics_sim::{IcsEnvironment, SimConfig, DefenderAction};
//!
//! // Learn a small model from a handful of short random-defender episodes.
//! let sim = SimConfig::tiny().with_max_time(120);
//! let model = learn_model(&LearnConfig { episodes: 3, seed: 1, sim: sim.clone() });
//!
//! // Filter an episode with the learned model.
//! let mut env = IcsEnvironment::new(sim.with_seed(9));
//! let mut filter = DbnFilter::new(model, env.topology().node_count());
//! let _ = env.reset();
//! for _ in 0..50 {
//!     let step = env.step(&[DefenderAction::NoAction]);
//!     filter.update(&step.observation);
//! }
//! // Beliefs are probability distributions.
//! let b = filter.belief(ics_net::NodeId::from_index(0));
//! assert!((b.iter().sum::<f64>() - 1.0).abs() < 1e-6);
//! ```

#![warn(missing_docs)]

pub mod cpt;
pub mod filter;
pub mod learn;
pub mod types;
pub mod validate;

pub use cpt::{ObservationCpt, TransitionCpt};
pub use filter::{DbnFilter, DbnModel};
pub use learn::{learn_model, LearnConfig};
pub use types::{ActionCategory, MuBucket, ObsSymbol};
pub use validate::{validate_filter, ValidationReport};
