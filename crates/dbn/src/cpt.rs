//! Laplace-smoothed conditional probability tables.

use crate::types::{ActionCategory, MuBucket, ObsSymbol};
use ics_sim::CompromiseClass;
use serde::{Deserialize, Serialize};

const S: usize = CompromiseClass::COUNT;
const A: usize = ActionCategory::COUNT;
const M: usize = MuBucket::COUNT;
const O: usize = ObsSymbol::COUNT;

/// Transition model `P(s' | s, µ, a)` over compromise classes.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct TransitionCpt {
    counts: Vec<f64>, // [s][mu][a][s']
    smoothing: f64,
}

impl TransitionCpt {
    /// Creates an empty table with the given Laplace smoothing pseudo-count.
    pub fn new(smoothing: f64) -> Self {
        Self {
            counts: vec![0.0; S * M * A * S],
            smoothing,
        }
    }

    fn idx(s: usize, mu: usize, a: usize, s_next: usize) -> usize {
        ((s * M + mu) * A + a) * S + s_next
    }

    /// Records one observed transition.
    pub fn record(
        &mut self,
        from: CompromiseClass,
        mu: MuBucket,
        action: ActionCategory,
        to: CompromiseClass,
    ) {
        self.counts[Self::idx(from.index(), mu.index(), action.index(), to.index())] += 1.0;
    }

    /// Probability of moving to `to` given the conditioning variables.
    pub fn prob(
        &self,
        from: CompromiseClass,
        mu: MuBucket,
        action: ActionCategory,
        to: CompromiseClass,
    ) -> f64 {
        let base = Self::idx(from.index(), mu.index(), action.index(), 0);
        let total: f64 =
            self.counts[base..base + S].iter().sum::<f64>() + self.smoothing * S as f64;
        (self.counts[base + to.index()] + self.smoothing) / total
    }

    /// The full next-state distribution for the conditioning variables.
    pub fn distribution(
        &self,
        from: CompromiseClass,
        mu: MuBucket,
        action: ActionCategory,
    ) -> [f64; S] {
        let mut out = [0.0; S];
        for (i, class) in CompromiseClass::ALL.into_iter().enumerate() {
            out[i] = self.prob(from, mu, action, class);
        }
        out
    }

    /// Total number of recorded transitions.
    pub fn total_observations(&self) -> f64 {
        self.counts.iter().sum()
    }

    /// Adds another table's counts into this one (episode-shard merging for
    /// parallel data collection). Merging shards in a fixed order keeps the
    /// learned model bit-identical to a serial run.
    pub fn merge(&mut self, other: &Self) {
        for (a, b) in self.counts.iter_mut().zip(&other.counts) {
            *a += b;
        }
    }
}

/// Observation model `P(o | s, a)` over observation symbols.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct ObservationCpt {
    counts: Vec<f64>, // [s][a][o]
    smoothing: f64,
}

impl ObservationCpt {
    /// Creates an empty table with the given Laplace smoothing pseudo-count.
    pub fn new(smoothing: f64) -> Self {
        Self {
            counts: vec![0.0; S * A * O],
            smoothing,
        }
    }

    fn idx(s: usize, a: usize, o: usize) -> usize {
        (s * A + a) * O + o
    }

    /// Records one observed emission.
    pub fn record(&mut self, state: CompromiseClass, action: ActionCategory, obs: ObsSymbol) {
        self.counts[Self::idx(state.index(), action.index(), obs.index())] += 1.0;
    }

    /// Probability of the observation symbol given state and action.
    pub fn prob(&self, state: CompromiseClass, action: ActionCategory, obs: ObsSymbol) -> f64 {
        let base = Self::idx(state.index(), action.index(), 0);
        let total: f64 =
            self.counts[base..base + O].iter().sum::<f64>() + self.smoothing * O as f64;
        (self.counts[base + obs.index()] + self.smoothing) / total
    }

    /// Total number of recorded emissions.
    pub fn total_observations(&self) -> f64 {
        self.counts.iter().sum()
    }

    /// Adds another table's counts into this one (episode-shard merging for
    /// parallel data collection).
    pub fn merge(&mut self, other: &Self) {
        for (a, b) in self.counts.iter_mut().zip(&other.counts) {
            *a += b;
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use CompromiseClass as C;

    #[test]
    fn transition_distribution_normalises() {
        let mut t = TransitionCpt::new(0.1);
        t.record(C::Clean, MuBucket::Few, ActionCategory::None, C::Scanned);
        t.record(C::Clean, MuBucket::Few, ActionCategory::None, C::Clean);
        t.record(C::Clean, MuBucket::Few, ActionCategory::None, C::Clean);
        let d = t.distribution(C::Clean, MuBucket::Few, ActionCategory::None);
        let sum: f64 = d.iter().sum();
        assert!((sum - 1.0).abs() < 1e-9);
        assert!(d[C::Clean.index()] > d[C::Scanned.index()]);
        assert!(
            d[C::AdminPersistent.index()] > 0.0,
            "smoothing keeps support"
        );
        assert_eq!(t.total_observations(), 3.0);
    }

    #[test]
    fn unseen_contexts_fall_back_to_uniform() {
        let t = TransitionCpt::new(1.0);
        let d = t.distribution(C::Admin, MuBucket::Many, ActionCategory::Reimage);
        for p in d {
            assert!((p - 1.0 / 6.0).abs() < 1e-9);
        }
    }

    #[test]
    fn observation_probabilities_reflect_counts() {
        let mut o = ObservationCpt::new(0.01);
        let noisy = ObsSymbol::from_index(6); // severity 3, no detection
        let quiet = ObsSymbol::from_index(0);
        for _ in 0..9 {
            o.record(C::Admin, ActionCategory::None, noisy);
        }
        o.record(C::Admin, ActionCategory::None, quiet);
        assert!(o.prob(C::Admin, ActionCategory::None, noisy) > 0.8);
        assert!(o.prob(C::Admin, ActionCategory::None, quiet) < 0.15);
        // Probabilities over all symbols sum to one.
        let total: f64 = (0..ObsSymbol::COUNT)
            .map(|i| o.prob(C::Admin, ActionCategory::None, ObsSymbol::from_index(i)))
            .sum();
        assert!((total - 1.0).abs() < 1e-9);
        assert_eq!(o.total_observations(), 10.0);
    }
}
