//! The recursive Bayes filter of eq. (7).

use crate::cpt::{ObservationCpt, TransitionCpt};
use crate::types::{ActionCategory, MuBucket, ObsSymbol};
use ics_net::NodeId;
use ics_sim::{CompromiseClass, Observation};
use serde::{Deserialize, Serialize};

const S: usize = CompromiseClass::COUNT;

/// Memo key for one [`DbnFilter::update`] pass: a node's `(action, symbol)`
/// pair plus the exact bit pattern of its prior belief.
type UpdateKey = (ActionCategory, ObsSymbol, [u64; S]);

/// A learned DBN model: the transition and observation tables.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct DbnModel {
    /// Transition model `P(s' | s, µ, a)`.
    pub transition: TransitionCpt,
    /// Observation model `P(o | s', a)`.
    pub observation: ObservationCpt,
}

/// The per-node belief filter.
///
/// Each node's belief is a distribution over [`CompromiseClass`]; the filter
/// applies eq. (7) once per hour using the defender's own completed actions
/// and the step's observation symbols, conditioning the transition model on
/// the belief-expected number of compromised nodes (the summary statistic µ).
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct DbnFilter {
    model: DbnModel,
    beliefs: Vec<[f64; S]>,
    /// Cached Σ_i P(node i compromised) under the current beliefs — the
    /// summary statistic µ. Maintained incrementally by `update`/`reset` in
    /// the same index-ascending summation order the historical full scan
    /// used, so the cached value is bit-identical to recomputing it.
    expected_cache: f64,
}

impl DbnFilter {
    /// Creates a filter for `node_count` nodes, all initially believed clean.
    pub fn new(model: DbnModel, node_count: usize) -> Self {
        Self {
            model,
            beliefs: vec![Self::initial_belief(); node_count],
            expected_cache: 0.0,
        }
    }

    fn initial_belief() -> [f64; S] {
        let mut b = [0.0; S];
        b[CompromiseClass::Clean.index()] = 1.0;
        b
    }

    /// Resets all beliefs to "clean" (start of an episode).
    pub fn reset(&mut self) {
        for b in &mut self.beliefs {
            *b = Self::initial_belief();
        }
        self.expected_cache = 0.0;
    }

    /// Number of nodes tracked.
    pub fn node_count(&self) -> usize {
        self.beliefs.len()
    }

    /// The learned model.
    pub fn model(&self) -> &DbnModel {
        &self.model
    }

    /// The belief for one node.
    ///
    /// # Panics
    ///
    /// Panics if the node index is out of range.
    pub fn belief(&self, node: NodeId) -> &[f64; S] {
        &self.beliefs[node.index()]
    }

    /// All beliefs, indexed by node.
    pub fn beliefs(&self) -> &[[f64; S]] {
        &self.beliefs
    }

    /// Probability that a node is compromised (initial compromise or deeper).
    pub fn compromise_probability(&self, node: NodeId) -> f64 {
        let b = &self.beliefs[node.index()];
        CompromiseClass::ALL
            .into_iter()
            .filter(|c| c.is_compromised())
            .map(|c| b[c.index()])
            .sum()
    }

    /// Expected number of compromised nodes under the current beliefs (the
    /// summary statistic µ used by the transition model). O(1): maintained
    /// incrementally across updates instead of scanned per call.
    pub fn expected_compromised(&self) -> f64 {
        self.expected_cache
    }

    /// The compromised probability mass of one belief, summed in the same
    /// class order as [`DbnFilter::compromise_probability`].
    fn compromised_mass(belief: &[f64; S]) -> f64 {
        CompromiseClass::ALL
            .into_iter()
            .filter(|c| c.is_compromised())
            .map(|c| belief[c.index()])
            .sum()
    }

    /// The most likely compromise class for a node.
    pub fn map_estimate(&self, node: NodeId) -> CompromiseClass {
        let b = &self.beliefs[node.index()];
        let mut best = CompromiseClass::Clean;
        let mut best_p = -1.0;
        for c in CompromiseClass::ALL {
            if b[c.index()] > best_p {
                best_p = b[c.index()];
                best = c;
            }
        }
        best
    }

    /// One node's eq. (7) update: predict through the transition model, then
    /// correct by the observation likelihood. A pure function of
    /// `(prior, µ, action, symbol)`.
    fn posterior_for(
        model: &DbnModel,
        prior: &[f64; S],
        mu: MuBucket,
        action: ActionCategory,
        symbol: ObsSymbol,
    ) -> [f64; S] {
        let mut posterior = [0.0f64; S];
        for (next_i, next_class) in CompromiseClass::ALL.into_iter().enumerate() {
            // Predict: sum over previous states.
            let mut predicted = 0.0;
            for (prev_i, prev_class) in CompromiseClass::ALL.into_iter().enumerate() {
                predicted +=
                    model.transition.prob(prev_class, mu, action, next_class) * prior[prev_i];
            }
            // Correct: weight by the observation likelihood.
            posterior[next_i] = model.observation.prob(next_class, action, symbol) * predicted;
        }
        let norm: f64 = posterior.iter().sum();
        if norm > 0.0 {
            for p in &mut posterior {
                *p /= norm;
            }
        } else {
            posterior = Self::initial_belief();
        }
        posterior
    }

    /// Applies one step of the recursive update (eq. 7) for every node using
    /// the step's observation.
    ///
    /// The per-node posterior is a pure function of the node's prior belief
    /// and its `(action, symbol)` pair, so within one update the result is
    /// memoised by the prior's exact bit pattern. On large topologies nearly
    /// every node is quiet and quiet nodes that have never alerted share one
    /// belief trajectory, which collapses the hour's work from O(nodes · S²)
    /// to O(distinct beliefs · S²) — with bit-identical posteriors, since the
    /// memo only ever replays the exact same floating-point computation.
    pub fn update(&mut self, observation: &Observation) {
        let mu = MuBucket::from_count(self.expected_compromised());
        let mut memo: std::collections::HashMap<UpdateKey, [f64; S]> =
            std::collections::HashMap::new();
        // Quiet nodes arrive in long index-ordered runs sharing one belief
        // trajectory, so the previous node's memo entry usually answers the
        // next node too — checked first to skip the hash on the common path.
        let mut last: Option<(UpdateKey, [f64; S])> = None;
        let mut expected = 0.0f64;
        let updated = observation.nodes.len().min(self.beliefs.len());
        for (idx, node_obs) in observation.nodes.iter().enumerate() {
            if idx >= self.beliefs.len() {
                break;
            }
            let action = ActionCategory::from_observation(node_obs);
            let symbol = ObsSymbol::from_observation(node_obs);
            let prior = self.beliefs[idx];
            let key = (action, symbol, prior.map(f64::to_bits));
            let posterior = match &last {
                Some((k, p)) if *k == key => *p,
                _ => {
                    let p = *memo.entry(key).or_insert_with(|| {
                        Self::posterior_for(&self.model, &prior, mu, action, symbol)
                    });
                    last = Some((key, p));
                    p
                }
            };
            expected += Self::compromised_mass(&posterior);
            self.beliefs[idx] = posterior;
        }
        // Nodes beyond the observation keep their beliefs but still count
        // toward µ, in the same index order the historical full scan used.
        for belief in &self.beliefs[updated..] {
            expected += Self::compromised_mass(belief);
        }
        self.expected_cache = expected;
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use ics_sim::observation::NodeObservation;
    use ics_sim::orchestrator::InvestigationKind;
    use CompromiseClass as C;

    /// A hand-built model where alerts strongly indicate compromise and the
    /// re-image action strongly returns nodes to clean.
    fn toy_model() -> DbnModel {
        let mut transition = TransitionCpt::new(0.05);
        let mut observation = ObservationCpt::new(0.05);
        for mu in [
            MuBucket::None,
            MuBucket::Few,
            MuBucket::Several,
            MuBucket::Many,
        ] {
            for action in [ActionCategory::None, ActionCategory::Investigate] {
                for _ in 0..20 {
                    // Mostly persistence of state, some escalation from clean.
                    transition.record(C::Clean, mu, action, C::Clean);
                    transition.record(C::Compromised, mu, action, C::Compromised);
                    transition.record(C::Admin, mu, action, C::Admin);
                }
                for _ in 0..2 {
                    transition.record(C::Clean, mu, action, C::Compromised);
                }
            }
            for _ in 0..20 {
                transition.record(C::Compromised, mu, ActionCategory::Reimage, C::Clean);
                transition.record(C::Admin, mu, ActionCategory::Reimage, C::Clean);
                transition.record(C::Clean, mu, ActionCategory::Reimage, C::Clean);
            }
        }
        // Clean nodes are quiet; compromised nodes raise severity-2 alerts.
        let quiet = ObsSymbol::from_index(0);
        let sev2 = ObsSymbol::from_index(4);
        let detected = ObsSymbol::from_index(5);
        for action in [
            ActionCategory::None,
            ActionCategory::Investigate,
            ActionCategory::Reimage,
        ] {
            for _ in 0..20 {
                observation.record(C::Clean, action, quiet);
                observation.record(C::Compromised, action, sev2);
                observation.record(C::Admin, action, sev2);
            }
            for _ in 0..5 {
                observation.record(C::Compromised, action, quiet);
                observation.record(C::Compromised, ActionCategory::Investigate, detected);
            }
        }
        DbnModel {
            transition,
            observation,
        }
    }

    fn obs_with(nodes: Vec<NodeObservation>) -> Observation {
        Observation {
            time: 1,
            nodes,
            plc_status: Vec::new(),
            alerts: Vec::new(),
            active_nodes: Vec::new(),
        }
    }

    #[test]
    fn beliefs_start_clean_and_stay_normalised() {
        let filter = DbnFilter::new(toy_model(), 3);
        assert_eq!(filter.node_count(), 3);
        for i in 0..3 {
            let b = filter.belief(NodeId::from_index(i));
            assert!((b.iter().sum::<f64>() - 1.0).abs() < 1e-12);
            assert_eq!(b[C::Clean.index()], 1.0);
        }
        assert_eq!(filter.expected_compromised(), 0.0);
    }

    #[test]
    fn repeated_alerts_raise_compromise_probability() {
        let mut filter = DbnFilter::new(toy_model(), 2);
        let node0 = NodeId::from_index(0);
        let mut alerting = NodeObservation::quiet(node0, false);
        alerting.alert_counts = [0, 1, 0];
        let quiet = NodeObservation::quiet(NodeId::from_index(1), false);

        let before = filter.compromise_probability(node0);
        for _ in 0..6 {
            filter.update(&obs_with(vec![alerting.clone(), quiet.clone()]));
        }
        let after = filter.compromise_probability(node0);
        assert!(after > before);
        assert!(after > 0.5, "belief should favour compromise, got {after}");
        // The quiet node stays believed clean.
        assert!(filter.compromise_probability(NodeId::from_index(1)) < 0.3);
        assert!(filter.map_estimate(node0).is_compromised());
        assert!(filter.expected_compromised() > 0.5);
    }

    #[test]
    fn reimage_action_restores_clean_belief() {
        let mut filter = DbnFilter::new(toy_model(), 1);
        let node0 = NodeId::from_index(0);
        let mut alerting = NodeObservation::quiet(node0, false);
        alerting.alert_counts = [0, 1, 0];
        for _ in 0..6 {
            filter.update(&obs_with(vec![alerting.clone()]));
        }
        assert!(filter.compromise_probability(node0) > 0.5);

        let mut reimaged = NodeObservation::quiet(node0, false);
        reimaged.mitigation = Some(ics_sim::orchestrator::MitigationKind::ReimageNode);
        filter.update(&obs_with(vec![reimaged]));
        assert!(filter.compromise_probability(node0) < 0.4);

        filter.reset();
        assert_eq!(filter.compromise_probability(node0), 0.0);
    }

    #[test]
    fn detection_is_strong_evidence() {
        let mut filter = DbnFilter::new(toy_model(), 1);
        let node0 = NodeId::from_index(0);
        let mut detected = NodeObservation::quiet(node0, false);
        detected.alert_counts = [0, 1, 0];
        detected.investigation = Some((InvestigationKind::HumanAnalysis, true));
        filter.update(&obs_with(vec![detected]));
        assert!(filter.compromise_probability(node0) > 0.4);
    }
}
