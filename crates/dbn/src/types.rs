//! Discretisations used by the DBN: observation symbols, defender action
//! categories and the network summary statistic µ.

use ics_sim::observation::NodeObservation;
use ics_sim::orchestrator::{InvestigationKind, MitigationKind};
use serde::{Deserialize, Serialize};

/// The defender action category that completed on a node this step, as far as
/// the transition model is concerned.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum ActionCategory {
    /// No defender action completed on the node.
    None,
    /// An investigation completed (does not change node state).
    Investigate,
    /// A reboot completed.
    Reboot,
    /// A password reset completed.
    ResetPassword,
    /// A re-image completed.
    Reimage,
    /// A quarantine toggle completed.
    Quarantine,
}

impl ActionCategory {
    /// Number of categories.
    pub const COUNT: usize = 6;

    /// Dense index of the category.
    pub fn index(&self) -> usize {
        match self {
            ActionCategory::None => 0,
            ActionCategory::Investigate => 1,
            ActionCategory::Reboot => 2,
            ActionCategory::ResetPassword => 3,
            ActionCategory::Reimage => 4,
            ActionCategory::Quarantine => 5,
        }
    }

    /// Category of the action visible in a node observation (mitigations take
    /// precedence over investigations when both complete in the same hour).
    pub fn from_observation(obs: &NodeObservation) -> Self {
        if let Some(mitigation) = obs.mitigation {
            return match mitigation {
                MitigationKind::Reboot => ActionCategory::Reboot,
                MitigationKind::ResetPassword => ActionCategory::ResetPassword,
                MitigationKind::ReimageNode => ActionCategory::Reimage,
                MitigationKind::Quarantine => ActionCategory::Quarantine,
            };
        }
        if obs.investigation.is_some() {
            return ActionCategory::Investigate;
        }
        ActionCategory::None
    }

    /// Category corresponding to an investigation kind (always
    /// [`ActionCategory::Investigate`]; provided for symmetry).
    pub fn from_investigation(_kind: InvestigationKind) -> Self {
        ActionCategory::Investigate
    }
}

/// The observation symbol for one node and one hour: the highest alert
/// severity (0 = none) combined with whether an investigation detected a
/// compromise.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub struct ObsSymbol(usize);

impl ObsSymbol {
    /// Number of distinct symbols: 4 severity levels × detected flag.
    pub const COUNT: usize = 8;

    /// Builds the symbol from a node observation.
    pub fn from_observation(obs: &NodeObservation) -> Self {
        let severity = obs.max_severity() as usize; // 0..=3
        let detected = usize::from(obs.detection());
        ObsSymbol(severity * 2 + detected)
    }

    /// Dense index of the symbol.
    pub fn index(&self) -> usize {
        self.0
    }

    /// Symbol from a dense index.
    ///
    /// # Panics
    ///
    /// Panics if `index >= ObsSymbol::COUNT`.
    pub fn from_index(index: usize) -> Self {
        assert!(index < Self::COUNT, "observation symbol out of range");
        ObsSymbol(index)
    }
}

/// Coarse bucket of the total number of compromised nodes on the network —
/// the summary statistic µ the transition model conditions on instead of the
/// full joint state (eq. 7 discussion).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum MuBucket {
    /// No compromised nodes.
    None,
    /// One or two compromised nodes.
    Few,
    /// Three to five compromised nodes.
    Several,
    /// Six or more compromised nodes.
    Many,
}

impl MuBucket {
    /// Number of buckets.
    pub const COUNT: usize = 4;

    /// Buckets a compromised-node count.
    pub fn from_count(count: f64) -> Self {
        if count < 0.5 {
            MuBucket::None
        } else if count < 2.5 {
            MuBucket::Few
        } else if count < 5.5 {
            MuBucket::Several
        } else {
            MuBucket::Many
        }
    }

    /// Dense index of the bucket.
    pub fn index(&self) -> usize {
        match self {
            MuBucket::None => 0,
            MuBucket::Few => 1,
            MuBucket::Several => 2,
            MuBucket::Many => 3,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use ics_net::NodeId;

    #[test]
    fn action_category_from_observation_prefers_mitigation() {
        let mut obs = NodeObservation::quiet(NodeId::from_index(0), false);
        assert_eq!(ActionCategory::from_observation(&obs), ActionCategory::None);
        obs.investigation = Some((InvestigationKind::SimpleScan, false));
        assert_eq!(
            ActionCategory::from_observation(&obs),
            ActionCategory::Investigate
        );
        obs.mitigation = Some(MitigationKind::ReimageNode);
        assert_eq!(
            ActionCategory::from_observation(&obs),
            ActionCategory::Reimage
        );
        obs.mitigation = Some(MitigationKind::Quarantine);
        assert_eq!(
            ActionCategory::from_observation(&obs),
            ActionCategory::Quarantine
        );
        assert_eq!(
            ActionCategory::from_investigation(InvestigationKind::HumanAnalysis),
            ActionCategory::Investigate
        );
    }

    #[test]
    fn action_category_indices_are_dense() {
        let all = [
            ActionCategory::None,
            ActionCategory::Investigate,
            ActionCategory::Reboot,
            ActionCategory::ResetPassword,
            ActionCategory::Reimage,
            ActionCategory::Quarantine,
        ];
        for (i, c) in all.iter().enumerate() {
            assert_eq!(c.index(), i);
        }
        assert_eq!(all.len(), ActionCategory::COUNT);
    }

    #[test]
    fn obs_symbol_encodes_severity_and_detection() {
        let mut obs = NodeObservation::quiet(NodeId::from_index(0), false);
        assert_eq!(ObsSymbol::from_observation(&obs).index(), 0);
        obs.alert_counts = [0, 1, 0];
        assert_eq!(ObsSymbol::from_observation(&obs).index(), 4);
        obs.investigation = Some((InvestigationKind::SimpleScan, true));
        assert_eq!(ObsSymbol::from_observation(&obs).index(), 5);
        obs.alert_counts = [0, 0, 2];
        assert_eq!(ObsSymbol::from_observation(&obs).index(), 7);
        assert_eq!(ObsSymbol::from_index(7).index(), 7);
    }

    #[test]
    #[should_panic(expected = "out of range")]
    fn obs_symbol_range_checked() {
        let _ = ObsSymbol::from_index(8);
    }

    #[test]
    fn mu_buckets_cover_counts() {
        assert_eq!(MuBucket::from_count(0.0), MuBucket::None);
        assert_eq!(MuBucket::from_count(1.0), MuBucket::Few);
        assert_eq!(MuBucket::from_count(2.0), MuBucket::Few);
        assert_eq!(MuBucket::from_count(4.0), MuBucket::Several);
        assert_eq!(MuBucket::from_count(9.0), MuBucket::Many);
        assert_eq!(MuBucket::Many.index(), MuBucket::COUNT - 1);
    }
}
