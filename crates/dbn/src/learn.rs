//! Learning the DBN's conditional probability tables from data.
//!
//! The paper runs 1 000 episodes with the APT and a defender taking random
//! actions, records states, actions and observations at every step, and
//! estimates the probability tables by counting (§4.3). This module does the
//! same against the simulator; the number of episodes is configurable so fast
//! smoke runs and full reproductions share the code path.

use crate::cpt::{ObservationCpt, TransitionCpt};
use crate::filter::DbnModel;
use crate::types::{ActionCategory, MuBucket, ObsSymbol};
use ics_net::{NodeId, PlcId};
use ics_sim::orchestrator::{DefenderAction, InvestigationKind, MitigationKind, PlcRecoveryKind};
use ics_sim::{CompromiseClass, IcsEnvironment, SimConfig};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// Configuration of the data-collection run.
#[derive(Debug, Clone, PartialEq)]
pub struct LearnConfig {
    /// Number of random-defender episodes to record (the paper uses 1 000).
    pub episodes: usize,
    /// Seed for the data-collection RNG.
    pub seed: u64,
    /// Simulation configuration to collect under.
    pub sim: SimConfig,
}

impl Default for LearnConfig {
    fn default() -> Self {
        Self {
            episodes: 1_000,
            seed: 0,
            sim: SimConfig::full(),
        }
    }
}

/// Samples a random defender action, mirroring the paper's random policy: an
/// action type drawn from a fixed categorical distribution and a target drawn
/// uniformly from the appropriate object set.
pub fn random_defender_action(
    node_count: usize,
    plc_count: usize,
    rng: &mut StdRng,
) -> DefenderAction {
    let node = NodeId::from_index(rng.gen_range(0..node_count.max(1)));
    match rng.gen_range(0..100u32) {
        // Half the time, do nothing — independent analysts are not constantly
        // acting on every node.
        0..=49 => DefenderAction::NoAction,
        50..=69 => DefenderAction::Investigate {
            kind: match rng.gen_range(0..3u32) {
                0 => InvestigationKind::SimpleScan,
                1 => InvestigationKind::AdvancedScan,
                _ => InvestigationKind::HumanAnalysis,
            },
            node,
        },
        70..=79 => DefenderAction::Mitigate {
            kind: MitigationKind::Reboot,
            node,
        },
        80..=86 => DefenderAction::Mitigate {
            kind: MitigationKind::ResetPassword,
            node,
        },
        87..=92 => DefenderAction::Mitigate {
            kind: MitigationKind::ReimageNode,
            node,
        },
        93..=95 => DefenderAction::Mitigate {
            kind: MitigationKind::Quarantine,
            node,
        },
        _ => {
            if plc_count == 0 {
                DefenderAction::NoAction
            } else {
                DefenderAction::RecoverPlc {
                    kind: if rng.gen_bool(0.5) {
                        PlcRecoveryKind::ResetPlc
                    } else {
                        PlcRecoveryKind::ReplacePlc
                    },
                    plc: PlcId::from_index(rng.gen_range(0..plc_count)),
                }
            }
        }
    }
}

/// Records one random-defender episode into a fresh pair of count tables.
///
/// All randomness derives from the episode index: the environment seed uses
/// the same hash as the historical serial collector, and the defender's
/// action RNG gets its own per-episode stream. That makes episodes
/// independent, so [`learn_model`] can fan them out over worker threads and
/// still produce a bit-identical model for any thread count.
fn collect_episode(config: &LearnConfig, episode: usize) -> (TransitionCpt, ObservationCpt) {
    let mut transition = TransitionCpt::new(0.5);
    let mut observation = ObservationCpt::new(0.5);
    let mut rng = StdRng::seed_from_u64(acso_runtime::stream_seed(config.seed, episode, 0x5eed));

    let sim = config.sim.clone().with_seed(
        config
            .sim
            .seed
            .wrapping_add(episode as u64)
            .wrapping_mul(2654435761),
    );
    let mut env = IcsEnvironment::new(sim);
    let _ = env.reset();
    let node_count = env.topology().node_count();
    let plc_count = env.topology().plc_count();

    let mut prev_classes: Vec<CompromiseClass> = (0..node_count)
        .map(|i| env.state().compromise(NodeId::from_index(i)).class())
        .collect();
    let mut prev_mu = MuBucket::from_count(env.state().compromised_count() as f64);

    loop {
        let actions = vec![random_defender_action(node_count, plc_count, &mut rng)];
        let step = env.step(&actions);

        for (idx, prev_class) in prev_classes.iter_mut().enumerate() {
            let node = NodeId::from_index(idx);
            let next_class = env.state().compromise(node).class();
            let node_obs = &step.observation.nodes[idx];
            let action = ActionCategory::from_observation(node_obs);
            let symbol = ObsSymbol::from_observation(node_obs);
            transition.record(*prev_class, prev_mu, action, next_class);
            observation.record(next_class, action, symbol);
            *prev_class = next_class;
        }
        prev_mu = MuBucket::from_count(env.state().compromised_count() as f64);

        if step.done {
            break;
        }
    }
    (transition, observation)
}

/// Runs random-defender episodes against the simulator and estimates the
/// transition and observation tables by counting.
///
/// Episodes are independent and fan out over `ACSO_THREADS` workers (default:
/// available parallelism); per-episode count shards are merged in episode
/// order, so the learned model is identical for any thread count.
pub fn learn_model(config: &LearnConfig) -> DbnModel {
    learn_model_with_threads(config, acso_runtime::available_threads())
}

/// [`learn_model`] with an explicit worker count. Callers that are already
/// running inside a thread pool (e.g. a grid search training several models
/// concurrently) pass `1` to avoid oversubscribing the machine; the result
/// is identical for any value.
pub fn learn_model_with_threads(config: &LearnConfig, threads: usize) -> DbnModel {
    let shards = acso_runtime::run_indexed(config.episodes, threads, |episode| {
        collect_episode(config, episode)
    });

    let mut transition = TransitionCpt::new(0.5);
    let mut observation = ObservationCpt::new(0.5);
    for (t, o) in &shards {
        transition.merge(t);
        observation.merge(o);
    }
    DbnModel {
        transition,
        observation,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn random_actions_cover_the_action_space() {
        let mut rng = StdRng::seed_from_u64(0);
        let mut saw_investigate = false;
        let mut saw_mitigate = false;
        let mut saw_plc = false;
        let mut saw_noop = false;
        for _ in 0..500 {
            match random_defender_action(10, 5, &mut rng) {
                DefenderAction::NoAction => saw_noop = true,
                DefenderAction::Investigate { .. } => saw_investigate = true,
                DefenderAction::Mitigate { .. } => saw_mitigate = true,
                DefenderAction::RecoverPlc { .. } => saw_plc = true,
            }
        }
        assert!(saw_noop && saw_investigate && saw_mitigate && saw_plc);
    }

    #[test]
    fn random_actions_handle_zero_plcs() {
        let mut rng = StdRng::seed_from_u64(1);
        for _ in 0..200 {
            let action = random_defender_action(4, 0, &mut rng);
            assert!(action.target_plc().is_none());
        }
    }

    #[test]
    fn learned_model_distinguishes_quiet_and_compromised_nodes() {
        let config = LearnConfig {
            episodes: 4,
            seed: 7,
            sim: SimConfig::tiny().with_max_time(250),
        };
        let model = learn_model(&config);
        assert!(model.transition.total_observations() > 0.0);
        assert!(model.observation.total_observations() > 0.0);

        // Clean states should self-persist with high probability under no
        // defender action.
        let p_stay_clean = model.transition.prob(
            CompromiseClass::Clean,
            MuBucket::Few,
            ActionCategory::None,
            CompromiseClass::Clean,
        );
        assert!(
            p_stay_clean > 0.5,
            "clean self-transition was {p_stay_clean}"
        );

        // Quiet observations should be more likely from clean nodes than
        // severity-2 alerts are.
        let quiet = ObsSymbol::from_index(0);
        let sev2 = ObsSymbol::from_index(4);
        let p_quiet_clean =
            model
                .observation
                .prob(CompromiseClass::Clean, ActionCategory::None, quiet);
        let p_sev2_clean =
            model
                .observation
                .prob(CompromiseClass::Clean, ActionCategory::None, sev2);
        assert!(p_quiet_clean > p_sev2_clean);
    }
}
