//! Validation of the DBN filter against ground truth (§4.3).
//!
//! The true per-node state is a point mass on one compromise class, so the
//! KL divergence between the true state and the belief reduces to
//! `-log b(s_true)`. The paper reports the maximum divergence over many
//! episodes; this module also records the mean and the classification
//! accuracy of the filter's MAP estimate.

use crate::filter::{DbnFilter, DbnModel};
use crate::learn::random_defender_action;
use ics_net::NodeId;
use ics_sim::{IcsEnvironment, SimConfig};
use rand::rngs::StdRng;
use rand::SeedableRng;
use serde::{Deserialize, Serialize};

/// Summary of a validation run.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct ValidationReport {
    /// Number of (node, step) samples evaluated.
    pub samples: u64,
    /// Maximum KL divergence between the true state and the belief.
    pub max_kl: f64,
    /// Mean KL divergence.
    pub mean_kl: f64,
    /// Fraction of samples where the MAP estimate matched the true class.
    pub map_accuracy: f64,
    /// Fraction of samples where the filter correctly classified the node as
    /// compromised / not compromised.
    pub compromise_accuracy: f64,
}

/// Runs `episodes` random-defender episodes, filtering alongside the
/// simulator, and compares beliefs with the true hidden state every hour.
pub fn validate_filter(
    model: &DbnModel,
    sim: &SimConfig,
    episodes: usize,
    seed: u64,
) -> ValidationReport {
    let mut rng = StdRng::seed_from_u64(seed);
    let mut samples = 0u64;
    let mut max_kl: f64 = 0.0;
    let mut sum_kl = 0.0;
    let mut map_hits = 0u64;
    let mut compromise_hits = 0u64;

    for episode in 0..episodes {
        let cfg = sim
            .clone()
            .with_seed(seed.wrapping_add(1000 + episode as u64));
        let mut env = IcsEnvironment::new(cfg);
        let _ = env.reset();
        let node_count = env.topology().node_count();
        let plc_count = env.topology().plc_count();
        let mut filter = DbnFilter::new(model.clone(), node_count);

        loop {
            let actions = vec![random_defender_action(node_count, plc_count, &mut rng)];
            let step = env.step(&actions);
            filter.update(&step.observation);

            for idx in 0..node_count {
                let node = NodeId::from_index(idx);
                let true_class = env.state().compromise(node).class();
                let belief = filter.belief(node);
                let p_true = belief[true_class.index()].max(1e-9);
                let kl = -p_true.ln();
                max_kl = max_kl.max(kl);
                sum_kl += kl;
                samples += 1;
                if filter.map_estimate(node) == true_class {
                    map_hits += 1;
                }
                let believed_compromised = filter.compromise_probability(node) > 0.5;
                if believed_compromised == true_class.is_compromised() {
                    compromise_hits += 1;
                }
            }
            if step.done {
                break;
            }
        }
    }

    ValidationReport {
        samples,
        max_kl,
        mean_kl: if samples > 0 {
            sum_kl / samples as f64
        } else {
            0.0
        },
        map_accuracy: if samples > 0 {
            map_hits as f64 / samples as f64
        } else {
            0.0
        },
        compromise_accuracy: if samples > 0 {
            compromise_hits as f64 / samples as f64
        } else {
            0.0
        },
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::learn::{learn_model, LearnConfig};

    #[test]
    fn validation_reports_reasonable_accuracy_on_tiny_network() {
        let sim = SimConfig::tiny().with_max_time(200);
        let model = learn_model(&LearnConfig {
            episodes: 4,
            seed: 3,
            sim: sim.clone(),
        });
        let report = validate_filter(&model, &sim, 2, 99);
        assert!(report.samples > 0);
        assert!(report.mean_kl.is_finite());
        assert!(report.max_kl >= report.mean_kl);
        // Most nodes are clean most of the time, so even a weak filter should
        // classify compromise status correctly well above chance.
        assert!(
            report.compromise_accuracy > 0.6,
            "compromise accuracy {}",
            report.compromise_accuracy
        );
        assert!(
            report.map_accuracy > 0.4,
            "map accuracy {}",
            report.map_accuracy
        );
    }
}
