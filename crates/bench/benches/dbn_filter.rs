//! Benchmark E5 (runtime side): cost of one DBN belief update over every node
//! of the full network, and of learning the probability tables from a short
//! data-collection run.

use criterion::{criterion_group, criterion_main, Criterion};
use dbn::learn::{learn_model, LearnConfig};
use dbn::DbnFilter;
use ics_sim::{DefenderAction, IcsEnvironment, SimConfig};

fn bench_dbn(c: &mut Criterion) {
    let mut group = c.benchmark_group("dbn");
    group.sample_size(10);

    let sim = SimConfig::full().with_max_time(200);
    let model = learn_model(&LearnConfig {
        episodes: 1,
        seed: 0,
        sim: SimConfig::small().with_max_time(200),
    });

    // A representative observation stream from the full network.
    let mut env = IcsEnvironment::new(sim.with_seed(3));
    let _ = env.reset();
    let mut observations = Vec::new();
    for _ in 0..50 {
        observations.push(env.step(&[DefenderAction::NoAction]).observation);
    }
    let node_count = env.topology().node_count();

    group.bench_function("filter_update_50_steps_full_topology", |b| {
        b.iter(|| {
            let mut filter = DbnFilter::new(model.clone(), node_count);
            for obs in &observations {
                filter.update(obs);
            }
            filter.expected_compromised()
        })
    });

    group.bench_function("learn_model_one_small_episode", |b| {
        b.iter(|| {
            learn_model(&LearnConfig {
                episodes: 1,
                seed: 1,
                sim: SimConfig::tiny().with_max_time(100),
            })
        })
    });

    group.finish();
}

criterion_group!(benches, bench_dbn);
criterion_main!(benches);
