//! Benchmark: the fused block-diagonal attention kernels in isolation, per
//! kernel backend. One `SelfAttention` layer at the attention Q-net's
//! production shape (n = 12 nodes of `paper_small`, 32 -> 64 dims) is driven
//! through `forward_batch` / `forward_batch_train` + `backward_batch` at
//! batch sizes 1/8/32, once per registered backend — so a
//! `--features backend-simd` run shows the reference and SIMD kernels side
//! by side on the exact block-diagonal `[b*n, n]` workload the tentpole
//! targets, without the embedding/head layers diluting the signal.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use neural::backend::all_backends;
use neural::layers::SelfAttention;
use neural::{Batch, Layer, Matrix, Scratch};

/// `paper_small` has 12 nodes; the attention stack runs 32-dim embeddings
/// through 64-dim attention. Matches `AttentionQNet`'s first layer.
const NODES: usize = 12;
const EMBED: usize = 32;
const ATTN: usize = 64;

fn filled(rows: usize, cols: usize, seed: u32) -> Matrix {
    let mut m = Matrix::zeros(rows, cols);
    let mut state = seed | 1;
    for v in m.data_mut() {
        state = state.wrapping_mul(1_664_525).wrapping_add(1_013_904_223);
        *v = (state >> 8) as f32 / (1u32 << 24) as f32 - 0.5;
    }
    m
}

fn bench_attention_kernels(c: &mut Criterion) {
    let mut group = c.benchmark_group("attention_kernels");
    group.sample_size(20);
    for &backend in all_backends() {
        for batch in [1usize, 8, 32] {
            let mut layer = SelfAttention::new(EMBED, ATTN, EMBED, 7);
            let mut scratch = Scratch::with_backend(backend);
            let input = Batch::new(filled(batch * NODES, EMBED, 42), batch);

            group.bench_with_input(
                BenchmarkId::new(&format!("{}_forward", backend.name()), batch),
                &batch,
                |b, _| b.iter(|| criterion::black_box(layer.forward_batch(&input, &mut scratch))),
            );

            let grad = Batch::new(filled(batch * NODES, EMBED, 43), batch);
            group.bench_with_input(
                BenchmarkId::new(&format!("{}_forward_backward", backend.name()), batch),
                &batch,
                |b, _| {
                    b.iter(|| {
                        let out = layer.forward_batch_train(&input, &mut scratch);
                        criterion::black_box(out);
                        criterion::black_box(layer.backward_batch(&grad, &mut scratch))
                    })
                },
            );
        }
    }
    group.finish();
}

criterion_group!(benches, bench_attention_kernels);
criterion_main!(benches);
