//! Benchmark of one augmented-DQN training slice: environment interaction
//! plus prioritized-replay sampling, double-DQN target computation and a
//! gradient step — the inner loop whose cost determines how long the §4.2
//! training run takes on CPU.

use acso_core::agent::{AcsoAgent, AgentConfig, AttentionQNet};
use acso_core::ActionSpace;
use criterion::{criterion_group, criterion_main, Criterion};
use dbn::learn::{learn_model, LearnConfig};
use ics_sim::{IcsEnvironment, SimConfig};
use rl::DqnConfig;

fn bench_training_slice(c: &mut Criterion) {
    let mut group = c.benchmark_group("dqn_training");
    group.sample_size(10);

    let sim = SimConfig::small().with_max_time(300);
    let model = learn_model(&LearnConfig {
        episodes: 1,
        seed: 0,
        sim: sim.clone(),
    });

    group.bench_function("interact_and_update_64_steps_small_topology", |b| {
        b.iter(|| {
            let mut env = IcsEnvironment::new(sim.clone().with_seed(5));
            let space = ActionSpace::new(env.topology());
            let net = AttentionQNet::new(space, 0);
            let config = AgentConfig {
                dqn: DqnConfig {
                    warmup_transitions: 16,
                    update_every: 8,
                    batch_size: 16,
                    n_step: 8,
                    ..DqnConfig::smoke()
                },
                learning_rate: 1e-4,
                seed: 0,
            };
            let mut agent = AcsoAgent::new(env.topology(), model.clone(), net, config);
            agent.begin_episode();
            let obs = env.reset();
            let (mut action, mut state) = agent.select_action(&obs);
            let mut updates = 0u32;
            for _ in 0..64 {
                let step = env.step(&[agent.action_space().decode(action)]);
                let (next_action, next_state) = agent.select_action(&step.observation);
                agent.store_transition(
                    state,
                    action,
                    step.reward + step.shaping_reward,
                    next_state,
                    step.done,
                );
                if agent.maybe_train().is_some() {
                    updates += 1;
                }
                action = next_action;
                state = next_state;
            }
            updates
        })
    });

    group.finish();
}

criterion_group!(benches, bench_training_slice);
criterion_main!(benches);
