//! Benchmark: the batched DQN update (one stacked forward + one stacked
//! backward over the whole minibatch) versus the per-sample solo-loop
//! reference, across minibatch sizes 1/8/32 for both architectures. The two
//! paths are pinned bit-identical (`tests/train_determinism.rs`), so this
//! measures exactly the tiling/amortization win of the batch-first training
//! refactor.

use acso_bench::prefilled_update_agent;
use acso_core::agent::{AttentionQNet, BaselineConvQNet, UpdateMode};
use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};

fn bench_batched_training(c: &mut Criterion) {
    let mut group = c.benchmark_group("batched_training");
    group.sample_size(10);
    for batch in [1usize, 8, 32] {
        let mut attention = prefilled_update_agent(|s| AttentionQNet::new(s, 0), batch);
        let mut baseline = prefilled_update_agent(|s| BaselineConvQNet::new(s, 0), batch);

        attention.set_update_mode(UpdateMode::Batched);
        group.bench_with_input(
            BenchmarkId::new("attention_batched_update", batch),
            &batch,
            |b, _| b.iter(|| attention.maybe_train().expect("one update per call")),
        );
        attention.set_update_mode(UpdateMode::Serial);
        group.bench_with_input(
            BenchmarkId::new("attention_solo_loop_update", batch),
            &batch,
            |b, _| b.iter(|| attention.maybe_train().expect("one update per call")),
        );

        baseline.set_update_mode(UpdateMode::Batched);
        group.bench_with_input(
            BenchmarkId::new("baseline_batched_update", batch),
            &batch,
            |b, _| b.iter(|| baseline.maybe_train().expect("one update per call")),
        );
        baseline.set_update_mode(UpdateMode::Serial);
        group.bench_with_input(
            BenchmarkId::new("baseline_solo_loop_update", batch),
            &batch,
            |b, _| b.iter(|| baseline.maybe_train().expect("one update per call")),
        );
    }
    group.finish();
}

criterion_group!(benches, bench_batched_training);
criterion_main!(benches);
