//! Benchmark: batched Q-network inference across batch sizes 1/8/32/128 for
//! both architectures, versus the equivalent number of solo forward passes.
//! This is the kernel the step-synchronized rollout engine leans on: one
//! `q_values_batch` call per simulated hour instead of one `q_values` call
//! per lane.

use acso_bench::episode_states;
use acso_core::agent::{AttentionQNet, BaselineConvQNet, QNetwork};
use acso_core::StateFeatures;
use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use ics_net::TopologySpec;

fn bench_batched_inference(c: &mut Criterion) {
    let (states, space) = episode_states(TopologySpec::paper_small(), 128);
    let mut attention = AttentionQNet::new(space.clone(), 0);
    let mut baseline = BaselineConvQNet::new(space, 0);

    let mut group = c.benchmark_group("batched_inference");
    group.sample_size(20);
    for batch in [1usize, 8, 32, 128] {
        let refs: Vec<&StateFeatures> = states[..batch].iter().collect();
        group.bench_with_input(
            BenchmarkId::new("attention_batched", batch),
            &refs,
            |b, refs| b.iter(|| attention.q_values_batch(refs)),
        );
        group.bench_with_input(
            BenchmarkId::new("attention_solo_loop", batch),
            &refs,
            |b, refs| {
                b.iter(|| {
                    for f in refs.iter() {
                        criterion::black_box(attention.q_values(f));
                    }
                })
            },
        );
        group.bench_with_input(
            BenchmarkId::new("baseline_batched", batch),
            &refs,
            |b, refs| b.iter(|| baseline.q_values_batch(refs)),
        );
        group.bench_with_input(
            BenchmarkId::new("baseline_solo_loop", batch),
            &refs,
            |b, refs| {
                b.iter(|| {
                    for f in refs.iter() {
                        criterion::black_box(baseline.q_values(f));
                    }
                })
            },
        );
    }
    group.finish();
}

criterion_group!(benches, bench_batched_inference);
criterion_main!(benches);
