//! Benchmark E7: forward/backward cost and parameter counts of the attention
//! Q-network (Table 6) versus the flattened baseline network (Table 7), on
//! both the small and the full topology. The attention network's parameter
//! count is independent of the topology size; the baseline's is not.

use acso_core::agent::{AttentionQNet, BaselineConvQNet, QNetwork};
use acso_core::features::NodeFeatureEncoder;
use acso_core::ActionSpace;
use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use dbn::learn::{learn_model, LearnConfig};
use dbn::DbnFilter;
use ics_net::TopologySpec;
use ics_sim::{IcsEnvironment, SimConfig};

fn state_for(spec: TopologySpec) -> (acso_core::StateFeatures, ActionSpace) {
    let sim = SimConfig {
        topology: spec,
        ..SimConfig::tiny()
    }
    .with_max_time(50);
    let model = learn_model(&LearnConfig {
        episodes: 1,
        seed: 0,
        sim: sim.clone(),
    });
    let mut env = IcsEnvironment::new(sim);
    let obs = env.reset();
    let encoder = NodeFeatureEncoder::new(env.topology());
    let filter = DbnFilter::new(model, env.topology().node_count());
    (
        encoder.encode(&obs, &filter),
        ActionSpace::new(env.topology()),
    )
}

fn bench_networks(c: &mut Criterion) {
    let mut group = c.benchmark_group("q_networks");
    group.sample_size(20);

    for (label, spec) in [
        ("small", TopologySpec::paper_small()),
        ("full", TopologySpec::paper_full()),
    ] {
        let (features, space) = state_for(spec);
        let mut attention = AttentionQNet::new(space.clone(), 0);
        let mut baseline = BaselineConvQNet::new(space.clone(), 0);
        println!(
            "[{label}] attention parameters: {}, baseline parameters: {}",
            attention.parameter_count(),
            baseline.parameter_count()
        );

        group.bench_with_input(
            BenchmarkId::new("attention_forward", label),
            &features,
            |b, features| b.iter(|| attention.q_values(features)),
        );
        group.bench_with_input(
            BenchmarkId::new("baseline_forward", label),
            &features,
            |b, features| b.iter(|| baseline.q_values(features)),
        );
        group.bench_with_input(
            BenchmarkId::new("attention_forward_backward", label),
            &features,
            |b, features| {
                b.iter(|| {
                    let q = attention.q_values(features);
                    let mut grad = vec![0.0f32; q.len()];
                    grad[1] = 1.0;
                    attention.backward(&grad);
                })
            },
        );
    }
    group.finish();
}

criterion_group!(benches, bench_networks);
criterion_main!(benches);
