//! Benchmark E8: INASIM simulation throughput ("super-real-time" claim of
//! §3.1) — how many simulated hours per second the environment sustains under
//! an undefended network and under the playbook defender.

use acso_core::baselines::PlaybookPolicy;
use acso_core::policy::DefenderPolicy;
use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use ics_sim::{DefenderAction, IcsEnvironment, SimConfig};
use rand::rngs::StdRng;
use rand::SeedableRng;

fn bench_sim_throughput(c: &mut Criterion) {
    let mut group = c.benchmark_group("sim_throughput");
    group.sample_size(10);

    for (label, config) in [
        ("small_topology", SimConfig::small().with_max_time(500)),
        ("full_topology", SimConfig::full().with_max_time(500)),
    ] {
        group.bench_with_input(
            BenchmarkId::new("undefended_500h", label),
            &config,
            |b, config| {
                b.iter(|| {
                    let mut env = IcsEnvironment::new(config.clone().with_seed(7));
                    env.run_episode(|_, _| vec![DefenderAction::NoAction])
                });
            },
        );
        group.bench_with_input(
            BenchmarkId::new("playbook_500h", label),
            &config,
            |b, config| {
                b.iter(|| {
                    let mut env = IcsEnvironment::new(config.clone().with_seed(7));
                    let mut policy = PlaybookPolicy::new();
                    policy.reset(env.topology());
                    let mut rng = StdRng::seed_from_u64(1);
                    env.run_episode(|obs, env| policy.decide(obs, env.topology(), &mut rng))
                });
            },
        );
    }
    group.finish();
}

criterion_group!(benches, bench_sim_throughput);
criterion_main!(benches);
