//! The invariant-sweep soak harness.
//!
//! Drives thousands of episodes on seed-generated scenarios
//! ([`ics_sim::Scenario::from_seed`], seeds from
//! [`acso_runtime::mersenne_stream`]) through the full training stack —
//! simulator, IDS, DBN filter, feature arena, prioritized replay, the
//! augmented-DQN update — and asserts cross-module invariants after **every**
//! environment step:
//!
//! * **alert conservation** — the per-node severity counts the defender
//!   observes aggregate exactly the raw alert stream;
//! * **belief normalization** — every node's DBN belief stays a probability
//!   distribution after each filter update;
//! * **topology reachability** — every node sits on its home VLAN or its
//!   quarantine counterpart, both served by a switch, and cross-level paths
//!   cross the plant firewall exactly once;
//! * **arena refcount balance** — outstanding feature references equal
//!   exactly two per live replay entry;
//! * **replay-ring/arena consistency** — every stored transition (and the
//!   pending n-step window) resolves to live arena slots.
//!
//! Mid-run, a seeded coin injects checkpoint/restore-and-compare: the agent
//! is serialized ([`acso_core::snapshot::encode_train_checkpoint`]), a cold
//! twin is restored from the bytes, the round trip is required to be
//! **bit-identical**, and the run continues on the restored twin — so any
//! drift the snapshot path introduced would trip the sweeps on later steps.
//! With a state directory the run also checkpoints at every episode boundary
//! and can be killed ([`SoakConfig::kill_at_op`]) and resumed; a killed-and-
//! resumed run converges to the same final checkpoint bytes as an
//! uninterrupted one (pinned by this module's tests).

use acso_core::agent::{AcsoAgent, AgentConfig, AttentionQNet};
use acso_core::snapshot::{self, peek_train_progress};
use acso_core::train::TrainReport;
use acso_core::ActionSpace;
use acso_runtime::{episode_seed, mersenne_stream};
use dbn::learn::{learn_model, LearnConfig};
use ics_net::Topology;
use ics_sim::{AlertSource, IcsEnvironment, Observation, Scenario};
use std::path::PathBuf;

/// Salt separating scenario-generation seeds from everything else.
const SCENARIO_SALT: u64 = 0x50AC;
/// Salt for the per-scenario run seed (DBN fit, network init, episodes).
const RUN_SALT: u64 = 0x51AC;
/// Salt for the restore-injection coin.
const RESTORE_SALT: u64 = 0x52AC;

/// Random-defender episodes fitting each scenario's DBN before the sweep.
const DBN_EPISODES: usize = 2;

/// Configuration of a soak run.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct SoakConfig {
    /// Minimum environment steps to drive, split across the scenarios. The
    /// run stops at the first episode boundary past each scenario's share.
    pub ops: u64,
    /// Master seed: scenario generation, DBN fits, network init and episode
    /// streams all derive from it through salted Mersenne hash streams.
    pub seed: u64,
    /// How many seed-generated scenarios to sweep.
    pub scenarios: usize,
    /// Episode-horizon cap applied to every generated scenario.
    pub max_time: u64,
    /// Checkpoint/restore-and-compare injection rate: roughly one in this
    /// many episode boundaries (seeded coin). 0 disables injection.
    pub restore_every: u64,
    /// Directory for per-scenario checkpoints; enables kill-and-resume.
    pub state_dir: Option<PathBuf>,
    /// Simulate a crash: exit at the first episode boundary at or past this
    /// global op count, right after writing the checkpoint. Requires
    /// [`SoakConfig::state_dir`].
    pub kill_at_op: Option<u64>,
}

impl SoakConfig {
    /// A small smoke configuration (used by tests and `--smoke`).
    pub fn smoke() -> Self {
        Self {
            ops: 400,
            seed: 0,
            scenarios: 1,
            max_time: 40,
            restore_every: 2,
            state_dir: None,
            kill_at_op: None,
        }
    }
}

/// What a completed soak run did.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct SoakReport {
    /// Environment steps driven (including steps replayed from checkpoints).
    pub ops: u64,
    /// Episodes completed across all scenarios.
    pub episodes: u64,
    /// Individual invariant checks that passed.
    pub checks: u64,
    /// Checkpoint/restore-and-compare injections performed.
    pub restores: u64,
    /// Episodes recovered from checkpoints instead of being re-run.
    pub resumed_episodes: u64,
    /// Names of the generated scenarios, in sweep order.
    pub scenario_names: Vec<String>,
}

/// How a soak run ended (when no invariant was violated).
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum SoakOutcome {
    /// The full op budget was driven with zero violations.
    Completed(SoakReport),
    /// [`SoakConfig::kill_at_op`] triggered: the run stopped mid-sweep with
    /// its state checkpointed, ready to be resumed.
    Killed {
        /// Global op count at the simulated crash.
        at_op: u64,
        /// The checkpoint the resumed run will pick up.
        checkpoint: PathBuf,
    },
}

/// Runs the soak. `Err` carries the first invariant violation (or an I/O
/// failure on the checkpoint path) — the harness stops immediately so the
/// failing step stays identifiable by seed and op count.
pub fn run_soak(config: &SoakConfig) -> Result<SoakOutcome, String> {
    if config.scenarios == 0 {
        return Err("soak needs at least one scenario".into());
    }
    if config.kill_at_op.is_some() && config.state_dir.is_none() {
        return Err("--kill-at-op needs --state-dir to checkpoint into".into());
    }
    if let Some(dir) = &config.state_dir {
        std::fs::create_dir_all(dir).map_err(|e| format!("state dir {}: {e}", dir.display()))?;
    }

    let per_scenario = config.ops.div_ceil(config.scenarios as u64);
    let mut report = SoakReport::default();
    let mut completed_ops = 0u64;

    for index in 0..config.scenarios {
        let scenario =
            Scenario::from_seed(mersenne_stream(config.seed, SCENARIO_SALT + index as u64));
        report.scenario_names.push(scenario.name.clone());
        let sim = scenario.config.clone().with_max_time(config.max_time);
        let run_seed = mersenne_stream(config.seed, RUN_SALT + index as u64);
        let checkpoint_path = config
            .state_dir
            .as_ref()
            .map(|dir| dir.join(format!("soak_scenario_{index}.acsosnap")));

        // Resume bookkeeping: a checkpoint that already covers this
        // scenario's share is accounted without rebuilding its agent.
        let mut resume_bytes = None;
        if let Some(path) = &checkpoint_path {
            if let Ok(bytes) = std::fs::read(path) {
                let progress = peek_train_progress(&bytes)
                    .map_err(|e| format!("checkpoint {}: {e}", path.display()))?;
                if progress.env_steps >= per_scenario {
                    completed_ops += progress.env_steps;
                    report.episodes += progress.episodes as u64;
                    report.resumed_episodes += progress.episodes as u64;
                    continue;
                }
                resume_bytes = Some(bytes);
            }
        }

        // The deterministic cold world: everything below is a function of
        // the scenario and `run_seed`, so a killed process rebuilds it
        // identically before restoring the checkpoint on top.
        let model = learn_model(&LearnConfig {
            episodes: DBN_EPISODES,
            seed: run_seed,
            sim: sim.clone(),
        });
        let base_env = IcsEnvironment::new(sim.clone().with_seed(run_seed));
        let space = ActionSpace::new(base_env.topology());
        let agent_config = AgentConfig {
            seed: run_seed,
            ..AgentConfig::smoke()
        };
        let make_agent = || {
            let network = AttentionQNet::new(space.clone(), run_seed);
            AcsoAgent::new(
                base_env.topology(),
                model.clone(),
                network,
                agent_config.clone(),
            )
        };
        let mut agent = make_agent();
        let mut train_report = TrainReport::default();
        if let Some(bytes) = resume_bytes {
            train_report = snapshot::decode_train_checkpoint(&mut agent, &bytes)
                .map_err(|e| format!("resuming scenario {index}: {e}"))?;
            report.episodes += train_report.episode_returns.len() as u64;
            report.resumed_episodes += train_report.episode_returns.len() as u64;
        }

        check_topology(base_env.topology())
            .map_err(|e| format!("scenario `{}`: {e}", scenario.name))?;
        agent.set_explore(true);

        while train_report.env_steps < per_scenario {
            let episode = train_report.episode_returns.len();
            let mut env =
                IcsEnvironment::new(sim.clone().with_seed(episode_seed(run_seed, episode)));
            let gamma = env.gamma();
            agent.begin_episode();
            let obs = env.reset();
            check_step(&agent, &env, &obs, &mut report.checks)
                .map_err(|e| at(&scenario.name, episode, &agent, e))?;
            let (mut action, mut state) = agent.select_action(&obs);

            let mut discounted = 0.0;
            let mut discount = 1.0;
            loop {
                let step = env.step(&[agent.action_space().decode(action)]);
                discounted += discount * step.reward;
                discount *= gamma;
                let (next_action, next_state) = agent.select_action(&step.observation);
                agent.store_transition(
                    state,
                    action,
                    step.reward + step.shaping_reward,
                    next_state,
                    step.done,
                );
                agent.maybe_train();
                check_step(&agent, &env, &step.observation, &mut report.checks)
                    .map_err(|e| at(&scenario.name, episode, &agent, e))?;
                action = next_action;
                state = next_state;
                if step.done {
                    break;
                }
            }
            train_report.episode_returns.push(discounted);
            train_report.episode_losses.push(agent.recent_loss());
            agent.end_episode();
            train_report.env_steps = agent.env_steps();
            train_report.updates = agent.updates();
            report.episodes += 1;

            // Episode boundary: checkpoint, then maybe crash, then maybe
            // swap the live agent for a from-bytes restoration of itself.
            let inject = config.restore_every > 0
                && mersenne_stream(run_seed, RESTORE_SALT + episode as u64)
                    .is_multiple_of(config.restore_every);
            if checkpoint_path.is_some() || inject {
                let bytes = snapshot::encode_train_checkpoint(&mut agent, &train_report);
                if let Some(path) = &checkpoint_path {
                    snapshot::write_atomic(path, &bytes)
                        .map_err(|e| format!("checkpoint {}: {e}", path.display()))?;
                    if let Some(kill) = config.kill_at_op {
                        let global = completed_ops + train_report.env_steps;
                        if global >= kill {
                            return Ok(SoakOutcome::Killed {
                                at_op: global,
                                checkpoint: path.clone(),
                            });
                        }
                    }
                }
                if inject {
                    let mut fresh = make_agent();
                    let restored =
                        snapshot::decode_train_checkpoint(&mut fresh, &bytes).map_err(|e| {
                            at(&scenario.name, episode, &agent, format!("restore: {e}"))
                        })?;
                    if restored != train_report {
                        return Err(at(
                            &scenario.name,
                            episode,
                            &agent,
                            "restored report diverges from the live one".into(),
                        ));
                    }
                    let round_trip = snapshot::encode_train_checkpoint(&mut fresh, &restored);
                    if round_trip != bytes {
                        return Err(at(
                            &scenario.name,
                            episode,
                            &agent,
                            format!(
                                "checkpoint round trip is not bit-identical: {} vs {} bytes",
                                bytes.len(),
                                round_trip.len()
                            ),
                        ));
                    }
                    // Continue the sweep on the restored twin: if restoration
                    // lost anything, later per-step checks will trip on it.
                    agent = fresh;
                    report.restores += 1;
                }
            }
        }
        completed_ops += train_report.env_steps;
    }

    report.ops = completed_ops;
    Ok(SoakOutcome::Completed(report))
}

/// Report of a bounded extra-large-scenario invariant sweep.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct XlSoakReport {
    /// Environment steps driven across all XL scenarios.
    pub ops: u64,
    /// Episodes completed.
    pub episodes: u64,
    /// Individual invariant checks that passed.
    pub checks: u64,
    /// Names of the XL scenarios swept.
    pub scenario_names: Vec<String>,
}

/// Bounded invariant sweep over the extra-large registry scenarios (tag
/// [`acso_core::ScenarioRegistry::XL_TAG`], ~1000 hosts).
///
/// The full training soak is deliberately too heavy at this scale (it
/// trains a per-scenario agent), so this sweep drives the world model alone
/// — playbook defender against the environment, no neural stack — and
/// asserts the world-level invariant families after every step: the static
/// topology reachability sweep once per scenario, then alert conservation
/// and live VLAN/quarantine reachability per step (the same
/// `check_world_step` shared with the full soak).
/// At ~1000 hosts these are exactly the invariants the sparse dirty-set
/// observation path and the multi-/24 IP allocator could silently break.
///
/// `ops` bounds the total steps (split across XL scenarios); episodes use
/// the playbook defender so quarantine churn exercises VLAN toggling.
pub fn run_xl_soak(ops: u64, seed: u64, max_time: u64) -> Result<XlSoakReport, String> {
    use acso_core::baselines::PlaybookPolicy;
    use acso_core::{DefenderPolicy, ScenarioRegistry};
    use rand::SeedableRng;

    let registry = ScenarioRegistry::builtin();
    let xl: Vec<_> = registry
        .iter()
        .filter(|s| s.has_tag(ScenarioRegistry::XL_TAG))
        .cloned()
        .collect();
    if xl.is_empty() {
        return Err("no XL-tagged scenarios in the registry".into());
    }

    let per_scenario = ops.div_ceil(xl.len() as u64);
    let mut report = XlSoakReport::default();
    for (index, scenario) in xl.iter().enumerate() {
        report.scenario_names.push(scenario.name.clone());
        let sim = scenario.config.clone().with_max_time(max_time);
        let run_seed = mersenne_stream(seed, RUN_SALT + index as u64);
        let mut env = IcsEnvironment::new(sim.clone().with_seed(run_seed));
        check_topology(env.topology()).map_err(|e| format!("scenario `{}`: {e}", scenario.name))?;

        let mut scenario_ops = 0u64;
        let mut episode = 0usize;
        while scenario_ops < per_scenario {
            env = IcsEnvironment::new(sim.clone().with_seed(episode_seed(run_seed, episode)));
            let mut policy = PlaybookPolicy::new();
            let mut rng =
                rand::rngs::StdRng::seed_from_u64(mersenne_stream(run_seed, episode as u64));
            policy.reset(env.topology());
            let mut obs = env.reset();
            check_world_step(&env, &obs, &mut report.checks)
                .map_err(|e| format!("scenario `{}` episode {episode}: {e}", scenario.name))?;
            loop {
                let actions = policy.decide(&obs, env.topology(), &mut rng);
                let step = env.step(&actions);
                scenario_ops += 1;
                check_world_step(&env, &step.observation, &mut report.checks).map_err(|e| {
                    format!(
                        "scenario `{}` episode {episode} op {scenario_ops}: {e}",
                        scenario.name
                    )
                })?;
                obs = step.observation;
                if step.done {
                    break;
                }
            }
            episode += 1;
            report.episodes += 1;
        }
        report.ops += scenario_ops;
    }
    Ok(report)
}

/// Prefixes a violation with where it happened.
fn at<N: acso_core::agent::QNetwork + Clone>(
    scenario: &str,
    episode: usize,
    agent: &AcsoAgent<N>,
    message: String,
) -> String {
    format!(
        "scenario `{scenario}` episode {episode} op {}: {message}",
        agent.env_steps()
    )
}

/// Static reachability sweep, once per scenario: every node's home VLAN and
/// quarantine counterpart are served by a switch at the node's level, and
/// cross-level paths cross the plant firewall exactly once.
fn check_topology(topo: &Topology) -> Result<(), String> {
    for node in topo.nodes() {
        let switch = topo
            .switch_for_vlan(node.home_vlan)
            .ok_or_else(|| format!("node {} has no home switch", node.id))?;
        let device = topo
            .devices()
            .find(|d| d.id == switch)
            .ok_or_else(|| format!("switch of node {} resolves to no device", node.id))?;
        if device.level != node.level {
            return Err(format!("node {} and its switch disagree on level", node.id));
        }
        if topo.switch_for_vlan(node.home_vlan.counterpart()).is_none() {
            return Err(format!(
                "vlan {:?} has no quarantine counterpart switch",
                node.home_vlan
            ));
        }
    }
    for from in topo.vlans() {
        for to in topo.vlans() {
            let crossings = topo
                .devices_between_vlans(from, to)
                .iter()
                .filter(|d| **d == topo.plant_firewall())
                .count();
            let expected = usize::from(from.level_number() != to.level_number());
            if crossings != expected {
                return Err(format!(
                    "path {from:?} -> {to:?} crosses the plant firewall {crossings} times, expected {expected}"
                ));
            }
        }
    }
    Ok(())
}

/// The world-level per-step invariants — alert conservation and live VLAN
/// reachability — shared by the full training soak and the bounded
/// extra-large sweep ([`run_xl_soak`]). Bumps `checks` once per family.
fn check_world_step(
    env: &IcsEnvironment,
    obs: &Observation,
    checks: &mut u64,
) -> Result<(), String> {
    // 1. Alert conservation: the per-node severity counts are exactly the
    //    aggregation of the raw alert stream.
    let node_count = env.topology().node_count();
    if obs.nodes.len() != node_count {
        return Err(format!(
            "observation covers {} nodes, topology has {node_count}",
            obs.nodes.len()
        ));
    }
    let mut recomputed = vec![[0u32; 3]; node_count];
    for alert in &obs.alerts {
        if let AlertSource::Node(node) = alert.source {
            if node.index() >= node_count {
                return Err(format!(
                    "alert attributed to out-of-range node {}",
                    node.index()
                ));
            }
            recomputed[node.index()][(alert.severity.level() - 1) as usize] += 1;
        }
    }
    for (index, node_obs) in obs.nodes.iter().enumerate() {
        if node_obs.alert_counts != recomputed[index] {
            return Err(format!(
                "alert conservation violated on node {index}: observation says {:?}, the raw stream aggregates to {:?}",
                node_obs.alert_counts, recomputed[index]
            ));
        }
    }
    *checks += 1;

    // 2. Reachability of the live VLAN placement: quarantine toggling must
    //    keep every node on a switch-served VLAN consistent with its flag.
    let state = env.state();
    for node in env.topology().nodes() {
        let vlan = state.vlan_of(node.id);
        let expected = if state.is_quarantined(node.id) {
            node.home_vlan.counterpart()
        } else {
            node.home_vlan
        };
        if vlan != expected {
            return Err(format!(
                "node {} sits on vlan {vlan:?} but its quarantine flag expects {expected:?}",
                node.id
            ));
        }
        if env.topology().switch_for_vlan(vlan).is_none() {
            return Err(format!(
                "node {} is on vlan {vlan:?} with no serving switch",
                node.id
            ));
        }
    }
    *checks += 1;

    Ok(())
}

/// The per-step invariant sweep. Bumps `checks` once per invariant family
/// that passed; returns the first violation.
fn check_step<N: acso_core::agent::QNetwork + Clone>(
    agent: &AcsoAgent<N>,
    env: &IcsEnvironment,
    obs: &Observation,
    checks: &mut u64,
) -> Result<(), String> {
    // 1–2. Alert conservation and live VLAN reachability.
    check_world_step(env, obs, checks)?;

    // 3. Belief normalization: each node's belief is a distribution.
    for (index, belief) in agent.filter().beliefs().iter().enumerate() {
        let sum: f64 = belief.iter().sum();
        if !sum.is_finite()
            || (sum - 1.0).abs() > 1e-6
            || belief.iter().any(|p| !p.is_finite() || *p < -1e-12)
        {
            return Err(format!(
                "belief of node {index} is not a distribution: {belief:?} (sum {sum})"
            ));
        }
    }
    *checks += 1;

    // 4. Arena refcount balance: exactly two references per replay entry
    //    (its start and bootstrap states), nothing leaked, nothing early.
    let trainer = agent.trainer();
    let total = trainer.arena().total_refs();
    let expected = 2 * trainer.replay().len() as u64;
    if total != expected {
        return Err(format!(
            "arena refcount imbalance: {total} outstanding references for {} replay entries (expected {expected})",
            trainer.replay().len()
        ));
    }
    *checks += 1;

    // 5. Replay-ring/arena consistency: every stored transition and the
    //    pending n-step window resolve to live arena slots.
    let (slots, _, _) = trainer.arena().parts();
    let replay = trainer.replay();
    let mut occupied = 0;
    for index in 0..replay.capacity() {
        if let Some(t) = replay.slot(index) {
            occupied += 1;
            for id in [t.state, t.final_state] {
                if id.index() >= slots.len() || slots[id.index()].is_none() {
                    return Err(format!(
                        "replay slot {index} references freed feature id {}",
                        id.index()
                    ));
                }
            }
        }
    }
    if occupied != replay.len() {
        return Err(format!(
            "replay ring reports len {} but {occupied} slots are occupied",
            replay.len()
        ));
    }
    for t in trainer.nstep_window() {
        for id in [t.state, t.next_state] {
            if id.index() >= slots.len() || slots[id.index()].is_none() {
                return Err(format!(
                    "n-step window references freed feature id {}",
                    id.index()
                ));
            }
        }
    }
    *checks += 1;

    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;

    fn temp_dir(name: &str) -> PathBuf {
        let dir = std::env::temp_dir().join(name);
        let _ = std::fs::remove_dir_all(&dir);
        dir
    }

    #[test]
    fn smoke_soak_checks_every_step_and_injects_restores() {
        let config = SoakConfig {
            ops: 120,
            max_time: 30,
            restore_every: 1, // inject at every episode boundary
            ..SoakConfig::smoke()
        };
        let outcome = run_soak(&config).expect("invariants must hold");
        let SoakOutcome::Completed(report) = outcome else {
            panic!("no kill configured");
        };
        assert!(report.ops >= config.ops);
        assert!(report.episodes >= 1);
        assert!(report.restores >= 1, "restore injection never fired");
        // Five invariant families per step, plus the reset observation.
        assert!(
            report.checks >= 5 * report.ops,
            "{} checks for {} ops",
            report.checks,
            report.ops
        );
        assert_eq!(report.scenario_names.len(), 1);
    }

    #[test]
    fn killed_and_resumed_soak_matches_an_uninterrupted_run() {
        let straight_dir = temp_dir("acso_soak_straight");
        let killed_dir = temp_dir("acso_soak_killed");
        let base = SoakConfig {
            ops: 120,
            max_time: 30,
            restore_every: 3,
            ..SoakConfig::smoke()
        };

        let straight = SoakConfig {
            state_dir: Some(straight_dir.clone()),
            ..base.clone()
        };
        let SoakOutcome::Completed(full) = run_soak(&straight).unwrap() else {
            panic!("no kill configured");
        };

        let killed = SoakConfig {
            state_dir: Some(killed_dir.clone()),
            kill_at_op: Some(base.ops / 2),
            ..base.clone()
        };
        let SoakOutcome::Killed { at_op, checkpoint } = run_soak(&killed).unwrap() else {
            panic!("kill must trigger before the budget is spent");
        };
        assert!(at_op >= base.ops / 2 && at_op < full.ops);
        assert!(checkpoint.exists());

        let resumed = SoakConfig {
            state_dir: Some(killed_dir.clone()),
            kill_at_op: None,
            ..base
        };
        let SoakOutcome::Completed(rest) = run_soak(&resumed).unwrap() else {
            panic!("no kill configured");
        };
        assert!(
            rest.resumed_episodes > 0,
            "resume should pick up the checkpoint"
        );
        assert_eq!(rest.ops, full.ops);
        assert_eq!(rest.episodes, full.episodes);

        // The strong claim: crash plus resume converges to the *same bytes*
        // an uninterrupted run checkpoints.
        let a = std::fs::read(straight_dir.join("soak_scenario_0.acsosnap")).unwrap();
        let b = std::fs::read(killed_dir.join("soak_scenario_0.acsosnap")).unwrap();
        assert_eq!(a, b, "resumed run diverged from the uninterrupted one");

        let _ = std::fs::remove_dir_all(&straight_dir);
        let _ = std::fs::remove_dir_all(&killed_dir);
    }

    #[test]
    fn xl_sweep_holds_world_invariants_on_the_1000_host_scenario() {
        let report = run_xl_soak(90, 0, 45).expect("XL invariants must hold");
        assert!(report.ops >= 90);
        assert!(report.episodes >= 1);
        // Two world-level invariant families per step, plus the reset
        // observation of each episode.
        assert!(
            report.checks >= 2 * report.ops,
            "{} checks for {} ops",
            report.checks,
            report.ops
        );
        assert!(report
            .scenario_names
            .iter()
            .any(|name| name == "registry-1000"));
    }

    #[test]
    fn kill_without_a_state_dir_is_rejected() {
        let config = SoakConfig {
            kill_at_op: Some(10),
            ..SoakConfig::smoke()
        };
        let err = run_soak(&config).unwrap_err();
        assert!(err.contains("--state-dir"), "{err}");
    }
}
