//! Ablations of the design choices called out in DESIGN.md:
//!
//! 1. shaping reward on vs off (the paper reports shaping was critical);
//! 2. attention architecture vs the flattened baseline network (Table 6 vs 7);
//! 3. prioritized vs uniform experience replay (α = 0 disables prioritisation).
//!
//! Each variant is trained briefly at the selected scale and its mean
//! training return over the last half of episodes is reported.
//!
//! Run with `--smoke`, `--quick` (default) or `--paper` to choose the scale.

use acso_bench::{print_header, Scale};
use acso_core::agent::{AcsoAgent, AgentConfig, AttentionQNet, BaselineConvQNet, QNetwork};
use acso_core::train::{train_agent, TrainConfig};
use acso_core::ActionSpace;
use dbn::learn::{learn_model, LearnConfig};
use ics_sim::reward::ShapingConfig;
use ics_sim::{IcsEnvironment, SimConfig};
use rl::DqnConfig;

struct Variant {
    name: &'static str,
    shaping: bool,
    attention: bool,
    priority_alpha: f64,
}

fn run_variant(variant: &Variant, base: &TrainConfig) -> f64 {
    let sim: SimConfig = if variant.shaping {
        base.sim.clone()
    } else {
        base.sim.clone().with_shaping(ShapingConfig::disabled())
    };
    let dbn_model = learn_model(&LearnConfig {
        episodes: base.dbn_episodes,
        seed: base.seed,
        sim: sim.clone(),
    });
    let env = IcsEnvironment::new(sim.clone().with_seed(base.seed));
    let space = ActionSpace::new(env.topology());
    let mut agent_config = base.agent.clone();
    agent_config.dqn = DqnConfig {
        priority_alpha: variant.priority_alpha,
        ..agent_config.dqn
    };

    let report = if variant.attention {
        let net = AttentionQNet::new(space, base.seed);
        let mut agent = AcsoAgent::new(env.topology(), dbn_model, net, agent_config);
        train_agent(&mut agent, &sim, base.episodes, base.seed)
    } else {
        let net = BaselineConvQNet::new(space, base.seed);
        let mut agent = AcsoAgent::new(env.topology(), dbn_model, net, agent_config);
        train_agent(&mut agent, &sim, base.episodes, base.seed)
    };
    let n = report.episode_returns.len().max(1);
    report.recent_mean_return(n / 2 + 1)
}

fn main() {
    let scale = Scale::from_args(std::env::args().skip(1));
    print_header(
        "Design-choice ablations (shaping, architecture, replay)",
        scale,
    );
    let experiment = scale.experiment_scale();
    let base = TrainConfig {
        sim: experiment.train_sim.clone(),
        agent: AgentConfig {
            dqn: DqnConfig::smoke(),
            learning_rate: 1e-4,
            seed: experiment.seed,
        },
        episodes: experiment.train_episodes,
        dbn_episodes: experiment.dbn_episodes,
        dbn_threads: None,
        seed: experiment.seed,
    };

    let variants = [
        Variant {
            name: "full ACSO (attention + shaping + prioritized)",
            shaping: true,
            attention: true,
            priority_alpha: 0.6,
        },
        Variant {
            name: "no shaping reward",
            shaping: false,
            attention: true,
            priority_alpha: 0.6,
        },
        Variant {
            name: "baseline flattened network",
            shaping: true,
            attention: false,
            priority_alpha: 0.6,
        },
        Variant {
            name: "uniform replay (alpha = 0)",
            shaping: true,
            attention: true,
            priority_alpha: 0.0,
        },
    ];

    let start = std::time::Instant::now();
    println!();
    println!("{:<48} {:>16}", "variant", "mean return");
    for variant in &variants {
        let mean_return = run_variant(variant, &base);
        println!("{:<48} {:>16.1}", variant.name, mean_return);
    }

    // Parameter-count side of the architecture ablation (Table 6 vs Table 7).
    let small_space = ActionSpace::from_counts(16, 30);
    let full_space = ActionSpace::from_counts(33, 50);
    let mut attn_small = AttentionQNet::new(small_space.clone(), 0);
    let mut attn_full = AttentionQNet::new(full_space.clone(), 0);
    let mut base_small = BaselineConvQNet::new(small_space, 0);
    let mut base_full = BaselineConvQNet::new(full_space, 0);
    println!();
    println!("Parameter growth when the network grows from the tuning topology to the full one:");
    println!(
        "  attention: {} -> {} parameters (constant)",
        attn_small.parameter_count(),
        attn_full.parameter_count()
    );
    println!(
        "  baseline:  {} -> {} parameters (grows with topology)",
        base_small.parameter_count(),
        base_full.parameter_count()
    );
    println!();
    println!("Total wall-clock: {:.1?}", start.elapsed());
}
