//! Reproduces Figure 10: robustness of every defender against the nominal
//! attacker (APT1) and the more aggressive attacker (APT2) that the ACSO
//! never saw during training.
//!
//! Run with `--smoke`, `--quick` (default) or `--paper` to choose the scale.

use acso_bench::{fmt_mean, print_header, Scale};
use acso_core::experiments::{fig10, prepare};

fn main() {
    let scale = Scale::from_args(std::env::args().skip(1));
    print_header("Figure 10 — APT Policy Experiment Results", scale);

    let start = std::time::Instant::now();
    println!("Training ACSO defender...");
    let mut ctx = prepare(scale.experiment_scale());
    println!("Evaluating against APT1 and APT2...");
    let result = fig10(&mut ctx);

    for metric in [
        "(a) Final PLCs offline",
        "(b) Average IT cost",
        "(c) Average nodes compromised",
    ] {
        println!();
        println!("{metric}");
        println!("{:<14} {:>18} {:>18}", "policy", "APT1", "APT2");
        let policies: Vec<String> = result
            .cells
            .iter()
            .map(|c| c.policy.clone())
            .collect::<std::collections::BTreeSet<_>>()
            .into_iter()
            .collect();
        for policy in policies {
            let get = |attacker: &str| {
                result
                    .cells
                    .iter()
                    .find(|c| c.policy == policy && c.attacker == attacker)
                    .expect("cell present")
            };
            let (a1, a2) = (get("APT1"), get("APT2"));
            let pick = |c: &acso_core::experiments::Fig10Cell| match metric.chars().nth(1) {
                Some('a') => fmt_mean(&c.plcs_offline),
                Some('b') => fmt_mean(&c.it_cost),
                _ => fmt_mean(&c.nodes_compromised),
            };
            println!("{:<14} {:>18} {:>18}", policy, pick(a1), pick(a2));
        }
    }

    println!();
    println!("Paper reference: ACSO keeps 0 PLCs offline and the lowest IT cost (~0.149) under");
    println!("both attackers; the playbook loses ~0.45 PLCs/episode against APT2.");
    println!("Total wall-clock: {:.1?}", start.elapsed());
}
