//! Reproduces the §4.3 dynamic Bayes network validation: fit the filter's
//! probability tables from random-defender episodes and measure the KL
//! divergence between the filtered beliefs and the true node states.
//!
//! Run with `--smoke`, `--quick` (default) or `--paper` to choose the scale.

use acso_bench::{print_header, Scale};
use acso_core::experiments::dbn_validation;

fn main() {
    let scale = Scale::from_args(std::env::args().skip(1));
    print_header("Section 4.3 — DBN filter validation", scale);

    let start = std::time::Instant::now();
    let report = dbn_validation(&scale.experiment_scale());

    println!();
    println!("samples evaluated:        {}", report.samples);
    println!("max KL divergence:        {:.3}", report.max_kl);
    println!("mean KL divergence:       {:.4}", report.mean_kl);
    println!(
        "MAP class accuracy:       {:.1}%",
        report.map_accuracy * 100.0
    );
    println!(
        "compromised/clean accuracy: {:.1}%",
        report.compromise_accuracy * 100.0
    );
    println!();
    println!("Paper reference: the DBN is validated by the maximum KL divergence between the");
    println!("belief and the true state over many episodes (no numeric value is reported).");
    println!("Total wall-clock: {:.1?}", start.elapsed());
}
