//! Serve-path throughput benchmark: drives the `acso-serve` evaluation
//! service with one synthetic client versus four pipelined clients and
//! measures episodes/sec plus the lockstep batch-fill ratio. Coalescing is
//! the daemon's whole reason to exist, so the run **asserts** that four
//! clients fill the engine strictly better than one before reporting
//! numbers.
//!
//! Usage:
//!
//! ```sh
//! cargo run --release -p acso-bench --bin serve_bench -- \
//!     [--quick] [--out PATH] [--merge BENCH_x.json]
//! ```
//!
//! `--out` writes a standalone JSON snapshot; `--merge` splices the `serve`
//! block into an existing `perf_smoke` snapshot (e.g. `BENCH_6.json`) so one
//! file carries the PR's whole trajectory entry.

use acso_serve::service::{EvalService, ServiceConfig};
use std::time::Instant;

/// One benchmark workload: `requests` evaluate calls of `episodes` episodes
/// each on the tiny scenario, all against a warm playbook policy.
struct Workload {
    requests: usize,
    episodes: u64,
    max_time: u64,
}

fn evaluate_line(id: usize, seed: u64, episodes: u64, max_time: u64) -> String {
    format!(
        r#"{{"id":{id},"method":"evaluate","params":{{"handle":"playbook@1","scenario":"tiny","episodes":{episodes},"seed":{seed},"max_time":{max_time}}}}}"#
    )
}

/// Fresh service with a warm playbook policy (loading is not part of the
/// measurement — the daemon's point is that it happens once).
fn warm_service(threads: usize) -> EvalService {
    let mut service = EvalService::new(ServiceConfig {
        lanes: 8,
        threads,
        fixed_time: true,
    });
    let response =
        service.handle_line(r#"{"id":0,"method":"load_policy","params":{"policy":"playbook"}}"#);
    assert!(response.contains(r#""ok":true"#), "{response}");
    service
}

struct RunResult {
    episodes_per_sec: f64,
    fill_ratio: f64,
}

/// One client: every request arrives alone, so each is its own lockstep
/// batch and short requests leave most engine lanes empty.
fn run_solo(workload: &Workload, threads: usize) -> RunResult {
    let mut service = warm_service(threads);
    let start = Instant::now();
    for i in 0..workload.requests {
        let line = evaluate_line(i + 1, i as u64, workload.episodes, workload.max_time);
        let response = service.handle_line(&line);
        assert!(response.contains(r#""ok":true"#), "{response}");
    }
    let elapsed = start.elapsed().as_secs_f64();
    RunResult {
        episodes_per_sec: (workload.requests as u64 * workload.episodes) as f64 / elapsed,
        fill_ratio: service.metrics().batch_fill_ratio(),
    }
}

/// `clients` pipelined clients: their requests land in the same transport
/// drain, so the service coalesces them into shared lockstep batches.
fn run_coalesced(workload: &Workload, threads: usize, clients: usize) -> RunResult {
    let mut service = warm_service(threads);
    let start = Instant::now();
    let mut id = 0;
    for round in 0..workload.requests / clients {
        let lines: Vec<String> = (0..clients)
            .map(|c| {
                id += 1;
                evaluate_line(
                    id,
                    (round * clients + c) as u64,
                    workload.episodes,
                    workload.max_time,
                )
            })
            .collect();
        let outcome = service.handle_batch(&lines);
        for response in &outcome.responses {
            assert!(response.contains(r#""ok":true"#), "{response}");
        }
    }
    let elapsed = start.elapsed().as_secs_f64();
    RunResult {
        episodes_per_sec: (workload.requests as u64 * workload.episodes) as f64 / elapsed,
        fill_ratio: service.metrics().batch_fill_ratio(),
    }
}

/// Splices a `"serve": {...}` block into an existing snapshot by replacing
/// its final closing brace.
fn merge_into(path: &str, serve_block: &str) {
    let text = std::fs::read_to_string(path)
        .unwrap_or_else(|e| panic!("cannot read merge target {path}: {e}"));
    let trimmed = text.trim_end();
    let body = trimmed
        .strip_suffix('}')
        .unwrap_or_else(|| panic!("{path} does not end with a JSON object"));
    assert!(
        !body.contains("\"serve\""),
        "{path} already carries a serve block"
    );
    let merged = format!("{},\n  \"serve\": {serve_block}\n}}\n", body.trim_end());
    std::fs::write(path, merged).unwrap_or_else(|e| panic!("cannot write {path}: {e}"));
}

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let quick = args.iter().any(|a| a == "--quick");
    let value_of = |flag: &str| {
        args.iter()
            .position(|a| a == flag)
            .and_then(|i| args.get(i + 1))
            .cloned()
    };
    let out_path = value_of("--out");
    let merge_path = value_of("--merge");

    let clients = 4;
    let workload = if quick {
        Workload {
            requests: 8,
            episodes: 2,
            max_time: 150,
        }
    } else {
        Workload {
            requests: 32,
            episodes: 2,
            max_time: 300,
        }
    };
    let threads = ServiceConfig::from_env().threads;

    println!(
        "== serve_bench ({}) == {} requests x {} episodes, max_time {}, {} threads",
        if quick { "quick" } else { "full" },
        workload.requests,
        workload.episodes,
        workload.max_time,
        threads
    );

    // Warm-up pass (page in code, allocator state), then timed runs.
    let _ = run_solo(
        &Workload {
            requests: 2,
            ..workload
        },
        threads,
    );
    let solo = run_solo(&workload, threads);
    let coalesced = run_coalesced(&workload, threads, clients);

    // The point of the daemon: pipelined clients share lockstep batches.
    // 2-episode requests fill an 8-lane engine at 0.25 alone; four coalesced
    // requests fill it completely.
    assert!(
        coalesced.fill_ratio > solo.fill_ratio,
        "coalescing must raise batch fill: solo {} vs {clients} clients {}",
        solo.fill_ratio,
        coalesced.fill_ratio
    );

    println!(
        "  1 client : {:>10.1} episodes/sec, batch fill {:.3}",
        solo.episodes_per_sec, solo.fill_ratio
    );
    println!(
        "  {clients} clients: {:>10.1} episodes/sec, batch fill {:.3} ({:.2}x)",
        coalesced.episodes_per_sec,
        coalesced.fill_ratio,
        coalesced.episodes_per_sec / solo.episodes_per_sec
    );

    let serve_block = format!(
        "{{\n    \"scenario\": \"tiny\",\n    \"policy\": \"Playbook\",\n    \"lanes\": 8,\n    \"threads\": {threads},\n    \"requests\": {requests},\n    \"episodes_per_request\": {episodes},\n    \"clients\": {clients},\n    \"serve_episodes_per_sec_1_client\": {solo_eps:.1},\n    \"serve_episodes_per_sec_{clients}_clients\": {co_eps:.1},\n    \"serve_batch_fill_1_client\": {solo_fill:.4},\n    \"serve_batch_fill_{clients}_clients\": {co_fill:.4},\n    \"serve_coalesced_speedup\": {speedup:.3}\n  }}",
        requests = workload.requests,
        episodes = workload.episodes,
        solo_eps = solo.episodes_per_sec,
        co_eps = coalesced.episodes_per_sec,
        solo_fill = solo.fill_ratio,
        co_fill = coalesced.fill_ratio,
        speedup = coalesced.episodes_per_sec / solo.episodes_per_sec,
    );

    if let Some(path) = merge_path {
        merge_into(&path, &serve_block);
        println!("merged serve block into {path}");
    }
    if let Some(path) = out_path {
        let json =
            format!("{{\n  \"schema\": \"acso-serve-bench/v1\",\n  \"serve\": {serve_block}\n}}\n");
        std::fs::write(&path, &json).expect("failed to write benchmark snapshot");
        println!("wrote {path}");
    }
}
