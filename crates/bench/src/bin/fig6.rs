//! Reproduces Figure 6: defender performance under perturbations of the
//! APT's cleanup effectiveness (nominal training value 0.5).
//!
//! Run with `--smoke`, `--quick` (default) or `--paper` to choose the scale.

use acso_bench::{fmt_mean, print_header, Scale};
use acso_core::experiments::{fig6, prepare};

fn main() {
    let scale = Scale::from_args(std::env::args().skip(1));
    print_header("Figure 6 — APT Cleanup Effectiveness Experiments", scale);

    let start = std::time::Instant::now();
    println!("Training ACSO defender...");
    let mut ctx = prepare(scale.experiment_scale());
    println!("Sweeping cleanup effectiveness...");
    let result = fig6(&mut ctx);

    println!();
    println!("(a) Final PLCs offline");
    print!("{:<14}", "policy");
    for e in &result.effectiveness {
        print!(" {:>14}", format!("eff={e:.1}"));
    }
    println!();
    for series in &result.series {
        print!("{:<14}", series.policy);
        for v in &series.plcs_offline {
            print!(" {:>14}", fmt_mean(v));
        }
        println!();
    }

    println!();
    println!("(b) Average level-2/1 nodes compromised");
    for series in &result.series {
        print!("{:<14}", series.policy);
        for v in &series.nodes_compromised {
            print!(" {:>14}", fmt_mean(v));
        }
        println!();
    }

    println!();
    println!("(supplementary) Average IT cost");
    for series in &result.series {
        print!("{:<14}", series.policy);
        for v in &series.it_cost {
            print!(" {:>14}", fmt_mean(v));
        }
        println!();
    }

    println!();
    println!("Paper reference: both ACSO and playbook degrade as effectiveness rises above the");
    println!("nominal 0.5, with the playbook failing sooner and more sharply; the DBN expert is");
    println!("insensitive but pays a much higher action cost.");
    println!("Total wall-clock: {:.1?}", start.elapsed());
}
