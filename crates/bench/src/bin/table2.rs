//! Reproduces Table 2: nominal evaluation of the ACSO agent and the three
//! baseline policies (DBN expert, playbook, semi-random) under APT1.
//!
//! Run with `--smoke`, `--quick` (default) or `--paper` to choose the scale;
//! `--batch N` (or `ACSO_BATCH=N`) evaluates through the lockstep batched
//! engine with `N` lanes — same transcripts, batched inference.

use acso_bench::{apply_batch_flag, print_header, Scale};
use acso_core::eval::format_table;
use acso_core::experiments::{prepare, table2};

fn main() {
    let scale = Scale::from_args(std::env::args().skip(1));
    apply_batch_flag(std::env::args().skip(1));
    print_header("Table 2 — Nominal Evaluation Results", scale);

    let start = std::time::Instant::now();
    println!("Training ACSO defender (DBN fit + augmented DQN)...");
    let mut ctx = prepare(scale.experiment_scale());
    println!(
        "  trained for {} episodes / {} env steps / {} gradient updates in {:.1?}",
        ctx.trained.report.episode_returns.len(),
        ctx.trained.report.env_steps,
        ctx.trained.report.updates,
        start.elapsed()
    );

    println!(
        "Evaluating policies ({} episodes each)...",
        ctx.scale.eval_episodes
    );
    let result = table2(&mut ctx);
    println!();
    println!("{}", format_table(&result.evaluations));
    println!(
        "Paper reference (Table 2): ACSO 2149.9 return / 0.0 PLCs / 0.15 IT cost / 0.56 nodes;"
    );
    println!("  Playbook 2142.6 / 0.0 / 0.21 / 0.63; DBN Expert 1970.5 / 5.6 / 0.40 / 0.62;");
    println!("  Semi Random 2071.9 / 0.0 / 0.60 / 0.88.");
    println!("Total wall-clock: {:.1?}", start.elapsed());
}
