//! Perf-trajectory smoke benchmark: measures simulator rollout throughput
//! (serial vs parallel vs lockstep-batched), neural forward/backward cost,
//! batched-inference speedup, and the batched-vs-serial DQN update cost,
//! and emits a `BENCH_<n>.json` snapshot so the repository tracks
//! performance across PRs (summarise the trajectory with the
//! `bench_compare` binary).
//!
//! Usage:
//!
//! ```sh
//! cargo run --release -p acso-bench --bin perf_smoke -- \
//!     [--quick] [--out BENCH_x.json] [--backend reference|simd]
//! ```
//!
//! `--quick` shrinks the workload for CI; `--out` writes the JSON snapshot
//! (stdout always gets a human-readable summary). `ACSO_THREADS` pins the
//! parallel worker count. `--backend` (or `ACSO_BACKEND`) selects the kernel
//! backend the flat snapshot metrics are measured with; the snapshot is
//! tagged with the choice. When the binary is compiled with
//! `--features backend-simd` and the primary backend is the reference one,
//! the neural metrics are *also* measured under the SIMD backend and
//! recorded in a `simd_kernels` block, so one snapshot carries the
//! before/after pair.
//!
//! Schema v5 adds the `xl_topology` block: per-step throughput of the full
//! world-model hot path (environment step + DBN filter update + feature
//! encode) on the ~1000-host `registry-1000` scenario, measured with the
//! sparse activity-indexed path and with the dense reference path
//! (`set_dense_observation_reference` + dense encode), plus the same
//! pipeline on the paper_small topology (the per-host sublinearity
//! reference) and the engine plan the autoscaler picks for that workload.

use acso_bench::prefilled_update_agent;
use acso_core::agent::{AttentionQNet, BaselineConvQNet, QNetwork, UpdateMode};
use acso_core::baselines::PlaybookPolicy;
use acso_core::features::{EncodeScratch, NodeFeatureEncoder};
use acso_core::rollout::{rollout, rollout_serial, RolloutPlan, SyncBatchEngine};
use acso_core::{ActionSpace, DefenderPolicy, ScenarioRegistry, StateFeatures};
use acso_runtime::{AutoscalePlan, WorkloadShape};
use dbn::learn::{learn_model, LearnConfig};
use dbn::DbnFilter;
use ics_net::TopologySpec;
use ics_sim::{IcsEnvironment, SimConfig};
use neural::backend::BackendRef;
use std::time::Instant;

struct SimThroughput {
    episodes: usize,
    hours: u64,
    serial_steps_per_sec: f64,
    parallel_steps_per_sec: f64,
    threads: usize,
}

fn measure_sim_throughput(episodes: usize, hours: u64) -> SimThroughput {
    let sim = SimConfig::small().with_max_time(hours);
    let serial_plan = RolloutPlan::new(sim.clone(), episodes, 7).with_threads(1);
    let parallel_plan = RolloutPlan::new(sim, episodes, 7);
    let total_steps = (episodes as u64 * hours) as f64;

    // Warm-up (page in code and allocator state), then timed runs.
    let _ = rollout_serial(&mut PlaybookPolicy::new(), &serial_plan);
    let start = Instant::now();
    let serial = rollout_serial(&mut PlaybookPolicy::new(), &serial_plan);
    let serial_time = start.elapsed();
    let start = Instant::now();
    let parallel = rollout(&parallel_plan, || Box::new(PlaybookPolicy::new()));
    let parallel_time = start.elapsed();
    assert_eq!(serial, parallel, "parallel rollout must be bit-identical");
    let batched = SyncBatchEngine::new(16).rollout(&parallel_plan, &|| {
        Box::new(PlaybookPolicy::new()) as Box<dyn DefenderPolicy>
    });
    assert_eq!(serial, batched, "batched rollout must be bit-identical");

    SimThroughput {
        episodes,
        hours,
        serial_steps_per_sec: total_steps / serial_time.as_secs_f64(),
        parallel_steps_per_sec: total_steps / parallel_time.as_secs_f64(),
        threads: parallel_plan.threads,
    }
}

struct XlThroughput {
    scenario: String,
    nodes: usize,
    plcs: usize,
    hours: u64,
    sparse_steps_per_sec: f64,
    dense_steps_per_sec: f64,
    /// Node count of the small-topology reference pipeline run.
    small_nodes: usize,
    /// The same env+filter+encode pipeline on the paper_small topology.
    small_steps_per_sec: f64,
    plan: AutoscalePlan,
}

impl XlThroughput {
    fn sparse_speedup(&self) -> f64 {
        self.sparse_steps_per_sec / self.dense_steps_per_sec
    }

    /// Per-step cost growth divided by node-count growth, small topology →
    /// XL topology. Below 1.0 means per-step wall-clock grew *sublinearly*
    /// in world size — the sparse hot-path contract.
    fn per_host_scaling(&self) -> f64 {
        let cost_ratio = self.small_steps_per_sec / self.sparse_steps_per_sec;
        let node_ratio = self.nodes as f64 / self.small_nodes as f64;
        cost_ratio / node_ratio
    }
}

/// Measures the full world-model hot path — environment step, DBN filter
/// update, feature encode, playbook defender decision — over repeated
/// episodes of `hours` simulated hours until at least `min_steps` total
/// steps are timed. One 60-hour episode is only 60 steps (~milliseconds),
/// which page-fault and allocator warm-up noise dominates; amortizing over
/// many episodes in a single timed region makes per-step cost stable.
///
/// The playbook defender keeps the infection bounded, which is the regime
/// the sparse paths are built for: an *undefended* 1000-host world
/// saturates (every node compromised and alerting), and once activity ≈
/// world size, sparse and dense necessarily cost the same. Sparse and dense
/// paths produce bit-identical observations and features (pinned by the
/// equivalence tests), so their ratio is pure sparsity payoff.
fn measure_pipeline(sim: &SimConfig, hours: u64, min_steps: u64, dense: bool) -> f64 {
    use rand::SeedableRng;

    let model = learn_model(&LearnConfig {
        episodes: 1,
        seed: 0,
        sim: sim.clone().with_max_time(hours.min(30)),
    });
    let nodes = sim.topology.total_nodes();
    let mut filter = DbnFilter::new(model, nodes);
    let mut features = StateFeatures::empty();
    let mut scratch = EncodeScratch::new();
    let mut steps = 0u64;
    let mut episode = 0u64;
    // Only the step loop is timed: per-episode environment construction is
    // identical in both modes and would dilute the per-step signal.
    let mut timed = std::time::Duration::ZERO;
    while steps < min_steps {
        let mut env = IcsEnvironment::new(sim.clone().with_seed(9 + episode));
        env.set_dense_observation_reference(dense);
        let encoder = NodeFeatureEncoder::new(env.topology());
        let mut policy = PlaybookPolicy::new();
        let mut rng = rand::rngs::StdRng::seed_from_u64(11 + episode);
        let mut obs = env.reset();
        filter.reset();
        scratch.invalidate();
        policy.reset(env.topology());
        let mut hour = 0u64;
        let episode_start = Instant::now();
        loop {
            filter.update(&obs);
            if dense {
                encoder.encode_into(&obs, &filter, &mut features);
            } else {
                encoder.encode_active_into(&obs, &filter, &mut scratch, &mut features);
            }
            std::hint::black_box(&features);
            let actions = policy.decide(&obs, env.topology(), &mut rng);
            let step = env.step(&actions);
            steps += 1;
            hour += 1;
            obs = step.observation;
            if step.done || hour >= hours {
                break;
            }
        }
        timed += episode_start.elapsed();
        episode += 1;
    }
    steps as f64 / timed.as_secs_f64()
}

/// Measures the world-model hot path on the ~1000-host registry scenario
/// (sparse and dense-reference), plus the same pipeline on the paper_small
/// topology as the sublinearity reference point, and the engine plan the
/// autoscaler picks for a paper-scale (100-episode) XL evaluation.
fn measure_xl_throughput(hours: u64, min_steps: u64) -> XlThroughput {
    let registry = ScenarioRegistry::builtin();
    let scenario = registry
        .get("registry-1000")
        .expect("registry-1000 scenario exists");
    let sim = scenario.config.clone().with_max_time(hours);
    let nodes = sim.topology.total_nodes();
    let plcs = sim.topology.plcs;

    let small_sim = SimConfig {
        topology: TopologySpec::paper_small(),
        ..scenario.config.clone()
    }
    .with_max_time(hours);
    let small_nodes = small_sim.topology.total_nodes();
    // Warm-up (page in code and allocator state), then the measured runs;
    // dense before sparse so any residual warm-up favours the reference.
    let _ = measure_pipeline(&small_sim, hours, min_steps, false);
    let small_steps_per_sec = measure_pipeline(&small_sim, hours, min_steps, false);
    let dense_steps_per_sec = measure_pipeline(&sim, hours, min_steps, true);
    let sparse_steps_per_sec = measure_pipeline(&sim, hours, min_steps, false);

    let plan = acso_runtime::plan(&WorkloadShape {
        nodes,
        actions: ActionSpace::from_counts(nodes, plcs).len(),
        episodes: 100,
    });
    XlThroughput {
        scenario: scenario.name.clone(),
        nodes,
        plcs,
        hours,
        sparse_steps_per_sec,
        dense_steps_per_sec,
        small_nodes,
        small_steps_per_sec,
        plan,
    }
}

fn features_for(spec: TopologySpec) -> (StateFeatures, ActionSpace) {
    let sim = SimConfig {
        topology: spec,
        ..SimConfig::tiny()
    }
    .with_max_time(50);
    let model = learn_model(&LearnConfig {
        episodes: 1,
        seed: 0,
        sim: sim.clone(),
    });
    let mut env = IcsEnvironment::new(sim);
    let obs = env.reset();
    let encoder = NodeFeatureEncoder::new(env.topology());
    let filter = DbnFilter::new(model, env.topology().node_count());
    (
        encoder.encode(&obs, &filter),
        ActionSpace::new(env.topology()),
    )
}

struct BatchedInference {
    batch: usize,
    attention_per_state_ns: f64,
    attention_batched_ns_per_state: f64,
    baseline_per_state_ns: f64,
    baseline_batched_ns_per_state: f64,
}

impl BatchedInference {
    fn attention_speedup(&self) -> f64 {
        self.attention_per_state_ns / self.attention_batched_ns_per_state
    }

    fn baseline_speedup(&self) -> f64 {
        self.baseline_per_state_ns / self.baseline_batched_ns_per_state
    }
}

/// Measures per-state inference cost with and without batching: `batch`
/// states answered by one `q_values_batch` call versus `batch` solo
/// `q_values` calls (same states, same outputs to the backend's tolerance).
fn measure_batched_inference(iters: usize, batch: usize, backend: BackendRef) -> BatchedInference {
    let (states, space) = acso_bench::episode_states(TopologySpec::paper_small(), batch);
    let refs: Vec<&StateFeatures> = states.iter().collect();
    let mut attention = AttentionQNet::new(space.clone(), 0);
    attention.set_kernel_backend(backend);
    let mut baseline = BaselineConvQNet::new(space, 0);
    baseline.set_kernel_backend(backend);

    let per_state = |f: &mut dyn FnMut()| {
        f(); // warm-up (fills the scratch pools)
        let start = Instant::now();
        for _ in 0..iters {
            f();
        }
        start.elapsed().as_nanos() as f64 / (iters * batch) as f64
    };

    let attention_per_state_ns = per_state(&mut || {
        for f in &states {
            std::hint::black_box(attention.q_values(f));
        }
    });
    let attention_batched_ns_per_state = per_state(&mut || {
        std::hint::black_box(attention.q_values_batch(&refs));
    });
    let baseline_per_state_ns = per_state(&mut || {
        for f in &states {
            std::hint::black_box(baseline.q_values(f));
        }
    });
    let baseline_batched_ns_per_state = per_state(&mut || {
        std::hint::black_box(baseline.q_values_batch(&refs));
    });

    BatchedInference {
        batch,
        attention_per_state_ns,
        attention_batched_ns_per_state,
        baseline_per_state_ns,
        baseline_batched_ns_per_state,
    }
}

struct BatchedTraining {
    batch: usize,
    attention_batched_update_ns: f64,
    attention_serial_update_ns: f64,
    baseline_batched_update_ns: f64,
    baseline_serial_update_ns: f64,
}

impl BatchedTraining {
    fn attention_speedup(&self) -> f64 {
        self.attention_serial_update_ns / self.attention_batched_update_ns
    }

    fn baseline_speedup(&self) -> f64 {
        self.baseline_serial_update_ns / self.baseline_batched_update_ns
    }
}

/// Measures one full DQN gradient update (bootstrap, forward, backward,
/// optimizer step) per mode: the batched stacked pass versus the
/// per-sample solo-loop reference. The two agree to the backend's
/// tolerance, so the ratio is pure implementation speedup.
fn measure_batched_training(iters: usize, batch: usize, backend: BackendRef) -> BatchedTraining {
    let mut attention = prefilled_update_agent(|s| AttentionQNet::new(s, 0), batch);
    attention.network_mut().set_kernel_backend(backend);
    let mut baseline = prefilled_update_agent(|s| BaselineConvQNet::new(s, 0), batch);
    baseline.network_mut().set_kernel_backend(backend);

    let per_update = |f: &mut dyn FnMut()| {
        f(); // warm-up (fills the scratch pools)
        let start = Instant::now();
        for _ in 0..iters {
            f();
        }
        start.elapsed().as_nanos() as f64 / iters as f64
    };

    attention.set_update_mode(UpdateMode::Batched);
    let attention_batched_update_ns = per_update(&mut || {
        std::hint::black_box(attention.maybe_train().expect("update"));
    });
    attention.set_update_mode(UpdateMode::Serial);
    let attention_serial_update_ns = per_update(&mut || {
        std::hint::black_box(attention.maybe_train().expect("update"));
    });
    baseline.set_update_mode(UpdateMode::Batched);
    let baseline_batched_update_ns = per_update(&mut || {
        std::hint::black_box(baseline.maybe_train().expect("update"));
    });
    baseline.set_update_mode(UpdateMode::Serial);
    let baseline_serial_update_ns = per_update(&mut || {
        std::hint::black_box(baseline.maybe_train().expect("update"));
    });

    BatchedTraining {
        batch,
        attention_batched_update_ns,
        attention_serial_update_ns,
        baseline_batched_update_ns,
        baseline_serial_update_ns,
    }
}

struct NnForward {
    attention_forward_ns: f64,
    attention_forward_backward_ns: f64,
    baseline_forward_ns: f64,
}

fn measure_nn_forward(iters: usize, backend: BackendRef) -> NnForward {
    let (features, space) = features_for(TopologySpec::paper_small());
    let mut attention = AttentionQNet::new(space.clone(), 0);
    attention.set_kernel_backend(backend);
    let mut baseline = BaselineConvQNet::new(space, 0);
    baseline.set_kernel_backend(backend);

    let time_per_op = |f: &mut dyn FnMut()| {
        f(); // warm-up (fills the scratch pools)
        let start = Instant::now();
        for _ in 0..iters {
            f();
        }
        start.elapsed().as_nanos() as f64 / iters as f64
    };

    let attention_forward_ns = time_per_op(&mut || {
        std::hint::black_box(attention.q_values(&features));
    });
    let attention_forward_backward_ns = time_per_op(&mut || {
        let q = attention.q_values(&features);
        let mut grad = vec![0.0f32; q.len()];
        grad[1] = 1.0;
        attention.backward(&grad);
        std::hint::black_box(q);
    });
    let baseline_forward_ns = time_per_op(&mut || {
        std::hint::black_box(baseline.q_values(&features));
    });

    NnForward {
        attention_forward_ns,
        attention_forward_backward_ns,
        baseline_forward_ns,
    }
}

/// All neural metrics for one kernel backend: solo forward/backward,
/// batched inference, and the DQN update modes.
struct NeuralMetrics {
    nn: NnForward,
    batched: BatchedInference,
    training: BatchedTraining,
}

fn measure_neural(iters: usize, backend: BackendRef) -> NeuralMetrics {
    NeuralMetrics {
        nn: measure_nn_forward(iters, backend),
        batched: measure_batched_inference(iters.max(20) / 4, 32, backend),
        training: measure_batched_training(iters.max(40) / 8, 32, backend),
    }
}

fn print_neural(m: &NeuralMetrics, iters: usize, backend: &str) {
    println!("nn_forward (paper_small topology, {iters} iters, {backend} backend):");
    println!(
        "  attention forward:          {:>10.0} ns/op",
        m.nn.attention_forward_ns
    );
    println!(
        "  attention forward+backward: {:>10.0} ns/op",
        m.nn.attention_forward_backward_ns
    );
    println!(
        "  baseline forward:           {:>10.0} ns/op",
        m.nn.baseline_forward_ns
    );
    println!(
        "batched_inference (paper_small topology, batch {}, {backend} backend):",
        m.batched.batch
    );
    println!(
        "  attention: {:>8.0} -> {:>8.0} ns/state ({:.2}x)",
        m.batched.attention_per_state_ns,
        m.batched.attention_batched_ns_per_state,
        m.batched.attention_speedup()
    );
    println!(
        "  baseline:  {:>8.0} -> {:>8.0} ns/state ({:.2}x)",
        m.batched.baseline_per_state_ns,
        m.batched.baseline_batched_ns_per_state,
        m.batched.baseline_speedup()
    );
    println!(
        "batched_training (paper_small topology, minibatch {}, {backend} backend):",
        m.training.batch
    );
    println!(
        "  attention update: {:>10.0} -> {:>10.0} ns ({:.2}x)",
        m.training.attention_serial_update_ns,
        m.training.attention_batched_update_ns,
        m.training.attention_speedup()
    );
    println!(
        "  baseline update:  {:>10.0} -> {:>10.0} ns ({:.2}x)",
        m.training.baseline_serial_update_ns,
        m.training.baseline_batched_update_ns,
        m.training.baseline_speedup()
    );
}

/// Measures the neural metrics under the SIMD backend when it is compiled
/// in and is not already the primary backend, for the `simd_kernels`
/// snapshot block (also printed to stdout). Returns an empty string when
/// the feature is off or SIMD is already the primary backend.
fn simd_kernels_block(iters: usize, primary: &str) -> String {
    #[cfg(feature = "backend-simd")]
    {
        if primary != "simd" {
            let simd = neural::backend::backend_by_name("simd").expect("simd compiled in");
            let m = measure_neural(iters, simd);
            print_neural(&m, iters, "simd");
            return format!(
                ",\n  \"simd_kernels\": {{\n    \"simd_attention_forward_ns_per_op\": {af:.0},\n    \"simd_attention_forward_backward_ns_per_op\": {afb:.0},\n    \"simd_baseline_forward_ns_per_op\": {bf:.0},\n    \"simd_attention_per_state_ns\": {aps:.0},\n    \"simd_attention_batched_ns_per_state\": {abs:.0},\n    \"simd_attention_batched_speedup\": {asp:.3},\n    \"simd_baseline_batched_ns_per_state\": {bbs:.0},\n    \"simd_attention_batched_update_ns\": {tab:.0},\n    \"simd_attention_update_speedup\": {tasp:.3},\n    \"simd_baseline_batched_update_ns\": {tbb:.0}\n  }}",
                af = m.nn.attention_forward_ns,
                afb = m.nn.attention_forward_backward_ns,
                bf = m.nn.baseline_forward_ns,
                aps = m.batched.attention_per_state_ns,
                abs = m.batched.attention_batched_ns_per_state,
                asp = m.batched.attention_speedup(),
                bbs = m.batched.baseline_batched_ns_per_state,
                tab = m.training.attention_batched_update_ns,
                tasp = m.training.attention_speedup(),
                tbb = m.training.baseline_batched_update_ns,
            );
        }
        String::new()
    }
    #[cfg(not(feature = "backend-simd"))]
    {
        let _ = (iters, primary);
        String::new()
    }
}

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let quick = args.iter().any(|a| a == "--quick");
    let value_of = |flag: &str| {
        args.iter()
            .position(|a| a == flag)
            .and_then(|i| args.get(i + 1))
            .cloned()
    };
    let out_path = value_of("--out");
    if let Some(name) = value_of("--backend") {
        let be = neural::backend::backend_by_name(&name)
            .unwrap_or_else(|e| panic!("--backend {name}: {e}"));
        neural::backend::set_default_backend(be);
    }
    let backend = neural::backend::default_backend();

    let (episodes, hours, iters) = if quick { (8, 250, 100) } else { (32, 500, 400) };

    println!(
        "== perf_smoke ({}, {} backend) ==",
        if quick { "quick" } else { "full" },
        backend.name()
    );
    let sim = measure_sim_throughput(episodes, hours);
    println!(
        "sim_throughput: {} episodes x {} h (playbook, small topology)",
        sim.episodes, sim.hours
    );
    println!("  serial:   {:>12.0} steps/sec", sim.serial_steps_per_sec);
    if sim.threads == 1 {
        // A 1-thread "parallel" run only measures pool overhead; reporting
        // it as a speedup would poison the trajectory (BENCH_6's 0.856x).
        println!(
            "  parallel: {:>12.0} steps/sec (1 thread; speedup not meaningful, omitted)",
            sim.parallel_steps_per_sec
        );
    } else {
        println!(
            "  parallel: {:>12.0} steps/sec ({} threads, {:.2}x)",
            sim.parallel_steps_per_sec,
            sim.threads,
            sim.parallel_steps_per_sec / sim.serial_steps_per_sec
        );
    }

    // Same horizon at both scales: past ~60 h even the playbook loses
    // containment on the 1000-host world and activity saturates toward
    // world size, which would measure the saturated regime instead of the
    // activity-bounded one the sparse paths target (and make quick and
    // full snapshots incomparable on this metric). Scale changes only how
    // many episodes the per-step cost is averaged over.
    let xl_hours = 60;
    let xl = measure_xl_throughput(xl_hours, if quick { 1_200 } else { 12_000 });
    println!(
        "xl_topology ({}, {} nodes + {} PLCs, {} h, env+filter+encode):",
        xl.scenario, xl.nodes, xl.plcs, xl.hours
    );
    println!(
        "  dense reference: {:>9.0} steps/sec",
        xl.dense_steps_per_sec
    );
    println!(
        "  sparse:          {:>9.0} steps/sec ({:.2}x)",
        xl.sparse_steps_per_sec,
        xl.sparse_speedup()
    );
    println!(
        "  small reference: {:>9.0} steps/sec ({} nodes)",
        xl.small_steps_per_sec, xl.small_nodes
    );
    println!(
        "  per-host scaling exponent: {:.3} (1.0 = linear in world size)",
        xl.per_host_scaling()
    );
    println!("  autoscale plan:  {}", xl.plan.describe());

    let primary = measure_neural(iters, backend);
    print_neural(&primary, iters, backend.name());
    let simd_block = simd_kernels_block(iters, backend.name());

    let speedup_json = if sim.threads == 1 {
        "null".to_string()
    } else {
        format!(
            "{:.3}",
            sim.parallel_steps_per_sec / sim.serial_steps_per_sec
        )
    };
    let json = format!(
        "{{\n  \"schema\": \"acso-bench-smoke/v5\",\n  \"mode\": \"{mode}\",\n  \"backend\": \"{backend}\",\n  \"threads\": {threads},\n  \"sim_throughput\": {{\n    \"policy\": \"Playbook\",\n    \"topology\": \"paper_small\",\n    \"episodes\": {episodes},\n    \"hours_per_episode\": {hours},\n    \"serial_steps_per_sec\": {serial:.0},\n    \"parallel_steps_per_sec\": {parallel:.0},\n    \"parallel_speedup\": {speedup}\n  }},\n  \"xl_topology\": {{\n    \"xl_scenario\": \"{xl_scenario}\",\n    \"xl_nodes\": {xl_nodes},\n    \"xl_plcs\": {xl_plcs},\n    \"xl_hours\": {xl_hours},\n    \"xl_sparse_steps_per_sec\": {xl_sparse:.0},\n    \"xl_dense_reference_steps_per_sec\": {xl_dense:.0},\n    \"xl_sparse_speedup\": {xl_speedup:.3},\n    \"xl_small_reference_nodes\": {xl_small_nodes},\n    \"xl_small_reference_steps_per_sec\": {xl_small:.0},\n    \"xl_per_host_scaling\": {xl_scaling:.3},\n    \"autoscale_engine\": \"{auto_engine}\",\n    \"autoscale_lanes\": {auto_lanes},\n    \"autoscale_threads\": {auto_threads}\n  }},\n  \"nn_forward\": {{\n    \"topology\": \"paper_small\",\n    \"iters\": {iters},\n    \"attention_forward_ns_per_op\": {af:.0},\n    \"attention_forward_backward_ns_per_op\": {afb:.0},\n    \"baseline_forward_ns_per_op\": {bf:.0}\n  }},\n  \"batched_inference\": {{\n    \"topology\": \"paper_small\",\n    \"batch\": {batch},\n    \"attention_per_state_ns\": {aps:.0},\n    \"attention_batched_ns_per_state\": {abs:.0},\n    \"attention_batched_speedup\": {asp:.3},\n    \"baseline_per_state_ns\": {bps:.0},\n    \"baseline_batched_ns_per_state\": {bbs:.0},\n    \"baseline_batched_speedup\": {bsp:.3}\n  }},\n  \"batched_training\": {{\n    \"topology\": \"paper_small\",\n    \"minibatch\": {tbatch},\n    \"attention_batched_update_ns\": {tab:.0},\n    \"attention_serial_update_ns\": {tas:.0},\n    \"attention_update_speedup\": {tasp:.3},\n    \"baseline_batched_update_ns\": {tbb:.0},\n    \"baseline_serial_update_ns\": {tbs:.0},\n    \"baseline_update_speedup\": {tbsp:.3}\n  }}{simd_block}\n}}\n",
        mode = if quick { "quick" } else { "full" },
        backend = backend.name(),
        threads = sim.threads,
        episodes = sim.episodes,
        hours = sim.hours,
        serial = sim.serial_steps_per_sec,
        parallel = sim.parallel_steps_per_sec,
        speedup = speedup_json,
        xl_scenario = xl.scenario,
        xl_nodes = xl.nodes,
        xl_plcs = xl.plcs,
        xl_hours = xl.hours,
        xl_sparse = xl.sparse_steps_per_sec,
        xl_dense = xl.dense_steps_per_sec,
        xl_speedup = xl.sparse_speedup(),
        xl_small_nodes = xl.small_nodes,
        xl_small = xl.small_steps_per_sec,
        xl_scaling = xl.per_host_scaling(),
        auto_engine = xl.plan.describe(),
        auto_lanes = xl
            .plan
            .lanes()
            .map_or("null".to_string(), |l| l.to_string()),
        auto_threads = xl.plan.threads,
        iters = iters,
        af = primary.nn.attention_forward_ns,
        afb = primary.nn.attention_forward_backward_ns,
        bf = primary.nn.baseline_forward_ns,
        batch = primary.batched.batch,
        aps = primary.batched.attention_per_state_ns,
        abs = primary.batched.attention_batched_ns_per_state,
        asp = primary.batched.attention_speedup(),
        bps = primary.batched.baseline_per_state_ns,
        bbs = primary.batched.baseline_batched_ns_per_state,
        bsp = primary.batched.baseline_speedup(),
        tbatch = primary.training.batch,
        tab = primary.training.attention_batched_update_ns,
        tas = primary.training.attention_serial_update_ns,
        tasp = primary.training.attention_speedup(),
        tbb = primary.training.baseline_batched_update_ns,
        tbs = primary.training.baseline_serial_update_ns,
        tbsp = primary.training.baseline_speedup(),
        simd_block = simd_block,
    );
    if let Some(path) = out_path {
        std::fs::write(&path, &json).expect("failed to write benchmark snapshot");
        println!("wrote {path}");
    } else {
        println!("{json}");
    }
}
