//! Perf-trajectory smoke benchmark: measures simulator rollout throughput
//! (serial vs parallel vs lockstep-batched), neural forward/backward cost,
//! batched-inference speedup, and the batched-vs-serial DQN update cost,
//! and emits a `BENCH_<n>.json` snapshot so the repository tracks
//! performance across PRs (summarise the trajectory with the
//! `bench_compare` binary).
//!
//! Usage:
//!
//! ```sh
//! cargo run --release -p acso-bench --bin perf_smoke -- \
//!     [--quick] [--out BENCH_x.json] [--backend reference|simd]
//! ```
//!
//! `--quick` shrinks the workload for CI; `--out` writes the JSON snapshot
//! (stdout always gets a human-readable summary). `ACSO_THREADS` pins the
//! parallel worker count. `--backend` (or `ACSO_BACKEND`) selects the kernel
//! backend the flat snapshot metrics are measured with; the snapshot is
//! tagged with the choice (schema v4). When the binary is compiled with
//! `--features backend-simd` and the primary backend is the reference one,
//! the neural metrics are *also* measured under the SIMD backend and
//! recorded in a `simd_kernels` block, so one snapshot carries the
//! before/after pair.

use acso_bench::prefilled_update_agent;
use acso_core::agent::{AttentionQNet, BaselineConvQNet, QNetwork, UpdateMode};
use acso_core::baselines::PlaybookPolicy;
use acso_core::features::NodeFeatureEncoder;
use acso_core::rollout::{rollout, rollout_serial, RolloutPlan, SyncBatchEngine};
use acso_core::{ActionSpace, DefenderPolicy, StateFeatures};
use dbn::learn::{learn_model, LearnConfig};
use dbn::DbnFilter;
use ics_net::TopologySpec;
use ics_sim::{IcsEnvironment, SimConfig};
use neural::backend::BackendRef;
use std::time::Instant;

struct SimThroughput {
    episodes: usize,
    hours: u64,
    serial_steps_per_sec: f64,
    parallel_steps_per_sec: f64,
    threads: usize,
}

fn measure_sim_throughput(episodes: usize, hours: u64) -> SimThroughput {
    let sim = SimConfig::small().with_max_time(hours);
    let serial_plan = RolloutPlan::new(sim.clone(), episodes, 7).with_threads(1);
    let parallel_plan = RolloutPlan::new(sim, episodes, 7);
    let total_steps = (episodes as u64 * hours) as f64;

    // Warm-up (page in code and allocator state), then timed runs.
    let _ = rollout_serial(&mut PlaybookPolicy::new(), &serial_plan);
    let start = Instant::now();
    let serial = rollout_serial(&mut PlaybookPolicy::new(), &serial_plan);
    let serial_time = start.elapsed();
    let start = Instant::now();
    let parallel = rollout(&parallel_plan, || Box::new(PlaybookPolicy::new()));
    let parallel_time = start.elapsed();
    assert_eq!(serial, parallel, "parallel rollout must be bit-identical");
    let batched = SyncBatchEngine::new(16).rollout(&parallel_plan, &|| {
        Box::new(PlaybookPolicy::new()) as Box<dyn DefenderPolicy>
    });
    assert_eq!(serial, batched, "batched rollout must be bit-identical");

    SimThroughput {
        episodes,
        hours,
        serial_steps_per_sec: total_steps / serial_time.as_secs_f64(),
        parallel_steps_per_sec: total_steps / parallel_time.as_secs_f64(),
        threads: parallel_plan.threads,
    }
}

fn features_for(spec: TopologySpec) -> (StateFeatures, ActionSpace) {
    let sim = SimConfig {
        topology: spec,
        ..SimConfig::tiny()
    }
    .with_max_time(50);
    let model = learn_model(&LearnConfig {
        episodes: 1,
        seed: 0,
        sim: sim.clone(),
    });
    let mut env = IcsEnvironment::new(sim);
    let obs = env.reset();
    let encoder = NodeFeatureEncoder::new(env.topology());
    let filter = DbnFilter::new(model, env.topology().node_count());
    (
        encoder.encode(&obs, &filter),
        ActionSpace::new(env.topology()),
    )
}

struct BatchedInference {
    batch: usize,
    attention_per_state_ns: f64,
    attention_batched_ns_per_state: f64,
    baseline_per_state_ns: f64,
    baseline_batched_ns_per_state: f64,
}

impl BatchedInference {
    fn attention_speedup(&self) -> f64 {
        self.attention_per_state_ns / self.attention_batched_ns_per_state
    }

    fn baseline_speedup(&self) -> f64 {
        self.baseline_per_state_ns / self.baseline_batched_ns_per_state
    }
}

/// Measures per-state inference cost with and without batching: `batch`
/// states answered by one `q_values_batch` call versus `batch` solo
/// `q_values` calls (same states, same outputs to the backend's tolerance).
fn measure_batched_inference(iters: usize, batch: usize, backend: BackendRef) -> BatchedInference {
    let (states, space) = acso_bench::episode_states(TopologySpec::paper_small(), batch);
    let refs: Vec<&StateFeatures> = states.iter().collect();
    let mut attention = AttentionQNet::new(space.clone(), 0);
    attention.set_kernel_backend(backend);
    let mut baseline = BaselineConvQNet::new(space, 0);
    baseline.set_kernel_backend(backend);

    let per_state = |f: &mut dyn FnMut()| {
        f(); // warm-up (fills the scratch pools)
        let start = Instant::now();
        for _ in 0..iters {
            f();
        }
        start.elapsed().as_nanos() as f64 / (iters * batch) as f64
    };

    let attention_per_state_ns = per_state(&mut || {
        for f in &states {
            std::hint::black_box(attention.q_values(f));
        }
    });
    let attention_batched_ns_per_state = per_state(&mut || {
        std::hint::black_box(attention.q_values_batch(&refs));
    });
    let baseline_per_state_ns = per_state(&mut || {
        for f in &states {
            std::hint::black_box(baseline.q_values(f));
        }
    });
    let baseline_batched_ns_per_state = per_state(&mut || {
        std::hint::black_box(baseline.q_values_batch(&refs));
    });

    BatchedInference {
        batch,
        attention_per_state_ns,
        attention_batched_ns_per_state,
        baseline_per_state_ns,
        baseline_batched_ns_per_state,
    }
}

struct BatchedTraining {
    batch: usize,
    attention_batched_update_ns: f64,
    attention_serial_update_ns: f64,
    baseline_batched_update_ns: f64,
    baseline_serial_update_ns: f64,
}

impl BatchedTraining {
    fn attention_speedup(&self) -> f64 {
        self.attention_serial_update_ns / self.attention_batched_update_ns
    }

    fn baseline_speedup(&self) -> f64 {
        self.baseline_serial_update_ns / self.baseline_batched_update_ns
    }
}

/// Measures one full DQN gradient update (bootstrap, forward, backward,
/// optimizer step) per mode: the batched stacked pass versus the
/// per-sample solo-loop reference. The two agree to the backend's
/// tolerance, so the ratio is pure implementation speedup.
fn measure_batched_training(iters: usize, batch: usize, backend: BackendRef) -> BatchedTraining {
    let mut attention = prefilled_update_agent(|s| AttentionQNet::new(s, 0), batch);
    attention.network_mut().set_kernel_backend(backend);
    let mut baseline = prefilled_update_agent(|s| BaselineConvQNet::new(s, 0), batch);
    baseline.network_mut().set_kernel_backend(backend);

    let per_update = |f: &mut dyn FnMut()| {
        f(); // warm-up (fills the scratch pools)
        let start = Instant::now();
        for _ in 0..iters {
            f();
        }
        start.elapsed().as_nanos() as f64 / iters as f64
    };

    attention.set_update_mode(UpdateMode::Batched);
    let attention_batched_update_ns = per_update(&mut || {
        std::hint::black_box(attention.maybe_train().expect("update"));
    });
    attention.set_update_mode(UpdateMode::Serial);
    let attention_serial_update_ns = per_update(&mut || {
        std::hint::black_box(attention.maybe_train().expect("update"));
    });
    baseline.set_update_mode(UpdateMode::Batched);
    let baseline_batched_update_ns = per_update(&mut || {
        std::hint::black_box(baseline.maybe_train().expect("update"));
    });
    baseline.set_update_mode(UpdateMode::Serial);
    let baseline_serial_update_ns = per_update(&mut || {
        std::hint::black_box(baseline.maybe_train().expect("update"));
    });

    BatchedTraining {
        batch,
        attention_batched_update_ns,
        attention_serial_update_ns,
        baseline_batched_update_ns,
        baseline_serial_update_ns,
    }
}

struct NnForward {
    attention_forward_ns: f64,
    attention_forward_backward_ns: f64,
    baseline_forward_ns: f64,
}

fn measure_nn_forward(iters: usize, backend: BackendRef) -> NnForward {
    let (features, space) = features_for(TopologySpec::paper_small());
    let mut attention = AttentionQNet::new(space.clone(), 0);
    attention.set_kernel_backend(backend);
    let mut baseline = BaselineConvQNet::new(space, 0);
    baseline.set_kernel_backend(backend);

    let time_per_op = |f: &mut dyn FnMut()| {
        f(); // warm-up (fills the scratch pools)
        let start = Instant::now();
        for _ in 0..iters {
            f();
        }
        start.elapsed().as_nanos() as f64 / iters as f64
    };

    let attention_forward_ns = time_per_op(&mut || {
        std::hint::black_box(attention.q_values(&features));
    });
    let attention_forward_backward_ns = time_per_op(&mut || {
        let q = attention.q_values(&features);
        let mut grad = vec![0.0f32; q.len()];
        grad[1] = 1.0;
        attention.backward(&grad);
        std::hint::black_box(q);
    });
    let baseline_forward_ns = time_per_op(&mut || {
        std::hint::black_box(baseline.q_values(&features));
    });

    NnForward {
        attention_forward_ns,
        attention_forward_backward_ns,
        baseline_forward_ns,
    }
}

/// All neural metrics for one kernel backend: solo forward/backward,
/// batched inference, and the DQN update modes.
struct NeuralMetrics {
    nn: NnForward,
    batched: BatchedInference,
    training: BatchedTraining,
}

fn measure_neural(iters: usize, backend: BackendRef) -> NeuralMetrics {
    NeuralMetrics {
        nn: measure_nn_forward(iters, backend),
        batched: measure_batched_inference(iters.max(20) / 4, 32, backend),
        training: measure_batched_training(iters.max(40) / 8, 32, backend),
    }
}

fn print_neural(m: &NeuralMetrics, iters: usize, backend: &str) {
    println!("nn_forward (paper_small topology, {iters} iters, {backend} backend):");
    println!(
        "  attention forward:          {:>10.0} ns/op",
        m.nn.attention_forward_ns
    );
    println!(
        "  attention forward+backward: {:>10.0} ns/op",
        m.nn.attention_forward_backward_ns
    );
    println!(
        "  baseline forward:           {:>10.0} ns/op",
        m.nn.baseline_forward_ns
    );
    println!(
        "batched_inference (paper_small topology, batch {}, {backend} backend):",
        m.batched.batch
    );
    println!(
        "  attention: {:>8.0} -> {:>8.0} ns/state ({:.2}x)",
        m.batched.attention_per_state_ns,
        m.batched.attention_batched_ns_per_state,
        m.batched.attention_speedup()
    );
    println!(
        "  baseline:  {:>8.0} -> {:>8.0} ns/state ({:.2}x)",
        m.batched.baseline_per_state_ns,
        m.batched.baseline_batched_ns_per_state,
        m.batched.baseline_speedup()
    );
    println!(
        "batched_training (paper_small topology, minibatch {}, {backend} backend):",
        m.training.batch
    );
    println!(
        "  attention update: {:>10.0} -> {:>10.0} ns ({:.2}x)",
        m.training.attention_serial_update_ns,
        m.training.attention_batched_update_ns,
        m.training.attention_speedup()
    );
    println!(
        "  baseline update:  {:>10.0} -> {:>10.0} ns ({:.2}x)",
        m.training.baseline_serial_update_ns,
        m.training.baseline_batched_update_ns,
        m.training.baseline_speedup()
    );
}

/// Measures the neural metrics under the SIMD backend when it is compiled
/// in and is not already the primary backend, for the `simd_kernels`
/// snapshot block (also printed to stdout). Returns an empty string when
/// the feature is off or SIMD is already the primary backend.
fn simd_kernels_block(iters: usize, primary: &str) -> String {
    #[cfg(feature = "backend-simd")]
    {
        if primary != "simd" {
            let simd = neural::backend::backend_by_name("simd").expect("simd compiled in");
            let m = measure_neural(iters, simd);
            print_neural(&m, iters, "simd");
            return format!(
                ",\n  \"simd_kernels\": {{\n    \"simd_attention_forward_ns_per_op\": {af:.0},\n    \"simd_attention_forward_backward_ns_per_op\": {afb:.0},\n    \"simd_baseline_forward_ns_per_op\": {bf:.0},\n    \"simd_attention_per_state_ns\": {aps:.0},\n    \"simd_attention_batched_ns_per_state\": {abs:.0},\n    \"simd_attention_batched_speedup\": {asp:.3},\n    \"simd_baseline_batched_ns_per_state\": {bbs:.0},\n    \"simd_attention_batched_update_ns\": {tab:.0},\n    \"simd_attention_update_speedup\": {tasp:.3},\n    \"simd_baseline_batched_update_ns\": {tbb:.0}\n  }}",
                af = m.nn.attention_forward_ns,
                afb = m.nn.attention_forward_backward_ns,
                bf = m.nn.baseline_forward_ns,
                aps = m.batched.attention_per_state_ns,
                abs = m.batched.attention_batched_ns_per_state,
                asp = m.batched.attention_speedup(),
                bbs = m.batched.baseline_batched_ns_per_state,
                tab = m.training.attention_batched_update_ns,
                tasp = m.training.attention_speedup(),
                tbb = m.training.baseline_batched_update_ns,
            );
        }
        String::new()
    }
    #[cfg(not(feature = "backend-simd"))]
    {
        let _ = (iters, primary);
        String::new()
    }
}

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let quick = args.iter().any(|a| a == "--quick");
    let value_of = |flag: &str| {
        args.iter()
            .position(|a| a == flag)
            .and_then(|i| args.get(i + 1))
            .cloned()
    };
    let out_path = value_of("--out");
    if let Some(name) = value_of("--backend") {
        let be = neural::backend::backend_by_name(&name)
            .unwrap_or_else(|e| panic!("--backend {name}: {e}"));
        neural::backend::set_default_backend(be);
    }
    let backend = neural::backend::default_backend();

    let (episodes, hours, iters) = if quick { (8, 250, 100) } else { (32, 500, 400) };

    println!(
        "== perf_smoke ({}, {} backend) ==",
        if quick { "quick" } else { "full" },
        backend.name()
    );
    let sim = measure_sim_throughput(episodes, hours);
    println!(
        "sim_throughput: {} episodes x {} h (playbook, small topology)",
        sim.episodes, sim.hours
    );
    println!("  serial:   {:>12.0} steps/sec", sim.serial_steps_per_sec);
    if sim.threads == 1 {
        // A 1-thread "parallel" run only measures pool overhead; reporting
        // it as a speedup would poison the trajectory (BENCH_6's 0.856x).
        println!(
            "  parallel: {:>12.0} steps/sec (1 thread; speedup not meaningful, omitted)",
            sim.parallel_steps_per_sec
        );
    } else {
        println!(
            "  parallel: {:>12.0} steps/sec ({} threads, {:.2}x)",
            sim.parallel_steps_per_sec,
            sim.threads,
            sim.parallel_steps_per_sec / sim.serial_steps_per_sec
        );
    }

    let primary = measure_neural(iters, backend);
    print_neural(&primary, iters, backend.name());
    let simd_block = simd_kernels_block(iters, backend.name());

    let speedup_json = if sim.threads == 1 {
        "null".to_string()
    } else {
        format!(
            "{:.3}",
            sim.parallel_steps_per_sec / sim.serial_steps_per_sec
        )
    };
    let json = format!(
        "{{\n  \"schema\": \"acso-bench-smoke/v4\",\n  \"mode\": \"{mode}\",\n  \"backend\": \"{backend}\",\n  \"threads\": {threads},\n  \"sim_throughput\": {{\n    \"policy\": \"Playbook\",\n    \"topology\": \"paper_small\",\n    \"episodes\": {episodes},\n    \"hours_per_episode\": {hours},\n    \"serial_steps_per_sec\": {serial:.0},\n    \"parallel_steps_per_sec\": {parallel:.0},\n    \"parallel_speedup\": {speedup}\n  }},\n  \"nn_forward\": {{\n    \"topology\": \"paper_small\",\n    \"iters\": {iters},\n    \"attention_forward_ns_per_op\": {af:.0},\n    \"attention_forward_backward_ns_per_op\": {afb:.0},\n    \"baseline_forward_ns_per_op\": {bf:.0}\n  }},\n  \"batched_inference\": {{\n    \"topology\": \"paper_small\",\n    \"batch\": {batch},\n    \"attention_per_state_ns\": {aps:.0},\n    \"attention_batched_ns_per_state\": {abs:.0},\n    \"attention_batched_speedup\": {asp:.3},\n    \"baseline_per_state_ns\": {bps:.0},\n    \"baseline_batched_ns_per_state\": {bbs:.0},\n    \"baseline_batched_speedup\": {bsp:.3}\n  }},\n  \"batched_training\": {{\n    \"topology\": \"paper_small\",\n    \"minibatch\": {tbatch},\n    \"attention_batched_update_ns\": {tab:.0},\n    \"attention_serial_update_ns\": {tas:.0},\n    \"attention_update_speedup\": {tasp:.3},\n    \"baseline_batched_update_ns\": {tbb:.0},\n    \"baseline_serial_update_ns\": {tbs:.0},\n    \"baseline_update_speedup\": {tbsp:.3}\n  }}{simd_block}\n}}\n",
        mode = if quick { "quick" } else { "full" },
        backend = backend.name(),
        threads = sim.threads,
        episodes = sim.episodes,
        hours = sim.hours,
        serial = sim.serial_steps_per_sec,
        parallel = sim.parallel_steps_per_sec,
        speedup = speedup_json,
        iters = iters,
        af = primary.nn.attention_forward_ns,
        afb = primary.nn.attention_forward_backward_ns,
        bf = primary.nn.baseline_forward_ns,
        batch = primary.batched.batch,
        aps = primary.batched.attention_per_state_ns,
        abs = primary.batched.attention_batched_ns_per_state,
        asp = primary.batched.attention_speedup(),
        bps = primary.batched.baseline_per_state_ns,
        bbs = primary.batched.baseline_batched_ns_per_state,
        bsp = primary.batched.baseline_speedup(),
        tbatch = primary.training.batch,
        tab = primary.training.attention_batched_update_ns,
        tas = primary.training.attention_serial_update_ns,
        tasp = primary.training.attention_speedup(),
        tbb = primary.training.baseline_batched_update_ns,
        tbs = primary.training.baseline_serial_update_ns,
        tbsp = primary.training.baseline_speedup(),
        simd_block = simd_block,
    );
    if let Some(path) = out_path {
        std::fs::write(&path, &json).expect("failed to write benchmark snapshot");
        println!("wrote {path}");
    } else {
        println!("{json}");
    }
}
