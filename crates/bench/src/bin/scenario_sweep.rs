//! Evaluates the trained ACSO and the three baselines across the whole
//! scenario registry and prints a per-scenario results table.
//!
//! Usage:
//!
//! ```sh
//! cargo run --release -p acso-bench --bin scenario_sweep -- \
//!     [--smoke|--quick|--paper] [--scenario NAME]... [--toml FILE]... \
//!     [--gen-seed N]... [--out RESULTS.json] [--list]
//! ```
//!
//! * `--scenario NAME` restricts the sweep to the named scenarios;
//! * `--toml FILE` registers an extra scenario from a TOML file;
//! * `--gen-seed N` registers the procedurally generated scenario `seed-N`
//!   (Mersenne-prime hash seed streams — reproducible from the id alone);
//! * `--out FILE` additionally writes the results as JSON;
//! * `--batch N` evaluates through the lockstep batched engine with `N`
//!   lanes (same as setting `ACSO_BATCH=N`);
//! * `--list` prints the registry catalog and exits.
//!
//! At `--smoke` scale the sweep is run once serially and then re-run across
//! an engine matrix — worker threads 1 and 4, batched engine off / 1 lane /
//! 16 lanes — and the binary fails unless every transcript is bit-identical,
//! which is the determinism contract CI enforces.

use acso_bench::{apply_batch_flag, print_header, Scale};
use acso_core::experiments::{scenario_sweep, ScenarioSweepResult, ScenarioSweepScale};
use acso_core::scenario::ScenarioRegistry;
use ics_sim::Scenario;
use std::fmt::Write as _;

fn sweep_scale(scale: Scale) -> ScenarioSweepScale {
    match scale {
        Scale::Smoke => ScenarioSweepScale::smoke(),
        Scale::Quick => ScenarioSweepScale::quick(),
        Scale::Paper => ScenarioSweepScale::paper(),
    }
}

/// Escapes a string for inclusion in a JSON string literal (names and tags
/// may come from user TOML files).
fn json_str(s: &str) -> String {
    let mut out = String::with_capacity(s.len() + 2);
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
            c => out.push(c),
        }
    }
    out.push('"');
    out
}

fn results_json(result: &ScenarioSweepResult, threads: usize) -> String {
    let mut out = String::new();
    out.push_str("{\n  \"schema\": \"acso-scenario-sweep/v1\",\n");
    let _ = writeln!(out, "  \"threads\": {threads},");
    out.push_str("  \"scenarios\": [\n");
    for (i, row) in result.rows.iter().enumerate() {
        let tags: Vec<String> = row.tags.iter().map(|t| json_str(t)).collect();
        let _ = writeln!(
            out,
            "    {{\n      \"scenario\": {},\n      \"tags\": [{}],\n      \"policies\": [",
            json_str(&row.scenario),
            tags.join(", ")
        );
        for (j, eval) in row.evaluations.iter().enumerate() {
            let s = &eval.summary;
            let _ = write!(
                out,
                "        {{\"policy\": {}, \"episodes\": {}, \
                 \"discounted_return\": {:.3}, \"discounted_return_stderr\": {:.3}, \
                 \"final_plcs_offline\": {:.3}, \"avg_it_cost\": {:.4}, \
                 \"avg_nodes_compromised\": {:.3}}}",
                json_str(&eval.policy),
                s.episodes,
                s.discounted_return.mean,
                s.discounted_return.std_err,
                s.final_plcs_offline.mean,
                s.average_it_cost.mean,
                s.average_nodes_compromised.mean,
            );
            out.push_str(if j + 1 < row.evaluations.len() {
                ",\n"
            } else {
                "\n"
            });
        }
        out.push_str("      ]\n    }");
        out.push_str(if i + 1 < result.rows.len() {
            ",\n"
        } else {
            "\n"
        });
    }
    out.push_str("  ]\n}\n");
    out
}

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let scale = Scale::from_args(args.iter().cloned());
    apply_batch_flag(args.iter().cloned());

    let mut registry = ScenarioRegistry::builtin();
    let mut wanted: Vec<String> = Vec::new();
    let mut out_path: Option<String> = None;
    let mut list_only = false;
    let mut i = 0;
    while i < args.len() {
        let next = |i: usize| {
            args.get(i + 1)
                .unwrap_or_else(|| panic!("{} needs a value", args[i]))
                .clone()
        };
        match args[i].as_str() {
            "--scenario" => {
                wanted.push(next(i));
                i += 1;
            }
            "--toml" => {
                let path = next(i);
                let text = std::fs::read_to_string(&path)
                    .unwrap_or_else(|e| panic!("cannot read {path}: {e}"));
                let scenario = Scenario::from_toml(&text)
                    .unwrap_or_else(|e| panic!("cannot parse {path}: {e}"));
                registry
                    .register(scenario)
                    .unwrap_or_else(|e| panic!("cannot register {path}: {e}"));
                i += 1;
            }
            "--gen-seed" => {
                let seed: u64 = next(i).parse().expect("--gen-seed needs a u64");
                registry
                    .register_seeded(seed)
                    .unwrap_or_else(|e| panic!("cannot register seed {seed}: {e}"));
                i += 1;
            }
            "--out" => {
                out_path = Some(next(i));
                i += 1;
            }
            "--list" => list_only = true,
            _ => {}
        }
        i += 1;
    }
    if !wanted.is_empty() {
        registry.retain_named(&wanted);
        assert!(
            !registry.is_empty(),
            "no scenario matched --scenario filters {wanted:?}"
        );
    } else {
        // Extra-large scenarios (tag "xl", ~1000 hosts) only sweep when
        // named explicitly: at default scales they would dominate the
        // sweep's wall-clock many times over.
        registry.retain_standard();
    }

    if list_only {
        println!("{} scenarios registered:", registry.len());
        for s in &registry {
            println!("  {:<16} [{}] {}", s.name, s.tags.join(", "), s.description);
        }
        return;
    }

    print_header("Scenario sweep — registry-wide robustness", scale);
    println!(
        "Sweeping {} scenarios: {}",
        registry.len(),
        registry.names().join(", ")
    );

    let start = std::time::Instant::now();
    let scale_cfg = sweep_scale(scale);
    let result = if scale == Scale::Smoke {
        // The determinism contract: the whole sweep (training included) must
        // be bit-identical for any worker-thread count and any engine. Run
        // the serial reference, then the engine matrix — episode-parallel
        // with 4 workers, and the lockstep batched engine at 1 and 16 lanes
        // — and fail on any transcript divergence.
        let prev_threads = std::env::var(acso_runtime::THREADS_ENV_VAR).ok();
        let prev_batch = std::env::var(acso_runtime::BATCH_ENV_VAR).ok();
        let run_with = |threads: &str, batch: Option<&str>| {
            std::env::set_var(acso_runtime::THREADS_ENV_VAR, threads);
            match batch {
                Some(lanes) => std::env::set_var(acso_runtime::BATCH_ENV_VAR, lanes),
                None => std::env::remove_var(acso_runtime::BATCH_ENV_VAR),
            }
            scenario_sweep(&registry, &scale_cfg)
        };
        let serial = run_with("1", None);
        for (threads, batch) in [("4", None), ("1", Some("1")), ("4", Some("16"))] {
            let other = run_with(threads, batch);
            assert_eq!(
                serial,
                other,
                "scenario sweep must be bit-identical for ACSO_THREADS={threads}, ACSO_BATCH={}",
                batch.unwrap_or("off")
            );
        }
        let restore = |var: &str, value: Option<String>| match value {
            Some(value) => std::env::set_var(var, value),
            None => std::env::remove_var(var),
        };
        restore(acso_runtime::THREADS_ENV_VAR, prev_threads);
        restore(acso_runtime::BATCH_ENV_VAR, prev_batch);
        println!("determinism: threads 1/4 × batch off/1/16 bit-identical ✓");
        serial
    } else {
        scenario_sweep(&registry, &scale_cfg)
    };

    println!();
    println!("{}", result.format_table());
    println!("Total wall-clock: {:.1?}", start.elapsed());

    if let Some(path) = out_path {
        let json = results_json(&result, acso_runtime::available_threads());
        std::fs::write(&path, &json).expect("failed to write results JSON");
        println!("wrote {path}");
    }
}
