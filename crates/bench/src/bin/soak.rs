//! `soak`: the randomized invariant-sweep soak harness.
//!
//! Drives seed-generated scenario episodes through the full training stack,
//! asserting cross-module invariants after every environment step and
//! injecting checkpoint/restore-and-compare mid-run (see
//! [`acso_bench::soak`]). Exit codes: 0 on a clean run, 1 on an invariant
//! violation, 2 on a usage error, 3 when `--kill-at-op` simulated a crash
//! (rerun with the same `--state-dir` to resume).

use acso_bench::soak::{run_soak, run_xl_soak, SoakConfig, SoakOutcome};

const USAGE: &str = "usage: soak [options]

Randomized soak: seed-generated scenarios, every cross-module invariant
checked after every step, checkpoint/restore-and-compare injected mid-run.

options:
  --ops N           environment steps to drive (default 5000)
  --seed S          master seed (default 0)
  --scenarios K     seed-generated scenarios to sweep (default 2)
  --max-time T      episode-horizon cap (default 60)
  --restore-every N inject restore-and-compare ~1-in-N episodes (default 4; 0 off)
  --state-dir DIR   checkpoint per scenario; enables kill/resume
  --kill-at-op N    simulate a crash at op N (exit 3); needs --state-dir
  --smoke           small preset (400 ops, 1 scenario)
  --xl              sweep the extra-large (~1000-host) registry scenarios
                    instead: world model + playbook only, alert-conservation
                    and reachability invariants per step (honors --ops,
                    --seed, --max-time; other options ignored)
  --help            show this help
";

fn parse_args(args: &[String]) -> Result<(SoakConfig, bool), String> {
    let mut config = SoakConfig {
        ops: 5000,
        seed: 0,
        scenarios: 2,
        max_time: 60,
        restore_every: 4,
        state_dir: None,
        kill_at_op: None,
    };
    let mut xl = false;
    let mut iter = args.iter();
    while let Some(arg) = iter.next() {
        let mut number = |flag: &str| {
            iter.next()
                .and_then(|v| v.parse::<u64>().ok())
                .ok_or(format!("{flag} needs a non-negative integer"))
        };
        match arg.as_str() {
            "--ops" => config.ops = number("--ops")?,
            "--seed" => config.seed = number("--seed")?,
            "--scenarios" => config.scenarios = number("--scenarios")? as usize,
            "--max-time" => config.max_time = number("--max-time")?,
            "--restore-every" => config.restore_every = number("--restore-every")?,
            "--kill-at-op" => config.kill_at_op = Some(number("--kill-at-op")?),
            "--state-dir" => {
                config.state_dir = Some(
                    iter.next()
                        .filter(|p| !p.is_empty())
                        .ok_or("--state-dir needs a directory path")?
                        .into(),
                );
            }
            "--smoke" => {
                let keep = (config.state_dir.take(), config.kill_at_op.take());
                config = SoakConfig::smoke();
                (config.state_dir, config.kill_at_op) = keep;
            }
            "--xl" => xl = true,
            "--help" | "-h" => return Err(String::new()),
            other => return Err(format!("unknown argument `{other}`")),
        }
    }
    Ok((config, xl))
}

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let (config, xl) = match parse_args(&args) {
        Ok(parsed) => parsed,
        Err(message) => {
            if message.is_empty() {
                print!("{USAGE}");
                return;
            }
            eprintln!("soak: {message}");
            eprint!("{USAGE}");
            std::process::exit(2);
        }
    };

    if xl {
        println!(
            "soak: XL sweep — {} ops, seed {}, horizon {}",
            config.ops, config.seed, config.max_time
        );
        match run_xl_soak(config.ops, config.seed, config.max_time) {
            Ok(report) => {
                println!(
                    "soak: OK — {} ops, {} episodes, {} invariant checks on {}",
                    report.ops,
                    report.episodes,
                    report.checks,
                    report.scenario_names.join(", ")
                );
            }
            Err(violation) => {
                eprintln!("soak: INVARIANT VIOLATION: {violation}");
                std::process::exit(1);
            }
        }
        return;
    }

    println!(
        "soak: {} ops over {} scenario(s), seed {}, horizon {}",
        config.ops, config.scenarios, config.seed, config.max_time
    );
    match run_soak(&config) {
        Ok(SoakOutcome::Completed(report)) => {
            println!(
                "soak: OK — {} ops, {} episodes ({} resumed), {} invariant checks, {} restore injections",
                report.ops,
                report.episodes,
                report.resumed_episodes,
                report.checks,
                report.restores
            );
            println!(
                "soak: scenarios swept: {}",
                report.scenario_names.join(", ")
            );
        }
        Ok(SoakOutcome::Killed { at_op, checkpoint }) => {
            eprintln!(
                "soak: simulated crash at op {at_op}; checkpoint at {} — rerun with the same --state-dir to resume",
                checkpoint.display()
            );
            std::process::exit(3);
        }
        Err(violation) => {
            eprintln!("soak: INVARIANT VIOLATION: {violation}");
            std::process::exit(1);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn strings(args: &[&str]) -> Vec<String> {
        args.iter().map(|s| s.to_string()).collect()
    }

    #[test]
    fn args_configure_the_soak() {
        let (config, xl) = parse_args(&strings(&[
            "--ops",
            "100",
            "--seed",
            "7",
            "--scenarios",
            "3",
            "--max-time",
            "50",
            "--restore-every",
            "0",
            "--state-dir",
            "/tmp/soak-state",
            "--kill-at-op",
            "60",
        ]))
        .unwrap();
        assert_eq!(config.ops, 100);
        assert_eq!(config.seed, 7);
        assert_eq!(config.scenarios, 3);
        assert_eq!(config.max_time, 50);
        assert_eq!(config.restore_every, 0);
        assert_eq!(
            config.state_dir.as_deref().and_then(|p| p.to_str()),
            Some("/tmp/soak-state")
        );
        assert_eq!(config.kill_at_op, Some(60));
        assert!(!xl);
    }

    #[test]
    fn smoke_preset_keeps_state_flags() {
        let (config, _) = parse_args(&strings(&["--state-dir", "/tmp/x", "--smoke"])).unwrap();
        assert_eq!(config.ops, SoakConfig::smoke().ops);
        assert!(config.state_dir.is_some());
    }

    #[test]
    fn xl_flag_selects_the_xl_sweep() {
        let (config, xl) = parse_args(&strings(&["--xl", "--ops", "80"])).unwrap();
        assert!(xl);
        assert_eq!(config.ops, 80);
    }

    #[test]
    fn bad_args_are_rejected() {
        assert!(parse_args(&strings(&["--ops"])).is_err());
        assert!(parse_args(&strings(&["--ops", "x"])).is_err());
        assert!(parse_args(&strings(&["--state-dir"])).is_err());
        assert!(parse_args(&strings(&["--wat"])).is_err());
        assert_eq!(parse_args(&strings(&["--help"])).unwrap_err(), "");
    }
}
