//! Summarises the repository's benchmark trajectory: loads every
//! `BENCH_*.json` snapshot, prints a per-metric table across PRs, and exits
//! nonzero when the newest snapshot regresses more than a threshold against
//! the previous one (the trajectory was recorded since PR 2 but never
//! summarised before).
//!
//! Usage:
//!
//! ```sh
//! cargo run --release -p acso-bench --bin bench_compare -- \
//!     [--dir PATH] [--threshold PCT]
//! ```
//!
//! * `--dir PATH` — where to look for `BENCH_*.json` (default: `.`);
//! * `--threshold PCT` — regression tolerance in percent (default: 25).
//!
//! Snapshots are ordered `BENCH_baseline.json` first, then `BENCH_<n>.json`
//! by `n`; other `BENCH_*` files (live CI measurements such as
//! `BENCH_ci.json`, scratch outputs) are ignored so they can never become
//! the comparison target. Metrics missing from older snapshots (e.g. the
//! batched-inference numbers added in PR 4) show as `-` and never count as
//! regressions.
//!
//! Snapshots are backend-tagged since schema v4 (`"backend": "simd"` etc.;
//! untagged older files count as `reference`). The regression gate only
//! compares the newest snapshot against earlier snapshots measured with the
//! *same* backend: a reference-vs-simd pair differs by the SIMD tolerance
//! contract and deliberate kernel changes, not by a regression, so such a
//! pair must never trip the threshold.

use std::path::{Path, PathBuf};
use std::process::ExitCode;

/// Whether larger or smaller values are better for a metric.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum Direction {
    HigherIsBetter,
    LowerIsBetter,
}

/// The tracked metrics: JSON key (unique across the snapshot schema), short
/// label, and direction.
const METRICS: &[(&str, &str, Direction)] = &[
    (
        "serial_steps_per_sec",
        "sim serial steps/s",
        Direction::HigherIsBetter,
    ),
    (
        "parallel_steps_per_sec",
        "sim parallel steps/s",
        Direction::HigherIsBetter,
    ),
    // The ~1000-host world-model hot path (schema v5's `xl_topology` block):
    // per-step throughput of env step + filter update + feature encode.
    (
        "xl_sparse_steps_per_sec",
        "xl sparse steps/s",
        Direction::HigherIsBetter,
    ),
    (
        "xl_dense_reference_steps_per_sec",
        "xl dense steps/s",
        Direction::HigherIsBetter,
    ),
    (
        "xl_sparse_speedup",
        "xl sparse speedup",
        Direction::HigherIsBetter,
    ),
    (
        "xl_per_host_scaling",
        "xl per-host scaling",
        Direction::LowerIsBetter,
    ),
    (
        "attention_forward_ns_per_op",
        "attn fwd ns/op",
        Direction::LowerIsBetter,
    ),
    (
        "attention_forward_backward_ns_per_op",
        "attn fwd+bwd ns/op",
        Direction::LowerIsBetter,
    ),
    (
        "baseline_forward_ns_per_op",
        "base fwd ns/op",
        Direction::LowerIsBetter,
    ),
    (
        "attention_batched_ns_per_state",
        "attn batched ns/state",
        Direction::LowerIsBetter,
    ),
    (
        "attention_batched_speedup",
        "attn batched speedup",
        Direction::HigherIsBetter,
    ),
    (
        "baseline_batched_ns_per_state",
        "base batched ns/state",
        Direction::LowerIsBetter,
    ),
    (
        "attention_batched_update_ns",
        "attn update ns",
        Direction::LowerIsBetter,
    ),
    (
        "baseline_batched_update_ns",
        "base update ns",
        Direction::LowerIsBetter,
    ),
    (
        "attention_update_speedup",
        "attn update speedup",
        Direction::HigherIsBetter,
    ),
    (
        "baseline_update_speedup",
        "base update speedup",
        Direction::HigherIsBetter,
    ),
    // The SIMD-backend attention kernels (schema v4's `simd_kernels` block,
    // recorded next to the reference numbers when the snapshot was taken
    // with `--features backend-simd`).
    (
        "simd_attention_forward_ns_per_op",
        "simd attn fwd ns/op",
        Direction::LowerIsBetter,
    ),
    (
        "simd_attention_batched_ns_per_state",
        "simd attn batch ns/st",
        Direction::LowerIsBetter,
    ),
    (
        "simd_attention_batched_update_ns",
        "simd attn update ns",
        Direction::LowerIsBetter,
    ),
    (
        "serve_episodes_per_sec_1_client",
        "serve eps/s 1 client",
        Direction::HigherIsBetter,
    ),
    (
        "serve_episodes_per_sec_4_clients",
        "serve eps/s 4 clients",
        Direction::HigherIsBetter,
    ),
    (
        "serve_batch_fill_4_clients",
        "serve fill 4 clients",
        Direction::HigherIsBetter,
    ),
];

/// Extracts the number following `"key":` from a JSON document. The
/// snapshot schema keeps every tracked key unique, so a flat scan suffices
/// (the vendored serde is a no-op stand-in; see vendor/README.md).
fn extract_metric(json: &str, key: &str) -> Option<f64> {
    let needle = format!("\"{key}\"");
    let at = json.find(&needle)?;
    let rest = &json[at + needle.len()..];
    let rest = rest.trim_start().strip_prefix(':')?.trim_start();
    let end = rest
        .find(|c: char| !(c.is_ascii_digit() || c == '.' || c == '-' || c == '+' || c == 'e'))
        .unwrap_or(rest.len());
    rest[..end].parse().ok()
}

/// Extracts the string following `"key":` from a JSON document (same flat
/// scan as [`extract_metric`], for string-valued fields like `backend`).
fn extract_string(json: &str, key: &str) -> Option<String> {
    let needle = format!("\"{key}\"");
    let at = json.find(&needle)?;
    let rest = &json[at + needle.len()..];
    let rest = rest.trim_start().strip_prefix(':')?.trim_start();
    let rest = rest.strip_prefix('"')?;
    Some(rest[..rest.find('"')?].to_string())
}

/// The kernel backend a snapshot was measured with. Snapshots older than
/// schema v4 predate the backend seam, when the (now-)reference kernels
/// were the only ones.
fn snapshot_backend(json: &str) -> String {
    extract_string(json, "backend").unwrap_or_else(|| "reference".to_string())
}

/// Sort key for trajectory snapshots: `BENCH_baseline` first, then
/// `BENCH_<n>` by `n`. Anything else (`BENCH_ci.json`, scratch outputs) is
/// **not** part of the recorded trajectory and returns `None` — a stray
/// live-measurement file must never become the regression-gate comparison
/// target.
fn snapshot_order(stem: &str) -> Option<(u8, u64)> {
    let suffix = stem.strip_prefix("BENCH_")?;
    if suffix == "baseline" {
        Some((0, 0))
    } else {
        suffix.parse::<u64>().ok().map(|n| (1, n))
    }
}

fn find_snapshots(dir: &Path) -> Vec<PathBuf> {
    let mut files: Vec<PathBuf> = std::fs::read_dir(dir)
        .map(|entries| {
            entries
                .filter_map(|e| e.ok().map(|e| e.path()))
                .filter(|p| {
                    let name = p.file_name().and_then(|n| n.to_str()).unwrap_or("");
                    name.ends_with(".json")
                        && p.file_stem()
                            .and_then(|s| s.to_str())
                            .and_then(snapshot_order)
                            .is_some()
                })
                .collect()
        })
        .unwrap_or_default();
    files.sort_by_key(|p| {
        let stem = p.file_stem().and_then(|s| s.to_str()).unwrap_or("");
        snapshot_order(stem)
    });
    files
}

fn fmt_value(v: Option<f64>) -> String {
    match v {
        Some(v) if v >= 10_000.0 => format!("{v:.0}"),
        Some(v) => format!("{v:.1}"),
        None => "-".to_string(),
    }
}

/// Percentage change of `new` vs `old`, oriented so that positive means
/// *regression* for the metric's direction.
fn regression_pct(old: f64, new: f64, direction: Direction) -> f64 {
    if old == 0.0 {
        return 0.0;
    }
    match direction {
        Direction::HigherIsBetter => (old - new) / old * 100.0,
        Direction::LowerIsBetter => (new - old) / old * 100.0,
    }
}

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let value_of = |flag: &str| {
        args.iter()
            .position(|a| a == flag)
            .and_then(|i| args.get(i + 1))
            .cloned()
    };
    let dir = PathBuf::from(value_of("--dir").unwrap_or_else(|| ".".to_string()));
    let threshold: f64 = value_of("--threshold")
        .map(|v| v.parse().expect("--threshold needs a number"))
        .unwrap_or(25.0);

    let files = find_snapshots(&dir);
    if files.len() < 2 {
        eprintln!(
            "bench_compare: need at least two BENCH_*.json snapshots in {} (found {})",
            dir.display(),
            files.len()
        );
        return ExitCode::FAILURE;
    }
    let snapshots: Vec<(String, String, String)> = files
        .iter()
        .map(|p| {
            let name = p
                .file_stem()
                .and_then(|s| s.to_str())
                .unwrap_or("?")
                .to_string();
            let text = std::fs::read_to_string(p)
                .unwrap_or_else(|e| panic!("cannot read {}: {e}", p.display()));
            let backend = snapshot_backend(&text);
            (name, text, backend)
        })
        .collect();
    let newest_backend = snapshots.last().unwrap().2.clone();
    if snapshots.iter().any(|(_, _, b)| *b != newest_backend) {
        println!(
            "note: mixed-backend trajectory — the gate only compares \
             '{newest_backend}' snapshots against each other"
        );
    }

    println!("Benchmark trajectory ({} snapshots):", snapshots.len());
    print!("{:<24}", "metric");
    for (name, _, _) in &snapshots {
        print!(" {:>16}", name.strip_prefix("BENCH_").unwrap_or(name));
    }
    // Positive Δ means the newest snapshot *regressed* (direction-aware).
    println!(" {:>9}", "Δ regress");

    let mut regressions = Vec::new();
    for (key, label, direction) in METRICS {
        let values: Vec<Option<f64>> = snapshots
            .iter()
            .map(|(_, text, _)| extract_metric(text, key))
            .collect();
        print!("{label:<24}");
        for v in &values {
            print!(" {:>16}", fmt_value(*v));
        }
        // The newest snapshot against the latest earlier one carrying the
        // metric *for the same backend* — a reference-vs-simd pair differs
        // by tolerance contract, not regression, and must never gate.
        let newest = *values.last().unwrap();
        let previous = values[..values.len() - 1]
            .iter()
            .zip(&snapshots[..values.len() - 1])
            .rev()
            .filter(|(_, (_, _, backend))| *backend == newest_backend)
            .find_map(|(v, _)| *v);
        match (previous, newest) {
            (Some(old), Some(new)) => {
                let pct = regression_pct(old, new, *direction);
                println!(" {:>+8.1}%", pct);
                if pct > threshold {
                    regressions.push(format!(
                        "{label}: {old:.0} -> {new:.0} ({pct:+.1}% worse, threshold {threshold}%)"
                    ));
                }
            }
            _ => println!(" {:>9}", "-"),
        }
    }

    if regressions.is_empty() {
        println!("\nno metric regressed more than {threshold}% in the newest snapshot ✓");
        ExitCode::SUCCESS
    } else {
        eprintln!("\nREGRESSIONS (> {threshold}%):");
        for r in &regressions {
            eprintln!("  {r}");
        }
        ExitCode::FAILURE
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    const SNAPSHOT: &str = r#"{
  "schema": "acso-bench-smoke/v2",
  "sim_throughput": { "serial_steps_per_sec": 1000000, "parallel_steps_per_sec": 1500000 },
  "nn_forward": { "attention_forward_ns_per_op": 92372 },
  "batched_inference": { "attention_batched_ns_per_state": 74000 }
}"#;

    #[test]
    fn metrics_extract_from_nested_json() {
        assert_eq!(
            extract_metric(SNAPSHOT, "serial_steps_per_sec"),
            Some(1_000_000.0)
        );
        assert_eq!(
            extract_metric(SNAPSHOT, "attention_forward_ns_per_op"),
            Some(92_372.0)
        );
        assert_eq!(extract_metric(SNAPSHOT, "missing_metric"), None);
    }

    #[test]
    fn backend_tags_extract_with_reference_fallback() {
        // Pre-v4 snapshots carry no tag: they were measured with the (only)
        // scalar kernels, now the reference backend.
        assert_eq!(snapshot_backend(SNAPSHOT), "reference");
        let tagged = r#"{ "schema": "acso-bench-smoke/v4", "backend": "simd", "threads": 1 }"#;
        assert_eq!(snapshot_backend(tagged), "simd");
        assert_eq!(
            extract_string(tagged, "schema").as_deref(),
            Some("acso-bench-smoke/v4")
        );
        assert_eq!(extract_string(tagged, "missing"), None);
    }

    #[test]
    fn simd_kernel_keys_do_not_collide_with_reference_keys() {
        // The flat scan matches quoted keys, so the `simd_`-prefixed block
        // must never be picked up when extracting the reference metric (or
        // vice versa).
        let v4 = r#"{
  "backend": "reference",
  "batched_inference": { "attention_batched_ns_per_state": 70000 },
  "simd_kernels": { "simd_attention_batched_ns_per_state": 30000 }
}"#;
        assert_eq!(
            extract_metric(v4, "attention_batched_ns_per_state"),
            Some(70_000.0)
        );
        assert_eq!(
            extract_metric(v4, "simd_attention_batched_ns_per_state"),
            Some(30_000.0)
        );
    }

    #[test]
    fn null_metrics_read_as_missing() {
        // perf_smoke emits `"parallel_speedup": null` on 1-thread hosts;
        // a null must behave exactly like an absent metric.
        let v4 = r#"{ "sim_throughput": { "parallel_speedup": null } }"#;
        assert_eq!(extract_metric(v4, "parallel_speedup"), None);
    }

    #[test]
    fn snapshots_order_baseline_then_numbered() {
        let mut names = vec!["BENCH_3", "BENCH_baseline", "BENCH_10", "BENCH_2"];
        names.sort_by_key(|n| snapshot_order(n));
        assert_eq!(
            names,
            vec!["BENCH_baseline", "BENCH_2", "BENCH_3", "BENCH_10"]
        );
        // Live-measurement and scratch files are not trajectory snapshots:
        // they must never become the regression-gate comparison target.
        assert_eq!(snapshot_order("BENCH_ci"), None);
        assert_eq!(snapshot_order("BENCH_try2"), None);
        assert_eq!(snapshot_order("SCENARIOS_ci"), None);
    }

    #[test]
    fn regression_orientation_follows_direction() {
        // Throughput halves: 50% regression.
        let pct = regression_pct(1000.0, 500.0, Direction::HigherIsBetter);
        assert!((pct - 50.0).abs() < 1e-9);
        // Latency halves: an improvement, not a regression.
        let pct = regression_pct(1000.0, 500.0, Direction::LowerIsBetter);
        assert!((pct + 50.0).abs() < 1e-9);
        // Latency doubles: 100% regression.
        let pct = regression_pct(500.0, 1000.0, Direction::LowerIsBetter);
        assert!((pct - 100.0).abs() < 1e-9);
        assert_eq!(regression_pct(0.0, 10.0, Direction::LowerIsBetter), 0.0);
    }
}
