//! Reproduces the §4.2 hyper-parameter grid search protocol on the reduced
//! network: shaping reward on/off, target-network update interval and
//! ε-greedy decay rate.
//!
//! Run with `--smoke`, `--quick` (default) or `--paper` to choose the scale.

use acso_bench::{print_header, Scale};
use acso_core::experiments::grid_search;

fn main() {
    let scale = Scale::from_args(std::env::args().skip(1));
    print_header("Section 4.2 — hyper-parameter grid search", scale);

    let start = std::time::Instant::now();
    let rows = grid_search(&scale.experiment_scale());

    println!();
    println!(
        "{:<10} {:>22} {:>14} {:>16}",
        "shaping", "target update interval", "eps decay", "mean return"
    );
    let mut best: Option<&acso_core::experiments::GridSearchRow> = None;
    for row in &rows {
        println!(
            "{:<10} {:>22} {:>14} {:>16.1}",
            if row.shaping { "on" } else { "off" },
            row.target_update_interval,
            row.epsilon_decay,
            row.mean_return
        );
        if best
            .map(|b| row.mean_return > b.mean_return)
            .unwrap_or(true)
        {
            best = Some(row);
        }
    }
    if let Some(best) = best {
        println!();
        println!(
            "Best configuration: shaping={}, target update={}, eps decay={}",
            best.shaping, best.target_update_interval, best.epsilon_decay
        );
    }
    println!();
    println!("Paper reference: the shaping reward was critical for learning a meaningful policy;");
    println!("the selected configuration uses the 1/(1-gamma)-scale shaping weight.");
    println!("Total wall-clock: {:.1?}", start.elapsed());
}
