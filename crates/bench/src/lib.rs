//! Shared plumbing for the experiment binaries and Criterion benchmarks.
//!
//! Every table and figure of the paper has a corresponding binary in
//! `src/bin/` (see DESIGN.md's per-experiment index); this library holds the
//! command-line scale selection and output formatting they share, plus the
//! [`soak`] invariant-sweep harness behind the `soak` binary.

#![warn(missing_docs)]

pub mod soak;

use acso_core::agent::{AcsoAgent, AgentConfig, QNetwork};
use acso_core::experiments::ExperimentScale;
use acso_core::features::NodeFeatureEncoder;
use acso_core::{ActionSpace, StateFeatures};
use dbn::learn::{learn_model, LearnConfig};
use dbn::DbnFilter;
use ics_net::TopologySpec;
use ics_sim::{DefenderAction, IcsEnvironment, SimConfig};
use rl::DqnConfig;

/// Which scale an experiment binary should run at.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Scale {
    /// Tiny smoke run (seconds) — sanity check only.
    Smoke,
    /// Reduced run (minutes on a laptop) — the default.
    Quick,
    /// Paper-scale run (full topology, 100 evaluation episodes).
    Paper,
}

impl Scale {
    /// Parses the scale from command-line arguments: `--smoke`, `--quick`
    /// (default) or `--paper` / `--full`.
    pub fn from_args<I: IntoIterator<Item = String>>(args: I) -> Self {
        let mut scale = Scale::Quick;
        for arg in args {
            match arg.as_str() {
                "--smoke" => scale = Scale::Smoke,
                "--quick" => scale = Scale::Quick,
                "--paper" | "--full" => scale = Scale::Paper,
                _ => {}
            }
        }
        scale
    }

    /// The experiment scale configuration for this setting.
    pub fn experiment_scale(&self) -> ExperimentScale {
        match self {
            Scale::Smoke => ExperimentScale::smoke(),
            Scale::Quick => ExperimentScale::quick(),
            Scale::Paper => ExperimentScale::paper(),
        }
    }

    /// Human-readable label used in output headers.
    pub fn label(&self) -> &'static str {
        match self {
            Scale::Smoke => "smoke",
            Scale::Quick => "quick (reduced)",
            Scale::Paper => "paper",
        }
    }
}

/// Encodes `count` distinct decision-point states from one undefended
/// episode on `spec` (beliefs and alerts evolve as the attack progresses),
/// for benchmarks that need realistic, non-identical batch inputs. Shared by
/// `perf_smoke` and the `batched_inference` criterion bench so their inputs
/// cannot drift apart.
pub fn episode_states(spec: TopologySpec, count: usize) -> (Vec<StateFeatures>, ActionSpace) {
    let sim = SimConfig {
        topology: spec,
        ..SimConfig::tiny()
    }
    .with_max_time(4 * count as u64 + 50);
    let model = learn_model(&LearnConfig {
        episodes: 1,
        seed: 0,
        sim: sim.clone(),
    });
    let mut env = IcsEnvironment::new(sim);
    let mut obs = env.reset();
    let encoder = NodeFeatureEncoder::new(env.topology());
    let mut filter = DbnFilter::new(model, env.topology().node_count());
    let space = ActionSpace::new(env.topology());
    let mut states = Vec::with_capacity(count);
    for _ in 0..count {
        filter.update(&obs);
        states.push(encoder.encode(&obs, &filter));
        for _ in 0..3 {
            obs = env.step(&[DefenderAction::NoAction]).observation;
        }
    }
    (states, space)
}

/// Builds an agent on the `paper_small` topology with the given minibatch
/// size and prefills its replay past warm-up by driving one exploring
/// episode — the fixture for update benchmarks (`batched_training`,
/// `perf_smoke`): each subsequent `maybe_train` call runs exactly one
/// gradient update over a `batch_size` minibatch.
pub fn prefilled_update_agent<N: QNetwork + Clone>(
    make_network: impl FnOnce(ActionSpace) -> N,
    batch_size: usize,
) -> AcsoAgent<N> {
    let steps = 200u64;
    let sim = SimConfig {
        topology: TopologySpec::paper_small(),
        ..SimConfig::tiny()
    }
    .with_max_time(steps + 50);
    let model = learn_model(&LearnConfig {
        episodes: 1,
        seed: 0,
        sim: sim.clone(),
    });
    let mut env = IcsEnvironment::new(sim);
    let space = ActionSpace::new(env.topology());
    let config = AgentConfig {
        dqn: DqnConfig {
            batch_size,
            // `maybe_train` is gated by the caller, so every explicit call
            // during the benchmark runs one update...
            update_every: 1,
            warmup_transitions: 64,
            // ...and the target network never syncs mid-measurement.
            target_update_interval: u64::MAX,
            ..DqnConfig::smoke()
        },
        learning_rate: 1e-4,
        seed: 0,
    };
    let mut agent = AcsoAgent::new(env.topology(), model, make_network(space), config);
    agent.begin_episode();
    let obs = env.reset();
    let (mut action, mut state) = agent.select_action(&obs);
    for _ in 0..steps {
        let step = env.step(&[agent.action_space().decode(action)]);
        let (next_action, next_state) = agent.select_action(&step.observation);
        agent.store_transition(
            state,
            action,
            step.reward + step.shaping_reward,
            next_state,
            step.done,
        );
        action = next_action;
        state = next_state;
        if step.done {
            break;
        }
    }
    assert!(
        agent.replay_buffered() >= 64,
        "prefill left replay below warm-up"
    );
    agent
}

/// Applies the `--batch N` command-line flag: sets the `ACSO_BATCH`
/// environment variable (the switch the evaluation pipeline reads) before
/// any worker threads exist. Returns the lane count now in effect, if any.
pub fn apply_batch_flag<I: IntoIterator<Item = String>>(args: I) -> Option<usize> {
    let args: Vec<String> = args.into_iter().collect();
    if let Some(i) = args.iter().position(|a| a == "--batch") {
        let lanes = args
            .get(i + 1)
            .and_then(|v| v.parse::<usize>().ok())
            .filter(|n| *n > 0)
            .expect("--batch needs a positive lane count");
        std::env::set_var(acso_runtime::BATCH_ENV_VAR, lanes.to_string());
    }
    acso_runtime::batch_lanes()
}

/// Prints the standard experiment header: what is being reproduced, at which
/// scale, over how many rollout worker threads, and through which engine.
pub fn print_header(artefact: &str, scale: Scale) {
    println!("==========================================================");
    println!("Reproducing {artefact}");
    println!("Scale: {}", scale.label());
    println!(
        "Rollout threads: {} (override with {})",
        acso_runtime::available_threads(),
        acso_runtime::THREADS_ENV_VAR
    );
    match acso_runtime::batch_lanes() {
        Some(lanes) => println!(
            "Batched engine: {lanes} lockstep lanes per worker ({}=N / --batch N)",
            acso_runtime::BATCH_ENV_VAR
        ),
        None => println!(
            "Batched engine: off (enable with {}=N or --batch N)",
            acso_runtime::BATCH_ENV_VAR
        ),
    }
    println!("(Use --smoke / --quick / --paper to change; see EXPERIMENTS.md)");
    println!("==========================================================");
}

/// Formats a mean ± standard-error pair the way the paper's tables do.
pub fn fmt_mean(mean_std: &ics_sim::metrics::MeanStdErr) -> String {
    format!("{:.2} ± {:.2}", mean_std.mean, mean_std.std_err)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn scale_parsing_defaults_to_quick() {
        assert_eq!(Scale::from_args(Vec::<String>::new()), Scale::Quick);
        assert_eq!(Scale::from_args(vec!["--smoke".to_string()]), Scale::Smoke);
        assert_eq!(
            Scale::from_args(vec!["prog".to_string(), "--paper".to_string()]),
            Scale::Paper
        );
        assert_eq!(Scale::from_args(vec!["--full".to_string()]), Scale::Paper);
        assert_eq!(
            Scale::from_args(vec!["--unknown".to_string()]),
            Scale::Quick
        );
    }

    #[test]
    fn scales_map_to_experiment_configurations() {
        assert_eq!(Scale::Smoke.experiment_scale().eval_episodes, 2);
        assert_eq!(Scale::Paper.experiment_scale().eval_episodes, 100);
        assert!(Scale::Quick.experiment_scale().eval_episodes < 100);
        assert_eq!(Scale::Paper.label(), "paper");
    }

    #[test]
    fn mean_formatting() {
        let m = ics_sim::metrics::MeanStdErr {
            mean: 2149.9,
            std_err: 0.2,
        };
        assert_eq!(fmt_mean(&m), "2149.90 ± 0.20");
    }
}
