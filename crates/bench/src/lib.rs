//! Shared plumbing for the experiment binaries and Criterion benchmarks.
//!
//! Every table and figure of the paper has a corresponding binary in
//! `src/bin/` (see DESIGN.md's per-experiment index); this library holds the
//! command-line scale selection and output formatting they share.

#![warn(missing_docs)]

use acso_core::experiments::ExperimentScale;

/// Which scale an experiment binary should run at.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Scale {
    /// Tiny smoke run (seconds) — sanity check only.
    Smoke,
    /// Reduced run (minutes on a laptop) — the default.
    Quick,
    /// Paper-scale run (full topology, 100 evaluation episodes).
    Paper,
}

impl Scale {
    /// Parses the scale from command-line arguments: `--smoke`, `--quick`
    /// (default) or `--paper` / `--full`.
    pub fn from_args<I: IntoIterator<Item = String>>(args: I) -> Self {
        let mut scale = Scale::Quick;
        for arg in args {
            match arg.as_str() {
                "--smoke" => scale = Scale::Smoke,
                "--quick" => scale = Scale::Quick,
                "--paper" | "--full" => scale = Scale::Paper,
                _ => {}
            }
        }
        scale
    }

    /// The experiment scale configuration for this setting.
    pub fn experiment_scale(&self) -> ExperimentScale {
        match self {
            Scale::Smoke => ExperimentScale::smoke(),
            Scale::Quick => ExperimentScale::quick(),
            Scale::Paper => ExperimentScale::paper(),
        }
    }

    /// Human-readable label used in output headers.
    pub fn label(&self) -> &'static str {
        match self {
            Scale::Smoke => "smoke",
            Scale::Quick => "quick (reduced)",
            Scale::Paper => "paper",
        }
    }
}

/// Prints the standard experiment header: what is being reproduced, at which
/// scale, and over how many rollout worker threads.
pub fn print_header(artefact: &str, scale: Scale) {
    println!("==========================================================");
    println!("Reproducing {artefact}");
    println!("Scale: {}", scale.label());
    println!(
        "Rollout threads: {} (override with {})",
        acso_runtime::available_threads(),
        acso_runtime::THREADS_ENV_VAR
    );
    println!("(Use --smoke / --quick / --paper to change; see EXPERIMENTS.md)");
    println!("==========================================================");
}

/// Formats a mean ± standard-error pair the way the paper's tables do.
pub fn fmt_mean(mean_std: &ics_sim::metrics::MeanStdErr) -> String {
    format!("{:.2} ± {:.2}", mean_std.mean, mean_std.std_err)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn scale_parsing_defaults_to_quick() {
        assert_eq!(Scale::from_args(Vec::<String>::new()), Scale::Quick);
        assert_eq!(Scale::from_args(vec!["--smoke".to_string()]), Scale::Smoke);
        assert_eq!(
            Scale::from_args(vec!["prog".to_string(), "--paper".to_string()]),
            Scale::Paper
        );
        assert_eq!(Scale::from_args(vec!["--full".to_string()]), Scale::Paper);
        assert_eq!(
            Scale::from_args(vec!["--unknown".to_string()]),
            Scale::Quick
        );
    }

    #[test]
    fn scales_map_to_experiment_configurations() {
        assert_eq!(Scale::Smoke.experiment_scale().eval_episodes, 2);
        assert_eq!(Scale::Paper.experiment_scale().eval_episodes, 100);
        assert!(Scale::Quick.experiment_scale().eval_episodes < 100);
        assert_eq!(Scale::Paper.label(), "paper");
    }

    #[test]
    fn mean_formatting() {
        let m = ics_sim::metrics::MeanStdErr {
            mean: 2149.9,
            std_err: 0.2,
        };
        assert_eq!(fmt_mean(&m), "2149.90 ± 0.20");
    }
}
