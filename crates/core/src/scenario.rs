//! The scenario registry: every workload the evaluation harness can run.
//!
//! The registry maps scenario names to [`Scenario`]s. It ships with the
//! paper's three preset networks plus attacker-archetype, IDS-tier and
//! topology variants, and can grow at run time from TOML files
//! ([`Scenario::from_toml`]) or procedural generation
//! ([`Scenario::from_seed`], Mersenne-prime hash seed streams).
//!
//! ```
//! use acso_core::scenario::ScenarioRegistry;
//!
//! let registry = ScenarioRegistry::builtin();
//! assert!(registry.len() >= 8);
//! assert!(registry.get("paper-full").is_some());
//! assert!(registry.get("insider").unwrap().has_tag("attacker"));
//! ```

use ics_net::{DeviceFactors, ServerMix, TopologyError, TopologyParams};
use ics_sim::apt::AptProfile;
use ics_sim::ids::IdsConfig;
use ics_sim::{Scenario, SimConfig};
use std::fmt;

/// Why a scenario was rejected by [`ScenarioRegistry::register`].
///
/// The display strings carry the offending scenario's name so they can be
/// embedded verbatim in service error responses; they are pinned by tests.
#[derive(Debug, Clone, PartialEq)]
#[non_exhaustive]
pub enum RegistryError {
    /// The scenario's name was empty.
    EmptyName,
    /// A scenario with the same name is already registered.
    DuplicateName {
        /// The colliding name.
        name: String,
    },
    /// The scenario's topology spec failed validation.
    InvalidTopology {
        /// The rejected scenario's name.
        name: String,
        /// The underlying topology error.
        source: TopologyError,
    },
}

impl fmt::Display for RegistryError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            RegistryError::EmptyName => write!(f, "scenario name must not be empty"),
            RegistryError::DuplicateName { name } => {
                write!(f, "duplicate scenario name `{name}`")
            }
            RegistryError::InvalidTopology { name, source } => {
                write!(f, "scenario `{name}` has an invalid topology: {source}")
            }
        }
    }
}

impl std::error::Error for RegistryError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            RegistryError::InvalidTopology { source, .. } => Some(source),
            _ => None,
        }
    }
}

/// An ordered, name-indexed collection of scenarios.
///
/// Iteration order is registration order, so results tables are stable.
#[derive(Debug, Clone, Default)]
pub struct ScenarioRegistry {
    scenarios: Vec<Scenario>,
}

impl ScenarioRegistry {
    /// An empty registry.
    pub fn new() -> Self {
        Self::default()
    }

    /// The built-in catalog: the paper presets plus attacker, IDS and
    /// topology variants. Non-paper scenarios run on the small (§4.2)
    /// network so full-registry sweeps stay CPU-friendly.
    pub fn builtin() -> Self {
        let mut registry = Self::new();
        let mut add = |s: Scenario| {
            registry
                .register(s)
                .expect("built-in scenario names are unique")
        };

        add(Scenario::new(
            "paper-full",
            "Fig. 2 evaluation network, APT1 attacker, baseline IDS (Table 2 conditions)",
            SimConfig::full(),
        )
        .with_tags(["paper", "topology"]));
        add(Scenario::new(
            "paper-small",
            "reduced §4.2 grid-search network, APT1 attacker, baseline IDS",
            SimConfig::small(),
        )
        .with_tags(["paper"]));
        add(Scenario::new(
            "tiny",
            "minimal unit-test network (3 workstations, 2 HMIs, 4 PLCs)",
            SimConfig::tiny(),
        )
        .with_tags(["paper", "test"]));

        add(Scenario::new(
            "apt2",
            "the aggressive APT2 robustness attacker of §5 on the small network",
            SimConfig::small().with_apt(AptProfile::apt2()),
        )
        .with_tags(["attacker", "hard"]));
        add(Scenario::new(
            "stealth",
            "single patient operator, 0.9 cleanup effectiveness: a low-noise campaign",
            SimConfig::small().with_apt(AptProfile::stealth()),
        )
        .with_tags(["attacker", "hard"]));
        add(Scenario::new(
            "smash-and-grab",
            "four concurrent operators racing to the PLCs with minimal cleanup",
            SimConfig::small().with_apt(AptProfile::smash_and_grab()),
        )
        .with_tags(["attacker"]));
        add(Scenario::new(
            "insider",
            "APT1 parameters, but the foothold starts on a level-1 HMI inside operations",
            SimConfig::small().with_apt(AptProfile::insider()),
        )
        .with_tags(["attacker", "hard"]));
        add(Scenario::new(
            "disruption",
            "disrupt-only APT1: attacks land sooner but recover with cheap PLC resets",
            SimConfig::small().with_apt(AptProfile::disruption()),
        )
        .with_tags(["attacker", "easy"]));

        add(Scenario::new(
            "ids-degraded",
            "under-maintained IDS: half the detection rate, double the false alarms",
            SimConfig {
                ids: IdsConfig::degraded(),
                ..SimConfig::small()
            },
        )
        .with_tags(["ids", "hard"]));
        add(Scenario::new(
            "ids-enhanced",
            "well-tuned IDS: 1.5x detection rate, half the false alarms",
            SimConfig {
                ids: IdsConfig::enhanced(),
                ..SimConfig::small()
            },
        )
        .with_tags(["ids", "easy"]));

        let segmented = TopologyParams {
            levels: 2,
            vlans_per_level: [2, 2],
            nodes_per_vlan: [2, 5],
            servers: ServerMix::full(),
            plcs: 30,
            device_factors: DeviceFactors::paper(),
            host_budget: ics_net::MAX_HOSTS_PER_SEGMENT,
        };
        add(Scenario::new(
            "segmented",
            "micro-segmented plant: two ops VLANs per level force lateral traffic \
             through the level routers",
            SimConfig {
                topology: segmented
                    .into_spec()
                    .expect("segmented preset parameters are valid"),
                ..SimConfig::small()
            },
        )
        .with_tags(["topology"]));

        let registry_1000 = TopologyParams {
            levels: 2,
            vlans_per_level: [8, 8],
            nodes_per_vlan: [25, 100],
            servers: ServerMix::full(),
            plcs: 100,
            device_factors: DeviceFactors::paper(),
            // Segment 0 homes 100 workstations + 3 servers (> the 89-host /24
            // range), so the overflow-subnet allocator is on the hot path.
            host_budget: 128,
        };
        add(Scenario::new(
            "registry-1000",
            "scale stressor: ~1000 hosts (800 workstations + 200 HMIs) over 8+8 \
             segments, multi-/24 allocation, sparse hot-path state",
            SimConfig {
                topology: registry_1000
                    .into_spec()
                    .expect("registry-1000 preset parameters are valid"),
                ..SimConfig::small()
            },
        )
        .with_tags(["topology", Self::XL_TAG]));

        registry
    }

    /// Tag marking extra-large scenarios (thousands of hosts). Registry-wide
    /// sweeps and determinism matrices that train a per-scenario agent skip
    /// these by default ([`ScenarioRegistry::retain_standard`]); the
    /// large-topology benchmarks and CI smoke job target them explicitly.
    pub const XL_TAG: &'static str = "xl";

    /// Drops extra-large ([`Self::XL_TAG`]) scenarios, keeping the standard
    /// catalog that registry-wide training sweeps can afford.
    pub fn retain_standard(&mut self) {
        self.scenarios.retain(|s| !s.has_tag(Self::XL_TAG));
    }

    /// Registers a scenario.
    ///
    /// # Errors
    ///
    /// Returns a [`RegistryError`] naming the rejected scenario when its
    /// name is empty or already taken, or its topology spec fails
    /// validation.
    pub fn register(&mut self, scenario: Scenario) -> Result<(), RegistryError> {
        if scenario.name.is_empty() {
            return Err(RegistryError::EmptyName);
        }
        if self.get(&scenario.name).is_some() {
            return Err(RegistryError::DuplicateName {
                name: scenario.name,
            });
        }
        if let Err(source) = scenario.config.topology.validate() {
            return Err(RegistryError::InvalidTopology {
                name: scenario.name,
                source,
            });
        }
        self.scenarios.push(scenario);
        Ok(())
    }

    /// Generates a scenario from a seed (see [`Scenario::from_seed`]) and
    /// registers it, returning its name.
    ///
    /// # Errors
    ///
    /// Returns an error if the generated name is already registered (the
    /// same seed registered twice).
    pub fn register_seeded(&mut self, seed: u64) -> Result<String, RegistryError> {
        let scenario = Scenario::from_seed(seed);
        let name = scenario.name.clone();
        self.register(scenario)?;
        Ok(name)
    }

    /// Looks up a scenario by name.
    pub fn get(&self, name: &str) -> Option<&Scenario> {
        self.scenarios.iter().find(|s| s.name == name)
    }

    /// Scenario names in registration order.
    pub fn names(&self) -> Vec<&str> {
        self.scenarios.iter().map(|s| s.name.as_str()).collect()
    }

    /// Iterates over scenarios in registration order.
    pub fn iter(&self) -> impl Iterator<Item = &Scenario> {
        self.scenarios.iter()
    }

    /// Number of registered scenarios.
    pub fn len(&self) -> usize {
        self.scenarios.len()
    }

    /// Whether the registry is empty.
    pub fn is_empty(&self) -> bool {
        self.scenarios.is_empty()
    }

    /// Keeps only the scenarios with the given names (unknown names are
    /// ignored), preserving registration order.
    pub fn retain_named(&mut self, names: &[String]) {
        self.scenarios.retain(|s| names.contains(&s.name));
    }
}

impl<'a> IntoIterator for &'a ScenarioRegistry {
    type Item = &'a Scenario;
    type IntoIter = std::slice::Iter<'a, Scenario>;

    fn into_iter(self) -> Self::IntoIter {
        self.scenarios.iter()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn builtin_catalog_has_the_required_coverage() {
        let registry = ScenarioRegistry::builtin();
        assert!(registry.len() >= 8, "only {} scenarios", registry.len());
        // The three paper presets.
        for name in ["paper-full", "paper-small", "tiny"] {
            assert!(registry.get(name).unwrap().has_tag("paper"), "{name}");
        }
        // At least five non-paper variants spanning attacker / IDS /
        // topology dimensions.
        let variants: Vec<_> = registry.iter().filter(|s| !s.has_tag("paper")).collect();
        assert!(variants.len() >= 5);
        assert!(variants.iter().any(|s| s.has_tag("attacker")));
        assert!(variants.iter().any(|s| s.has_tag("ids")));
        assert!(variants.iter().any(|s| s.has_tag("topology")));
        // Every scenario builds a valid topology.
        for s in &registry {
            assert!(s.config.topology.validate().is_ok(), "{}", s.name);
            assert!(!s.description.is_empty(), "{}", s.name);
        }
        // The segmented variant actually uses multiple segments.
        assert!(
            registry
                .get("segmented")
                .unwrap()
                .config
                .topology
                .l2_segments
                > 1
        );
    }

    #[test]
    fn registry_1000_is_xl_tagged_and_about_a_thousand_hosts() {
        let mut registry = ScenarioRegistry::builtin();
        let xl = registry.get("registry-1000").unwrap();
        assert!(xl.has_tag(ScenarioRegistry::XL_TAG));
        let topo = &xl.config.topology;
        assert!(
            (950..=1100).contains(&topo.total_nodes()),
            "{} nodes",
            topo.total_nodes()
        );
        // Segment 0 is denser than one /24, so builds exercise the
        // overflow-subnet allocator.
        assert!(topo.segment_loads(2)[0] > ics_net::MAX_HOSTS_PER_SEGMENT);
        assert!(topo.validate().is_ok());

        // Standard-catalog filtering drops it but keeps everything else.
        let full_len = registry.len();
        registry.retain_standard();
        assert_eq!(registry.len(), full_len - 1);
        assert!(registry.get("registry-1000").is_none());
        assert!(registry.get("paper-full").is_some());
    }

    #[test]
    fn paper_presets_are_untouched() {
        let registry = ScenarioRegistry::builtin();
        assert_eq!(
            registry.get("paper-full").unwrap().config,
            SimConfig::full()
        );
        assert_eq!(
            registry.get("paper-small").unwrap().config,
            SimConfig::small()
        );
        assert_eq!(registry.get("tiny").unwrap().config, SimConfig::tiny());
    }

    #[test]
    fn register_rejects_duplicates_and_invalid_topologies() {
        let mut registry = ScenarioRegistry::builtin();
        let dup = Scenario::new("tiny", "again", SimConfig::tiny());
        let err = registry.register(dup).unwrap_err();
        assert_eq!(
            err,
            RegistryError::DuplicateName {
                name: "tiny".to_string()
            }
        );
        // Service error responses embed these strings verbatim: pin them.
        assert_eq!(err.to_string(), "duplicate scenario name `tiny`");

        let mut bad = SimConfig::tiny();
        bad.topology.plcs = 0;
        let invalid = Scenario::new("broken", "", bad);
        let err = registry.register(invalid).unwrap_err();
        assert!(matches!(
            &err,
            RegistryError::InvalidTopology { name, .. } if name == "broken"
        ));
        assert_eq!(
            err.to_string(),
            "scenario `broken` has an invalid topology: \
             topology spec cannot support an end-to-end attack"
        );
        // The underlying topology error stays reachable for callers that
        // want to branch on it.
        use std::error::Error as _;
        assert!(err.source().is_some());

        let unnamed = Scenario::new("", "", SimConfig::tiny());
        let err = registry.register(unnamed).unwrap_err();
        assert_eq!(err, RegistryError::EmptyName);
        assert_eq!(err.to_string(), "scenario name must not be empty");
    }

    #[test]
    fn seeded_registration_round_trips() {
        let mut registry = ScenarioRegistry::new();
        let name = registry.register_seeded(7).unwrap();
        assert!(registry.get(&name).is_some());
        assert!(registry.register_seeded(7).is_err());
        assert_eq!(registry.names(), vec![name.as_str()]);
    }

    #[test]
    fn retain_named_filters_in_order() {
        let mut registry = ScenarioRegistry::builtin();
        registry.retain_named(&["tiny".to_string(), "paper-full".to_string()]);
        assert_eq!(registry.names(), vec!["paper-full", "tiny"]);
        assert!(!registry.is_empty());
    }
}
