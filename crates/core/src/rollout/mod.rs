//! The episode rollout engines.
//!
//! Every evaluation episode is independent: its environment and its policy
//! RNG are seeded from the episode *index*, and stateful policies are fully
//! reset at the episode boundary. Two engines exploit that independence:
//!
//! * [`rollout`] fans whole episodes out over scoped worker threads (via
//!   [`acso_runtime`]) with one policy instance per worker — the
//!   episode-parallel engine of PR 2;
//! * [`SyncBatchEngine`] steps a *batch* of episodes in lockstep on each
//!   worker — gather the live lanes' observations, make one batched
//!   decision, scatter the actions — so policies with batched inference
//!   (the neural agent) amortise every forward pass across lanes.
//!
//! Both engines drive episodes through the same `EpisodeLane` state
//! machine and derive all randomness from [`acso_runtime::episode_seed`], so
//! their per-episode metrics are **bit-identical** to a serial run for any
//! thread count and any batch width — the property the determinism tests in
//! `tests/rollout_determinism.rs` and `tests/batch_determinism.rs` (root
//! package) pin down.
//!
//! The thread count comes from the `ACSO_THREADS` environment variable
//! ([`acso_runtime::available_threads`]); the batched engine is switched on
//! by `ACSO_BATCH` ([`acso_runtime::batch_lanes`]).

mod sync_batch;

pub use sync_batch::{
    BatchPolicy, BatchStats, EngineStats, LaneDecision, PerLanePolicies, SyncBatchEngine,
};

use crate::policy::DefenderPolicy;
use ics_sim::metrics::EpisodeMetrics;
use ics_sim::{DefenderAction, IcsEnvironment, Observation, SimConfig};
use rand::rngs::StdRng;
use rand::SeedableRng;

/// Salt separating the policy's decision RNG stream from the environment
/// stream (kept at the historical `+10_000` offset of the serial evaluator).
const POLICY_SEED_OFFSET: u64 = 10_000;

/// A batch of episodes to roll out.
#[derive(Debug, Clone, PartialEq)]
pub struct RolloutPlan {
    /// Simulation configuration shared by every episode (per-episode seeds
    /// are derived on top of it).
    pub sim: SimConfig,
    /// Number of episodes.
    pub episodes: usize,
    /// Base seed; episode `i` runs with [`acso_runtime::episode_seed`]`(seed, i)`.
    pub seed: u64,
    /// Worker threads; `1` runs inline on the calling thread.
    pub threads: usize,
}

impl RolloutPlan {
    /// A plan using the auto-detected thread count (`ACSO_THREADS` or
    /// available parallelism).
    pub fn new(sim: SimConfig, episodes: usize, seed: u64) -> Self {
        Self {
            sim,
            episodes,
            seed,
            threads: acso_runtime::available_threads(),
        }
    }

    /// Overrides the worker-thread count.
    pub fn with_threads(mut self, threads: usize) -> Self {
        self.threads = threads;
        self
    }
}

/// One episode's live state inside an engine: the environment, the policy's
/// per-episode decision RNG, and the metrics accumulated so far.
///
/// Every engine — serial, episode-parallel and lockstep-batched — drives
/// episodes through this one type, so the per-step bookkeeping (metric
/// recording, discounting, termination) cannot diverge between them. The
/// lane's seeds derive from the episode index exactly as the serial
/// evaluator's always have.
pub(crate) struct EpisodeLane {
    pub(crate) env: IcsEnvironment,
    pub(crate) rng: StdRng,
    pub(crate) obs: Observation,
    pub(crate) metrics: EpisodeMetrics,
    pub(crate) done: bool,
    discount: f64,
    gamma: f64,
}

impl EpisodeLane {
    /// Builds and resets episode `episode` of a run seeded with `base_seed`.
    pub(crate) fn start(sim: &SimConfig, base_seed: u64, episode: usize) -> Self {
        let episode_seed = acso_runtime::episode_seed(base_seed, episode);
        let sim = sim.clone().with_seed(episode_seed);
        let mut env = IcsEnvironment::new(sim);
        let rng = StdRng::seed_from_u64(episode_seed.wrapping_add(POLICY_SEED_OFFSET));
        let gamma = env.gamma();
        let obs = env.reset();
        Self {
            env,
            rng,
            obs,
            metrics: EpisodeMetrics::new(),
            done: false,
            discount: 1.0,
            gamma,
        }
    }

    /// Applies one decision: steps the environment, records the step's
    /// metrics, and advances the discount.
    pub(crate) fn advance(&mut self, actions: &[DefenderAction]) {
        let step = self.env.step(actions);
        self.metrics.record_step(
            step.reward,
            self.discount,
            step.it_cost,
            step.info.nodes_compromised,
            step.info.plcs_offline,
        );
        self.discount *= self.gamma;
        self.obs = step.observation;
        self.done = step.done;
    }
}

/// Runs one evaluation episode of a plan against a policy. This is the
/// single code path behind the serial and the parallel evaluator, and the
/// batched engine shares its `EpisodeLane` bookkeeping, so no engine's
/// transcripts can diverge.
pub fn run_episode(
    policy: &mut dyn DefenderPolicy,
    sim: &SimConfig,
    base_seed: u64,
    episode: usize,
) -> EpisodeMetrics {
    let mut lane = EpisodeLane::start(sim, base_seed, episode);
    policy.reset(lane.env.topology());
    while !lane.done {
        let actions = policy.decide(&lane.obs, lane.env.topology(), &mut lane.rng);
        lane.advance(&actions);
    }
    lane.metrics
}

/// Rolls out a plan's episodes serially through one policy instance.
pub fn rollout_serial(policy: &mut dyn DefenderPolicy, plan: &RolloutPlan) -> Vec<EpisodeMetrics> {
    (0..plan.episodes)
        .map(|i| run_episode(policy, &plan.sim, plan.seed, i))
        .collect()
}

/// Rolls out a plan's episodes across worker threads, building one policy
/// per worker with `make_policy`. Returns per-episode metrics in episode
/// order, bit-identical to [`rollout_serial`] with a policy from the same
/// factory.
pub fn rollout<F>(plan: &RolloutPlan, make_policy: F) -> Vec<EpisodeMetrics>
where
    F: Fn() -> Box<dyn DefenderPolicy> + Sync,
{
    acso_runtime::run_indexed_with(plan.episodes, plan.threads, &make_policy, |policy, i| {
        run_episode(policy.as_mut(), &plan.sim, plan.seed, i)
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::baselines::PlaybookPolicy;

    fn plan(threads: usize) -> RolloutPlan {
        RolloutPlan {
            sim: SimConfig::tiny().with_max_time(120),
            episodes: 6,
            seed: 21,
            threads,
        }
    }

    #[test]
    fn parallel_rollout_matches_serial_exactly() {
        let serial = rollout_serial(&mut PlaybookPolicy::new(), &plan(1));
        let parallel = rollout(&plan(4), || Box::new(PlaybookPolicy::new()));
        assert_eq!(serial, parallel);
        assert_eq!(serial.len(), 6);
    }

    #[test]
    fn episodes_differ_across_indices_and_repeat_across_runs() {
        let a = rollout(&plan(2), || Box::new(PlaybookPolicy::new()));
        let b = rollout(&plan(3), || Box::new(PlaybookPolicy::new()));
        assert_eq!(a, b);
        // Different seeds per episode: not all episodes can be identical.
        assert!(a.windows(2).any(|w| w[0] != w[1]));
    }

    #[test]
    fn plan_builder_detects_threads() {
        let p = RolloutPlan::new(SimConfig::tiny(), 3, 0);
        assert!(p.threads >= 1);
        assert_eq!(p.with_threads(2).threads, 2);
    }

    #[test]
    fn batched_engine_matches_serial_for_every_lane_width() {
        let serial = rollout_serial(&mut PlaybookPolicy::new(), &plan(1));
        for lanes in [1usize, 2, 3, 6, 16] {
            for threads in [1usize, 4] {
                let engine = SyncBatchEngine::new(lanes);
                let batched = engine.rollout(&plan(threads), &|| {
                    Box::new(PlaybookPolicy::new()) as Box<dyn DefenderPolicy>
                });
                assert_eq!(
                    serial, batched,
                    "lanes={lanes} threads={threads} diverged from serial"
                );
            }
        }
    }
}
