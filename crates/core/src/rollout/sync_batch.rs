//! The step-synchronized batched rollout engine.
//!
//! [`SyncBatchEngine`] steps `lanes` episodes in lockstep: each simulated
//! hour it gathers the live lanes' observations, asks the policy for **one
//! batched decision** ([`BatchPolicy::decide_lanes`]), and scatters the
//! chosen actions back into the lanes' environments. Policies with batched
//! inference (the neural agent) answer the whole gather with a single
//! forward pass, retiring the per-observation hot path; policies without it
//! are adapted per lane by [`PerLanePolicies`].
//!
//! Determinism is inherited, not re-proven: every lane derives its
//! environment and decision-RNG streams from its episode index
//! ([`acso_runtime::episode_seed`], exactly as the serial engine does), lane
//! state never crosses lanes, and batched inference is bit-identical per
//! item to solo inference (the [`crate::agent::QNetwork::q_values_batch`]
//! contract). Transcripts are therefore bit-identical to
//! [`super::rollout_serial`] for any lane count and any thread count —
//! pinned by `tests/batch_determinism.rs` across every registry scenario and
//! all four policy families.
//!
//! Batches compose with the [`acso_runtime`] worker pool: the episode range
//! is chunked into consecutive `lanes`-sized batches and the chunks fan out
//! over `ACSO_THREADS` workers, each worker owning one batch of lanes at a
//! time (and one long-lived batch policy instance).

use super::{EpisodeLane, RolloutPlan};
use crate::policy::DefenderPolicy;
use ics_net::Topology;
use ics_sim::metrics::EpisodeMetrics;
use ics_sim::{DefenderAction, Observation, SimConfig};
use rand::rngs::StdRng;

/// One live lane's slot in a lockstep decision round: what the policy may
/// read (observation, topology, the lane's decision RNG) and where it writes
/// the chosen actions.
pub struct LaneDecision<'a> {
    /// Lane index within the engine's batch (stable across the episode).
    pub lane: usize,
    /// The lane's latest observation.
    pub observation: &'a Observation,
    /// The lane's topology.
    pub topology: &'a Topology,
    /// The lane's per-episode decision RNG — the same stream the serial
    /// evaluator would hand this episode's `decide` calls.
    pub rng: &'a mut StdRng,
    /// The actions to submit this hour (filled by the policy, empty on
    /// entry).
    pub actions: Vec<DefenderAction>,
}

/// A defender policy that decides for many lockstep episode lanes at once.
///
/// Implementations must keep lanes independent: lane `k`'s decisions may
/// depend only on lane `k`'s observation history, reset state and RNG, so
/// that every lane's transcript matches a serial episode bit for bit.
pub trait BatchPolicy: Send {
    /// A short name used in result tables ("ACSO", "Playbook", ...).
    fn name(&self) -> &str;

    /// Resets lane `lane`'s internal state at the start of its episode.
    fn reset_lane(&mut self, lane: usize, topology: &Topology);

    /// Decides actions for every live lane of this simulated hour. Requests
    /// arrive in ascending lane order; finished lanes are absent.
    fn decide_lanes(&mut self, requests: &mut [LaneDecision<'_>]);
}

/// Adapts policies without batched inference to the lane interface: one
/// serial [`DefenderPolicy`] instance per lane, each seeing exactly the call
/// sequence a serial episode would give it.
pub struct PerLanePolicies {
    name: String,
    lanes: Vec<Box<dyn DefenderPolicy>>,
}

impl PerLanePolicies {
    /// Builds `lanes` policy instances from a factory.
    ///
    /// # Panics
    ///
    /// Panics if `lanes` is zero.
    pub fn new<F>(lanes: usize, make_policy: F) -> Self
    where
        F: Fn() -> Box<dyn DefenderPolicy>,
    {
        assert!(lanes > 0, "a batch needs at least one lane");
        let lanes: Vec<_> = (0..lanes).map(|_| make_policy()).collect();
        let name = lanes[0].name().to_string();
        Self { name, lanes }
    }
}

impl BatchPolicy for PerLanePolicies {
    fn name(&self) -> &str {
        &self.name
    }

    fn reset_lane(&mut self, lane: usize, topology: &Topology) {
        self.lanes[lane].reset(topology);
    }

    fn decide_lanes(&mut self, requests: &mut [LaneDecision<'_>]) {
        for r in requests {
            r.actions = self.lanes[r.lane].decide(r.observation, r.topology, r.rng);
        }
    }
}

/// The lockstep batched rollout engine.
///
/// `lanes` is the number of episodes stepped together per worker batch (the
/// inference batch size). Construct explicitly with [`SyncBatchEngine::new`]
/// or from the `ACSO_BATCH` environment variable with
/// [`SyncBatchEngine::from_env`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct SyncBatchEngine {
    lanes: usize,
}

impl SyncBatchEngine {
    /// An engine stepping `lanes` episodes in lockstep (at least one).
    pub fn new(lanes: usize) -> Self {
        Self {
            lanes: lanes.max(1),
        }
    }

    /// The engine selected by `ACSO_BATCH`, or `None` when the variable is
    /// unset (callers fall back to the episode-parallel engine).
    pub fn from_env() -> Option<Self> {
        acso_runtime::batch_lanes().map(Self::new)
    }

    /// Episodes stepped together per worker batch.
    pub fn lanes(&self) -> usize {
        self.lanes
    }

    /// Rolls out a plan's episodes through lockstep batches fanned out over
    /// the worker pool. Returns per-episode metrics in episode order,
    /// bit-identical to [`super::rollout_serial`] with a policy from the
    /// same factory.
    ///
    /// Each worker builds one long-lived batch policy: the factory's
    /// prototype is asked to upgrade itself via
    /// [`DefenderPolicy::make_batch_policy`] (the neural agent returns its
    /// shared-network batched form) and falls back to [`PerLanePolicies`]
    /// otherwise.
    pub fn rollout<F>(&self, plan: &RolloutPlan, make_policy: &F) -> Vec<EpisodeMetrics>
    where
        F: Fn() -> Box<dyn DefenderPolicy> + Sync,
    {
        let lanes = self.lanes;
        let batches = plan.episodes.div_ceil(lanes);
        let results = acso_runtime::run_indexed_with(
            batches,
            plan.threads,
            || {
                let prototype = make_policy();
                prototype
                    .make_batch_policy(lanes)
                    .unwrap_or_else(|| Box::new(PerLanePolicies::new(lanes, make_policy)))
            },
            |policy, batch| {
                let first = batch * lanes;
                let count = lanes.min(plan.episodes - first);
                run_lockstep(policy.as_mut(), &plan.sim, plan.seed, first, count)
            },
        );
        results.into_iter().flatten().collect()
    }
}

/// Steps episodes `first_episode .. first_episode + count` in lockstep
/// against one batch policy, returning their metrics in episode order.
fn run_lockstep(
    policy: &mut dyn BatchPolicy,
    sim: &SimConfig,
    base_seed: u64,
    first_episode: usize,
    count: usize,
) -> Vec<EpisodeMetrics> {
    let mut lanes: Vec<EpisodeLane> = (0..count)
        .map(|k| EpisodeLane::start(sim, base_seed, first_episode + k))
        .collect();
    for (k, lane) in lanes.iter_mut().enumerate() {
        policy.reset_lane(k, lane.env.topology());
    }
    loop {
        // Gather the live lanes...
        let mut requests: Vec<LaneDecision<'_>> = Vec::new();
        for (k, lane) in lanes.iter_mut().enumerate() {
            if lane.done {
                continue;
            }
            let EpisodeLane { env, rng, obs, .. } = lane;
            requests.push(LaneDecision {
                lane: k,
                observation: obs,
                topology: env.topology(),
                rng,
                actions: Vec::new(),
            });
        }
        if requests.is_empty() {
            return lanes.into_iter().map(|lane| lane.metrics).collect();
        }
        // ...one batched decision...
        policy.decide_lanes(&mut requests);
        // ...and scatter the actions back into the environments.
        let decided: Vec<(usize, Vec<DefenderAction>)> =
            requests.into_iter().map(|r| (r.lane, r.actions)).collect();
        for (k, actions) in decided {
            lanes[k].advance(&actions);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::baselines::{PlaybookPolicy, SemiRandomPolicy};
    use crate::rollout::{rollout_serial, RolloutPlan};
    use ics_sim::SimConfig;

    fn plan(episodes: usize, threads: usize) -> RolloutPlan {
        RolloutPlan {
            sim: SimConfig::tiny().with_max_time(100),
            episodes,
            seed: 7,
            threads,
        }
    }

    #[test]
    fn ragged_tail_batches_cover_every_episode() {
        // 7 episodes in lanes of 3: batches of 3, 3 and 1.
        let serial = rollout_serial(&mut PlaybookPolicy::new(), &plan(7, 1));
        let engine = SyncBatchEngine::new(3);
        let batched = engine.rollout(&plan(7, 2), &|| {
            Box::new(PlaybookPolicy::new()) as Box<dyn DefenderPolicy>
        });
        assert_eq!(serial, batched);
        assert_eq!(batched.len(), 7);
    }

    #[test]
    fn rng_hungry_policies_keep_their_per_lane_streams() {
        // The semi-random baseline consumes the decision RNG every step, so
        // any cross-lane sharing of streams would change transcripts.
        let serial = rollout_serial(&mut SemiRandomPolicy::new(), &plan(5, 1));
        let engine = SyncBatchEngine::new(4);
        let batched = engine.rollout(&plan(5, 2), &|| {
            Box::new(SemiRandomPolicy::new()) as Box<dyn DefenderPolicy>
        });
        assert_eq!(serial, batched);
    }

    #[test]
    fn engine_configuration_is_clamped_and_env_driven() {
        assert_eq!(SyncBatchEngine::new(0).lanes(), 1);
        assert_eq!(SyncBatchEngine::new(16).lanes(), 16);
    }

    #[test]
    fn zero_episodes_yield_no_batches() {
        let engine = SyncBatchEngine::new(8);
        let out = engine.rollout(&plan(0, 2), &|| {
            Box::new(PlaybookPolicy::new()) as Box<dyn DefenderPolicy>
        });
        assert!(out.is_empty());
    }
}
