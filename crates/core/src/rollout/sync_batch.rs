//! The step-synchronized batched rollout engine.
//!
//! [`SyncBatchEngine`] steps `lanes` episodes in lockstep: each simulated
//! hour it gathers the live lanes' observations, asks the policy for **one
//! batched decision** ([`BatchPolicy::decide_lanes`]), and scatters the
//! chosen actions back into the lanes' environments. Policies with batched
//! inference (the neural agent) answer the whole gather with a single
//! forward pass, retiring the per-observation hot path; policies without it
//! are adapted per lane by [`PerLanePolicies`].
//!
//! Determinism is inherited, not re-proven: every lane derives its
//! environment and decision-RNG streams from its episode index
//! ([`acso_runtime::episode_seed`], exactly as the serial engine does), lane
//! state never crosses lanes, and batched inference is bit-identical per
//! item to solo inference (the [`crate::agent::QNetwork::q_values_batch`]
//! contract). Transcripts are therefore bit-identical to
//! [`super::rollout_serial`] for any lane count and any thread count —
//! pinned by `tests/batch_determinism.rs` across every registry scenario and
//! all four policy families.
//!
//! Batches compose with the [`acso_runtime`] worker pool: the episode range
//! is chunked into consecutive `lanes`-sized batches and the chunks fan out
//! over `ACSO_THREADS` workers, each worker owning one batch of lanes at a
//! time (and one long-lived batch policy instance).

use super::{EpisodeLane, RolloutPlan};
use crate::policy::DefenderPolicy;
use acso_runtime::PoolStats;
use ics_net::Topology;
use ics_sim::metrics::EpisodeMetrics;
use ics_sim::{DefenderAction, Observation};
use rand::rngs::StdRng;

/// How full the engine's lockstep batches ran: every decision round offers
/// `lanes` slots (the engine's configured width) and fills one per live
/// episode. The ratio of filled to offered slots is the *batch-fill ratio* —
/// the number the serving layer watches to confirm that concurrent requests
/// are actually being coalesced into shared batches instead of running in
/// mostly-empty ones.
///
/// The counts are deterministic for a given plan set and lane width (they
/// depend only on episode lengths), unlike the wall-clock numbers around
/// them.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct BatchStats {
    /// Lockstep decision rounds executed, summed over all batches.
    pub rounds: u64,
    /// Live-lane slots filled across those rounds (one per episode still
    /// running when its batch made a decision).
    pub filled_slots: u64,
    /// Slots offered across those rounds: `engine lanes x rounds`.
    pub capacity_slots: u64,
}

impl BatchStats {
    /// Filled slots over offered slots, in `0.0..=1.0` (`1.0` when no round
    /// ran). Higher means batched inference amortised over more episodes.
    pub fn fill_ratio(&self) -> f64 {
        if self.capacity_slots == 0 {
            return 1.0;
        }
        self.filled_slots as f64 / self.capacity_slots as f64
    }

    fn absorb(&mut self, other: BatchStats) {
        self.rounds += other.rounds;
        self.filled_slots += other.filled_slots;
        self.capacity_slots += other.capacity_slots;
    }
}

/// Observability side channel of one [`SyncBatchEngine::rollout_many`] call:
/// the deterministic batch-fill accounting plus the (non-deterministic)
/// worker-pool distribution.
#[derive(Debug, Clone, PartialEq)]
pub struct EngineStats {
    /// Lockstep batch-fill accounting.
    pub batch: BatchStats,
    /// How the batches spread over the worker pool.
    pub pool: PoolStats,
}

/// One live lane's slot in a lockstep decision round: what the policy may
/// read (observation, topology, the lane's decision RNG) and where it writes
/// the chosen actions.
pub struct LaneDecision<'a> {
    /// Lane index within the engine's batch (stable across the episode).
    pub lane: usize,
    /// The lane's latest observation.
    pub observation: &'a Observation,
    /// The lane's topology.
    pub topology: &'a Topology,
    /// The lane's per-episode decision RNG — the same stream the serial
    /// evaluator would hand this episode's `decide` calls.
    pub rng: &'a mut StdRng,
    /// The actions to submit this hour (filled by the policy, empty on
    /// entry).
    pub actions: Vec<DefenderAction>,
}

/// A defender policy that decides for many lockstep episode lanes at once.
///
/// Implementations must keep lanes independent: lane `k`'s decisions may
/// depend only on lane `k`'s observation history, reset state and RNG, so
/// that every lane's transcript matches a serial episode bit for bit.
pub trait BatchPolicy: Send {
    /// A short name used in result tables ("ACSO", "Playbook", ...).
    fn name(&self) -> &str;

    /// Resets lane `lane`'s internal state at the start of its episode.
    fn reset_lane(&mut self, lane: usize, topology: &Topology);

    /// Decides actions for every live lane of this simulated hour. Requests
    /// arrive in ascending lane order; finished lanes are absent.
    fn decide_lanes(&mut self, requests: &mut [LaneDecision<'_>]);
}

/// Adapts policies without batched inference to the lane interface: one
/// serial [`DefenderPolicy`] instance per lane, each seeing exactly the call
/// sequence a serial episode would give it.
pub struct PerLanePolicies {
    name: String,
    lanes: Vec<Box<dyn DefenderPolicy>>,
}

impl PerLanePolicies {
    /// Builds `lanes` policy instances from a factory.
    ///
    /// # Panics
    ///
    /// Panics if `lanes` is zero.
    pub fn new<F>(lanes: usize, make_policy: F) -> Self
    where
        F: Fn() -> Box<dyn DefenderPolicy>,
    {
        assert!(lanes > 0, "a batch needs at least one lane");
        let lanes: Vec<_> = (0..lanes).map(|_| make_policy()).collect();
        let name = lanes[0].name().to_string();
        Self { name, lanes }
    }
}

impl BatchPolicy for PerLanePolicies {
    fn name(&self) -> &str {
        &self.name
    }

    fn reset_lane(&mut self, lane: usize, topology: &Topology) {
        self.lanes[lane].reset(topology);
    }

    fn decide_lanes(&mut self, requests: &mut [LaneDecision<'_>]) {
        for r in requests {
            r.actions = self.lanes[r.lane].decide(r.observation, r.topology, r.rng);
        }
    }
}

/// The lockstep batched rollout engine.
///
/// `lanes` is the number of episodes stepped together per worker batch (the
/// inference batch size). Construct explicitly with [`SyncBatchEngine::new`]
/// or from the `ACSO_BATCH` environment variable with
/// [`SyncBatchEngine::from_env`].
///
/// # Example
///
/// ```
/// use acso_core::baselines::PlaybookPolicy;
/// use acso_core::policy::DefenderPolicy;
/// use acso_core::rollout::{rollout_serial, RolloutPlan, SyncBatchEngine};
/// use ics_sim::SimConfig;
///
/// let plan = RolloutPlan::new(SimConfig::tiny().with_max_time(60), 3, 7).with_threads(2);
/// let engine = SyncBatchEngine::new(4);
/// let batched = engine.rollout(&plan, &|| {
///     Box::new(PlaybookPolicy::new()) as Box<dyn DefenderPolicy>
/// });
/// // Lockstep batching never changes transcripts, only how they are computed.
/// let serial = rollout_serial(&mut PlaybookPolicy::new(), &plan);
/// assert_eq!(batched, serial);
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct SyncBatchEngine {
    lanes: usize,
}

impl SyncBatchEngine {
    /// An engine stepping `lanes` episodes in lockstep (at least one).
    pub fn new(lanes: usize) -> Self {
        Self {
            lanes: lanes.max(1),
        }
    }

    /// The engine selected by `ACSO_BATCH`, or `None` when the variable is
    /// unset (callers fall back to the episode-parallel engine).
    pub fn from_env() -> Option<Self> {
        acso_runtime::batch_lanes().map(Self::new)
    }

    /// Episodes stepped together per worker batch.
    pub fn lanes(&self) -> usize {
        self.lanes
    }

    /// Rolls out a plan's episodes through lockstep batches fanned out over
    /// the worker pool. Returns per-episode metrics in episode order,
    /// bit-identical to [`super::rollout_serial`] with a policy from the
    /// same factory.
    ///
    /// Each worker builds one long-lived batch policy: the factory's
    /// prototype is asked to upgrade itself via
    /// [`DefenderPolicy::make_batch_policy`] (the neural agent returns its
    /// shared-network batched form) and falls back to [`PerLanePolicies`]
    /// otherwise.
    pub fn rollout<F>(&self, plan: &RolloutPlan, make_policy: &F) -> Vec<EpisodeMetrics>
    where
        F: Fn() -> Box<dyn DefenderPolicy> + Sync,
    {
        let (mut results, _) = self.rollout_many(std::slice::from_ref(plan), make_policy);
        results.pop().expect("one plan yields one result set")
    }

    /// Rolls out several plans' episodes through **shared** lockstep batches:
    /// the episodes of every plan are flattened (plan order, then episode
    /// order) and chunked into `lanes`-wide batches, so episodes from
    /// different plans step through the same batched decisions. This is the
    /// serving layer's coalescing primitive: concurrent `evaluate` requests
    /// become one plan each and fill batches together instead of running
    /// under-occupied ones.
    ///
    /// Returns per-plan metric vectors (in plan order, each in episode
    /// order) plus the [`EngineStats`] side channel. Each episode's metrics
    /// are **bit-identical** to running its plan alone — lanes never share
    /// state, and every lane's seeds derive from its own plan's
    /// `(seed, episode index)` exactly as in [`SyncBatchEngine::rollout`] —
    /// so coalescing is invisible in transcripts and visible only in the
    /// stats.
    ///
    /// Worker threads are taken as the maximum `threads` over the plans.
    /// When the policy upgrades to batched inference
    /// ([`DefenderPolicy::make_batch_policy`]), every plan must use the same
    /// topology (batched Q-networks stack per-node features across lanes);
    /// [`PerLanePolicies`] fallbacks have no such constraint.
    pub fn rollout_many<F>(
        &self,
        plans: &[RolloutPlan],
        make_policy: &F,
    ) -> (Vec<Vec<EpisodeMetrics>>, EngineStats)
    where
        F: Fn() -> Box<dyn DefenderPolicy> + Sync,
    {
        let lanes = self.lanes;
        // One ticket per episode, plan-major so per-plan results come back
        // as consecutive runs.
        let tickets: Vec<(usize, usize)> = plans
            .iter()
            .enumerate()
            .flat_map(|(p, plan)| (0..plan.episodes).map(move |e| (p, e)))
            .collect();
        let batches = tickets.len().div_ceil(lanes.max(1));
        let threads = plans.iter().map(|p| p.threads).max().unwrap_or(1);
        let (results, pool) = acso_runtime::run_indexed_with_stats(
            batches,
            threads,
            || {
                let prototype = make_policy();
                prototype
                    .make_batch_policy(lanes)
                    .unwrap_or_else(|| Box::new(PerLanePolicies::new(lanes, make_policy)))
            },
            |policy, batch| {
                let chunk = &tickets[batch * lanes..((batch + 1) * lanes).min(tickets.len())];
                let lanes_for_chunk: Vec<EpisodeLane> = chunk
                    .iter()
                    .map(|&(p, e)| EpisodeLane::start(&plans[p].sim, plans[p].seed, e))
                    .collect();
                run_lockstep_lanes(policy.as_mut(), lanes_for_chunk, lanes)
            },
        );
        let mut batch_stats = BatchStats::default();
        let mut per_plan: Vec<Vec<EpisodeMetrics>> = plans
            .iter()
            .map(|p| Vec::with_capacity(p.episodes))
            .collect();
        let mut flat = tickets.iter();
        for (metrics, stats) in results {
            batch_stats.absorb(stats);
            for m in metrics {
                let &(p, _) = flat.next().expect("one ticket per episode result");
                per_plan[p].push(m);
            }
        }
        (
            per_plan,
            EngineStats {
                batch: batch_stats,
                pool,
            },
        )
    }
}

/// Steps a prepared set of lanes in lockstep against one batch policy,
/// returning their metrics in lane order plus the batch-fill accounting.
/// `capacity_lanes` is the engine's configured width (a ragged tail batch
/// still *offers* the full width; the unfilled slots show up in the ratio).
fn run_lockstep_lanes(
    policy: &mut dyn BatchPolicy,
    mut lanes: Vec<EpisodeLane>,
    capacity_lanes: usize,
) -> (Vec<EpisodeMetrics>, BatchStats) {
    let mut stats = BatchStats::default();
    for (k, lane) in lanes.iter_mut().enumerate() {
        policy.reset_lane(k, lane.env.topology());
    }
    loop {
        // Gather the live lanes...
        let mut requests: Vec<LaneDecision<'_>> = Vec::new();
        for (k, lane) in lanes.iter_mut().enumerate() {
            if lane.done {
                continue;
            }
            let EpisodeLane { env, rng, obs, .. } = lane;
            requests.push(LaneDecision {
                lane: k,
                observation: obs,
                topology: env.topology(),
                rng,
                actions: Vec::new(),
            });
        }
        if requests.is_empty() {
            let metrics = lanes.into_iter().map(|lane| lane.metrics).collect();
            return (metrics, stats);
        }
        stats.rounds += 1;
        stats.filled_slots += requests.len() as u64;
        stats.capacity_slots += capacity_lanes.max(1) as u64;
        // ...one batched decision...
        policy.decide_lanes(&mut requests);
        // ...and scatter the actions back into the environments.
        let decided: Vec<(usize, Vec<DefenderAction>)> =
            requests.into_iter().map(|r| (r.lane, r.actions)).collect();
        for (k, actions) in decided {
            lanes[k].advance(&actions);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::baselines::{PlaybookPolicy, SemiRandomPolicy};
    use crate::rollout::{rollout_serial, RolloutPlan};
    use ics_sim::SimConfig;

    fn plan(episodes: usize, threads: usize) -> RolloutPlan {
        RolloutPlan {
            sim: SimConfig::tiny().with_max_time(100),
            episodes,
            seed: 7,
            threads,
        }
    }

    #[test]
    fn ragged_tail_batches_cover_every_episode() {
        // 7 episodes in lanes of 3: batches of 3, 3 and 1.
        let serial = rollout_serial(&mut PlaybookPolicy::new(), &plan(7, 1));
        let engine = SyncBatchEngine::new(3);
        let batched = engine.rollout(&plan(7, 2), &|| {
            Box::new(PlaybookPolicy::new()) as Box<dyn DefenderPolicy>
        });
        assert_eq!(serial, batched);
        assert_eq!(batched.len(), 7);
    }

    #[test]
    fn rng_hungry_policies_keep_their_per_lane_streams() {
        // The semi-random baseline consumes the decision RNG every step, so
        // any cross-lane sharing of streams would change transcripts.
        let serial = rollout_serial(&mut SemiRandomPolicy::new(), &plan(5, 1));
        let engine = SyncBatchEngine::new(4);
        let batched = engine.rollout(&plan(5, 2), &|| {
            Box::new(SemiRandomPolicy::new()) as Box<dyn DefenderPolicy>
        });
        assert_eq!(serial, batched);
    }

    #[test]
    fn engine_configuration_is_clamped_and_env_driven() {
        assert_eq!(SyncBatchEngine::new(0).lanes(), 1);
        assert_eq!(SyncBatchEngine::new(16).lanes(), 16);
    }

    #[test]
    fn zero_episodes_yield_no_batches() {
        let engine = SyncBatchEngine::new(8);
        let out = engine.rollout(&plan(0, 2), &|| {
            Box::new(PlaybookPolicy::new()) as Box<dyn DefenderPolicy>
        });
        assert!(out.is_empty());
    }

    #[test]
    fn coalesced_plans_match_their_solo_rollouts() {
        // Two "requests" with different seeds and episode counts, coalesced
        // into shared batches: each plan's metrics must be bit-identical to
        // rolling it out alone.
        let factory = || Box::new(PlaybookPolicy::new()) as Box<dyn DefenderPolicy>;
        let plans = [
            RolloutPlan {
                sim: SimConfig::tiny().with_max_time(100),
                episodes: 3,
                seed: 7,
                threads: 1,
            },
            RolloutPlan {
                sim: SimConfig::tiny().with_max_time(100),
                episodes: 2,
                seed: 99,
                threads: 2,
            },
        ];
        let engine = SyncBatchEngine::new(8);
        let (coalesced, stats) = engine.rollout_many(&plans, &factory);
        assert_eq!(coalesced.len(), 2);
        for (plan, got) in plans.iter().zip(&coalesced) {
            let solo = rollout_serial(&mut PlaybookPolicy::new(), plan);
            assert_eq!(&solo, got, "coalescing changed plan transcripts");
        }
        // All 5 episodes fit one 8-lane batch: fill can never exceed 5/8.
        assert_eq!(stats.pool.tasks, 1);
        assert!(stats.batch.rounds > 0);
        assert!(stats.batch.fill_ratio() <= 5.0 / 8.0 + 1e-12);
        assert!(stats.batch.fill_ratio() > 0.0);
    }

    #[test]
    fn coalescing_raises_the_fill_ratio() {
        // One 2-episode request in an 8-lane engine wastes 6 slots per
        // round; four such requests coalesced fill the batch.
        let factory = || Box::new(PlaybookPolicy::new()) as Box<dyn DefenderPolicy>;
        let engine = SyncBatchEngine::new(8);
        let request = |seed: u64| RolloutPlan {
            sim: SimConfig::tiny().with_max_time(100),
            episodes: 2,
            seed,
            threads: 1,
        };
        let (_, solo) = engine.rollout_many(&[request(7)], &factory);
        let plans: Vec<RolloutPlan> = (0..4).map(|i| request(7 + i)).collect();
        let (_, coalesced) = engine.rollout_many(&plans, &factory);
        assert!(
            coalesced.batch.fill_ratio() > solo.batch.fill_ratio(),
            "coalesced fill {} should beat solo fill {}",
            coalesced.batch.fill_ratio(),
            solo.batch.fill_ratio()
        );
    }

    #[test]
    fn batch_stats_ratio_handles_empty_runs() {
        assert_eq!(BatchStats::default().fill_ratio(), 1.0);
        let engine = SyncBatchEngine::new(4);
        let (results, stats) = engine.rollout_many(&[], &|| {
            Box::new(PlaybookPolicy::new()) as Box<dyn DefenderPolicy>
        });
        assert!(results.is_empty());
        assert_eq!(stats.batch, BatchStats::default());
    }
}
